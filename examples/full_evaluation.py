#!/usr/bin/env python3
"""Run the paper's complete evaluation and emit EXPERIMENTS-ready tables.

Reproduces Figs. 11, 12, 13 on all six topologies with the full 50-subset
mapping protocol, plus the Fig. 15 / Table II sweep, and writes every
table to a results file (default ``examples/output/full_evaluation.txt``).

This is the long-running counterpart of the benchmark harness: expect
minutes of runtime at the paper's full protocol.

Usage::

    python examples/full_evaluation.py [--mappings N] [--out PATH]
"""

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis import (
    FIDELITY_FLOOR,
    area_table,
    build_suite,
    fidelity_experiment,
    fidelity_table,
    segment_sweep,
    summary_experiment,
    summary_table,
    sweep_table,
)
from repro.circuits.library import PAPER_BENCHMARKS
from repro.devices import PAPER_TOPOLOGY_ORDER


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mappings", type=int, default=50,
                        help="mapping subsets per benchmark (paper: 50)")
    parser.add_argument("--out", default="examples/output/full_evaluation.txt")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the Fig. 15 / Table II lb sweep")
    args = parser.parse_args()

    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    sections = []
    start = time.perf_counter()

    all_summaries = []
    area_ratios = {}
    improvements = []
    for name in PAPER_TOPOLOGY_ORDER:
        t0 = time.perf_counter()
        suite = build_suite(name)
        fidelity = fidelity_experiment(suite, benchmarks=PAPER_BENCHMARKS,
                                       num_mappings=args.mappings)
        summary = summary_experiment(suite, benchmarks=PAPER_BENCHMARKS,
                                     num_mappings=args.mappings,
                                     fidelity=fidelity)
        all_summaries.extend(summary)
        area_ratios[name] = {
            s: suite.layouts[s].amer() / suite.layouts["qplacer"].amer()
            for s in suite.layouts
        }
        for bench, row in fidelity.items():
            improvements.append(row["qplacer"] / max(row["classic"],
                                                     FIDELITY_FLOOR))
        sections.append(fidelity_table(fidelity, name))
        print(f"[{time.perf_counter() - start:6.1f}s] {name} done "
              f"({time.perf_counter() - t0:.1f}s)")

    sections.append(summary_table(all_summaries))
    sections.append(area_table(area_ratios))

    by_strategy = {}
    for row in all_summaries:
        by_strategy.setdefault(row.strategy, []).append(row)
    mean_ph = {s: float(np.mean([r.ph_percent for r in rows]))
               for s, rows in by_strategy.items()}
    mean_human_ratio = float(np.mean(
        [area_ratios[t]["human"] for t in area_ratios]))
    headline = [
        f"mean fidelity improvement (qplacer/classic, floored): "
        f"{np.mean(improvements):.1f}x (paper: 36.7x)",
        f"mean Ph qplacer {mean_ph.get('qplacer', 0):.2f}% vs classic "
        f"{mean_ph.get('classic', 0):.2f}% (paper: 0.46% vs 5.87%)",
        f"mean human/qplacer area ratio: {mean_human_ratio:.2f}x "
        f"(paper: 2.14x)",
    ]
    sections.append("Headline numbers\n" + "\n".join(f"  {h}" for h in headline))

    if not args.skip_sweep:
        sweep_rows = []
        for name in PAPER_TOPOLOGY_ORDER:
            sweep_rows.extend(segment_sweep(name))
            print(f"[{time.perf_counter() - start:6.1f}s] sweep {name} done")
        sections.append(sweep_table(sweep_rows))

    text = "\n\n".join(sections) + "\n"
    out_path.write_text(text)
    print(f"\nWrote {out_path} ({time.perf_counter() - start:.0f}s total)")
    print("\n" + "\n".join(headline))


if __name__ == "__main__":
    main()

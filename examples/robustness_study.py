#!/usr/bin/env python3
"""Extension study: layout robustness to fabrication frequency scatter.

Fixed-frequency transmons land tens of MHz away from their design
frequency.  This example freezes the placed layouts (a fabricated chip
cannot be re-placed), perturbs the as-fabricated frequencies, and
re-evaluates the hotspot proportion — quantifying how much margin each
placement strategy really has, and how the SABRE router extension
shortens the evaluation circuits.

Usage::

    python examples/robustness_study.py [topology]
"""

import sys

from repro.analysis import format_table
from repro.analysis.ablation import disorder_robustness, router_comparison


def main() -> None:
    topology = sys.argv[1] if len(sys.argv) > 1 else "falcon-27"

    rows = disorder_robustness(topology,
                               sigmas_ghz=(0.0, 0.01, 0.02, 0.04),
                               trials=5)
    body = [[r.strategy, f"{1e3 * r.sigma_ghz:.0f}",
             f"{r.mean_ph_percent:.2f}", f"{r.worst_ph_percent:.2f}",
             f"{r.mean_impacted:.1f}"]
            for r in rows]
    print(format_table(
        ["strategy", "sigma (MHz)", "mean Ph (%)", "worst Ph (%)",
         "impacted qubits"],
        body, title=f"Frequency-disorder robustness — {topology}"))

    print()
    router_rows = router_comparison(topology, benchmarks=("bv-16", "qaoa-9"),
                                    num_mappings=10)
    body = [[r.benchmark, r.router, r.total_swaps,
             f"{r.mean_duration_ns:.0f}"]
            for r in router_rows]
    print(format_table(
        ["benchmark", "router", "total swaps", "mean duration (ns)"],
        body, title=f"Routing strategies — {topology}"))

    print("\nReading the table: the designed (sigma = 0) Qplacer layout is "
          "hotspot-free; scatter beyond the frequency-comb margin "
          "(~11 MHz here) re-creates resonant adjacencies on any layout, "
          "which motivates the paper's aggressive padding defaults.")


if __name__ == "__main__":
    main()

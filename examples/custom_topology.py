#!/usr/bin/env python3
"""Placing a custom (user-defined) device topology end to end.

Builds a 4x4-grid-with-diagonals topology that is *not* in the paper's
Table I, runs frequency assignment, Qplacer placement, and a full
fidelity evaluation of a custom circuit — demonstrating that every
stage of the library works on arbitrary connectivity graphs.

Usage::

    python examples/custom_topology.py
"""

import networkx as nx

from repro import QPlacer, build_netlist
from repro.circuits import QuantumCircuit, evaluation_mappings
from repro.crosstalk import average_program_fidelity, hotspot_report
from repro.devices.topology import Topology


def make_custom_topology() -> Topology:
    """A 4x4 grid with one diagonal brace per cell (degree up to 6)."""
    size = 4
    graph = nx.Graph()
    coords = {}
    for r in range(size):
        for c in range(size):
            node = r * size + c
            coords[node] = (float(c), float(r))
            graph.add_node(node)
            if c + 1 < size:
                graph.add_edge(node, node + 1)
            if r + 1 < size:
                graph.add_edge(node, node + size)
            if c + 1 < size and r + 1 < size:
                graph.add_edge(node, node + size + 1)
    return Topology(name="braced-grid-16",
                    description="4x4 grid with diagonal braces",
                    graph=graph, coords=coords)


def make_ghz_circuit(width: int) -> QuantumCircuit:
    """A GHZ-state preparation circuit (H + CX ladder)."""
    qc = QuantumCircuit(width, name=f"ghz-{width}")
    qc.h(0)
    for q in range(width - 1):
        qc.cx(q, q + 1)
    return qc


def main() -> None:
    topology = make_custom_topology()
    print(f"Custom topology: {topology.num_qubits} qubits, "
          f"{topology.num_couplers} couplers, max degree {topology.max_degree}")

    netlist = build_netlist(topology)
    plan = netlist.plan
    print(f"Frequency assignment conflict-free: {plan.is_conflict_free}")
    if not plan.is_conflict_free:
        print(f"  unresolved qubit pairs: {plan.unresolved_qubit_pairs}")
        print(f"  unresolved resonator pairs: "
              f"{len(plan.unresolved_resonator_pairs)}")

    result = QPlacer().place(netlist)
    report = hotspot_report(result.layout)
    print(f"Placed {result.num_cells} cells in {result.runtime_s:.1f}s; "
          f"Amer {result.layout.amer():.1f} mm^2, Ph {report.ph_percent:.2f}%")

    circuit = make_ghz_circuit(6)
    mappings = evaluation_mappings(circuit, topology, num_mappings=10)
    fidelity = average_program_fidelity(result.layout, mappings)
    print(f"GHZ-6 average program fidelity over 10 mappings: {fidelity:.4f}")


if __name__ == "__main__":
    main()

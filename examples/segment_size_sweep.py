#!/usr/bin/env python3
"""Fig. 15 / Table II ablation: sweep the resonator segment size lb.

Partitioning resonators into smaller blocks buys layout flexibility but
multiplies the instance count (and runtime); the paper finds lb = 0.3 mm
the sweet spot.  This example reproduces the sweep on a configurable
set of topologies.

Usage::

    python examples/segment_size_sweep.py [topology ...]
"""

import sys

from repro.analysis import segment_sweep, sweep_table


def main() -> None:
    topologies = sys.argv[1:] or ["grid-25", "falcon-27"]
    rows = []
    for name in topologies:
        rows.extend(segment_sweep(name))
    print(sweep_table(rows))
    print()
    by_lb = {}
    for r in rows:
        by_lb.setdefault(r.segment_size_mm, []).append(r)
    print("Mean across topologies:")
    for lb, group in sorted(by_lb.items()):
        cells = sum(g.num_cells for g in group) / len(group)
        util = sum(g.utilization for g in group) / len(group)
        ph = sum(g.ph_percent for g in group) / len(group)
        rt = sum(g.runtime_s for g in group) / len(group)
        print(f"  lb={lb:.1f}: #cells {cells:7.0f}  util {util:.3f}  "
              f"Ph {ph:.2f}%  RT {rt:.1f}s")


if __name__ == "__main__":
    main()

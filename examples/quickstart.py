#!/usr/bin/env python3
"""Quickstart: place a quantum chip and inspect its quality metrics.

Runs the full Qplacer flow on the IBM Falcon topology, compares it with
the Classic and Human baselines, and prints the three evaluation axes of
the paper: fidelity proxy (hotspots), area, and runtime.

Usage::

    python examples/quickstart.py [topology-name]
"""

import sys

from repro import PlacerConfig, QPlacer, build_netlist, get_topology, human_layout
from repro.analysis import compute_layout_metrics, format_table, resonator_integrity
from repro.crosstalk import hotspot_report


def main() -> None:
    topology_name = sys.argv[1] if len(sys.argv) > 1 else "falcon-27"
    topology = get_topology(topology_name)
    print(f"Topology: {topology.name} — {topology.description}")
    print(f"  {topology.num_qubits} qubits, {topology.num_couplers} couplers\n")

    netlist = build_netlist(topology)
    plan = netlist.plan
    print(f"Frequency plan: {len(plan.qubit_levels)} qubit levels "
          f"{[round(f, 3) for f in plan.qubit_levels]} GHz, "
          f"{len(plan.resonator_levels)} resonator levels")
    print(f"  conflict-free: {plan.is_conflict_free}\n")

    rows = []
    for label, layout, runtime in _layouts(netlist):
        m = compute_layout_metrics(layout)
        integrity = resonator_integrity(layout)
        rows.append([
            label, f"{m.amer_mm2:.1f}", f"{m.utilization:.2f}",
            f"{m.ph_percent:.2f}", m.impacted_qubits,
            f"{100 * integrity:.0f}%", f"{runtime:.1f}s",
        ])
    print(format_table(
        ["strategy", "Amer (mm^2)", "util", "Ph (%)", "impacted",
         "integration", "runtime"],
        rows, title="Layout comparison"))


def _layouts(netlist):
    result = QPlacer().place(netlist)
    yield "qplacer", result.layout, result.runtime_s
    classic = QPlacer(PlacerConfig.classic()).place(netlist)
    yield "classic", classic.layout, classic.runtime_s
    yield "human", human_layout(netlist), 0.0


if __name__ == "__main__":
    main()

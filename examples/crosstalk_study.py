#!/usr/bin/env python3
"""Crosstalk physics study: the curves behind Figs. 4, 5-b, and 6.

Prints the coupling-strength physics that motivates frequency-aware
placement: how qubit-qubit coupling peaks at resonance, how parasitic
capacitance (and hence coupling) decays with distance, and how the
substrate TM110 mode caps the usable chip size (Sec. III-C).

Usage::

    python examples/crosstalk_study.py
"""

import numpy as np

from repro.analysis import (
    coupling_vs_detuning,
    coupling_vs_distance,
    format_table,
    resonator_coupling_curves,
)
from repro.crosstalk import crosstalk_error
from repro.physics import max_substrate_side_mm, tm110_frequency_ghz


def main() -> None:
    # Fig. 4 — coupling vs detuning.
    fig4 = coupling_vs_detuning()
    rows = []
    for k in range(0, len(fig4["freq2_ghz"]), 10):
        f2 = fig4["freq2_ghz"][k]
        rows.append([f"{f2:.2f}", f"{1e3 * fig4['effective_coupling_ghz'][k]:.3f}"])
    print(format_table(["w2 (GHz)", "g_eff (MHz)"], rows,
                       title="Fig.4 — coupling vs detuning (w1 = 5.00 GHz)"))

    # Fig. 5-b — coupling vs distance.
    fig5 = coupling_vs_distance()
    rows = []
    for k in range(0, len(fig5["distance_mm"]), 11):
        rows.append([
            f"{fig5['distance_mm'][k]:.2f}",
            f"{fig5['cp_ff'][k]:.4f}",
            f"{1e3 * fig5['g_ghz'][k]:.3f}",
            f"{1e6 * fig5['g_eff_ghz'][k]:.3f}",
        ])
    print()
    print(format_table(["d (mm)", "Cp (fF)", "g (MHz)", "g_eff (kHz)"], rows,
                       title="Fig.5-b — parasitic coupling vs qubit distance"))

    # Fig. 6 — resonator coupling curves.
    fig6 = resonator_coupling_curves()
    rows = []
    for k in range(0, len(fig6["distance_mm"]), 11):
        rows.append([
            f"{fig6['distance_mm'][k]:.2f}",
            f"{fig6['cp_ff'][k]:.4f}",
            f"{1e3 * fig6['g_vs_distance_ghz'][k]:.3f}",
        ])
    print()
    print(format_table(["d (mm)", "Cp (fF)", "g (MHz)"], rows,
                       title="Fig.6-c — resonator-resonator coupling vs distance"))

    # Crosstalk error magnitudes at the paper's spacing regimes.
    print("\nWorst-case crosstalk error over a 5 us circuit:")
    for d, label in [(0.05, "sub-clearance"), (0.2, "legal clearance"),
                     (0.8, "full qubit padding sum")]:
        g = float(np.interp(d, fig5["distance_mm"], fig5["g_ghz"]))
        resonant = crosstalk_error(g, 5000.0, detuning_ghz=0.0)
        detuned = crosstalk_error(g, 5000.0, detuning_ghz=0.133)
        print(f"  d = {d:.2f} mm ({label:>22}): resonant eps = {resonant:.4f}, "
              f"detuned eps = {detuned:.2e}")

    # Sec. III-C — substrate box modes.
    print("\nSec.III-C — substrate TM110 box mode vs chip size:")
    for side in (5.0, 7.5, 10.0, 15.0):
        print(f"  {side:4.1f} x {side:4.1f} mm: TM110 = "
              f"{tm110_frequency_ghz(side, side):.2f} GHz")
    print(f"  largest square chip keeping TM110 above 7 GHz: "
          f"{max_substrate_side_mm(7.0):.1f} mm per side")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fig. 14 pipeline: optimise the Falcon layout and export it.

Places the IBM Falcon (27-qubit heavy-hex) device with Qplacer, then
exports the prototype layout exactly like the paper's Fig. 14:

* ``falcon_layout.svg``  — the colour-coded layout drawing (Fig. 14-b);
* ``falcon_layout.gds``  — a GDSII stream of the component footprints
  (Fig. 14-c, readable in KLayout);
* ``falcon_layout.json`` — a reloadable serialisation of the placement.

Usage::

    python examples/falcon_layout.py [output-dir]
"""

import sys
from pathlib import Path

from repro import QPlacer, build_netlist, get_topology
from repro.crosstalk import hotspot_report
from repro.io import save_gds, save_layout, save_svg
from repro.physics import tm110_frequency_ghz


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("examples/output")
    out_dir.mkdir(parents=True, exist_ok=True)

    netlist = build_netlist(get_topology("falcon-27"))
    result = QPlacer().place(netlist)
    layout = result.layout

    mer = layout.enclosing_rect()
    tm110 = tm110_frequency_ghz(mer.w, mer.h)
    fmax = netlist.max_component_frequency_ghz()
    report = hotspot_report(layout)

    print(f"Placed {result.num_cells} cells in {result.runtime_s:.1f}s "
          f"({result.iterations} iterations)")
    print(f"Substrate: {mer.w:.1f} x {mer.h:.1f} mm  (Amer {layout.amer():.1f} mm^2)")
    print(f"TM110 box mode: {tm110:.2f} GHz vs max component {fmax:.2f} GHz "
          f"-> {'OK' if tm110 > fmax else 'VIOLATED (substrate too large)'}")
    print(f"Hotspot proportion Ph: {report.ph_percent:.3f}% "
          f"({report.num_hotspots} pairs)")
    print(f"Resonator integration failures: "
          f"{result.legalize_stats.integration_failures}")

    svg_path = out_dir / "falcon_layout.svg"
    gds_path = out_dir / "falcon_layout.gds"
    json_path = out_dir / "falcon_layout.json"
    save_svg(layout, svg_path)
    save_gds(layout, gds_path)
    save_layout(layout, json_path, segment_size_mm=result.problem.config.segment_size_mm)
    print(f"\nExports written to {out_dir}/:")
    for path in (svg_path, gds_path, json_path):
        print(f"  {path.name}  ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()

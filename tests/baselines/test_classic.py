"""Unit tests for the Classic baseline placer."""

import pytest

from repro.baselines.classic import ClassicPlacer, classic_placement
from repro.core.config import PlacerConfig


class TestClassicPlacer:
    def test_default_config_is_classic(self):
        placer = ClassicPlacer()
        assert not placer.config.frequency_aware
        assert placer.strategy_name == "classic"

    def test_rejects_frequency_aware_config(self):
        with pytest.raises(ValueError, match="frequency-oblivious"):
            ClassicPlacer(PlacerConfig())

    def test_accepts_classic_overrides(self):
        cfg = PlacerConfig.classic(segment_size_mm=0.4)
        placer = ClassicPlacer(cfg)
        assert placer.config.segment_size_mm == 0.4

    def test_end_to_end(self, grid9_netlist, fast_classic_config):
        result = classic_placement(grid9_netlist, fast_classic_config)
        assert result.layout.strategy == "classic"
        assert result.num_cells == result.problem.num_instances

    def test_same_hyperparameters_as_qplacer(self):
        base = PlacerConfig()
        classic = ClassicPlacer().config
        assert classic.segment_size_mm == base.segment_size_mm
        assert classic.qubit_padding_mm == base.qubit_padding_mm
        assert classic.target_density == base.target_density

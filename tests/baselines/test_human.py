"""Unit tests for the Human (manual IBM-style) baseline layout."""

import numpy as np
import pytest

from repro.baselines.human import (
    human_layout,
    human_qubit_pitch_mm,
    human_strip_length_mm,
)
from repro.core.config import PlacerConfig
from repro.crosstalk import hotspot_report
from repro.devices import build_netlist, get_topology, grid_topology


@pytest.fixture(scope="module")
def grid_netlist():
    return build_netlist(grid_topology(3, 3))


@pytest.fixture(scope="module")
def grid_human(grid_netlist):
    return human_layout(grid_netlist)


class TestStripFormula:
    def test_paper_formula(self):
        # D = L * dr / (Lq + 2 dq) = 10 * 0.1 / 1.2 (Sec. V-B).
        assert human_strip_length_mm(10.0) == pytest.approx(10.0 * 0.1 / 1.2)

    def test_longer_resonator_longer_strip(self):
        assert human_strip_length_mm(10.8) > human_strip_length_mm(9.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            human_strip_length_mm(0.0)

    def test_pitch_value(self, grid_netlist):
        pitch = human_qubit_pitch_mm(grid_netlist)
        # padded qubit 1.2 mm + strip ~0.85 mm -> pitch ~2.0 mm.
        assert 1.9 <= pitch <= 2.2


class TestHumanLayout:
    def test_crosstalk_free(self, grid_human):
        report = hotspot_report(grid_human)
        assert report.ph == 0.0
        assert report.num_hotspots == 0

    def test_qubits_on_lattice(self, grid_netlist, grid_human):
        pitch = human_qubit_pitch_mm(grid_netlist)
        qi = grid_human.qubit_indices
        p0 = np.array(grid_human.qubit_center(0))
        p1 = np.array(grid_human.qubit_center(1))
        p3 = np.array(grid_human.qubit_center(3))
        assert np.linalg.norm(p1 - p0) == pytest.approx(pitch)
        assert np.linalg.norm(p3 - p0) == pytest.approx(pitch)

    def test_instances_match_placement_problem(self, grid_human):
        # Qubits first, then segments — identical to QPlacer layouts so
        # every metric applies unchanged.
        names = [inst.name for inst in grid_human.instances]
        assert names[:9] == [f"q{i}" for i in range(9)]
        assert names[9].startswith("r0.s")

    def test_segments_near_their_edge(self, grid_netlist, grid_human):
        groups = grid_human.segment_indices_by_resonator
        for resonator in grid_netlist.resonators:
            u, v = resonator.endpoints
            mid = (np.array(grid_human.qubit_center(u))
                   + np.array(grid_human.qubit_center(v))) / 2
            centroid = grid_human.positions[groups[resonator.index]].mean(axis=0)
            assert np.linalg.norm(centroid - mid) < 1.0

    def test_at_origin(self, grid_human):
        mer = grid_human.enclosing_rect()
        assert mer.x == pytest.approx(0.0)
        assert mer.y == pytest.approx(0.0)

    def test_strategy_tag(self, grid_human):
        assert grid_human.strategy == "human"

    def test_custom_segment_size(self, grid_netlist):
        layout = human_layout(grid_netlist, PlacerConfig(segment_size_mm=0.2))
        seg = next(i for i in layout.instances if i.name.startswith("r0.s"))
        assert seg.width == 0.2


class TestAreaPremium:
    @pytest.mark.parametrize("name", ["falcon-27", "aspen11-40"])
    def test_bigger_than_qplacer_floor(self, name):
        # The human layout must pay a clear area premium over the packed
        # instance-area lower bound.
        netlist = build_netlist(get_topology(name))
        layout = human_layout(netlist)
        bare = sum(inst.area for inst in layout.instances)
        assert layout.amer() > 2.0 * bare

"""Unit tests for the repro.placers portfolio subsystem."""

import numpy as np
import pytest

from repro.core import PlacerConfig
from repro.core.config import PLACER_CHOICES
from repro.core.legalizer import Legalizer
from repro.core.preprocess import build_problem
from repro.placers import (Annealer, CostModel, ForceDirectedPlacer,
                           PortfolioPlacer, SimulatedAnnealingPlacer,
                           SubgraphPlacer, TrivialPlacer,
                           band_round_robin_order, make_placer,
                           score_layout, seed_grid_positions)
from repro.placers.seeds import seed_grid_positions as _grid


@pytest.fixture(scope="module")
def sa_config():
    return PlacerConfig(sa_rounds=4, sa_moves_per_round=60,
                        sa_probe_moves=16)


class TestMakePlacer:
    def test_dispatch(self):
        for name, cls in [("force", ForceDirectedPlacer),
                          ("sa", SimulatedAnnealingPlacer),
                          ("trivial", TrivialPlacer),
                          ("subgraph", SubgraphPlacer),
                          ("portfolio", PortfolioPlacer)]:
            placer = make_placer(PlacerConfig(placer=name))
            assert isinstance(placer, cls)
            assert placer.name == name

    def test_default_is_force(self):
        assert isinstance(make_placer(), ForceDirectedPlacer)

    def test_config_rejects_unknown_placer_listing_choices(self):
        with pytest.raises(ValueError) as err:
            PlacerConfig(placer="genetic")
        message = str(err.value)
        assert "genetic" in message
        for choice in PLACER_CHOICES:
            assert choice in message

    def test_config_rejects_bad_portfolio_member(self):
        with pytest.raises(ValueError) as err:
            PlacerConfig(portfolio_members=("force", "portfolio"))
        assert "portfolio_members" in str(err.value)

    def test_config_rejects_bad_sa_knobs(self):
        with pytest.raises(ValueError):
            PlacerConfig(sa_cooling=1.5)
        with pytest.raises(ValueError):
            PlacerConfig(sa_uphill_probability=0.0)
        with pytest.raises(ValueError):
            PlacerConfig(sa_rounds=0)


class TestSeedPlacers:
    def test_trivial_places_everything(self, grid9_netlist):
        result = TrivialPlacer(PlacerConfig()).place(grid9_netlist)
        assert result.layout.strategy == "qplacer"
        assert np.isfinite(result.layout.positions).all()
        assert result.num_cells == result.problem.num_instances
        assert {"preprocess", "seed", "legalize"} <= set(
            result.phase_profile)

    def test_subgraph_interleaves_bands(self, grid9_netlist):
        config = PlacerConfig()
        problem = build_problem(grid9_netlist, config)
        order = band_round_robin_order(problem)
        assert sorted(order.tolist()) == list(range(problem.num_instances))
        # Consecutive slots cycle bands: the first #bands slots hold
        # pairwise distinct bands.
        from repro.core.interactions import frequency_bands
        bands = frequency_bands(problem.frequencies,
                                config.detuning_threshold_ghz)
        distinct = len(np.unique(bands))
        head = bands[order[:distinct]]
        assert len(np.unique(head)) == distinct

    def test_seed_grid_is_deterministic(self, grid9_netlist):
        config = PlacerConfig()
        problem = build_problem(grid9_netlist, config)
        a = seed_grid_positions(problem)
        b = _grid(problem)
        assert np.array_equal(a, b)

    def test_seed_placers_are_deterministic(self, grid9_netlist):
        for cls in (TrivialPlacer, SubgraphPlacer):
            one = cls(PlacerConfig()).place(grid9_netlist)
            two = cls(PlacerConfig()).place(grid9_netlist)
            assert np.array_equal(one.layout.positions,
                                  two.layout.positions)


class TestCostModel:
    def test_delta_matches_full_recompute(self, grid9_netlist):
        config = PlacerConfig()
        problem = build_problem(grid9_netlist, config)
        legal, _ = Legalizer(problem, config).run(_grid(problem))
        model = CostModel(problem)
        model.load(legal)
        rng = np.random.default_rng(1)
        for _ in range(50):
            i = int(rng.integers(problem.num_instances))
            target = (float(legal[i, 0] + rng.normal()),
                      float(legal[i, 1] + rng.normal()))
            moves = [(i, target)]
            delta = model.delta(moves)
            after = model.positions.copy()
            after[i] = target
            full = model.full_cost(after) - model.full_cost(model.positions)
            assert delta == pytest.approx(full, abs=1e-9)

    def test_apply_tracks_cost(self, grid9_netlist):
        config = PlacerConfig()
        problem = build_problem(grid9_netlist, config)
        legal, _ = Legalizer(problem, config).run(_grid(problem))
        model = CostModel(problem)
        model.load(legal)
        moves = [(0, (float(legal[0, 0]) + 0.7, float(legal[0, 1])))]
        delta = model.delta(moves)
        model.apply(moves, delta)
        assert model.cost == pytest.approx(
            model.full_cost(model.positions), abs=1e-9)


class TestSimulatedAnnealing:
    def test_same_seed_bit_identical(self, grid9_netlist, sa_config):
        one = SimulatedAnnealingPlacer(sa_config).place(grid9_netlist)
        two = SimulatedAnnealingPlacer(sa_config).place(grid9_netlist)
        assert np.array_equal(one.layout.positions, two.layout.positions)

    def test_different_seed_may_differ_but_stays_legal(
            self, grid9_netlist, sa_config):
        import dataclasses
        other = dataclasses.replace(sa_config, seed=7)
        result = SimulatedAnnealingPlacer(other).place(grid9_netlist)
        assert np.isfinite(result.layout.positions).all()

    def test_round_costs_monotone_non_increasing(self, grid9_netlist,
                                                 sa_config):
        placer = SimulatedAnnealingPlacer(sa_config)
        placer.place(grid9_netlist)
        costs = placer.last_anneal_stats.round_costs
        assert len(costs) == sa_config.sa_rounds
        assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))

    def test_deadline_stops_early(self, grid9_netlist, sa_config):
        import time
        config = PlacerConfig(sa_probe_moves=8)
        problem = build_problem(grid9_netlist, config)
        legalizer = Legalizer(problem, config)
        legal, _ = legalizer.run(_grid(problem))
        model = CostModel(problem)
        model.load(legal)
        annealer = Annealer(problem, config, legalizer, model,
                            np.random.default_rng(0))
        _, stats = annealer.run(10_000, 10_000,
                                deadline=time.monotonic() + 0.2)
        assert stats.rounds < 10_000

    def test_warm_start_accepted(self, grid9_netlist, sa_config):
        problem = build_problem(grid9_netlist, sa_config)
        warm = _grid(problem)
        result = SimulatedAnnealingPlacer(sa_config).place(
            grid9_netlist, initial_positions=warm)
        assert result.layout.num_instances == problem.num_instances


class TestPortfolio:
    def test_rigged_scorer_argmax(self, grid9_netlist):
        config = PlacerConfig(portfolio_members=("trivial", "subgraph"))
        want = SubgraphPlacer(config).place(grid9_netlist)
        # Rig: subgraph's layout scores higher.
        reference = want.layout.positions

        def rigged(layout):
            return 1.0 if np.array_equal(layout.positions, reference) \
                else 0.0

        placer = PortfolioPlacer(config, scorer=rigged)
        result = placer.place(grid9_netlist)
        assert np.array_equal(result.layout.positions, reference)
        assert result.portfolio_scores == {"trivial": 0.0, "subgraph": 1.0}

    def test_tie_keeps_first_member(self, grid9_netlist):
        config = PlacerConfig(portfolio_members=("trivial", "subgraph"))
        first = TrivialPlacer(config).place(grid9_netlist)
        placer = PortfolioPlacer(config, scorer=lambda layout: 1.0)
        result = placer.place(grid9_netlist)
        assert np.array_equal(result.layout.positions,
                              first.layout.positions)

    def test_member_telemetry_folded_in(self, grid9_netlist):
        config = PlacerConfig(portfolio_members=("trivial", "subgraph"))
        result = PortfolioPlacer(config).place(grid9_netlist)
        assert "portfolio/trivial" in result.phase_profile
        assert "portfolio/subgraph" in result.phase_profile
        assert set(result.portfolio_scores) == {"trivial", "subgraph"}

    def test_scores_bounded(self, grid9_netlist):
        config = PlacerConfig(portfolio_members=("trivial",))
        result = PortfolioPlacer(config).place(grid9_netlist)
        for score in result.portfolio_scores.values():
            assert 0.0 < score <= 1.0
        assert score_layout(result.layout) == pytest.approx(
            result.portfolio_scores["trivial"])

"""Unit tests for the Table I topology generators."""

import math

import networkx as nx
import pytest

from repro.devices.topology import (
    PAPER_TOPOLOGY_ORDER,
    SCALE_TOPOLOGY_ORDER,
    TOPOLOGY_LABELS,
    Topology,
    all_paper_topologies,
    aspen11_topology,
    aspen_m_topology,
    eagle_topology,
    falcon_topology,
    get_topology,
    grid_topology,
    heavy_hex_lattice,
    octagon_topology,
    xtree_topology,
)

#: (name, qubits, couplers) straight from Table I / known devices.
PAPER_SIZES = [
    ("grid-25", 25, 40),
    ("falcon-27", 27, 28),
    ("eagle-127", 127, 144),
    ("aspen11-40", 40, 48),
    ("aspenm-80", 80, 106),
    ("xtree-53", 53, 52),
]


class TestPaperTopologies:
    @pytest.mark.parametrize("name,qubits,couplers", PAPER_SIZES)
    def test_sizes_match_table1(self, name, qubits, couplers):
        topo = get_topology(name)
        assert topo.num_qubits == qubits
        assert topo.num_couplers == couplers

    @pytest.mark.parametrize("name", PAPER_TOPOLOGY_ORDER)
    def test_connected(self, name):
        assert nx.is_connected(get_topology(name).graph)

    @pytest.mark.parametrize("name", PAPER_TOPOLOGY_ORDER)
    def test_coords_cover_all_nodes(self, name):
        topo = get_topology(name)
        assert set(topo.coords) == set(range(topo.num_qubits))

    @pytest.mark.parametrize("name", PAPER_TOPOLOGY_ORDER)
    def test_coords_distinct(self, name):
        topo = get_topology(name)
        seen = {tuple(round(c, 6) for c in xy) for xy in topo.coords.values()}
        assert len(seen) == topo.num_qubits

    @pytest.mark.parametrize("name", PAPER_TOPOLOGY_ORDER)
    def test_adjacent_coords_near_unit(self, name):
        # Lattice drawings keep coupled qubits ~1 unit apart; the layered
        # tree drawing (xtree) only guarantees the lower bound (its upper
        # levels fan out, which is exactly why its Human layout is big).
        topo = get_topology(name)
        upper = math.inf if name.startswith("xtree") else 2.0
        for u, v in topo.graph.edges:
            (x1, y1), (x2, y2) = topo.coords[u], topo.coords[v]
            d = math.hypot(x1 - x2, y1 - y2)
            assert 0.5 <= d <= upper, f"edge {(u, v)} drawn at distance {d}"

    def test_labels_cover_order(self):
        assert set(TOPOLOGY_LABELS) == (set(PAPER_TOPOLOGY_ORDER)
                                        | set(SCALE_TOPOLOGY_ORDER))

    def test_all_paper_topologies_order(self):
        names = [t.name for t in all_paper_topologies()]
        assert names == list(PAPER_TOPOLOGY_ORDER)


class TestGrid:
    def test_custom_size(self):
        topo = grid_topology(2, 3)
        assert topo.num_qubits == 6
        assert topo.num_couplers == 7  # 4 horizontal + 3 vertical

    def test_degree_bounds(self):
        topo = grid_topology(5, 5)
        assert topo.max_degree == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            grid_topology(0, 5)


class TestHeavyHex:
    def test_falcon_degree_at_most_3(self):
        assert falcon_topology().max_degree == 3

    def test_eagle_degree_at_most_3(self):
        assert eagle_topology().max_degree == 3

    def test_eagle_heavy_hex_cycles(self):
        # Heavy-hex cells are 12-cycles; the graph must be bipartite.
        assert nx.is_bipartite(eagle_topology().graph)

    def test_falcon_bipartite(self):
        assert nx.is_bipartite(falcon_topology().graph)

    def test_generic_generator_other_size(self):
        topo = heavy_hex_lattice(5, 11)
        assert nx.is_connected(topo.graph)
        assert topo.max_degree <= 3

    def test_generator_validations(self):
        with pytest.raises(ValueError):
            heavy_hex_lattice(1, 15)
        with pytest.raises(ValueError):
            heavy_hex_lattice(7, 3)


class TestOctagon:
    def test_ring_edges(self):
        topo = octagon_topology(1, 1)
        assert topo.num_qubits == 8
        assert topo.num_couplers == 8
        degrees = [d for _, d in topo.graph.degree]
        assert all(d == 2 for d in degrees)

    def test_horizontal_coupling(self):
        topo = octagon_topology(1, 2)
        assert topo.num_couplers == 8 * 2 + 2

    def test_vertical_coupling(self):
        topo = octagon_topology(2, 1)
        assert topo.num_couplers == 8 * 2 + 2

    def test_aspen11_structure(self):
        topo = aspen11_topology()
        assert topo.name == "aspen11-40"
        assert topo.max_degree == 3

    def test_aspen_m_structure(self):
        topo = aspen_m_topology()
        assert topo.name == "aspenm-80"
        # 80 ring edges + 2x(4 horizontal adjacencies)x2 + 5 vertical x2.
        assert topo.num_couplers == 80 + 16 + 10


class TestXtree:
    def test_level3_is_tree(self):
        topo = xtree_topology()
        assert nx.is_tree(topo.graph)
        assert topo.num_qubits == 53

    def test_level_sizes(self):
        topo = xtree_topology()
        degrees = dict(topo.graph.degree)
        assert degrees[0] == 4  # root fan-out

    def test_custom_branching(self):
        topo = xtree_topology(branching=(2, 2), name="xtree-7")
        assert topo.num_qubits == 7
        assert nx.is_tree(topo.graph)

    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            xtree_topology(branching=(0, 3), name="bad")


class TestTopologyClass:
    def test_coupling_map_canonical(self):
        topo = grid_topology(2, 2)
        assert topo.coupling_map == [(0, 1), (0, 2), (1, 3), (2, 3)]

    def test_neighbors_sorted(self):
        topo = grid_topology(3, 3)
        assert topo.neighbors(4) == [1, 3, 5, 7]

    def test_shortest_path_endpoints(self):
        topo = grid_topology(3, 3)
        path = topo.shortest_path(0, 8)
        assert path[0] == 0 and path[-1] == 8
        assert len(path) == 5  # 4 hops on a 3x3 grid

    def test_distance_matrix(self):
        topo = grid_topology(2, 2)
        dm = topo.distance_matrix()
        assert dm[0][3] == 2
        assert dm[0][0] == 0

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="grid-25"):
            get_topology("not-a-chip")

    def test_validates_node_numbering(self):
        graph = nx.Graph([(1, 2)])
        with pytest.raises(ValueError, match="0..n-1"):
            Topology(name="bad", description="", graph=graph,
                     coords={1: (0, 0), 2: (1, 0)})

    def test_validates_connectivity(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        with pytest.raises(ValueError, match="connected"):
            Topology(name="bad", description="", graph=graph,
                     coords={0: (0, 0), 1: (1, 0)})

    def test_validates_coords_coverage(self):
        graph = nx.Graph([(0, 1)])
        with pytest.raises(ValueError, match="coords"):
            Topology(name="bad", description="", graph=graph,
                     coords={0: (0, 0)})


class TestCanonicalPaths:
    def test_next_hop_walks_are_shortest_paths(self):
        for topo in (grid_topology(3, 3), falcon_topology()):
            nxt = topo.shortest_path_next_hop()
            dm = topo.distance_matrix()
            n = topo.num_qubits
            for s in range(n):
                for d in range(n):
                    path = topo.shortest_path(s, d)
                    assert path[0] == s and path[-1] == d
                    assert len(path) == dm[s][d] + 1
                    for u, v in zip(path, path[1:]):
                        assert topo.graph.has_edge(u, v)
                    if s != d:
                        assert nxt[s, d] == path[1]

    def test_next_hop_prefers_lowest_index_neighbour(self):
        topo = grid_topology(3, 3)
        nxt = topo.shortest_path_next_hop()
        dm = topo.distance_matrix()
        for s in range(9):
            for d in range(9):
                if s == d:
                    assert nxt[s, d] == s
                    continue
                closer = [q for q in topo.neighbors(s)
                          if dm[q][d] == dm[s][d] - 1]
                assert nxt[s, d] == min(closer)

    def test_next_hop_cached(self):
        topo = grid_topology(3, 3)
        assert topo.shortest_path_next_hop() is topo.shortest_path_next_hop()

    def test_shortest_path_trivial_and_invalid(self):
        topo = grid_topology(2, 2)
        assert topo.shortest_path(3, 3) == [3]
        with pytest.raises(nx.NodeNotFound):
            topo.shortest_path(0, 99)
        with pytest.raises(nx.NodeNotFound):
            topo.shortest_path(99, 99)  # trivial case is validated too

    def test_single_node_chip(self):
        topo = grid_topology(1, 1)
        assert topo.shortest_path_next_hop().tolist() == [[0]]
        assert topo.shortest_path(0, 0) == [0]


class TestHopDistanceSubmatrix:
    def test_matches_distance_matrix(self):
        topo = falcon_topology()
        dm = topo.distance_matrix()
        rows = [0, 5, 26]
        cols = [1, 7, 13, 20]
        block = topo.hop_distance_submatrix(rows, cols)
        assert block.shape == (3, 4)
        for i, r in enumerate(rows):
            for j, c in enumerate(cols):
                assert block[i, j] == dm[r][c]

    def test_square_default_cols(self):
        topo = grid_topology(3, 3)
        block = topo.hop_distance_submatrix([2, 4, 8])
        assert block.shape == (3, 3)
        assert block[0, 2] == topo.distance_matrix()[2][8]
        assert (block.diagonal() == 0).all()

    def test_invalid_nodes_raise_keyerror(self):
        topo = grid_topology(2, 2)
        with pytest.raises(KeyError):
            topo.hop_distance_submatrix([0, 4])
        with pytest.raises(KeyError):
            topo.hop_distance_submatrix([0], [-1])

"""Unit tests for axis-aligned rectangle geometry."""

import math

import pytest

from repro.devices.geometry import (
    Rect,
    adjacency_length,
    area_utilization,
    has_overlaps,
    minimum_enclosing_rect,
    pack_rows,
    pairwise_overlap_area,
    total_polygon_area,
)


class TestRectBasics:
    def test_corners_and_center(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.x2 == 4.0
        assert r.y2 == 6.0
        assert r.center == (2.5, 4.0)

    def test_area(self):
        assert Rect(0, 0, 3, 4).area == 12.0

    def test_zero_size_allowed(self):
        assert Rect(0, 0, 0, 0).area == 0.0

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 2)
        with pytest.raises(ValueError):
            Rect(0, 0, 1, -2)

    def test_from_center_roundtrip(self):
        r = Rect.from_center(5.0, 7.0, 2.0, 4.0)
        assert r.center == (5.0, 7.0)
        assert (r.w, r.h) == (2.0, 4.0)

    def test_moved_to_center(self):
        r = Rect(0, 0, 2, 2).moved_to_center(10, 10)
        assert r.center == (10.0, 10.0)
        assert (r.w, r.h) == (2.0, 2.0)

    def test_inflated_grows_both_sides(self):
        r = Rect(0, 0, 2, 2).inflated(0.5)
        assert (r.x, r.y, r.w, r.h) == (-0.5, -0.5, 3.0, 3.0)

    def test_inflated_negative_margin(self):
        r = Rect(0, 0, 2, 2).inflated(-0.5)
        assert (r.w, r.h) == (1.0, 1.0)

    def test_inflated_rejects_overshrink(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).inflated(-0.6)


class TestRectRelations:
    def test_overlap_amounts(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 2, 2)
        assert a.overlap_x(b) == 1.0
        assert a.overlap_y(b) == 1.0
        assert a.overlap_area(b) == 1.0

    def test_disjoint_overlap_zero(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(5, 5, 1, 1)
        assert a.overlap_area(b) == 0.0
        assert not a.intersects(b)

    def test_touching_not_intersecting(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 1, 1)
        assert not a.intersects(b)
        assert a.touches_or_intersects(b)

    def test_contains_point(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(1, 1)
        assert r.contains_point(0, 0)
        assert not r.contains_point(3, 1)

    def test_contains_rect(self):
        outer = Rect(0, 0, 4, 4)
        assert outer.contains_rect(Rect(1, 1, 2, 2))
        assert not outer.contains_rect(Rect(3, 3, 2, 2))

    def test_centroid_distance(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(3, 4, 2, 2)
        assert a.centroid_distance(b) == pytest.approx(5.0)

    def test_gap_disjoint_orthogonal(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 0, 1, 1)
        assert a.gap(b) == pytest.approx(1.0)

    def test_gap_diagonal_euclidean(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 2, 1, 1)
        assert a.gap(b) == pytest.approx(math.sqrt(2.0))

    def test_gap_overlapping_zero(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 2, 2)
        assert a.gap(b) == 0.0

    def test_union(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 3, 1, 1)
        u = a.union(b)
        assert (u.x, u.y, u.x2, u.y2) == (0, 0, 3, 4)


class TestAdjacencyLength:
    def test_side_by_side(self):
        a = Rect(0, 0, 1, 2)
        b = Rect(1, 0.5, 1, 2)
        assert adjacency_length(a, b) == pytest.approx(1.5)

    def test_overlapping_uses_longer_axis(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 0.5, 2, 2)
        assert adjacency_length(a, b) == pytest.approx(1.5)

    def test_disjoint_zero(self):
        assert adjacency_length(Rect(0, 0, 1, 1), Rect(5, 5, 1, 1)) == 0.0

    def test_corner_touch(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 1, 1, 1)
        assert adjacency_length(a, b) == 0.0


class TestAggregates:
    def test_minimum_enclosing_rect(self):
        rects = [Rect(0, 0, 1, 1), Rect(3, 4, 2, 1)]
        mer = minimum_enclosing_rect(rects)
        assert (mer.x, mer.y, mer.x2, mer.y2) == (0, 0, 5, 5)

    def test_mer_empty_rejected(self):
        with pytest.raises(ValueError):
            minimum_enclosing_rect([])

    def test_total_polygon_area(self):
        assert total_polygon_area([Rect(0, 0, 2, 2), Rect(9, 9, 1, 3)]) == 7.0

    def test_utilization_perfect_tiling(self):
        rects = [Rect(0, 0, 1, 1), Rect(1, 0, 1, 1)]
        assert area_utilization(rects) == pytest.approx(1.0)

    def test_utilization_half(self):
        rects = [Rect(0, 0, 1, 1), Rect(3, 0, 1, 1)]
        assert area_utilization(rects) == pytest.approx(0.5)

    def test_pairwise_overlap_area(self):
        rects = [Rect(0, 0, 2, 2), Rect(1, 0, 2, 2), Rect(10, 10, 1, 1)]
        assert pairwise_overlap_area(rects) == pytest.approx(2.0)

    def test_has_overlaps_true(self):
        assert has_overlaps([Rect(0, 0, 2, 2), Rect(1, 1, 2, 2)])

    def test_has_overlaps_false_for_touching(self):
        assert not has_overlaps([Rect(0, 0, 1, 1), Rect(1, 0, 1, 1)])

    def test_has_overlaps_large_legal_set(self):
        rects = [Rect(i * 1.0, j * 1.0, 0.9, 0.9)
                 for i in range(10) for j in range(10)]
        assert not has_overlaps(rects)


class TestPackRows:
    def test_single_row(self):
        rects = [Rect(0, 0, 1, 1)] * 3
        packed = pack_rows(rects, row_width=5)
        assert [r.x for r in packed] == [0, 1, 2]
        assert all(r.y == 0 for r in packed)

    def test_wraps_to_new_shelf(self):
        rects = [Rect(0, 0, 2, 1)] * 3
        packed = pack_rows(rects, row_width=4)
        assert packed[2].y == 1.0
        assert packed[2].x == 0.0

    def test_no_overlaps_after_packing(self):
        rects = [Rect(0, 0, 1.5, 1.0), Rect(0, 0, 1.0, 2.0),
                 Rect(0, 0, 2.0, 0.5), Rect(0, 0, 0.5, 0.5)]
        packed = pack_rows(rects, row_width=3)
        assert not has_overlaps(packed)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            pack_rows([Rect(0, 0, 1, 1)], row_width=0)

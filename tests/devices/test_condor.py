"""Condor-class scale topologies and the lazy hop-distance guard."""

import networkx as nx
import numpy as np
import pytest

from repro.devices.topology import (
    LAZY_HOP_DISTANCE_MIN_NODES,
    SCALE_TOPOLOGY_ORDER,
    TOPOLOGY_FACTORIES,
    _LazyHopDistances,
    condor_sm_topology,
    condor_topology,
    eagle_topology,
    get_topology,
    heavy_hex_lattice,
)


class TestCondorGenerators:
    def test_condor_1121_counts(self):
        topo = condor_topology()
        assert topo.name == "condor-1121"
        assert topo.num_qubits == 1121
        assert topo.num_couplers == 1320
        assert nx.is_connected(topo.graph)

    def test_condor_sm_counts(self):
        topo = condor_sm_topology()
        assert topo.name == "condor-sm-433"
        assert topo.num_qubits == 433
        assert topo.num_couplers == 504

    def test_heavy_hex_degree_bound(self):
        # Heavy-hex lattices never exceed degree 3.
        for topo in (condor_sm_topology(), condor_topology()):
            assert topo.max_degree <= 3

    def test_registered_and_ordered(self):
        for name in SCALE_TOPOLOGY_ORDER:
            assert name in TOPOLOGY_FACTORIES
            assert get_topology(name).name == name

    def test_eagle_unchanged_by_generalisation(self):
        # The connector generalisation must leave the Eagle pattern
        # bit-for-bit: same counts, same coords, same edges.
        topo = eagle_topology()
        assert topo.num_qubits == 127
        assert topo.num_couplers == 144
        ref = heavy_hex_lattice(7, 15)
        assert topo.coords == ref.coords
        assert set(map(frozenset, topo.graph.edges)) == \
            set(map(frozenset, ref.graph.edges))
        # Spot-check canonical coords of the first long row.
        assert topo.coords[0] == (0.0, 0.0)
        assert topo.coords[13] == (13.0, 0.0)


class TestLazyHopDistances:
    def test_small_topologies_stay_eager(self):
        topo = get_topology("eagle-127")
        table = topo.hop_distances()
        assert isinstance(table, dict)
        assert len(table) == 127

    def test_large_topologies_go_lazy(self):
        topo = get_topology("condor-sm-433")
        assert topo.num_qubits > LAZY_HOP_DISTANCE_MIN_NODES
        table = topo.hop_distances()
        assert isinstance(table, _LazyHopDistances)
        assert len(table) == 433
        # Only requested rows are materialised.
        row = table[0]
        assert table._rows.keys() == {0}
        assert row[0] == 0

    def test_lazy_rows_match_networkx(self):
        topo = get_topology("condor-sm-433")
        table = topo.hop_distances()
        for src in (0, 17, 432):
            ref = dict(nx.single_source_shortest_path_length(topo.graph, src))
            assert table[src] == ref

    def test_lazy_rows_cached_and_shared(self):
        topo = get_topology("condor-1121")
        table = topo.hop_distances()
        assert table[5] is table[5]
        assert topo.hop_distances() is table

    def test_lazy_mapping_protocol(self):
        topo = get_topology("condor-sm-433")
        table = topo.hop_distances()
        assert set(table) == set(range(433))
        with pytest.raises(KeyError):
            table[9999]

    def test_subset_comprehension_access_pattern(self):
        # The initial_placement access pattern: a dict comprehension
        # over a mapping subset.
        topo = get_topology("condor-sm-433")
        table = topo.hop_distances()
        subset = [0, 1, 2, 28]
        sub = {s: table[s] for s in subset}
        assert all(sub[s][t] >= 0 for s in subset for t in subset)


class TestCondorMapping:
    def test_map_circuit_on_condor_sm(self):
        # The full mapping pipeline must work on a scale topology.  The
        # vectorized placement/router consult the dense hop matrix, so
        # the lazy per-source table stays completely untouched (it is
        # still served lazily to any other caller).
        from repro.circuits.library import get_benchmark
        from repro.circuits.mapping import map_circuit

        topo = get_topology("condor-sm-433")
        mapped = map_circuit(get_benchmark("bv-4"), topo, seed=3)
        assert mapped.physical_circuit.num_qubits == 433
        assert len(mapped.active_qubits) >= 4
        lazy = topo.hop_distances()
        assert isinstance(lazy, _LazyHopDistances)
        assert len(lazy._rows) == 0

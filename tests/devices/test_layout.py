"""Unit tests for the Layout container and its spatial queries."""

import itertools

import numpy as np
import pytest

from repro.devices.components import Qubit, Resonator
from repro.devices.layout import Layout


def make_layout(positions, freqs=None):
    """Layout of bare 1x1 qubits at given centres."""
    n = len(positions)
    freqs = freqs or [5.0] * n
    instances = [
        Qubit(name=f"q{i}", width=1.0, height=1.0, padding=0.25,
              frequency=freqs[i], index=i)
        for i in range(n)
    ]
    return Layout(instances=instances, positions=np.array(positions, float))


class TestConstruction:
    def test_shape_validation(self):
        q = Qubit.create(0, 5.0)
        with pytest.raises(ValueError):
            Layout(instances=[q], positions=np.zeros((2, 2)))

    def test_positions_coerced_to_float(self):
        layout = make_layout([(0, 0), (2, 0)])
        assert layout.positions.dtype == float


class TestIndexMaps:
    def test_qubit_indices(self):
        layout = make_layout([(0, 0), (3, 0)])
        assert layout.qubit_indices == {0: 0, 1: 1}

    def test_segment_groups(self):
        r = Resonator(name="r0", index=7, endpoints=(0, 1), frequency=6.5)
        segs = list(r.make_segments(0.3)[:3])
        layout = Layout(instances=segs, positions=np.zeros((3, 2)))
        assert layout.segment_indices_by_resonator == {7: [0, 1, 2]}

    def test_qubit_center(self):
        layout = make_layout([(1.5, 2.5)])
        assert layout.qubit_center(0) == (1.5, 2.5)


class TestGeometry:
    def test_amer_apoly_utilization(self):
        layout = make_layout([(0.5, 0.5), (2.5, 0.5)])
        assert layout.amer() == pytest.approx(3.0)
        assert layout.apoly() == pytest.approx(2.0)
        assert layout.utilization() == pytest.approx(2.0 / 3.0)

    def test_rect_and_padded_rect(self):
        layout = make_layout([(0, 0)])
        assert layout.rect(0).w == 1.0
        assert layout.padded_rect(0).w == 1.5

    def test_translated_to_origin(self):
        layout = make_layout([(10, 20), (12, 20)]).translated_to_origin()
        mer = layout.enclosing_rect()
        assert mer.x == pytest.approx(0.0)
        assert mer.y == pytest.approx(0.0)

    def test_moved_shares_instances(self):
        layout = make_layout([(0, 0)])
        moved = layout.moved(np.array([[5.0, 5.0]]))
        assert moved.instances is layout.instances
        assert moved.positions[0, 0] == 5.0
        assert layout.positions[0, 0] == 0.0


class TestNeighborPairs:
    def brute_force(self, layout, cutoff, padded=True):
        rects = layout.padded_rects() if padded else layout.rects()
        found = set()
        for i, j in itertools.combinations(range(layout.num_instances), 2):
            if rects[i].gap(rects[j]) <= cutoff:
                found.add((i, j))
        return found

    def test_matches_brute_force_random(self):
        rng = np.random.default_rng(7)
        positions = rng.uniform(0, 10, size=(40, 2))
        layout = make_layout(positions)
        for cutoff in (0.0, 0.5, 1.5):
            fast = {(i, j) for i, j, _ in layout.neighbor_pairs(cutoff)}
            assert fast == self.brute_force(layout, cutoff)

    def test_gap_values_match(self):
        layout = make_layout([(0, 0), (3, 0)])
        pairs = list(layout.neighbor_pairs(2.0))
        assert len(pairs) == 1
        i, j, gap = pairs[0]
        # padded rects are 1.5 wide -> gap = 3 - 1.5 = 1.5
        assert gap == pytest.approx(1.5)

    def test_bare_option(self):
        layout = make_layout([(0, 0), (1.2, 0)])
        padded = list(layout.neighbor_pairs(0.0, padded=True))
        bare = list(layout.neighbor_pairs(0.0, padded=False))
        assert len(padded) == 1   # padded rects overlap
        assert len(bare) == 0     # bare rects have a 0.2 gap

    def test_negative_cutoff_rejected(self):
        layout = make_layout([(0, 0)])
        with pytest.raises(ValueError):
            list(layout.neighbor_pairs(-1.0))

    def test_single_instance_no_pairs(self):
        layout = make_layout([(0, 0)])
        assert list(layout.neighbor_pairs(10.0)) == []

"""Unit tests for frequency-comb construction and conflict colouring."""

import itertools

import networkx as nx
import pytest

from repro.devices.frequency import (
    FrequencyPlan,
    assign_frequencies,
    frequency_levels,
    qubit_conflict_graph,
    resonator_conflict_graph,
)
from repro.devices.topology import (
    PAPER_TOPOLOGY_ORDER,
    get_topology,
    grid_topology,
)


class TestFrequencyLevels:
    def test_paper_qubit_band_gives_four_levels(self):
        levels = frequency_levels((4.8, 5.2), 0.1)
        assert len(levels) == 4
        assert levels[0] == pytest.approx(4.8)
        assert levels[-1] == pytest.approx(5.2)

    def test_paper_resonator_band_gives_ten_levels(self):
        levels = frequency_levels((6.0, 7.0), 0.1)
        assert len(levels) == 10

    def test_spacing_strictly_exceeds_threshold(self):
        for band in [(4.8, 5.2), (6.0, 7.0), (1.0, 1.35)]:
            levels = frequency_levels(band, 0.1)
            for a, b in zip(levels, levels[1:]):
                assert b - a > 0.1

    def test_narrow_band_single_level(self):
        levels = frequency_levels((5.0, 5.05), 0.1)
        assert levels == [pytest.approx(5.025)]

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            frequency_levels((5.2, 4.8), 0.1)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            frequency_levels((4.8, 5.2), 0.0)

    def test_levels_sorted(self):
        levels = frequency_levels((6.0, 7.0), 0.07)
        assert levels == sorted(levels)


class TestConflictGraphs:
    def test_qubit_conflicts_radius1_equals_topology(self):
        topo = grid_topology(3, 3)
        graph = qubit_conflict_graph(topo, radius=1)
        assert set(graph.edges) == set(topo.graph.edges)

    def test_qubit_conflicts_radius2_superset(self):
        topo = grid_topology(3, 3)
        g1 = qubit_conflict_graph(topo, radius=1)
        g2 = qubit_conflict_graph(topo, radius=2)
        assert set(g1.edges) <= set(g2.edges)
        assert g2.has_edge(0, 2)  # two hops apart on the grid

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            qubit_conflict_graph(grid_topology(2, 2), radius=0)

    def test_resonator_conflicts_share_qubit(self):
        topo = grid_topology(2, 2)
        graph = resonator_conflict_graph(topo)
        assert graph.has_edge((0, 1), (0, 2))     # share qubit 0
        assert not graph.has_edge((0, 1), (2, 3))  # disjoint endpoints

    def test_resonator_conflict_is_line_graph(self):
        topo = grid_topology(3, 3)
        graph = resonator_conflict_graph(topo)
        reference = nx.line_graph(topo.graph)
        assert graph.number_of_edges() == reference.number_of_edges()


class TestAssignment:
    @pytest.mark.parametrize("name", PAPER_TOPOLOGY_ORDER)
    def test_paper_topologies_conflict_free(self, name):
        plan = assign_frequencies(get_topology(name))
        assert plan.is_conflict_free

    @pytest.mark.parametrize("name", PAPER_TOPOLOGY_ORDER)
    def test_connected_qubits_detuned(self, name):
        topo = get_topology(name)
        plan = assign_frequencies(topo)
        for u, v in topo.graph.edges:
            detuning = abs(plan.qubit_freq_ghz[u] - plan.qubit_freq_ghz[v])
            assert detuning > 0.1, f"qubits {u},{v} resonant"

    @pytest.mark.parametrize("name", ["grid-25", "falcon-27"])
    def test_resonators_sharing_qubit_detuned(self, name):
        topo = get_topology(name)
        plan = assign_frequencies(topo)
        for e1, e2 in itertools.combinations(topo.coupling_map, 2):
            if set(e1) & set(e2):
                detuning = abs(plan.resonator_freq_ghz[e1]
                               - plan.resonator_freq_ghz[e2])
                assert detuning > 0.1, f"resonators {e1},{e2} resonant"

    def test_frequencies_inside_bands(self):
        plan = assign_frequencies(get_topology("grid-25"))
        assert all(4.8 <= f <= 5.2 for f in plan.qubit_freq_ghz.values())
        assert all(6.0 <= f <= 7.0 for f in plan.resonator_freq_ghz.values())

    def test_deterministic(self):
        topo = get_topology("falcon-27")
        p1 = assign_frequencies(topo)
        p2 = assign_frequencies(topo)
        assert p1.qubit_freq_ghz == p2.qubit_freq_ghz
        assert p1.resonator_freq_ghz == p2.resonator_freq_ghz

    def test_frequency_reuse_happens(self):
        # 4 levels for 25+ qubits forces reuse — the placer's raison d'etre.
        plan = assign_frequencies(get_topology("grid-25"))
        assert len(set(plan.qubit_freq_ghz.values())) < 25

    def test_radius2_requires_more_levels(self):
        # Distance-2 colouring of a grid needs 5 colours; only 4 levels
        # exist, so conflicts must be reported (not silently dropped).
        plan = assign_frequencies(get_topology("grid-25"),
                                  qubit_conflict_radius=2)
        assert not plan.is_conflict_free
        assert plan.unresolved_qubit_pairs

    def test_plan_detuning_helper(self):
        plan = assign_frequencies(grid_topology(2, 2))
        assert plan.detuning_ghz(5.0, 5.2) == pytest.approx(0.2)

"""Unit tests for the quantum component model."""

import math

import pytest

from repro import constants
from repro.devices.components import (
    Instance,
    Qubit,
    Resonator,
    ResonatorSegment,
    same_resonator,
)


class TestInstance:
    def test_padded_dimensions(self):
        inst = Instance(name="i", width=0.4, height=0.4, padding=0.1,
                        frequency=5.0)
        assert inst.padded_width == pytest.approx(0.6)
        assert inst.padded_height == pytest.approx(0.6)
        assert inst.padded_area == pytest.approx(0.36)

    def test_rect_at_centering(self):
        inst = Instance(name="i", width=0.4, height=0.2, padding=0.0,
                        frequency=5.0)
        r = inst.rect_at(1.0, 2.0)
        assert r.center == (1.0, 2.0)
        assert (r.w, r.h) == (0.4, 0.2)

    def test_padded_rect_at(self):
        inst = Instance(name="i", width=0.4, height=0.4, padding=0.1,
                        frequency=5.0)
        r = inst.padded_rect_at(0.0, 0.0)
        assert (r.w, r.h) == (pytest.approx(0.6), pytest.approx(0.6))

    def test_resonance_threshold(self):
        a = Instance(name="a", width=1, height=1, padding=0, frequency=5.0)
        b = Instance(name="b", width=1, height=1, padding=0, frequency=5.09)
        c = Instance(name="c", width=1, height=1, padding=0, frequency=5.2)
        assert a.is_resonant_with(b)
        assert not a.is_resonant_with(c)


class TestQubit:
    def test_create_defaults(self):
        q = Qubit.create(index=3, frequency=5.1)
        assert q.name == "q3"
        assert q.width == constants.QUBIT_SIZE_MM
        assert q.padding == constants.QUBIT_PADDING_MM
        assert q.frequency == 5.1
        assert q.index == 3

    def test_paper_pocket_size(self):
        q = Qubit.create(index=0, frequency=5.0)
        # 400 x 400 um^2 pocket (Sec. V-C).
        assert q.area == pytest.approx(0.16)

    def test_padded_footprint(self):
        q = Qubit.create(index=0, frequency=5.0)
        assert q.padded_width == pytest.approx(1.2)


class TestResonator:
    def make(self, freq=6.5):
        return Resonator(name="r0", index=0, endpoints=(0, 1), frequency=freq)

    def test_length_from_frequency(self):
        r = self.make(6.0)
        assert r.length_mm == pytest.approx(130.0 / 12.0)

    def test_paper_length_band(self):
        # 6.0-7.0 GHz -> 10.8 down to 9.2 mm (Sec. V-C).
        assert self.make(6.0).length_mm == pytest.approx(10.83, abs=0.01)
        assert self.make(7.0).length_mm == pytest.approx(9.29, abs=0.01)

    def test_reserved_area(self):
        r = self.make(6.5)
        assert r.reserved_area == pytest.approx(r.length_mm * 0.1)

    def test_segment_count_ceiling(self):
        r = self.make(6.5)
        lb = 0.3
        expected = math.ceil(r.reserved_area / (lb * lb))
        assert r.segment_count(lb) == expected

    def test_segment_count_paper_scale(self):
        # ~11-12 segments per resonator at lb = 0.3 (Table II model).
        assert 10 <= self.make(6.5).segment_count(0.3) <= 13

    def test_segment_count_rejects_bad_size(self):
        with pytest.raises(ValueError):
            self.make().segment_count(0.0)

    def test_make_segments(self):
        r = self.make(6.5)
        segs = r.make_segments(0.3)
        assert len(segs) == r.segment_count(0.3)
        assert all(s.width == 0.3 and s.height == 0.3 for s in segs)
        assert all(s.frequency == r.frequency for s in segs)
        assert all(s.resonator_index == r.index for s in segs)
        assert [s.segment_index for s in segs] == list(range(len(segs)))
        assert segs[0].name == "r0.s0"


class TestSameResonator:
    def test_siblings(self):
        r = Resonator(name="r1", index=1, endpoints=(0, 1), frequency=6.5)
        s1, s2 = r.make_segments(0.3)[:2]
        assert same_resonator(s1, s2)

    def test_different_resonators(self):
        a = Resonator(name="r1", index=1, endpoints=(0, 1), frequency=6.5)
        b = Resonator(name="r2", index=2, endpoints=(1, 2), frequency=6.6)
        assert not same_resonator(a.make_segments(0.3)[0],
                                  b.make_segments(0.3)[0])

    def test_qubit_never_sibling(self):
        r = Resonator(name="r1", index=1, endpoints=(0, 1), frequency=6.5)
        q = Qubit.create(index=1, frequency=5.0)
        assert not same_resonator(q, r.make_segments(0.3)[0])

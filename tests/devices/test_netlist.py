"""Unit tests for netlist construction."""

import pytest

from repro.devices import build_netlist, grid_topology
from repro.devices.frequency import assign_frequencies
from repro.devices.netlist import QuantumNetlist


@pytest.fixture(scope="module")
def netlist():
    return build_netlist(grid_topology(3, 3))


class TestBuildNetlist:
    def test_counts(self, netlist):
        assert len(netlist.qubits) == 9
        assert len(netlist.resonators) == 12
        assert netlist.num_components == 21

    def test_qubit_indices_match_topology(self, netlist):
        assert [q.index for q in netlist.qubits] == list(range(9))

    def test_resonator_endpoints_match_coupling_map(self, netlist):
        assert [r.endpoints for r in netlist.resonators] == \
            netlist.topology.coupling_map

    def test_frequencies_follow_plan(self, netlist):
        for q in netlist.qubits:
            assert q.frequency == netlist.plan.qubit_freq_ghz[q.index]
        for r in netlist.resonators:
            assert r.frequency == netlist.plan.resonator_freq_ghz[r.endpoints]

    def test_explicit_plan_respected(self):
        topo = grid_topology(2, 2)
        plan = assign_frequencies(topo)
        netlist = build_netlist(topo, plan=plan)
        assert netlist.plan is plan

    def test_custom_geometry(self):
        netlist = build_netlist(grid_topology(2, 2), qubit_size_mm=0.5,
                                qubit_padding_mm=0.2, resonator_pitch_mm=0.15)
        assert netlist.qubits[0].width == 0.5
        assert netlist.qubits[0].padding == 0.2
        assert netlist.resonators[0].pitch == 0.15


class TestLookups:
    def test_qubit_lookup(self, netlist):
        assert netlist.qubit(4).index == 4

    def test_resonator_lookup_unordered(self, netlist):
        r = netlist.resonator(1, 0)
        assert r.endpoints == (0, 1)

    def test_resonator_lookup_missing(self, netlist):
        with pytest.raises(KeyError):
            netlist.resonator(0, 8)

    def test_resonators_of_qubit(self, netlist):
        attached = netlist.resonators_of_qubit(4)
        assert len(attached) == 4  # grid centre has degree 4
        assert all(4 in r.endpoints for r in attached)

    def test_resonator_by_edge(self, netlist):
        mapping = netlist.resonator_by_edge
        assert set(mapping) == set(netlist.topology.coupling_map)


class TestAggregates:
    def test_total_qubit_area(self, netlist):
        assert netlist.total_qubit_area() == pytest.approx(9 * 0.16)

    def test_total_resonator_area(self, netlist):
        expected = sum(r.reserved_area for r in netlist.resonators)
        assert netlist.total_resonator_area() == pytest.approx(expected)

    def test_max_component_frequency(self, netlist):
        expected = max(r.frequency for r in netlist.resonators)
        assert netlist.max_component_frequency_ghz() == expected


class TestValidation:
    def test_wrong_qubit_count_rejected(self, netlist):
        with pytest.raises(ValueError):
            QuantumNetlist(topology=netlist.topology, plan=netlist.plan,
                           qubits=netlist.qubits[:-1],
                           resonators=netlist.resonators)

    def test_wrong_resonator_count_rejected(self, netlist):
        with pytest.raises(ValueError):
            QuantumNetlist(topology=netlist.topology, plan=netlist.plan,
                           qubits=netlist.qubits,
                           resonators=netlist.resonators[:-1])

"""Unit tests for the fabrication frequency-disorder model."""

import numpy as np
import pytest

from repro import constants
from repro.devices import build_netlist, grid_topology
from repro.devices.disorder import (
    apply_frequency_disorder,
    disordered_layout,
    scatter_frequencies,
)


@pytest.fixture(scope="module")
def netlist():
    return build_netlist(grid_topology(3, 3))


class TestScatter:
    def test_zero_sigma_identity(self):
        values = np.array([5.0, 5.1])
        rng = np.random.default_rng(0)
        out = scatter_frequencies(values, 0.0, (4.8, 5.2), rng)
        assert np.allclose(out, values)

    def test_clipped_to_band(self):
        values = np.array([4.8, 5.2])
        rng = np.random.default_rng(1)
        out = scatter_frequencies(values, 0.5, (4.8, 5.2), rng)
        assert np.all(out >= 4.8) and np.all(out <= 5.2)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            scatter_frequencies(np.array([5.0]), -0.1, (4.8, 5.2),
                                np.random.default_rng(0))


class TestApplyDisorder:
    def test_original_untouched(self, netlist):
        before = [q.frequency for q in netlist.qubits]
        apply_frequency_disorder(netlist, seed=3)
        assert [q.frequency for q in netlist.qubits] == before

    def test_frequencies_move(self, netlist):
        # Band-edge qubits clip back to the edge for one noise sign, so
        # only interior-level qubits are guaranteed to move.
        noisy = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.03,
                                         seed=3)
        lo, hi = constants.QUBIT_FREQ_BAND_GHZ
        for before, after in zip(netlist.qubits, noisy.qubits):
            if lo < before.frequency < hi:
                assert after.frequency != before.frequency

    def test_band_respected(self, netlist):
        noisy = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.2,
                                         sigma_resonator_ghz=0.2, seed=9)
        for q in noisy.qubits:
            assert constants.QUBIT_FREQ_BAND_GHZ[0] <= q.frequency <= \
                constants.QUBIT_FREQ_BAND_GHZ[1]
        for r in noisy.resonators:
            assert constants.RESONATOR_FREQ_BAND_GHZ[0] <= r.frequency <= \
                constants.RESONATOR_FREQ_BAND_GHZ[1]

    def test_seed_determinism(self, netlist):
        a = apply_frequency_disorder(netlist, seed=4)
        b = apply_frequency_disorder(netlist, seed=4)
        c = apply_frequency_disorder(netlist, seed=5)
        assert [q.frequency for q in a.qubits] == \
            [q.frequency for q in b.qubits]
        assert [q.frequency for q in a.qubits] != \
            [q.frequency for q in c.qubits]

    def test_plan_mirrors_components(self, netlist):
        noisy = apply_frequency_disorder(netlist, seed=6)
        for q in noisy.qubits:
            assert noisy.plan.qubit_freq_ghz[q.index] == q.frequency
        for r in noisy.resonators:
            assert noisy.plan.resonator_freq_ghz[r.endpoints] == r.frequency

    def test_topology_shared(self, netlist):
        noisy = apply_frequency_disorder(netlist, seed=7)
        assert noisy.topology is netlist.topology


class TestDisorderedLayout:
    def test_positions_frozen(self, grid9_placed):
        noisy = disordered_layout(grid9_placed.layout, seed=2)
        assert np.allclose(noisy.positions, grid9_placed.layout.positions)

    def test_strategy_tagged(self, grid9_placed):
        noisy = disordered_layout(grid9_placed.layout, seed=2)
        assert noisy.strategy == "qplacer+disorder"

    def test_instance_frequencies_updated(self, grid9_placed):
        noisy = disordered_layout(grid9_placed.layout,
                                  sigma_qubit_ghz=0.05, seed=2)
        moved = sum(
            1 for a, b in zip(grid9_placed.layout.instances, noisy.instances)
            if a.frequency != b.frequency)
        assert moved > 0

    def test_segments_track_their_resonator(self, grid9_placed):
        noisy = disordered_layout(grid9_placed.layout, seed=2)
        freq_by_res = {r.index: r.frequency
                       for r in noisy.netlist.resonators}
        for inst in noisy.instances:
            if hasattr(inst, "resonator_index") and inst.resonator_index >= 0:
                assert inst.frequency == freq_by_res[inst.resonator_index]

    def test_can_create_hotspots(self, grid9_placed):
        """Large scatter must be able to break the designed margins."""
        from repro.crosstalk import hotspot_report
        worst = 0.0
        for seed in range(6):
            noisy = disordered_layout(grid9_placed.layout,
                                      sigma_qubit_ghz=0.05,
                                      sigma_resonator_ghz=0.05, seed=seed)
            worst = max(worst, hotspot_report(noisy).ph_percent)
        assert worst > 0.0

    def test_requires_netlist(self):
        from repro.devices.components import Qubit
        from repro.devices.layout import Layout
        lay = Layout(instances=[Qubit.create(0, 5.0)],
                     positions=np.zeros((1, 2)))
        with pytest.raises(ValueError):
            disordered_layout(lay)


class TestDisorderProperties:
    """Property-style guarantees of the disorder model (ISSUE 6)."""

    def test_seeded_determinism_across_calls(self, netlist):
        """Same seed -> identical netlist, element for element."""
        a = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.03,
                                     sigma_resonator_ghz=0.02, seed=11)
        b = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.03,
                                     sigma_resonator_ghz=0.02, seed=11)
        assert [q.frequency for q in a.qubits] \
            == [q.frequency for q in b.qubits]
        assert [r.frequency for r in a.resonators] \
            == [r.frequency for r in b.resonators]
        c = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.03,
                                     sigma_resonator_ghz=0.02, seed=12)
        assert [q.frequency for q in a.qubits] \
            != [q.frequency for q in c.qubits]

    def test_zero_disorder_is_the_identity(self, netlist):
        out = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.0,
                                       sigma_resonator_ghz=0.0, seed=5)
        assert [q.frequency for q in out.qubits] \
            == [q.frequency for q in netlist.qubits]
        assert [r.frequency for r in out.resonators] \
            == [r.frequency for r in netlist.resonators]

    def test_disorder_magnitude_monotonicity(self, netlist):
        """More sigma -> more mean displacement, averaged over seeds.

        Clipping at the band edges caps individual deviations, so the
        property is statistical: the seed-averaged mean |delta f| must
        be non-decreasing across an increasing sigma ladder.
        """
        targets = np.array([q.frequency for q in netlist.qubits])
        sigmas = (0.005, 0.02, 0.08)
        means = []
        for sigma in sigmas:
            deltas = []
            for seed in range(8):
                noisy = apply_frequency_disorder(
                    netlist, sigma_qubit_ghz=sigma,
                    sigma_resonator_ghz=0.0, seed=seed)
                real = np.array([q.frequency for q in noisy.qubits])
                deltas.append(np.abs(real - targets).mean())
            means.append(float(np.mean(deltas)))
        assert means[0] < means[1] < means[2]


class TestStreamIndependence:
    """The RNG-decoupling fix: families draw from independent streams."""

    def test_qubit_sigma_does_not_move_resonators(self, netlist):
        a = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.01,
                                     sigma_resonator_ghz=0.02, seed=3)
        b = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.09,
                                     sigma_resonator_ghz=0.02, seed=3)
        assert [r.frequency for r in a.resonators] \
            == [r.frequency for r in b.resonators]
        assert [q.frequency for q in a.qubits] \
            != [q.frequency for q in b.qubits]

    def test_legacy_stream_reproduces_the_shared_rng(self, netlist):
        """legacy_stream=True must replay the historical single-stream
        draw order (qubits first, then resonators, one rng)."""
        noisy = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.03,
                                         sigma_resonator_ghz=0.02, seed=7,
                                         legacy_stream=True)
        rng = np.random.default_rng(7)
        qubit_ref = scatter_frequencies(
            np.array([q.frequency for q in netlist.qubits]), 0.03,
            constants.QUBIT_FREQ_BAND_GHZ, rng)
        resonator_ref = scatter_frequencies(
            np.array([r.frequency for r in netlist.resonators]), 0.02,
            constants.RESONATOR_FREQ_BAND_GHZ, rng)
        assert [q.frequency for q in noisy.qubits] == qubit_ref.tolist()
        assert [r.frequency for r in noisy.resonators] \
            == resonator_ref.tolist()

    def test_default_differs_from_legacy(self, netlist):
        new = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.03,
                                       seed=7)
        old = apply_frequency_disorder(netlist, sigma_qubit_ghz=0.03,
                                       seed=7, legacy_stream=True)
        assert [q.frequency for q in new.qubits] \
            != [q.frequency for q in old.qubits]


class TestSampleDisorderFrequencies:
    def test_seed_sequence_determinism(self, netlist):
        from repro.devices import sample_disorder_frequencies
        qt = np.array([q.frequency for q in netlist.qubits])
        rt = np.array([r.frequency for r in netlist.resonators])
        a = sample_disorder_frequencies(qt, rt, 0.03, 0.02,
                                        np.random.SeedSequence(5))
        b = sample_disorder_frequencies(qt, rt, 0.03, 0.02,
                                        np.random.SeedSequence(5))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])


class TestNetlistWithFrequencies:
    def test_length_mismatch_rejected(self, netlist):
        from repro.devices import netlist_with_frequencies
        good_q = np.array([q.frequency for q in netlist.qubits])
        good_r = np.array([r.frequency for r in netlist.resonators])
        with pytest.raises(ValueError):
            netlist_with_frequencies(netlist, good_q[:-1], good_r)
        with pytest.raises(ValueError):
            netlist_with_frequencies(netlist, good_q, good_r[:-1])

    def test_identity_frequencies_round_trip(self, netlist):
        from repro.devices import netlist_with_frequencies
        out = netlist_with_frequencies(
            netlist, np.array([q.frequency for q in netlist.qubits]),
            np.array([r.frequency for r in netlist.resonators]))
        assert [q.frequency for q in out.qubits] \
            == [q.frequency for q in netlist.qubits]
        assert out.topology is netlist.topology


class TestStrategyTag:
    def test_suffix_applied_once(self):
        from repro.devices.disorder import disorder_strategy_tag
        assert disorder_strategy_tag("qplacer") == "qplacer+disorder"
        assert disorder_strategy_tag("qplacer+disorder") \
            == "qplacer+disorder"

    def test_repeated_disordered_layouts_do_not_stack(self, grid9_placed):
        once = disordered_layout(grid9_placed.layout, seed=1)
        twice = disordered_layout(once, seed=2)
        assert twice.strategy == "qplacer+disorder"

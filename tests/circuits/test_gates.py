"""Unit tests for the gate IR."""

import math

import pytest

from repro.circuits.gates import (
    BASIS_GATES,
    Gate,
    barrier,
    cx,
    cz,
    h,
    rx,
    ry,
    rz,
    rzz,
    swap,
    sx,
    x,
)


class TestConstruction:
    def test_constructors(self):
        assert rz(0, 0.5) == Gate("rz", (0,), (0.5,))
        assert cz(0, 1) == Gate("cz", (0, 1))
        assert rzz(0, 1, 0.3).params == (0.3,)

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError, match="unknown gate"):
            Gate("t", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Gate("cz", (0,))
        with pytest.raises(ValueError):
            Gate("x", (0, 1))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            cz(1, 1)

    def test_parametric_needs_param(self):
        with pytest.raises(ValueError):
            Gate("rz", (0,))

    def test_clifford_rejects_params(self):
        with pytest.raises(ValueError):
            Gate("x", (0,), (0.1,))

    def test_barrier_any_width(self):
        b = barrier(0, 1, 2)
        assert b.qubits == (0, 1, 2)
        with pytest.raises(ValueError):
            Gate("barrier", ())


class TestProperties:
    def test_two_qubit_flags(self):
        assert cz(0, 1).is_two_qubit
        assert cx(0, 1).is_two_qubit
        assert not x(0).is_two_qubit

    def test_basis_membership(self):
        assert rz(0, 1.0).is_basis
        assert sx(0).is_basis
        assert not h(0).is_basis
        assert not swap(0, 1).is_basis

    def test_basis_gate_set(self):
        assert BASIS_GATES == {"rz", "sx", "x", "cz"}

    def test_params_are_floats(self):
        assert isinstance(rx(0, 1).params[0], float)


class TestRemap:
    def test_remap_dict(self):
        g = cx(0, 1).remapped({0: 5, 1: 7})
        assert g.qubits == (5, 7)
        assert g.name == "cx"

    def test_remap_preserves_params(self):
        g = ry(2, 0.7).remapped({2: 0})
        assert g.params == (0.7,)

    def test_gates_hashable_and_frozen(self):
        g = cz(0, 1)
        assert hash(g) == hash(cz(0, 1))
        with pytest.raises(AttributeError):
            g.name = "cx"

"""Unit tests for the circuit container and scheduling."""

import pytest

from repro import constants
from repro.circuits.circuit import QuantumCircuit


class TestConstruction:
    def test_requires_positive_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_fluent_builders(self):
        qc = QuantumCircuit(2).h(0).cx(0, 1).rz(1, 0.3)
        assert qc.size == 3

    def test_out_of_range_qubit_rejected(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.x(2)

    def test_extend(self):
        src = QuantumCircuit(2).h(0).cz(0, 1)
        dst = QuantumCircuit(2).extend(src.gates)
        assert dst.size == 2


class TestStatistics:
    def make(self):
        return QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).rz(2, 0.5).barrier()

    def test_count_ops_excludes_barriers(self):
        ops = self.make().count_ops()
        assert ops == {"h": 1, "cx": 2, "rz": 1}

    def test_two_qubit_count(self):
        assert self.make().two_qubit_gate_count == 2

    def test_used_qubits(self):
        qc = QuantumCircuit(5).h(0).cx(0, 3)
        assert qc.used_qubits() == {0, 3}

    def test_used_pairs_canonical(self):
        qc = QuantumCircuit(3).cx(2, 0).cz(0, 2)
        assert qc.used_pairs() == {(0, 2)}

    def test_gate_counts_per_qubit(self):
        counts = self.make().gate_counts_per_qubit()
        assert counts[1]["cx"] == 2
        assert counts[0]["h"] == 1

    def test_depth_serial_vs_parallel(self):
        serial = QuantumCircuit(1).x(0).x(0).x(0)
        parallel = QuantumCircuit(3).x(0).x(1).x(2)
        assert serial.depth() == 3
        assert parallel.depth() == 1

    def test_depth_two_qubit_sync(self):
        qc = QuantumCircuit(2).x(0).cz(0, 1).x(1)
        assert qc.depth() == 3


class TestSchedule:
    def test_rz_is_free(self):
        qc = QuantumCircuit(1).rz(0, 1.0).rz(0, 2.0)
        assert qc.asap_schedule().total_ns == 0.0

    def test_single_qubit_duration(self):
        qc = QuantumCircuit(1).x(0).sx(0)
        sched = qc.asap_schedule()
        assert sched.total_ns == pytest.approx(2 * constants.SINGLE_QUBIT_GATE_NS)

    def test_two_qubit_duration(self):
        qc = QuantumCircuit(2).cz(0, 1)
        assert qc.asap_schedule().total_ns == pytest.approx(
            constants.TWO_QUBIT_GATE_NS)

    def test_parallel_gates_overlap(self):
        qc = QuantumCircuit(2).x(0).x(1)
        assert qc.asap_schedule().total_ns == pytest.approx(
            constants.SINGLE_QUBIT_GATE_NS)

    def test_idle_time(self):
        qc = QuantumCircuit(2).cz(0, 1).x(0).x(0)
        sched = qc.asap_schedule()
        assert sched.idle_ns(1) == pytest.approx(2 * constants.SINGLE_QUBIT_GATE_NS)
        assert sched.idle_ns(0) == 0.0

    def test_barrier_synchronises(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.barrier()
        qc.x(1)
        sched = qc.asap_schedule()
        assert sched.total_ns == pytest.approx(2 * constants.SINGLE_QUBIT_GATE_NS)

    def test_custom_durations(self):
        qc = QuantumCircuit(2).x(0).cz(0, 1)
        sched = qc.asap_schedule(single_qubit_ns=10, two_qubit_ns=100)
        assert sched.total_ns == pytest.approx(110)


class TestTransforms:
    def test_remapped(self):
        qc = QuantumCircuit(2).cx(0, 1)
        phys = qc.remapped({0: 4, 1: 2}, num_qubits=5)
        assert phys.gates[0].qubits == (4, 2)
        assert phys.num_qubits == 5

    def test_copy_independent(self):
        qc = QuantumCircuit(1).x(0)
        dup = qc.copy()
        dup.x(0)
        assert qc.size == 1 and dup.size == 2

    def test_repr(self):
        qc = QuantumCircuit(2, name="demo").h(0)
        assert "demo" in repr(qc)

"""Identity of the bincount gate statistics vs the Gate-list loops.

The columnar scans (``ArrayCircuit.used_qubits/used_pairs/
two_qubit_counts/single_qubit_counts/gate_counts_per_qubit``) must be
value-identical to iterating the decoded circuit's ``Gate`` objects —
that is what lets :class:`~repro.circuits.mapping.MappedCircuit`
consumers (the Eq. 15 gate factor) never materialise gate lists.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.circuits.batch import ArrayCircuit, transpile_arrays
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import PAPER_BENCHMARKS, get_benchmark
from repro.circuits.mapping import MappedCircuit, map_circuit
from repro.devices.topology import get_topology


def _loop_two_qubit_counts(circuit: QuantumCircuit):
    counts = Counter()
    for g in circuit.gates:
        if g.is_two_qubit:
            a, b = g.qubits
            counts[(min(a, b), max(a, b))] += 1
    return dict(counts)


def _loop_single_qubit_counts(circuit: QuantumCircuit):
    counts = Counter()
    for g in circuit.gates:
        if g.name in ("sx", "x"):
            counts[g.qubits[0]] += 1
    return dict(counts)


def _assert_all_counts_identical(arrays: ArrayCircuit,
                                 circuit: QuantumCircuit) -> None:
    assert arrays.used_qubits() == circuit.used_qubits()
    assert arrays.used_pairs() == circuit.used_pairs()
    assert arrays.two_qubit_counts() == _loop_two_qubit_counts(circuit)
    assert arrays.single_qubit_counts() == _loop_single_qubit_counts(circuit)
    assert arrays.gate_counts_per_qubit() == circuit.gate_counts_per_qubit()
    assert arrays.timed_gate_totals() == (
        sum(_loop_single_qubit_counts(circuit).values()),
        sum(_loop_two_qubit_counts(circuit).values()))


class TestArrayCircuitCounts:
    @pytest.mark.parametrize("bench", PAPER_BENCHMARKS)
    def test_identity_on_paper_benchmarks(self, bench):
        circuit = get_benchmark(bench)
        arrays = ArrayCircuit.from_circuit(circuit)
        _assert_all_counts_identical(arrays, circuit)

    @pytest.mark.parametrize("bench", ["bv-16", "qaoa-9"])
    def test_identity_after_transpile(self, bench):
        arrays = transpile_arrays(
            ArrayCircuit.from_circuit(get_benchmark(bench)))
        _assert_all_counts_identical(arrays, arrays.to_circuit())

    def test_empty_circuit(self):
        arrays = ArrayCircuit.empty(5)
        assert arrays.used_qubits() == set()
        assert arrays.used_pairs() == set()
        assert arrays.two_qubit_counts() == {}
        assert arrays.single_qubit_counts() == {}
        assert arrays.gate_counts_per_qubit() == {}
        assert arrays.timed_gate_totals() == (0, 0)

    def test_ir_gates_with_every_code(self):
        """Mixed IR codes (not just the basis) count identically."""
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 1).rzz(1, 2, 0.5).swap(2, 3).rx(3, 0.25)
        circuit.ry(0, 0.75).rz(1, 0.1).sx(2).x(3).cz(0, 3)
        arrays = ArrayCircuit.from_circuit(circuit)
        _assert_all_counts_identical(arrays, circuit)


class TestMappedCircuitCounts:
    @pytest.fixture(scope="class")
    def mapped(self):
        return map_circuit(get_benchmark("bv-16"),
                           get_topology("falcon-27"), seed=2)

    def test_map_circuit_carries_arrays(self, mapped):
        assert mapped.physical_arrays is not None
        assert mapped.physical_arrays.size == len(
            mapped.physical_circuit.gates)

    def test_array_backed_matches_loop_backed(self, mapped):
        loop_backed = MappedCircuit(
            physical_circuit=mapped.physical_circuit,
            topology=mapped.topology,
            initial_mapping=mapped.initial_mapping,
            final_mapping=mapped.final_mapping,
            swap_count=mapped.swap_count,
            schedule=mapped.schedule)
        assert loop_backed.physical_arrays is None
        assert mapped.active_qubits == loop_backed.active_qubits
        assert mapped.active_edges == loop_backed.active_edges
        assert mapped.two_qubit_counts() == loop_backed.two_qubit_counts()
        assert (mapped.single_qubit_counts()
                == loop_backed.single_qubit_counts())
        assert mapped.timed_gate_totals() == loop_backed.timed_gate_totals()

    def test_fidelity_identical_with_and_without_arrays(self, mapped):
        from repro.analysis.experiments import build_suite
        from repro.crosstalk.fidelity import estimate_program_fidelity

        suite = build_suite("falcon-27", strategies=("qplacer",))
        layout = suite.layouts["qplacer"]
        loop_backed = MappedCircuit(
            physical_circuit=mapped.physical_circuit,
            topology=mapped.topology,
            initial_mapping=mapped.initial_mapping,
            final_mapping=mapped.final_mapping,
            swap_count=mapped.swap_count,
            schedule=mapped.schedule)
        a = estimate_program_fidelity(layout, mapped)
        b = estimate_program_fidelity(layout, loop_backed)
        assert a == b

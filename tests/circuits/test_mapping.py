"""Unit tests for subset sampling, placement, and SWAP routing."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.library import get_benchmark
from repro.circuits.mapping import (
    evaluation_mappings,
    initial_placement,
    interaction_weights,
    map_circuit,
    route,
    sample_connected_subset,
)
from repro.devices.topology import get_topology, grid_topology

from .util_sim import circuit_unitary, unitaries_equal_up_to_phase


@pytest.fixture(scope="module")
def grid():
    return grid_topology(4, 4)


class TestSubsetSampling:
    def test_size_and_membership(self, grid):
        subset = sample_connected_subset(grid, 5, seed=3)
        assert len(subset) == 5
        assert all(0 <= q < 16 for q in subset)

    def test_connected(self, grid):
        import networkx as nx
        for seed in range(10):
            subset = sample_connected_subset(grid, 6, seed=seed)
            assert nx.is_connected(grid.graph.subgraph(subset))

    def test_deterministic(self, grid):
        assert sample_connected_subset(grid, 6, seed=5) == \
            sample_connected_subset(grid, 6, seed=5)

    def test_seeds_vary_start(self, grid):
        subsets = {tuple(sample_connected_subset(grid, 4, seed=s))
                   for s in range(12)}
        assert len(subsets) > 3

    def test_coverage_across_seeds(self, grid):
        # The paper's 50-subset protocol must cover the whole chip —
        # guaranteed now that start nodes cycle one fixed permutation.
        covered = set()
        for seed in range(50):
            covered.update(sample_connected_subset(grid, 4, seed=seed))
        assert covered == set(range(16))

    def test_one_seed_cycle_covers_chip(self, grid):
        # n seeds = one full cycle of the protocol start order, so the
        # union covers the chip even with the smallest subsets.
        covered = set()
        for seed in range(16):
            covered.update(sample_connected_subset(grid, 1, seed=seed))
        assert covered == set(range(16))

    def test_legacy_start_flag_reproduces_seed_behaviour(self, grid):
        # Goldens recorded from the seed implementation, where the start
        # permutation was (incorrectly) re-derived per subset seed.
        assert sample_connected_subset(grid, 5, seed=3,
                                       legacy_start=True) == [0, 1, 2, 4, 5]
        assert sample_connected_subset(grid, 6, seed=7,
                                       legacy_start=True) == \
            [3, 5, 6, 7, 10, 14]
        falcon = get_topology("falcon-27")
        assert sample_connected_subset(falcon, 9, seed=11,
                                       legacy_start=True) == \
            [1, 2, 3, 4, 5, 8, 9, 11, 14]

    def test_size_validation(self, grid):
        with pytest.raises(ValueError):
            sample_connected_subset(grid, 0)
        with pytest.raises(ValueError):
            sample_connected_subset(grid, 17)


class TestInitialPlacement:
    def test_bijective(self, grid):
        circuit = get_benchmark("bv-4")
        subset = sample_connected_subset(grid, 4, seed=0)
        mapping = initial_placement(circuit, grid, subset)
        assert sorted(mapping) == [0, 1, 2, 3]
        assert sorted(mapping.values()) == sorted(subset)

    def test_interacting_pairs_close(self, grid):
        circuit = QuantumCircuit(4).cx(0, 1).cx(0, 1).cx(0, 1).cx(2, 3)
        subset = sample_connected_subset(grid, 4, seed=1)
        mapping = initial_placement(circuit, grid, subset)
        dm = grid.distance_matrix()
        # The heavily interacting pair must land adjacent (weight 3).
        assert dm[mapping[0]][mapping[1]] <= dm[mapping[2]][mapping[3]]

    def test_subset_too_small(self, grid):
        with pytest.raises(ValueError):
            initial_placement(get_benchmark("bv-9"), grid, [0, 1, 2])

    def test_interaction_weights(self):
        circuit = QuantumCircuit(3).cx(0, 1).cz(1, 0).rzz(1, 2, 0.5)
        weights = interaction_weights(circuit)
        assert weights == {(0, 1): 2, (1, 2): 1}


class TestRouting:
    def test_all_two_qubit_gates_on_couplers(self, grid):
        circuit = get_benchmark("qaoa-9")
        subset = sample_connected_subset(grid, 9, seed=2)
        mapping = initial_placement(circuit, grid, subset)
        routed, _, _ = route(circuit, grid, mapping)
        for g in routed.gates:
            if g.is_two_qubit:
                a, b = g.qubits
                assert grid.graph.has_edge(a, b), f"{g.name} on {g.qubits}"

    def test_final_mapping_consistent(self, grid):
        circuit = get_benchmark("bv-4")
        subset = sample_connected_subset(grid, 4, seed=0)
        mapping = initial_placement(circuit, grid, subset)
        _, final, _ = route(circuit, grid, mapping)
        assert sorted(final) == sorted(mapping)
        assert len(set(final.values())) == len(final)

    def test_no_swaps_when_adjacent(self):
        line = grid_topology(1, 4)
        circuit = QuantumCircuit(2).cx(0, 1)
        _, _, swaps = route(circuit, line, {0: 0, 1: 1})
        assert swaps == 0

    def test_swaps_inserted_when_distant(self):
        line = grid_topology(1, 4)
        circuit = QuantumCircuit(2).cx(0, 1)
        routed, _, swaps = route(circuit, line, {0: 0, 1: 3})
        assert swaps == 2
        assert routed.count_ops().get("swap", 0) == 2

    def test_swap_walk_through_unoccupied_qubits(self):
        # Regression: SWAP walks may cross physical qubits holding no
        # logical qubit (paths leave the mapped subset).  The occupancy
        # bookkeeping must keep final_mapping consistent: the walked
        # logical lands one hop short of its partner, the vacated start
        # node is free again, and the mapping stays injective.
        line = grid_topology(1, 4)
        circuit = QuantumCircuit(2).cx(0, 1)
        mapping = {0: 0, 1: 3}  # physical 1 and 2 are unoccupied
        routed, final, swaps = route(circuit, line, mapping)
        assert swaps == 2
        assert final == {0: 2, 1: 3}
        assert len(set(final.values())) == len(final)
        from repro.circuits.mapping_reference import route_reference
        ref_routed, ref_final, ref_swaps = route_reference(
            circuit, line, dict(mapping))
        assert (routed.gates, final, swaps) == \
            (ref_routed.gates, ref_final, ref_swaps)

    def test_swap_walk_outside_subset_region(self):
        # A connected subset whose internal path is longer than the
        # full-graph shortest path: the walk crosses non-subset (hence
        # unoccupied) qubits, then later gates reuse the moved qubit.
        grid3 = grid_topology(3, 3)
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        mapping = {0: 0, 1: 8}
        routed, final, swaps = route(circuit, grid3, mapping)
        assert sorted(final) == [0, 1]
        assert len(set(final.values())) == 2
        for g in routed.gates:
            if g.is_two_qubit:
                assert grid3.graph.has_edge(*g.qubits)
        from repro.circuits.mapping_reference import route_reference
        ref = route_reference(circuit, grid3, dict(mapping))
        assert (routed.gates, final, swaps) == (ref[0].gates, ref[1], ref[2])

    def test_routing_preserves_semantics_via_final_permutation(self):
        # Route a small circuit, then verify the routed circuit equals
        # the original conjugated by the qubit relabelling it induced.
        line = grid_topology(1, 3)
        circuit = QuantumCircuit(3).h(0).cx(0, 2).cx(1, 2)
        mapping = {0: 0, 1: 1, 2: 2}
        routed, final, _ = route(circuit, line, mapping)
        u_routed = circuit_unitary(routed)

        # Build the expected unitary: original circuit with wires renamed
        # by the initial mapping, followed by the permutation induced by
        # the SWAPs (final vs initial mapping).
        renamed = circuit.remapped(mapping, 3)
        u_orig = circuit_unitary(renamed)
        perm = QuantumCircuit(3)
        # Move each logical qubit from mapping[l] to final[l] with swaps.
        current = dict(mapping)
        for logical in sorted(final):
            src = current[logical]
            dst = final[logical]
            if src != dst:
                perm.swap(src, dst)
                for other, pos in current.items():
                    if pos == dst:
                        current[other] = src
                current[logical] = dst
        u_expected = circuit_unitary(perm) @ u_orig
        assert unitaries_equal_up_to_phase(u_routed, u_expected)


class TestMapCircuit:
    def test_end_to_end_fields(self, grid):
        mapped = map_circuit(get_benchmark("bv-4"), grid, seed=0)
        assert mapped.physical_circuit.num_qubits == grid.num_qubits
        assert mapped.duration_ns > 0
        assert mapped.active_qubits
        assert mapped.active_edges <= set(grid.coupling_map)

    def test_basis_only_output(self, grid):
        mapped = map_circuit(get_benchmark("qgan-4"), grid, seed=1)
        assert all(g.name in {"rz", "sx", "x", "cz"}
                   for g in mapped.physical_circuit.gates)

    def test_counts(self, grid):
        mapped = map_circuit(get_benchmark("bv-4"), grid, seed=0)
        two_q = sum(mapped.two_qubit_counts().values())
        assert two_q == mapped.physical_circuit.two_qubit_gate_count
        assert all(e in set(grid.coupling_map) for e in mapped.two_qubit_counts())

    def test_explicit_subset(self, grid):
        subset = [0, 1, 2, 5]
        mapped = map_circuit(get_benchmark("bv-4"), grid, subset=subset)
        assert set(mapped.initial_mapping.values()) == set(subset)

    def test_evaluation_mappings_deterministic(self, grid):
        a = evaluation_mappings(get_benchmark("bv-4"), grid, num_mappings=5)
        b = evaluation_mappings(get_benchmark("bv-4"), grid, num_mappings=5)
        assert [m.initial_mapping for m in a] == [m.initial_mapping for m in b]

    def test_larger_device(self):
        topo = get_topology("falcon-27")
        mapped = map_circuit(get_benchmark("bv-9"), topo, seed=0)
        for (a, b) in mapped.active_edges:
            assert topo.graph.has_edge(a, b)

"""Unit tests for the SABRE-style look-ahead router."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import get_benchmark
from repro.circuits.mapping import initial_placement, map_circuit, route, \
    sample_connected_subset
from repro.circuits.sabre import route_sabre
from repro.devices.topology import get_topology, grid_topology

from .util_sim import circuit_unitary, unitaries_equal_up_to_phase


@pytest.fixture(scope="module")
def grid():
    return grid_topology(4, 4)


class TestRoutingValidity:
    @pytest.mark.parametrize("bench", ["bv-9", "qaoa-9"])
    def test_all_gates_on_couplers(self, grid, bench):
        circuit = get_benchmark(bench)
        subset = sample_connected_subset(grid, circuit.num_qubits, seed=1)
        mapping = initial_placement(circuit, grid, subset)
        routed, _, _ = route_sabre(circuit, grid, mapping)
        for g in routed.gates:
            if g.is_two_qubit:
                assert grid.graph.has_edge(*g.qubits)

    def test_final_mapping_bijective(self, grid):
        circuit = get_benchmark("qaoa-9")
        subset = sample_connected_subset(grid, 9, seed=0)
        mapping = initial_placement(circuit, grid, subset)
        _, final, _ = route_sabre(circuit, grid, mapping)
        assert sorted(final) == sorted(mapping)
        assert len(set(final.values())) == len(final)

    def test_no_swaps_when_all_adjacent(self):
        line = grid_topology(1, 3)
        circuit = QuantumCircuit(3).cx(0, 1).cx(1, 2)
        _, _, swaps = route_sabre(circuit, line, {0: 0, 1: 1, 2: 2})
        assert swaps == 0

    def test_single_qubit_gates_pass_through(self):
        line = grid_topology(1, 2)
        circuit = QuantumCircuit(2).h(0).x(1).rz(0, 0.5)
        routed, _, swaps = route_sabre(circuit, line, {0: 0, 1: 1})
        assert swaps == 0
        assert routed.count_ops() == {"h": 1, "x": 1, "rz": 1}

    def test_semantics_preserved_small(self):
        """Routed circuit == original + induced permutation (unitary)."""
        line = grid_topology(1, 3)
        circuit = QuantumCircuit(3).h(0).cx(0, 2).cz(1, 2)
        mapping = {0: 0, 1: 1, 2: 2}
        routed, final, _ = route_sabre(circuit, line, mapping)
        u_routed = circuit_unitary(routed)

        renamed = circuit.remapped(mapping, 3)
        u_orig = circuit_unitary(renamed)
        perm = QuantumCircuit(3)
        current = dict(mapping)
        for logical in sorted(final):
            src, dst = current[logical], final[logical]
            if src != dst:
                perm.swap(src, dst)
                for other, pos in current.items():
                    if pos == dst:
                        current[other] = src
                current[logical] = dst
        expected = circuit_unitary(perm) @ u_orig
        assert unitaries_equal_up_to_phase(u_routed, expected)


class TestEfficiency:
    def test_beats_or_matches_naive_on_sparse_device(self):
        topo = get_topology("falcon-27")
        circuit = get_benchmark("qaoa-9")
        basic_total = 0
        sabre_total = 0
        for seed in range(5):
            basic_total += map_circuit(circuit, topo, seed=seed,
                                       router="basic").swap_count
            sabre_total += map_circuit(circuit, topo, seed=seed,
                                       router="sabre").swap_count
        assert sabre_total <= basic_total

    def test_gate_counts_identical_modulo_swaps(self, grid):
        circuit = get_benchmark("bv-9")
        subset = sample_connected_subset(grid, 9, seed=3)
        mapping = initial_placement(circuit, grid, subset)
        routed, _, swaps = route_sabre(circuit, grid, mapping)
        ops = routed.count_ops()
        original_ops = QuantumCircuit(9).extend(circuit.gates).count_ops()
        assert ops.get("swap", 0) == swaps
        for name, count in original_ops.items():
            assert ops.get(name, 0) == count


class TestMapCircuitIntegration:
    def test_router_flag(self, grid):
        mapped = map_circuit(get_benchmark("bv-4"), grid, seed=0,
                             router="sabre")
        assert all(g.name in {"rz", "sx", "x", "cz"}
                   for g in mapped.physical_circuit.gates)

    def test_unknown_router_rejected(self, grid):
        with pytest.raises(ValueError, match="router"):
            map_circuit(get_benchmark("bv-4"), grid, router="magic")

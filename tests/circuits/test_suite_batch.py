"""Suite-batched compile + lazy MappedCircuit decode contracts.

Three pinned behaviours of the fully-columnar pipeline:

* ``map_suite_arrays`` (and therefore ``evaluation_mappings``) is
  bit-identical to a per-seed ``map_circuit`` loop — same gate columns,
  mappings, swap counts, and schedules for every seed;
* ``map_circuit`` performs **zero** eager ``Gate`` materialisation:
  decoding happens only on explicit ``physical_circuit`` access, once,
  and is memoized;
* the ``router`` argument is validated at entry with a choice-listing
  error on every public entry point.
"""

import pickle

import numpy as np
import pytest

from repro.circuits.batch import ArrayCircuit
from repro.circuits.library import get_benchmark
from repro.circuits.mapping import (
    ROUTER_CHOICES,
    MappedCircuit,
    evaluation_mappings,
    map_circuit,
    map_suite_arrays,
)
from repro.devices.topology import get_topology


def _assert_identical(a, b):
    assert a.initial_mapping == b.initial_mapping
    assert a.final_mapping == b.final_mapping
    assert a.swap_count == b.swap_count
    assert a.schedule.total_ns == b.schedule.total_ns
    pa, pb = a.physical_arrays, b.physical_arrays
    np.testing.assert_array_equal(pa.codes, pb.codes)
    np.testing.assert_array_equal(pa.q0, pb.q0)
    np.testing.assert_array_equal(pa.q1, pb.q1)
    assert pa.params.tobytes() == pb.params.tobytes()


class TestSuiteBatchedIdentity:
    @pytest.mark.parametrize("bench,topo,router", [
        ("bv-9", "grid-25", "basic"),
        ("qaoa-9", "grid-25", "sabre"),
        ("ghz-16", "falcon-27", "basic"),
    ])
    def test_matches_per_seed_loop(self, bench, topo, router):
        circuit = get_benchmark(bench)
        topology = get_topology(topo)
        batched = map_suite_arrays(circuit, topology, num_mappings=8,
                                   base_seed=3, router=router)
        assert len(batched) == 8
        for k, suite_mapped in enumerate(batched):
            solo = map_circuit(circuit, topology, seed=3 + k, router=router)
            _assert_identical(suite_mapped, solo)

    def test_evaluation_mappings_delegates(self):
        circuit = get_benchmark("bv-9")
        topology = get_topology("grid-25")
        a = evaluation_mappings(circuit, topology, num_mappings=4)
        b = map_suite_arrays(circuit, topology, num_mappings=4)
        for x, y in zip(a, b):
            _assert_identical(x, y)

    def test_empty_suite(self):
        circuit = get_benchmark("bv-9")
        topology = get_topology("grid-25")
        assert map_suite_arrays(circuit, topology, num_mappings=0) == []


class TestZeroEagerDecode:
    def test_map_circuit_never_decodes(self, monkeypatch):
        def boom(self):
            raise AssertionError("eager Gate materialisation in map_circuit")
        monkeypatch.setattr(ArrayCircuit, "to_circuit", boom)
        mapped = map_circuit(get_benchmark("bv-9"), get_topology("grid-25"))
        assert mapped.physical_arrays is not None
        assert mapped._physical_circuit is None
        # columnar consumers stay decode-free too
        mapped.timed_gate_totals()
        mapped.two_qubit_counts()
        assert mapped.active_qubit_mask is not None

    def test_decode_is_lazy_and_memoized(self):
        mapped = map_circuit(get_benchmark("bv-9"), get_topology("grid-25"))
        assert mapped._physical_circuit is None
        first = mapped.physical_circuit
        assert mapped._physical_circuit is first
        assert mapped.physical_circuit is first
        assert first.gates == mapped.physical_arrays.to_circuit().gates

    def test_pickle_drops_decode_memo(self):
        mapped = map_circuit(get_benchmark("bv-9"), get_topology("grid-25"))
        gates = mapped.physical_circuit.gates
        back = pickle.loads(pickle.dumps(mapped))
        assert back._physical_circuit is None
        assert back.physical_circuit.gates == gates

    def test_requires_some_circuit_form(self):
        with pytest.raises(ValueError):
            MappedCircuit(initial_mapping={}, final_mapping={})


class TestRouterValidation:
    def test_choices_constant(self):
        assert ROUTER_CHOICES == ("basic", "sabre")

    @pytest.mark.parametrize("entry", ["map_circuit", "map_suite_arrays",
                                       "evaluation_mappings"])
    def test_unknown_router_lists_choices(self, entry):
        circuit = get_benchmark("bv-9")
        topology = get_topology("grid-25")
        fn = {"map_circuit": map_circuit,
              "map_suite_arrays": map_suite_arrays,
              "evaluation_mappings": evaluation_mappings}[entry]
        with pytest.raises(ValueError, match="router.*basic.*sabre"):
            fn(circuit, topology, router="magic")

"""Unit tests for the Table I benchmark-circuit library."""

import pytest

from repro.circuits.library import (
    PAPER_BENCHMARKS,
    all_paper_benchmarks,
    bernstein_vazirani,
    get_benchmark,
    ising_chain,
    qaoa,
    qgan,
)
from repro.circuits.library.bv import default_secret
from repro.circuits.library.qaoa import maxcut_instance


class TestRegistry:
    def test_paper_benchmark_names(self):
        assert PAPER_BENCHMARKS == (
            "bv-4", "bv-9", "bv-16", "qaoa-4", "qaoa-9",
            "ising-4", "qgan-4", "qgan-9")

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_get_benchmark_width(self, name):
        qc = get_benchmark(name)
        assert qc.num_qubits == int(name.split("-")[1])
        assert qc.name == name

    def test_all_paper_benchmarks(self):
        assert [c.name for c in all_paper_benchmarks()] == list(PAPER_BENCHMARKS)

    def test_bad_names(self):
        with pytest.raises(ValueError):
            get_benchmark("bv")
        with pytest.raises(ValueError):
            get_benchmark("shor-9")

    @pytest.mark.parametrize("name", PAPER_BENCHMARKS)
    def test_deterministic(self, name):
        a, b = get_benchmark(name), get_benchmark(name)
        assert a.gates == b.gates


class TestBV:
    def test_oracle_matches_secret(self):
        qc = bernstein_vazirani(5, secret="1010")
        cx_targets = [g.qubits for g in qc.gates if g.name == "cx"]
        assert cx_targets == [(0, 4), (2, 4)]

    def test_default_secret_alternates(self):
        assert default_secret(4) == "1010"

    def test_hadamard_structure(self):
        qc = bernstein_vazirani(4)
        ops = qc.count_ops()
        # H on data twice (3 qubits) + H on ancilla once, X on ancilla.
        assert ops["h"] == 7
        assert ops["x"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(1)
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret="11")
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret="1x0")


class TestQAOA:
    def test_maxcut_instance_has_ring(self):
        edges = maxcut_instance(6)
        for i in range(6):
            assert (min(i, (i + 1) % 6), max(i, (i + 1) % 6)) in edges

    def test_layer_structure(self):
        qc = qaoa(4, layers=1)
        ops = qc.count_ops()
        assert ops["h"] == 4
        assert ops["rx"] == 4
        assert ops["rzz"] == len(maxcut_instance(4))

    def test_multi_layer_scales(self):
        one = qaoa(4, layers=1).count_ops()["rzz"]
        two = qaoa(4, layers=2).count_ops()["rzz"]
        assert two == 2 * one

    def test_validation(self):
        with pytest.raises(ValueError):
            qaoa(4, layers=0)
        with pytest.raises(ValueError):
            maxcut_instance(1)


class TestIsing:
    def test_trotter_structure(self):
        qc = ising_chain(4, steps=2)
        ops = qc.count_ops()
        assert ops["rzz"] == 2 * 3  # 3 bonds per step
        assert ops["rx"] == 2 * 4

    def test_even_odd_ordering(self):
        qc = ising_chain(5, steps=1)
        bonds = [g.qubits for g in qc.gates if g.name == "rzz"]
        assert bonds == [(0, 1), (2, 3), (1, 2), (3, 4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ising_chain(1)
        with pytest.raises(ValueError):
            ising_chain(4, steps=0)


class TestQGAN:
    def test_entanglement_chain(self):
        qc = qgan(4, layers=2)
        cxs = [g.qubits for g in qc.gates if g.name == "cx"]
        assert cxs == [(0, 1), (1, 2), (2, 3)] * 2

    def test_final_rotation_layer(self):
        qc = qgan(3, layers=1)
        # 2 ry layers (1 per block + closing) and 1 rz layer.
        ops = qc.count_ops()
        assert ops["ry"] == 6
        assert ops["rz"] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            qgan(1)
        with pytest.raises(ValueError):
            qgan(4, layers=0)

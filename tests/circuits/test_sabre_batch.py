"""Vectorized SABRE must be output-identical to the seed reference."""

import pytest

from repro.circuits.library import get_benchmark
from repro.circuits.mapping import (initial_placement, map_circuit,
                                    sample_connected_subset)
from repro.circuits.sabre import route_sabre, route_sabre_arrays
from repro.circuits.sabre_reference import route_sabre_reference
from repro.devices.topology import get_topology
from repro.workloads import get_workload


def _compare(circuit, topology_name, seed):
    topology = get_topology(topology_name)
    subset = sample_connected_subset(topology, circuit.num_qubits, seed)
    mapping = initial_placement(circuit, topology, subset)
    ref_circ, ref_map, ref_swaps = route_sabre_reference(
        circuit, topology, dict(mapping))
    vec_circ, vec_map, vec_swaps = route_sabre(
        circuit, topology, dict(mapping))
    assert vec_swaps == ref_swaps
    assert vec_map == ref_map
    assert vec_circ.num_qubits == ref_circ.num_qubits
    assert vec_circ.gates == ref_circ.gates


class TestEquivalence:
    @pytest.mark.parametrize("bench_name", ["bv-16", "qaoa-9", "qgan-9"])
    @pytest.mark.parametrize("topology", ["grid-25", "falcon-27"])
    def test_paper_benchmarks(self, bench_name, topology):
        for seed in (0, 3):
            _compare(get_benchmark(bench_name), topology, seed)

    def test_wide_workload_on_eagle(self):
        _compare(get_workload("qaoa-64"), "eagle-127", 1)

    def test_registry_workloads(self):
        for name in ("ghz-12", "qft-8", "clifford-10-d4-s2", "qv-8-d3"):
            _compare(get_workload(name), "grid-25", 0)

    def test_distance_matrix_matches_lazy_rows(self):
        for name in ("grid-25", "falcon-27", "xtree-53"):
            topology = get_topology(name)
            matrix = topology.hop_distance_matrix()
            rows = topology.hop_distances()
            for src in range(topology.num_qubits):
                for dst, hops in rows[src].items():
                    assert matrix[src, dst] == hops


class TestArraysPath:
    def test_arrays_decode_matches_public_entry(self):
        circuit = get_benchmark("qaoa-9")
        topology = get_topology("grid-25")
        subset = sample_connected_subset(topology, 9, 0)
        mapping = initial_placement(circuit, topology, subset)
        arrays, arr_map, arr_swaps = route_sabre_arrays(
            circuit, topology, dict(mapping))
        circ, circ_map, circ_swaps = route_sabre(
            circuit, topology, dict(mapping))
        assert arrays.to_circuit().gates == circ.gates
        assert arr_map == circ_map and arr_swaps == circ_swaps

    def test_unmapped_qubit_raises(self):
        circuit = get_benchmark("bv-4")
        topology = get_topology("grid-25")
        with pytest.raises(KeyError):
            route_sabre(circuit, topology, {0: 0, 1: 1})


class TestMapCircuitPipeline:
    """map_circuit rides the batched pipeline; outputs stay pinned."""

    def test_sabre_mapping_matches_reference_composition(self):
        from repro.circuits.transpile import transpile

        circuit = get_benchmark("qgan-9")
        topology = get_topology("falcon-27")
        subset = sample_connected_subset(topology, 9, 2)
        mapping = initial_placement(circuit, topology, subset)
        routed, final_mapping, swaps = route_sabre_reference(
            circuit, topology, dict(mapping))
        expected = transpile(routed)
        mapped = map_circuit(circuit, topology, seed=2, router="sabre")
        assert mapped.physical_circuit.gates == expected.gates
        assert mapped.final_mapping == final_mapping
        assert mapped.swap_count == swaps

    def test_basic_router_matches_legacy_transpile(self):
        from repro.circuits.mapping import route
        from repro.circuits.transpile import transpile

        circuit = get_benchmark("bv-9")
        topology = get_topology("grid-25")
        subset = sample_connected_subset(topology, 9, 1)
        mapping = initial_placement(circuit, topology, subset)
        routed, _, _ = route(circuit, topology, mapping)
        expected = transpile(routed)
        mapped = map_circuit(circuit, topology, seed=1, router="basic")
        assert mapped.physical_circuit.gates == expected.gates

"""A tiny dense statevector/unitary simulator for transpiler validation.

Builds the full unitary of a circuit on up to ~6 qubits so tests can
assert that gate decompositions are *exactly* equivalent up to global
phase — the strongest possible correctness check for the transpiler.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array([[np.exp(-0.5j * theta), 0],
                     [0, np.exp(0.5j * theta)]], dtype=complex)


def _rx(theta: float) -> np.ndarray:
    c, s = np.cos(theta / 2), -1j * np.sin(theta / 2)
    return np.array([[c, s], [s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _embed_single(u: np.ndarray, qubit: int, n: int) -> np.ndarray:
    ops = [u if k == qubit else _I for k in range(n)]
    full = ops[0]
    for op in ops[1:]:
        full = np.kron(full, op)
    return full


def _embed_two(u4: np.ndarray, a: int, b: int, n: int) -> np.ndarray:
    """Embed a 4x4 unitary acting on qubits (a, b) into n qubits."""
    dim = 2 ** n
    full = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        bits = [(col >> (n - 1 - k)) & 1 for k in range(n)]
        local_col = 2 * bits[a] + bits[b]
        for local_row in range(4):
            amp = u4[local_row, local_col]
            if amp == 0:
                continue
            new_bits = list(bits)
            new_bits[a] = (local_row >> 1) & 1
            new_bits[b] = local_row & 1
            row = 0
            for bit in new_bits:
                row = (row << 1) | bit
            full[row, col] += amp
    return full


def gate_unitary(gate: Gate, n: int) -> np.ndarray:
    """Full n-qubit unitary of one gate."""
    name = gate.name
    if name == "barrier":
        return np.eye(2 ** n, dtype=complex)
    if name in ("rz", "rx", "ry"):
        table = {"rz": _rz, "rx": _rx, "ry": _ry}
        return _embed_single(table[name](gate.params[0]), gate.qubits[0], n)
    if name in ("x", "sx", "h"):
        table = {"x": _X, "sx": _SX, "h": _H}
        return _embed_single(table[name], gate.qubits[0], n)
    if name == "cz":
        u4 = np.diag([1, 1, 1, -1]).astype(complex)
        return _embed_two(u4, gate.qubits[0], gate.qubits[1], n)
    if name == "cx":
        u4 = np.array([[1, 0, 0, 0], [0, 1, 0, 0],
                       [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex)
        return _embed_two(u4, gate.qubits[0], gate.qubits[1], n)
    if name == "swap":
        u4 = np.array([[1, 0, 0, 0], [0, 0, 1, 0],
                       [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex)
        return _embed_two(u4, gate.qubits[0], gate.qubits[1], n)
    if name == "rzz":
        theta = gate.params[0]
        phase = np.exp(0.5j * theta)
        u4 = np.diag([1 / phase, phase, phase, 1 / phase]).astype(complex)
        return _embed_two(u4, gate.qubits[0], gate.qubits[1], n)
    raise ValueError(f"no unitary for gate {name!r}")


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """Full unitary of a circuit (little cost for <= 6 qubits)."""
    n = circuit.num_qubits
    u = np.eye(2 ** n, dtype=complex)
    for gate in circuit.gates:
        u = gate_unitary(gate, n) @ u
    return u


def unitaries_equal_up_to_phase(a: np.ndarray, b: np.ndarray,
                                tol: float = 1e-9) -> bool:
    """True when a = e^{i phi} b for some global phase phi."""
    if a.shape != b.shape:
        return False
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < tol:
        return np.allclose(a, b, atol=tol)
    phase = a[idx] / b[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return np.allclose(a, phase * b, atol=tol)

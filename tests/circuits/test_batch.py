"""Unit tests for the batched (array-based) transpile engine."""

import math

import numpy as np
import pytest

from repro.circuits.batch import (ArrayCircuit, cancel_pairs_arrays,
                                  lower_to_basis_arrays, merge_rz_arrays,
                                  transpile_arrays, transpile_batched)
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.library import all_paper_benchmarks
from repro.circuits.transpile import (cancel_pairs, lower_to_basis, merge_rz,
                                      transpile)

from .util_sim import circuit_unitary, unitaries_equal_up_to_phase


def assert_same_gates(a: QuantumCircuit, b: QuantumCircuit) -> None:
    assert a.num_qubits == b.num_qubits
    assert a.gates == b.gates


class TestArrayCircuit:
    def test_round_trip(self):
        qc = QuantumCircuit(3)
        qc.h(0).cx(0, 1).rzz(1, 2, 0.7).rz(2, -1.2).swap(0, 2).x(1).sx(2)
        back = ArrayCircuit.from_circuit(qc).to_circuit()
        assert_same_gates(qc, back)

    def test_rejects_barriers(self):
        qc = QuantumCircuit(2)
        qc.h(0).barrier().cx(0, 1)
        with pytest.raises(ValueError, match="batched"):
            ArrayCircuit.from_circuit(qc)

    def test_empty(self):
        qc = QuantumCircuit(2)
        arrays = ArrayCircuit.from_circuit(qc)
        assert arrays.size == 0
        assert arrays.to_circuit().gates == []

    def test_decode_interns_repeats(self):
        qc = QuantumCircuit(2)
        for _ in range(5):
            qc.sx(0)
        gates = ArrayCircuit.from_circuit(qc).to_circuit().gates
        assert all(g is gates[0] for g in gates)


class TestPassEquivalence:
    """Each array pass reproduces its legacy counterpart exactly."""

    def _random_circuit(self, rng, num_qubits=5, num_gates=60):
        qc = QuantumCircuit(num_qubits)
        one_q = ["rz", "sx", "x", "h", "rx", "ry"]
        two_q = ["cz", "cx", "rzz", "swap"]
        for _ in range(num_gates):
            if rng.random() < 0.55:
                name = one_q[int(rng.integers(len(one_q)))]
                q = int(rng.integers(num_qubits))
                params = ((float(rng.uniform(-7, 7)),)
                          if name in ("rz", "rx", "ry") else ())
                qc.append(Gate(name, (q,), params))
            else:
                name = two_q[int(rng.integers(len(two_q)))]
                a, b = rng.choice(num_qubits, size=2, replace=False)
                params = ((float(rng.uniform(-7, 7)),)
                          if name == "rzz" else ())
                qc.append(Gate(name, (int(a), int(b)), params))
        return qc

    def test_lowering_matches_legacy(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            qc = self._random_circuit(rng)
            arrays = lower_to_basis_arrays(ArrayCircuit.from_circuit(qc))
            assert_same_gates(lower_to_basis(qc), arrays.to_circuit())

    def test_merge_rz_matches_legacy(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            qc = lower_to_basis(self._random_circuit(rng))
            arrays = merge_rz_arrays(ArrayCircuit.from_circuit(qc))
            assert_same_gates(merge_rz(qc), arrays.to_circuit())

    def test_cancel_pairs_matches_legacy(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            qc = lower_to_basis(self._random_circuit(rng))
            arrays = cancel_pairs_arrays(ArrayCircuit.from_circuit(qc))
            assert_same_gates(cancel_pairs(qc), arrays.to_circuit())

    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_transpile_matches_legacy_all_levels(self, level):
        rng = np.random.default_rng(6)
        for _ in range(10):
            qc = self._random_circuit(rng)
            assert_same_gates(transpile(qc, level),
                              transpile_batched(qc, level))


class TestCancellationSemantics:
    """The crafted sequences the legacy pass is defined by."""

    def _run(self, qc):
        return cancel_pairs_arrays(ArrayCircuit.from_circuit(qc)).to_circuit()

    def test_xx_cancels(self):
        qc = QuantumCircuit(1)
        qc.x(0).x(0)
        assert self._run(qc).gates == []

    def test_sx_sx_fuses_to_x(self):
        qc = QuantumCircuit(1)
        qc.sx(0).sx(0)
        assert [g.name for g in self._run(qc).gates] == ["x"]

    def test_cz_cz_cancels_same_orientation_only(self):
        qc = QuantumCircuit(2)
        qc.cz(0, 1).cz(0, 1)
        assert self._run(qc).gates == []
        qc = QuantumCircuit(2)
        qc.cz(0, 1).cz(1, 0)
        assert len(self._run(qc).gates) == 2

    def test_intervening_gate_blocks_cancellation(self):
        qc = QuantumCircuit(2)
        qc.x(0).cz(0, 1).x(0)
        assert len(self._run(qc).gates) == 3

    def test_no_chain_through_cancelled_pair(self):
        # sx x x sx: the x pair cancels but the sx's must NOT fuse in
        # the same pass (the legacy pass pops the stream pointer).
        qc = QuantumCircuit(1)
        qc.sx(0).x(0).x(0).sx(0)
        names = [g.name for g in self._run(qc).gates]
        assert names == ["sx", "sx"]

    def test_fusion_chains_into_cancellation(self):
        # x sx sx x: the sx pair fuses to x in place, and THAT x then
        # cancels with the trailing x — one surviving leading x.  The
        # candidate filter must treat mixed x/sx neighbours as
        # cancellation-relevant or this chain is missed.
        qc = QuantumCircuit(1)
        qc.x(0).sx(0).sx(0).x(0)
        names = [g.name for g in self._run(qc).gates]
        assert names == ["x"]

    def test_non_candidate_gate_is_stream_barrier(self):
        # rz never cancels, but it still severs the stream between the
        # two x's — they must not pair across it.
        qc = QuantumCircuit(1)
        qc.x(0).rz(0, 0.5).x(0)
        names = [g.name for g in self._run(qc).gates]
        assert names == ["x", "rz", "x"]

    def test_cz_chain_cancels_pairwise(self):
        # cz cz cz cz on one edge: pairs (0,1) and (2,3) cancel; an odd
        # trailing cz survives.
        qc = QuantumCircuit(2)
        qc.cz(0, 1).cz(0, 1).cz(0, 1).cz(0, 1)
        assert self._run(qc).gates == []
        qc = QuantumCircuit(2)
        qc.cz(0, 1).cz(0, 1).cz(0, 1)
        assert len(self._run(qc).gates) == 1

    def test_partner_stream_barrier_blocks_cz(self):
        # An x on qubit 1 between the cz's severs qubit 1's stream, so
        # the cz pair must not cancel even though qubit 0's stream is
        # uninterrupted.
        qc = QuantumCircuit(2)
        qc.cz(0, 1).x(1).cz(0, 1)
        assert len(self._run(qc).gates) == 3


class TestSemantics:
    """Batched output is unitarily equivalent to the input circuit."""

    def test_paper_benchmarks_small(self):
        for circuit in all_paper_benchmarks():
            if circuit.num_qubits > 4:
                continue
            batched = transpile_batched(circuit)
            assert unitaries_equal_up_to_phase(
                circuit_unitary(batched), circuit_unitary(circuit))

    def test_barrier_falls_back_to_legacy(self):
        qc = QuantumCircuit(3)
        qc.h(0).barrier().cx(0, 1).rx(2, 0.4)
        assert_same_gates(transpile(qc), transpile_batched(qc))

    def test_invalid_level(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        with pytest.raises(ValueError):
            transpile_batched(qc, optimization_level=5)
        with pytest.raises(ValueError):
            transpile_arrays(ArrayCircuit.from_circuit(qc),
                             optimization_level=-1)

    def test_merge_rz_drops_full_turns(self):
        qc = QuantumCircuit(1)
        qc.rz(0, math.pi).rz(0, math.pi)
        merged = merge_rz_arrays(ArrayCircuit.from_circuit(qc)).to_circuit()
        assert merged.gates == []

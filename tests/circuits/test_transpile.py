"""Unit tests for the basis transpiler, including exact unitary checks."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import BASIS_GATES, Gate
from repro.circuits.library import get_benchmark
from repro.circuits.transpile import (
    cancel_pairs,
    lower_to_basis,
    merge_rz,
    transpile,
)

from .util_sim import circuit_unitary, unitaries_equal_up_to_phase


def assert_equivalent(original: QuantumCircuit, compiled: QuantumCircuit):
    """Both circuits must implement the same unitary up to global phase."""
    u1 = circuit_unitary(original)
    u2 = circuit_unitary(compiled)
    assert unitaries_equal_up_to_phase(u1, u2, tol=1e-9)


class TestLowering:
    @pytest.mark.parametrize("builder", [
        lambda qc: qc.h(0),
        lambda qc: qc.rx(0, 0.7),
        lambda qc: qc.ry(0, -1.2),
        lambda qc: qc.cx(0, 1),
        lambda qc: qc.cx(1, 0),
        lambda qc: qc.rzz(0, 1, 0.9),
        lambda qc: qc.swap(0, 1),
    ])
    def test_single_gate_equivalence(self, builder):
        qc = QuantumCircuit(2)
        builder(qc)
        lowered = lower_to_basis(qc)
        assert all(g.name in BASIS_GATES or g.name == "barrier"
                   for g in lowered.gates)
        assert_equivalent(qc, lowered)

    def test_basis_gates_pass_through(self):
        qc = QuantumCircuit(2).rz(0, 0.3).sx(0).x(1).cz(0, 1)
        lowered = lower_to_basis(qc)
        assert lowered.gates == qc.gates

    def test_nested_lowering(self):
        # swap -> cx -> h -> rz/sx: three levels of recursion.
        qc = QuantumCircuit(2).swap(0, 1)
        lowered = lower_to_basis(qc)
        assert {g.name for g in lowered.gates} <= BASIS_GATES
        assert_equivalent(qc, lowered)


class TestMergeRz:
    def test_adjacent_rz_merged(self):
        qc = QuantumCircuit(1).rz(0, 0.3).rz(0, 0.4)
        merged = merge_rz(qc)
        assert merged.size == 1
        assert merged.gates[0].params[0] == pytest.approx(0.7)

    def test_zero_rotation_dropped(self):
        qc = QuantumCircuit(1).rz(0, 0.5).rz(0, -0.5)
        assert merge_rz(qc).size == 0

    def test_full_turn_dropped(self):
        qc = QuantumCircuit(1).rz(0, math.pi).rz(0, math.pi)
        assert merge_rz(qc).size == 0

    def test_interposed_gate_blocks_merge(self):
        qc = QuantumCircuit(1).rz(0, 0.3).x(0).rz(0, 0.4)
        merged = merge_rz(qc)
        assert merged.count_ops() == {"rz": 2, "x": 1}

    def test_other_qubit_does_not_block(self):
        qc = QuantumCircuit(2).rz(0, 0.3).x(1).rz(0, 0.4)
        merged = merge_rz(qc)
        assert merged.count_ops()["rz"] == 1

    def test_equivalence(self):
        qc = QuantumCircuit(2).rz(0, 0.3).cz(0, 1).rz(0, 0.4).rz(1, 1.1).rz(1, -0.4)
        assert_equivalent(qc, merge_rz(qc))


class TestCancelPairs:
    def test_double_x_cancels(self):
        qc = QuantumCircuit(1).x(0).x(0)
        assert cancel_pairs(qc).size == 0

    def test_double_cz_cancels(self):
        qc = QuantumCircuit(2).cz(0, 1).cz(0, 1)
        assert cancel_pairs(qc).size == 0

    def test_sx_pair_fuses_to_x(self):
        qc = QuantumCircuit(1).sx(0).sx(0)
        out = cancel_pairs(qc)
        assert out.count_ops() == {"x": 1}
        assert_equivalent(qc, out)

    def test_interposed_gate_blocks_cancel(self):
        qc = QuantumCircuit(2).cz(0, 1).x(0).cz(0, 1)
        assert cancel_pairs(qc).size == 3

    def test_spectator_qubit_does_not_block(self):
        qc = QuantumCircuit(3).cz(0, 1).x(2).cz(0, 1)
        out = cancel_pairs(qc)
        assert out.count_ops() == {"x": 1}


class TestTranspile:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_output_is_basis_only(self, level):
        qc = get_benchmark("qaoa-4")
        out = transpile(qc, optimization_level=level)
        assert all(g.name in BASIS_GATES or g.name == "barrier"
                   for g in out.gates)

    @pytest.mark.parametrize("name", ["bv-4", "qaoa-4", "ising-4", "qgan-4"])
    def test_benchmark_equivalence_l3(self, name):
        qc = get_benchmark(name)
        assert_equivalent(qc, transpile(qc, optimization_level=3))

    def test_levels_monotone_size(self):
        qc = get_benchmark("ising-4")
        sizes = [transpile(qc, optimization_level=k).size for k in range(4)]
        assert sizes[0] >= sizes[1] >= sizes[2] >= sizes[3]

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(1), optimization_level=4)

    def test_idempotent_at_l3(self):
        qc = get_benchmark("qgan-4")
        once = transpile(qc, optimization_level=3)
        twice = transpile(once, optimization_level=3)
        assert twice.size == once.size

"""Integration tests: the complete flow on one small device.

These tests exercise the entire pipeline — frequency assignment,
preprocessing, global placement, legalization, baselines, mapping, and
fidelity/hotspot evaluation — and assert the *relationships* the paper's
evaluation rests on.
"""

import numpy as np
import pytest

from repro.analysis import compute_layout_metrics, resonator_integrity
from repro.baselines.human import human_layout
from repro.circuits import evaluation_mappings, get_benchmark
from repro.crosstalk import (
    average_program_fidelity,
    find_spatial_violations,
    hotspot_report,
)
from repro.core import PlacerConfig, QPlacer
from repro.devices import build_netlist, get_topology


@pytest.fixture(scope="module")
def flow():
    topology = get_topology("grid-25")
    netlist = build_netlist(topology)
    cfg = PlacerConfig(max_iterations=200, min_iterations=30, num_bins=48)
    classic_cfg = PlacerConfig.classic(max_iterations=200, min_iterations=30,
                                       num_bins=48)
    qplacer = QPlacer(cfg).place(netlist)
    classic = QPlacer(classic_cfg).place(netlist)
    human = human_layout(netlist, cfg)
    return topology, netlist, qplacer, classic, human


class TestLayoutRelationships:
    def test_qplacer_eliminates_hotspots(self, flow):
        _, _, qplacer, classic, _ = flow
        q = hotspot_report(qplacer.layout)
        c = hotspot_report(classic.layout)
        assert q.ph <= c.ph
        assert q.num_impacted_qubits <= c.num_impacted_qubits

    def test_areas_comparable_between_engines(self, flow):
        _, _, qplacer, classic, _ = flow
        ratio = classic.layout.amer() / qplacer.layout.amer()
        assert 0.5 <= ratio <= 1.5

    def test_human_crosstalk_free_but_large(self, flow):
        _, _, qplacer, _, human = flow
        assert hotspot_report(human).ph == 0.0
        assert human.amer() > 0.7 * qplacer.layout.amer()

    def test_qplacer_resonators_integral(self, flow):
        _, _, qplacer, _, _ = flow
        assert resonator_integrity(qplacer.layout) == 1.0
        assert qplacer.legalize_stats.integration_failures == 0

    def test_metrics_consistent_with_reports(self, flow):
        _, _, qplacer, _, _ = flow
        m = compute_layout_metrics(qplacer.layout)
        rep = hotspot_report(qplacer.layout)
        assert m.ph_percent == pytest.approx(rep.ph_percent)
        assert m.impacted_qubits == rep.num_impacted_qubits


class TestFidelityRelationships:
    @pytest.mark.parametrize("bench", ["bv-4", "qgan-4"])
    def test_strategy_ordering(self, flow, bench):
        topology, _, qplacer, classic, human = flow
        mappings = evaluation_mappings(get_benchmark(bench), topology,
                                       num_mappings=10)
        f_q = average_program_fidelity(qplacer.layout, mappings)
        f_c = average_program_fidelity(classic.layout, mappings)
        f_h = average_program_fidelity(human, mappings)
        # Fig. 11/12 ordering: Human >= Qplacer >> Classic.
        assert f_q >= f_c * 0.9
        assert f_h >= f_q * 0.9

    def test_depth_degrades_fidelity(self, flow):
        topology, _, qplacer, _, _ = flow
        shallow = evaluation_mappings(get_benchmark("bv-4"), topology,
                                      num_mappings=6)
        deep = evaluation_mappings(get_benchmark("qaoa-9"), topology,
                                   num_mappings=6)
        f_shallow = average_program_fidelity(qplacer.layout, shallow)
        f_deep = average_program_fidelity(qplacer.layout, deep)
        assert f_deep < f_shallow


class TestViolationAccounting:
    def test_qplacer_has_no_resonant_violations(self, flow):
        _, _, qplacer, _, _ = flow
        if qplacer.legalize_stats.resonant_relaxations:
            pytest.skip("legalizer relaxed on this run")
        violations = find_spatial_violations(qplacer.layout)
        assert not any(v.resonant for v in violations)

    def test_classic_has_resonant_violations(self, flow):
        _, _, _, classic, _ = flow
        violations = find_spatial_violations(classic.layout)
        assert any(v.resonant for v in violations)


class TestSegmentSizeEffect:
    def test_smaller_segments_more_cells(self):
        netlist = build_netlist(get_topology("grid-25"))
        cfg_small = PlacerConfig(segment_size_mm=0.2, max_iterations=80,
                                 min_iterations=20, num_bins=32)
        cfg_large = PlacerConfig(segment_size_mm=0.4, max_iterations=80,
                                 min_iterations=20, num_bins=32)
        small = QPlacer(cfg_small).place(netlist)
        large = QPlacer(cfg_large).place(netlist)
        assert small.num_cells > 1.8 * large.num_cells

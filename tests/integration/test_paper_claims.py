"""Integration tests pinning quantitative claims from the paper.

These assert the reproduction's numbers against figures the paper states
explicitly: Table II instance counts, the Sec. III-C TM110 values, the
Sec. V-C resonator-length band, and the frequency-comb structure.
"""

import math

import pytest

from repro import constants
from repro.core import PlacerConfig
from repro.core.preprocess import build_problem
from repro.devices import build_netlist, get_topology
from repro.devices.frequency import frequency_levels
from repro.physics import resonator_length_mm, tm110_frequency_ghz

#: Table II "#cells" columns (lb = 0.2 / 0.3 / 0.4).
PAPER_TABLE2_CELLS = {
    "grid-25": (1050, 490, 299),
    "xtree-53": (1393, 660, 410),
    "falcon-27": (744, 354, 218),
    "eagle-127": (3810, 1801, 1104),
    "aspen11-40": (1272, 598, 369),
    "aspenm-80": (2787, 1310, 799),
}


class TestTable2InstanceCounts:
    @pytest.mark.parametrize("name", sorted(PAPER_TABLE2_CELLS))
    @pytest.mark.parametrize("lb_index,lb", [(0, 0.2), (1, 0.3), (2, 0.4)])
    def test_cells_within_3_percent(self, name, lb_index, lb):
        netlist = build_netlist(get_topology(name))
        problem = build_problem(netlist, PlacerConfig(segment_size_mm=lb))
        paper = PAPER_TABLE2_CELLS[name][lb_index]
        assert abs(problem.num_instances - paper) / paper < 0.03, (
            f"{name} lb={lb}: {problem.num_instances} vs paper {paper}")


class TestSubstrateNumbers:
    def test_tm110_5mm(self):
        assert tm110_frequency_ghz(5, 5) == pytest.approx(12.41, abs=0.05)

    def test_tm110_10mm(self):
        assert tm110_frequency_ghz(10, 10) == pytest.approx(6.20, abs=0.03)


class TestResonatorBand:
    def test_length_range(self):
        # Sec. V-C: lengths 10.8 down to 9.2 mm across 6.0-7.0 GHz.
        assert resonator_length_mm(6.0) == pytest.approx(10.8, abs=0.05)
        assert resonator_length_mm(7.0) == pytest.approx(9.2, abs=0.1)


class TestFrequencyPlanStructure:
    def test_qubit_comb(self):
        levels = frequency_levels(constants.QUBIT_FREQ_BAND_GHZ,
                                  constants.DETUNING_THRESHOLD_GHZ)
        assert levels[0] == pytest.approx(4.8)
        assert levels[-1] == pytest.approx(5.2)

    def test_anharmonicity_constant(self):
        assert constants.TRANSMON_ANHARMONICITY_GHZ == pytest.approx(
            -0.310)

    def test_paddings(self):
        assert constants.QUBIT_PADDING_MM == 0.4
        assert constants.RESONATOR_PADDING_MM == 0.1


class TestSegmentScaling:
    @pytest.mark.parametrize("name", ["grid-25", "falcon-27"])
    def test_paper_cell_ratios(self, name):
        """Table II: lb=0.2 has ~2.1x and lb=0.4 ~1/1.6x the cells of 0.3."""
        counts = {}
        netlist = build_netlist(get_topology(name))
        for lb in (0.2, 0.3, 0.4):
            problem = build_problem(netlist, PlacerConfig(segment_size_mm=lb))
            counts[lb] = problem.num_instances
        assert counts[0.2] / counts[0.3] == pytest.approx(2.1, abs=0.2)
        assert counts[0.3] / counts[0.4] == pytest.approx(1.65, abs=0.2)

"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    """Run one example in a subprocess; returns its stdout."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "grid-25")
        assert "Layout comparison" in out
        assert "qplacer" in out and "classic" in out and "human" in out

    def test_falcon_layout(self, tmp_path):
        out = run_example("falcon_layout.py", str(tmp_path))
        assert "TM110" in out
        assert (tmp_path / "falcon_layout.svg").exists()
        assert (tmp_path / "falcon_layout.gds").exists()
        assert (tmp_path / "falcon_layout.json").exists()

    def test_segment_size_sweep(self):
        out = run_example("segment_size_sweep.py", "grid-25")
        assert "lb (mm)" in out
        assert "Mean across topologies" in out

    def test_crosstalk_study(self):
        out = run_example("crosstalk_study.py")
        assert "Fig.4" in out
        assert "TM110" in out

    def test_custom_topology(self):
        out = run_example("custom_topology.py")
        assert "braced" in out.lower() or "Custom topology" in out
        assert "fidelity" in out

    def test_robustness_study(self):
        out = run_example("robustness_study.py", "grid-25")
        assert "disorder" in out.lower()
        assert "sabre" in out

    def test_full_evaluation_reduced(self, tmp_path):
        out_file = tmp_path / "eval.txt"
        run_example("full_evaluation.py", "--mappings", "2",
                    "--out", str(out_file), "--skip-sweep", timeout=500)
        text = out_file.read_text()
        assert "Fig.11" in text and "Fig.12" in text and "Fig.13" in text
        assert "Headline numbers" in text

"""Unit tests for the workload registry, suites, and name resolution."""

import numpy as np
import pytest

from repro.circuits.library import (FAMILY_MIN_WIDTHS, PAPER_BENCHMARKS,
                                    get_benchmark)
from repro.workloads import (SUITES, WORKLOAD_FAMILIES, WorkloadSpec,
                             build_workload, get_workload,
                             parse_workload_name, resolve_workload_names,
                             suite_workloads)

from ..circuits.util_sim import circuit_unitary, unitaries_equal_up_to_phase


class TestParsing:
    def test_basic_name(self):
        spec = parse_workload_name("qaoa-216")
        assert spec == WorkloadSpec("qaoa", 216)
        assert spec.name == "qaoa-216"

    def test_depth_and_seed_suffixes(self):
        spec = parse_workload_name("qv-128-d6-s3")
        assert spec == WorkloadSpec("qv", 128, depth=6, seed=3)
        assert spec.name == "qv-128-d6-s3"

    def test_name_round_trip(self):
        for name in ("bv-4", "clifford-200-d12", "qv-64-d8-s5", "ghz-1121"):
            assert parse_workload_name(name).name == name

    @pytest.mark.parametrize("bad", ["qaoa", "qaoa-x", "shor-9",
                                     "qaoa-4-z9", "qv-8-d"])
    def test_bad_names(self, bad):
        with pytest.raises(ValueError):
            parse_workload_name(bad)


class TestValidation:
    def test_min_width_rejected_with_clear_error(self):
        with pytest.raises(ValueError, match="requires width >= 2"):
            get_workload("qaoa-1")

    def test_depth_on_depthless_family(self):
        with pytest.raises(ValueError, match="no depth parameter"):
            get_workload("bv-16-d3")

    def test_nonpositive_depth(self):
        with pytest.raises(ValueError, match="depth must be >= 1"):
            get_workload("qaoa-8-d0")

    def test_min_widths_match_library(self):
        for family, minimum in FAMILY_MIN_WIDTHS.items():
            assert WORKLOAD_FAMILIES[family].min_width == minimum


class TestBuilding:
    @pytest.mark.parametrize("name,width", [
        ("ghz-16", 16), ("qft-8", 8), ("clifford-12-d4", 12),
        ("qv-8-d3-s1", 8), ("hhqaoa-32", 32), ("bv-64", 64),
        ("qaoa-24-d2", 24), ("ising-10-d2", 10), ("qgan-12-d3", 12),
    ])
    def test_width_honored_and_named(self, name, width):
        circuit = get_workload(name)
        assert circuit.num_qubits == width
        assert circuit.name == name

    def test_randomized_families_reproducible(self):
        for name in ("clifford-10-d5-s7", "qv-8-d4-s7"):
            assert get_workload(name).gates == get_workload(name).gates

    def test_seed_changes_randomized_circuits(self):
        assert (get_workload("clifford-10-d5-s1").gates
                != get_workload("clifford-10-d5-s2").gates)
        assert (get_workload("qv-8-d4-s1").gates
                != get_workload("qv-8-d4-s2").gates)

    def test_ghz_statevector(self):
        circuit = get_workload("ghz-3")
        state = circuit_unitary(circuit)[:, 0]
        expected = np.zeros(8, dtype=complex)
        expected[0] = expected[7] = 1 / np.sqrt(2)
        assert np.allclose(np.abs(state), np.abs(expected), atol=1e-9)

    def test_qft_matches_fourier_matrix(self):
        circuit = get_workload("qft-3")
        n = 8
        omega = np.exp(2j * np.pi / n)
        dft = np.array([[omega ** (j * k) for k in range(n)]
                        for j in range(n)]) / np.sqrt(n)
        assert unitaries_equal_up_to_phase(circuit_unitary(circuit), dft)

    def test_hhqaoa_edges_are_sparse(self):
        # Hardware-aware instances must stay near the heavy-hex degree
        # bound (<= 3), unlike the ring+chord default instance.
        circuit = get_workload("hhqaoa-64")
        degree = {}
        for gate in circuit.gates:
            if gate.name == "rzz":
                for q in gate.qubits:
                    degree[q] = degree.get(q, 0) + 1
        assert max(degree.values()) <= 3


class TestSuites:
    def test_paper8_matches_library(self):
        assert tuple(s.name for s in SUITES["paper-8"]) == PAPER_BENCHMARKS

    def test_condor_suites_are_wide(self):
        for suite in ("condor-433", "condor-1121"):
            assert all(spec.width >= 100 for spec in SUITES[suite])

    def test_every_suite_spec_is_buildable(self):
        # Widths checked without building the giant circuits.
        for specs in SUITES.values():
            for spec in specs:
                family = WORKLOAD_FAMILIES[spec.family]
                assert spec.width >= family.min_width
                if spec.depth is not None:
                    assert family.supports_depth

    def test_unknown_suite(self):
        with pytest.raises(KeyError, match="known"):
            suite_workloads("nope-9")

    def test_resolve_workload_names(self):
        assert resolve_workload_names("paper-8") == PAPER_BENCHMARKS
        assert resolve_workload_names(("ghz-8", "bv-4")) == ("ghz-8", "bv-4")
        assert resolve_workload_names("ghz-8") == ("ghz-8",)


class TestLibraryDelegation:
    def test_get_benchmark_accepts_registry_names(self):
        assert get_benchmark("ghz-64").num_qubits == 64
        assert get_benchmark("qv-8-d3-s1").name == "qv-8-d3-s1"

    def test_get_benchmark_min_width_error(self):
        with pytest.raises(ValueError, match="requires width >= 2"):
            get_benchmark("qaoa-1")

    def test_get_benchmark_rejects_unknown(self):
        with pytest.raises(ValueError):
            get_benchmark("shor-9")

    def test_paper_names_still_resolve(self):
        for name in PAPER_BENCHMARKS:
            assert get_benchmark(name).name == name

    def test_build_workload_equals_get_benchmark(self):
        spec = WorkloadSpec("bv", 16)
        assert build_workload(spec).gates == get_benchmark("bv-16").gates

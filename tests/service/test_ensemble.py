"""The ``ensemble`` request kind: parsing, digests, live execution."""

from __future__ import annotations

import pytest

from repro.core import PlacerConfig
from repro.service import PlacementService, ServiceClient
from repro.service.requests import (EnsembleRequest, MapRequest,
                                    RequestError, check_options,
                                    parse_request)
from repro.service.store import request_digest

FAST = {"max_iterations": 60, "min_iterations": 10, "num_bins": 32}


class TestParseEnsemble:
    def test_defaults(self):
        req = parse_request("ensemble", {"topology": "grid-25"})
        assert isinstance(req, EnsembleRequest)
        assert req.sigmas == (0.01, 0.02, 0.05)
        assert req.samples == 64
        assert req.repair_samples == 0
        assert req.strategy == "qplacer"

    def test_sigmas_list_and_csv_coalesce(self):
        a = parse_request("ensemble", {"topology": "grid-25",
                                       "sigmas": [0.01, 0.05]})
        b = parse_request("ensemble", {"topology": "grid-25",
                                       "sigmas": "0.01,0.05"})
        assert a.sigmas == (0.01, 0.05)
        assert a == b
        assert request_digest("ensemble", a) \
            == request_digest("ensemble", b)

    def test_config_dict_becomes_placer_config(self):
        req = parse_request("ensemble", {"topology": "grid-25",
                                         "config": FAST})
        assert isinstance(req.config, PlacerConfig)

    @pytest.mark.parametrize("payload,fragment", [
        ({"topology": "no-such"}, "unknown topology"),
        ({"topology": "grid-25", "sigmas": []}, "at least one sigma"),
        ({"topology": "grid-25", "sigmas": [2.0]}, "in [0, 1]"),
        ({"topology": "grid-25", "sigmas": ["x"]}, "numbers"),
        ({"topology": "grid-25", "samples": 0}, "samples"),
        ({"topology": "grid-25", "samples": 200_000}, "samples"),
        ({"topology": "grid-25", "strategy": "bogus"}, "strategy"),
        ({"topology": "grid-25", "resonator_sigma_scale": -1.0},
         "resonator_sigma_scale"),
        ({"topology": "grid-25", "repair_samples": -1}, "repair"),
        ({"topology": "grid-25", "samples": 4, "repair_samples": 8},
         "exceed"),
        ({"topology": "grid-25", "max_ph_percent": -0.1},
         "max_ph_percent"),
        ({"topology": "grid-25", "bootstrap": -1}, "bootstrap"),
    ])
    def test_rejections(self, payload, fragment):
        with pytest.raises(RequestError) as err:
            parse_request("ensemble", payload)
        assert fragment in str(err.value)

    def test_chunk_size_is_a_valid_option(self):
        check_options("ensemble", {"chunk_size": 8})
        with pytest.raises(RequestError):
            check_options("ensemble", {"bogus": 1})

    def test_digest_tracks_request_fields(self):
        base = parse_request("ensemble", {"topology": "grid-25"})
        for over in ({"samples": 32}, {"base_seed": 1},
                     {"sigmas": [0.04]}, {"repair_samples": 2}):
            other = parse_request("ensemble",
                                  {"topology": "grid-25", **over})
            assert request_digest("ensemble", other) \
                != request_digest("ensemble", base)


class TestMapDigestCoalescing:
    """Layer-1 coalescing: aliased workload names digest identically."""

    def test_aliased_benchmarks_share_a_digest(self):
        a = parse_request("map", {"topology": "grid-25",
                                  "benchmark": "ghz-8"})
        b = parse_request("map", {"topology": "grid-25",
                                  "benchmark": "ghz-8-s0"})
        assert a.benchmark != b.benchmark
        assert request_digest("map", a) == request_digest("map", b)

    def test_distinct_circuits_do_not_coalesce(self):
        a = parse_request("map", {"topology": "grid-25",
                                  "benchmark": "ghz-8"})
        b = parse_request("map", {"topology": "grid-25",
                                  "benchmark": "ghz-9"})
        assert request_digest("map", a) != request_digest("map", b)

    def test_digest_document_keeps_mapping_fields(self):
        req = parse_request("map", {"topology": "grid-25",
                                    "benchmark": "ghz-8",
                                    "num_mappings": 3})
        document = req.digest_document()
        assert document["num_mappings"] == 3
        assert "circuit_digest" in document
        assert "benchmark" not in document

    def test_unknown_circuit_falls_back_to_the_name(self):
        req = MapRequest(topology="grid-25", benchmark="not-a-workload")
        document = req.digest_document()
        assert document["benchmark"] == "not-a-workload"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("ensemble-service")
    svc = PlacementService(store_dir=root, port=0, workers=1,
                           runner_workers=1)
    with svc:
        yield svc


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.base_url, timeout=30.0)


class TestEnsemblePipeline:
    REQUEST = {"topology": "grid-25", "sigmas": [0.05], "samples": 4,
               "repair_samples": 2, "config": FAST, "bootstrap": 20}

    def test_live_ensemble_round_trip(self, client):
        result = client.run("ensemble", dict(self.REQUEST),
                            options={"chunk_size": 2}, timeout=300)
        assert result["kind"] == "ensemble"
        assert result["samples"] == 4
        point, = result["points"]
        assert point["sigma_qubit_ghz"] == 0.05
        assert point["chunks"] == 2
        assert 0.0 <= point["yield"] <= point["yield_after_repair"] <= 1.0
        assert point["repair"]["legal_all"]

    def test_progress_streams_one_entry_per_point(self, client):
        # Distinct base_seed: a fresh digest, so the executor actually
        # runs instead of serving the first test's cached artifact.
        job = client.submit("ensemble",
                            dict(self.REQUEST, base_seed=1),
                            options={"chunk_size": 2})
        record = client.wait(job["job_id"], timeout=300)
        progress = record.get("progress") or {}
        assert progress.get("published") == 1
        assert progress.get("total") == 1
        assert "yield" in progress

    def test_resubmit_served_from_the_artifact_store(self, client,
                                                     service):
        first = client.submit("ensemble", dict(self.REQUEST),
                              options={"chunk_size": 2})
        client.wait(first["job_id"], timeout=300)
        again = client.submit("ensemble", dict(self.REQUEST),
                              options={"chunk_size": 2})
        assert again["disposition"] in ("cache_hit", "coalesced")
        assert again["digest"] == first["digest"]

    def test_ensemble_client_convenience(self, client):
        result = client.ensemble("grid-25", [0.05], samples=4,
                                 repair_samples=2, config=FAST,
                                 bootstrap=20,
                                 options={"chunk_size": 2}, timeout=300)
        assert result["kind"] == "ensemble"

"""Real-executor end-to-end tests (fast configs, one small topology).

The HTTP tests stub the executors; these run the actual pipelines
through the service and pin the service-vs-direct identity contract at
test scale (the eagle-scale version lives in
``benchmarks/bench_perf_service.py``).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import (build_suite, fidelity_experiment,
                                        _effective_config)
from repro.analysis.runner import ParallelRunner
from repro.core import PlacerConfig
from repro.service import PlacementService, ServiceClient

FAST = {"max_iterations": 60, "min_iterations": 10, "num_bins": 32}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("service")
    svc = PlacementService(store_dir=root, port=0, workers=2,
                           runner_workers=1)
    with svc:
        yield svc


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.base_url, timeout=30.0)


class TestPlacePipeline:
    def test_place_result_and_layout_round_trip(self, client):
        result = client.run("place", {
            "topology": "grid-25", "strategies": ["qplacer"],
            "config": FAST}, timeout=300)
        entry = result["strategies"]["qplacer"]
        assert entry["num_cells"] > 0
        assert entry["metrics"]["amer_mm2"] > 0
        # the served layout deserialises back into a Layout
        from repro.io.serialization import layout_from_dict

        layout = layout_from_dict(entry["layout"])
        assert layout.strategy == "qplacer"
        assert layout.positions.shape[1] == 2

    def test_place_payload_carries_phase_telemetry(self, client):
        result = client.run("place", {
            "topology": "grid-25", "strategies": ["qplacer"],
            "config": FAST}, timeout=300)
        entry = result["strategies"]["qplacer"]
        # Legalizer + detailed telemetry ride in the payload.
        assert entry["legalize"]["phase_seconds"]["legalize"] > 0
        assert entry["detailed"] is None  # grid-25 resolves to 0 passes
        phases = entry["phases"]
        assert {"preprocess", "global", "legalize"} <= set(phases)
        top = sum(s for path, s in phases.items() if "/" not in path)
        assert top <= 1.05 * entry["runtime_s"]

    def test_metrics_aggregate_place_phases(self, client):
        client.run("place", {"topology": "grid-25",
                             "strategies": ["qplacer"],
                             "config": FAST}, timeout=300)
        metrics = client.metrics()
        assert "legalize" in metrics["phases"]
        assert metrics["phases"]["legalize"]["seconds"] > 0
        assert metrics["phases"]["legalize"]["calls"] >= 1


class TestMapPipeline:
    def test_map_summary_matches_direct_computation(self, client):
        request = {"benchmark": "bv-4", "topology": "grid-25",
                   "num_mappings": 3, "base_seed": 2}
        result = client.run("map", request, timeout=300)
        from repro.circuits.library import get_benchmark
        from repro.circuits.mapping import evaluation_mappings
        from repro.devices.topology import get_topology

        direct = evaluation_mappings(get_benchmark("bv-4"),
                                     get_topology("grid-25"),
                                     num_mappings=3, base_seed=2)
        assert len(result["mappings"]) == 3
        for row, mapped in zip(result["mappings"], direct):
            assert row["swap_count"] == mapped.swap_count
            assert row["duration_ns"] == mapped.duration_ns
            assert row["active_qubits"] == len(mapped.active_qubits)
        assert result["total_swaps"] == sum(m.swap_count for m in direct)

    def test_chunked_map_has_same_digest_and_result(self, client, service):
        request = {"benchmark": "bv-4", "topology": "grid-25",
                   "num_mappings": 4, "base_seed": 11}
        plain = client.submit("map", request)
        baseline = client.result(plain["job_id"], timeout=300)
        # force a recompute of the same request with chunking by
        # clearing the artifact (options are not part of the digest)
        service.store.path(plain["digest"]).unlink()
        chunked_job = client.submit("map", request,
                                    options={"chunk_size": 2})
        assert chunked_job["digest"] == plain["digest"]
        chunked = client.result(chunked_job["job_id"], timeout=300)
        assert chunked == baseline


class TestFidelityPipeline:
    def test_fidelity_matches_direct_experiment(self, client):
        request = {"topology": "grid-25", "workloads": ["bv-4", "ising-4"],
                   "num_mappings": 2, "strategies": ["qplacer"],
                   "config": FAST}
        result = client.run("fidelity", request, timeout=300)
        config = _effective_config(PlacerConfig(**FAST), 0, 0.3)
        suite = build_suite("grid-25", strategies=("qplacer",),
                            config=config)
        direct = fidelity_experiment(suite, ("bv-4", "ising-4"),
                                     num_mappings=2)
        assert result["fidelity"] == json.loads(json.dumps(direct))


class TestWarmStartPipeline:
    """Warm-starting place requests from the artifact store (ISSUE 6)."""

    def test_warm_start_seeds_from_stored_placement(self, client):
        cold = client.run("place", {
            "topology": "grid-25", "strategies": ["qplacer"],
            "config": FAST}, timeout=300)
        assert "warm_start" not in cold
        warm = client.run("place", {
            "topology": "grid-25", "strategies": ["qplacer"],
            "config": FAST, "warm_start": True}, timeout=300)
        assert warm["warm_start"]["seeded"] is True
        assert isinstance(warm["warm_start"]["source_digest"], str)
        entry = warm["strategies"]["qplacer"]
        assert entry["metrics"]["amer_mm2"] > 0
        assert entry["iterations"] >= 1

    def test_warm_start_without_source_falls_back_cold(self, client):
        result = client.run("place", {
            "topology": "falcon-27", "strategies": ["qplacer"],
            "config": FAST, "warm_start": True, "seed": 7}, timeout=300)
        assert result["warm_start"] == {"seeded": False,
                                        "source_digest": None}
        assert result["strategies"]["qplacer"]["metrics"]["amer_mm2"] > 0

    def test_warm_and_cold_requests_digest_differently(self):
        from repro.service.requests import parse_request
        from repro.service.store import request_digest

        cold = parse_request("place", {"topology": "grid-25"})
        warm = parse_request("place", {"topology": "grid-25",
                                       "warm_start": True})
        assert request_digest("place", cold) != request_digest("place", warm)

    def test_warm_start_positions_helper(self, tmp_path):
        import numpy as np

        from repro.analysis.experiments import warm_start_positions
        from repro.service.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        store.put("aa" * 32, {
            "topology": "grid-25", "segment_size_mm": 0.3,
            "strategies": {
                "qplacer": {"layout": {"positions": [[1.0, 2.0]]}},
            }},
            metadata={"kind": "place", "created_at": 10.0,
                      "request": {"topology": "grid-25",
                                  "segment_size_mm": 0.3}})
        seeds, source = warm_start_positions(
            store, "grid-25", 0.3, ("qplacer", "classic", "human"))
        assert source == "aa" * 32
        assert np.array_equal(seeds["qplacer"], [[1.0, 2.0]])
        # classic falls back to the only stored layout; human never seeds
        assert np.array_equal(seeds["classic"], [[1.0, 2.0]])
        assert "human" not in seeds
        assert warm_start_positions(store, "falcon-27", 0.3,
                                    ("qplacer",)) == ({}, None)

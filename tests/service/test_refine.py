"""End-to-end anytime-refinement tests over the real HTTP API.

Unlike ``test_api.py`` (stub executors), these run the *real* place and
refine executors on a small topology: the acceptance contract is that a
refine job publishes strictly non-worsening placement artifacts, round
by round, observable through ``GET /jobs/<id>`` / ``GET
/artifacts/<digest>`` while the job is still running.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.runner import ParallelRunner
from repro.service import PlacementService, ServiceClient

#: Reduced engine budget so the source placement is quick.
FAST_CONFIG = {"max_iterations": 60, "min_iterations": 10, "num_bins": 32}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("refine-service")
    svc = PlacementService(store_dir=tmp / "store", port=0, workers=1)
    svc.scheduler.runner = ParallelRunner(max_workers=1,
                                          cache_dir=tmp / "cache")
    with svc:
        yield svc


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(service.base_url, timeout=30.0)


@pytest.fixture(scope="module")
def source_digest(client):
    job = client.submit("place", {"topology": "grid-25",
                                  "strategies": ["qplacer"],
                                  "config": FAST_CONFIG})
    record = client.wait(job["job_id"], timeout=180.0)
    return record["artifact"]


class TestRefineEndToEnd:
    def test_publishes_monotone_artifacts(self, client, source_digest):
        job = client.submit("refine", {"source_digest": source_digest,
                                       "deadline_s": 60.0,
                                       "rounds": 4,
                                       "moves_per_round": 40})
        job_id = job["job_id"]
        observed = []
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            record = client.job(job_id)
            progress = record.get("progress") or {}
            if progress.get("published"):
                # The artifact digest is exposed as soon as the first
                # round publishes, before the job settles.
                assert record["artifact"] == record["digest"]
                artifact = client.artifact(record["artifact"])
                observed.append(artifact["result"]["published_costs"])
            if record["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.02)
        assert record["state"] == "done", record.get("error")

        final = client.artifact(record["artifact"])["result"]
        costs = final["published_costs"]
        assert len(costs) >= 3
        assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))
        assert final["rounds_completed"] == len(costs)
        assert final["strategy"] == "qplacer"
        assert final["source_digest"] == source_digest
        assert final["layout"]["format"] == "repro.layout.v1"
        assert 0.0 < final["score"] <= 1.0
        # Every snapshot observed mid-flight is a prefix-consistent,
        # monotone cost stream too.
        for snapshot in observed:
            assert all(b <= a + 1e-9
                       for a, b in zip(snapshot, snapshot[1:]))

    def test_refine_of_unknown_digest_fails_cleanly(self, client):
        job = client.submit("refine", {"source_digest": "0" * 64,
                                       "deadline_s": 5.0, "rounds": 1,
                                       "moves_per_round": 10})
        from repro.service.client import JobFailed
        with pytest.raises(JobFailed) as err:
            client.wait(job["job_id"], timeout=60.0)
        assert "not in the store" in str(err.value)

    def test_refine_request_validation(self, client):
        from repro.service import ServiceError
        with pytest.raises(ServiceError) as err:
            client.submit("refine", {"source_digest": "nope"})
        assert err.value.status == 400
        assert "64-character" in str(err.value)
        with pytest.raises(ServiceError) as err:
            client.submit("refine", {"source_digest": "0" * 64,
                                     "deadline_s": -1.0})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.submit("refine", {"source_digest": "0" * 64,
                                     "strategy": "genetic"})
        assert err.value.status == 400


class TestShutdownAuth:
    def test_shutdown_requires_token(self, tmp_path):
        svc = PlacementService(store_dir=tmp_path / "s", port=0,
                               workers=1, shutdown_token="hunter2")
        with svc:
            from repro.service import ServiceError
            anonymous = ServiceClient(svc.base_url, timeout=10.0)
            with pytest.raises(ServiceError) as err:
                anonymous.shutdown()
            assert err.value.status == 403
            wrong = ServiceClient(svc.base_url, timeout=10.0,
                                  token="wrong")
            with pytest.raises(ServiceError) as err:
                wrong.shutdown()
            assert err.value.status == 403
            # Still alive after both rejections.
            assert anonymous.healthz()["status"] == "ok"
            authed = ServiceClient(svc.base_url, timeout=10.0,
                                   token="hunter2")
            assert authed.shutdown()["status"] == "stopping"

    def test_shutdown_open_when_no_token(self, tmp_path):
        svc = PlacementService(store_dir=tmp_path / "s", port=0, workers=1)
        with svc:
            client = ServiceClient(svc.base_url, timeout=10.0)
            assert client.shutdown()["status"] == "stopping"

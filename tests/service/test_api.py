"""End-to-end HTTP tests: real server, real client, stub executors.

The server binds port 0 (a free ephemeral port) and the urllib client
drives every route.  Executors are stubs — the heavyweight pipelines
are covered by their own suites and by ``benchmarks/
bench_perf_service.py``; here we pin the HTTP contract.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.runner import ParallelRunner
from repro.service import PlacementService, ServiceClient, ServiceError
from repro.service.client import JobFailed


@pytest.fixture
def service(tmp_path):
    svc = PlacementService(store_dir=tmp_path / "store", port=0, workers=2)
    svc.scheduler.runner = ParallelRunner(max_workers=1)
    svc.scheduler.executors = {
        "place": lambda request, ctx, job: {"topology": request.topology,
                                            "seed": request.seed},
        "map": lambda request, ctx, job: {"benchmark": request.benchmark,
                                          "options": dict(job.options)},
    }
    with svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(service.base_url, timeout=10.0)


class TestRoutes:
    def test_healthz(self, client, service):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["uptime_s"] >= 0

    def test_submit_wait_artifact(self, client):
        job = client.submit("place", {"topology": "grid-25", "seed": 5})
        assert job["disposition"] == "queued"
        record = client.wait(job["job_id"], timeout=10)
        assert record["state"] == "done"
        assert record["artifact"] == job["digest"]
        document = client.artifact(record["artifact"])
        assert document["format"] == "repro.artifact.v1"
        assert document["result"] == {"topology": "grid-25", "seed": 5}

    def test_run_convenience(self, client):
        result = client.run("place", {"topology": "grid-25"}, timeout=10)
        assert result == {"topology": "grid-25", "seed": 0}

    def test_identical_resubmit_is_cache_hit(self, client):
        client.run("place", {"topology": "grid-25"}, timeout=10)
        again = client.submit("place", {"topology": "grid-25"})
        assert again["disposition"] == "cache_hit"
        assert again["state"] == "done"

    def test_options_reach_executor_without_changing_digest(self, client):
        plain = client.submit("map", {"benchmark": "bv-4",
                                      "topology": "grid-25"})
        result = client.result(plain["job_id"], timeout=10)
        assert result["options"] == {}
        hinted = client.submit("map", {"benchmark": "bv-4",
                                       "topology": "grid-25"},
                               options={"chunk_size": 2})
        # same digest: the hinted submit is answered from the store
        assert hinted["digest"] == plain["digest"]
        assert hinted["disposition"] == "cache_hit"

    def test_jobs_listing(self, client):
        client.run("place", {"topology": "grid-25"}, timeout=10)
        listing = client.jobs()
        assert len(listing["jobs"]) == 1
        assert listing["jobs"][0]["kind"] == "place"

    def test_metrics(self, client):
        client.run("place", {"topology": "grid-25"}, timeout=10)
        metrics = client.metrics()
        assert metrics["completed"] == 1
        assert metrics["computations"] == 1
        assert metrics["workers"] == 2
        assert "artifact_hit_rate" in metrics
        assert "runner_cache_hits" in metrics

    def test_job_not_found(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("job-424242")
        assert err.value.status == 404

    def test_artifact_not_found(self, client):
        with pytest.raises(ServiceError) as err:
            client.artifact("00" * 32)
        assert err.value.status == 404

    def test_bad_request_rejected_with_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("place", {"topology": "not-a-chip"})
        assert err.value.status == 400
        assert "unknown topology" in str(err.value)

    def test_unknown_kind_rejected_with_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("teleport", {"topology": "grid-25"})
        assert err.value.status == 400

    def test_unknown_field_rejected_with_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("place", {"topology": "grid-25", "warp": 9})
        assert err.value.status == 400

    def test_wrong_typed_field_rejected_with_400(self, client):
        """A type-confused value is a clean 400, not a dropped socket."""
        with pytest.raises(ServiceError) as err:
            client.submit("place", {"topology": "grid-25", "seed": "7"})
        assert err.value.status == 400

    def test_non_string_priority_rejected_with_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("place", {"topology": "grid-25"},
                          priority=["high"])
        assert err.value.status == 400

    def test_memo_fast_path_still_counts_artifact_hits(self, client):
        client.run("place", {"topology": "grid-25", "seed": 31},
                   timeout=10)
        before = client.metrics()["artifact_hits"]
        for _ in range(5):
            assert client.submit("place", {"topology": "grid-25",
                                           "seed": 31}
                                 )["disposition"] == "cache_hit"
        assert client.metrics()["artifact_hits"] >= before + 5

    def test_bad_options_rejected_with_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("map", {"benchmark": "bv-4",
                                  "topology": "grid-25"},
                          options={"chunk_size": 0})
        assert err.value.status == 400

    def test_keep_alive_survives_bodied_cancel_and_shutdownless_posts(
            self, service, client):
        """POSTs with ignored bodies must not desync a persistent
        connection (HTTP/1.1 keep-alive)."""
        import http.client
        import json as json_mod

        job = client.submit("place", {"topology": "grid-25", "seed": 77})
        client.wait(job["job_id"], timeout=10)
        conn = http.client.HTTPConnection(service.host, service.port,
                                          timeout=10)
        try:
            # cancel with a body on a persistent connection...
            conn.request("POST", f"/jobs/{job['job_id']}/cancel", body=b"{}",
                         headers={"Content-Type": "application/json"})
            first = conn.getresponse()
            assert first.status == 200
            first.read()
            # ...then reuse the same socket: must not return garbage
            conn.request("GET", "/healthz")
            second = conn.getresponse()
            assert second.status == 200
            assert json_mod.loads(second.read())["status"] == "ok"
        finally:
            conn.close()

    def test_failed_job_surfaces_error(self, service, client):
        def boom(request, ctx, job):
            raise RuntimeError("kaput")

        service.scheduler.executors["place"] = boom
        job = client.submit("place", {"topology": "grid-25", "seed": 9})
        with pytest.raises(JobFailed) as err:
            client.wait(job["job_id"], timeout=10)
        assert "kaput" in str(err.value)


class TestCancellation:
    def test_cancel_queued_job(self, service, client):
        release = threading.Event()

        def slow(request, ctx, job):
            release.wait(timeout=10)
            return {}

        service.scheduler.executors["place"] = slow
        # saturate both workers, then queue two more
        blockers = [client.submit("place", {"topology": "grid-25",
                                            "seed": s})
                    for s in (100, 101)]
        victim = client.submit("place", {"topology": "grid-25",
                                         "seed": 102})
        deadline = time.time() + 5
        while client.metrics()["busy_workers"] < 2:
            assert time.time() < deadline
            time.sleep(0.01)
        response = client.cancel(victim["job_id"])
        assert response["cancelled"] is True
        assert response["state"] == "cancelled"
        release.set()
        for job in blockers:
            client.wait(job["job_id"], timeout=10)


class TestShutdown:
    def test_shutdown_route_stops_service(self, tmp_path):
        svc = PlacementService(store_dir=tmp_path / "store", port=0,
                               workers=1)
        svc.scheduler.executors = {"place": lambda *a: {}}
        svc.start()
        client = ServiceClient(svc.base_url, timeout=10.0)
        assert client.shutdown()["status"] == "stopping"
        deadline = time.time() + 10
        while not svc._stopped.is_set():
            assert time.time() < deadline
            time.sleep(0.02)
        # a second caller must block until the drain truly completed,
        # never return into a process exit mid-drain
        svc.stop()
        assert svc.scheduler._threads == []
        assert svc._stop_done.is_set()
        with pytest.raises(ServiceError):
            ServiceClient(svc.base_url, timeout=1.0).healthz()

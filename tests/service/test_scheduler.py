"""Scheduler tests with stub executors (no placement work)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.runner import ParallelRunner
from repro.service.queue import DONE, FAILED, JobQueue
from repro.service.requests import parse_request
from repro.service.scheduler import Scheduler
from repro.service.store import ArtifactStore


def _place(**extra):
    return parse_request("place", {"topology": "grid-25", **extra})


@pytest.fixture
def stack(tmp_path):
    store = ArtifactStore(tmp_path)
    queue = JobQueue(store)
    return store, queue


def _scheduler(queue, store, executor, workers=2):
    return Scheduler(queue, store, workers=workers,
                     runner=ParallelRunner(max_workers=1),
                     executors={"place": executor})


class TestExecution:
    def test_job_runs_persists_and_finishes(self, stack):
        store, queue = stack
        calls = []

        def executor(request, ctx, job):
            calls.append(request.topology)
            return {"topology": request.topology}

        scheduler = _scheduler(queue, store, executor)
        scheduler.start()
        try:
            job, _ = queue.submit("place", _place())
            deadline = time.time() + 5
            while queue.get(job.job_id).state != DONE:
                assert time.time() < deadline
                time.sleep(0.01)
            record = store.get(job.digest)
            assert record.result == {"topology": "grid-25"}
            assert record.metadata["kind"] == "place"
            assert record.metadata["compute_s"] >= 0
            assert calls == ["grid-25"]
            assert scheduler.computed_digests == [job.digest]
        finally:
            scheduler.stop()

    def test_concurrent_identical_submits_compute_once(self, stack):
        """The dedup gate: N submits of one digest -> one executor call."""
        store, queue = stack
        release = threading.Event()
        calls = []

        def executor(request, ctx, job):
            calls.append(job.job_id)
            release.wait(timeout=5)
            return {"ok": True}

        scheduler = _scheduler(queue, store, executor, workers=2)
        scheduler.start()
        try:
            first, _ = queue.submit("place", _place())
            deadline = time.time() + 5
            while not calls:  # executor has claimed the job
                assert time.time() < deadline
                time.sleep(0.01)
            records = [queue.submit("place", _place()) for _ in range(7)]
            assert all(disp == "coalesced" for _, disp in records)
            assert all(rec is first for rec, _ in records)
            release.set()
            while queue.get(first.job_id).state != DONE:
                assert time.time() < deadline + 5
                time.sleep(0.01)
            assert len(calls) == 1
            # after completion, the same request is a store cache hit
            hit, disp = queue.submit("place", _place())
            assert disp == "cache_hit" and hit.cache_hit
            assert len(calls) == 1
        finally:
            release.set()
            scheduler.stop()

    def test_failure_records_traceback(self, stack):
        store, queue = stack

        def executor(request, ctx, job):
            raise RuntimeError("synthetic executor failure")

        scheduler = _scheduler(queue, store, executor)
        scheduler.start()
        try:
            job, _ = queue.submit("place", _place())
            deadline = time.time() + 5
            while queue.get(job.job_id).state != FAILED:
                assert time.time() < deadline
                time.sleep(0.01)
            assert "synthetic executor failure" in job.error
            assert not store.contains(job.digest)
        finally:
            scheduler.stop()

    def test_unknown_kind_fails_cleanly(self, stack):
        store, queue = stack
        scheduler = _scheduler(queue, store, lambda *a: {})
        scheduler.start()
        try:
            job, _ = queue.submit("mystery", _place())
            deadline = time.time() + 5
            while queue.get(job.job_id).state != FAILED:
                assert time.time() < deadline
                time.sleep(0.01)
            assert "no executor" in job.error
        finally:
            scheduler.stop()

    def test_stop_joins_workers(self, stack):
        store, queue = stack
        scheduler = _scheduler(queue, store, lambda *a: {})
        scheduler.start()
        scheduler.stop()
        assert scheduler.metrics()["busy_workers"] == 0
        assert scheduler._threads == []

    def test_metrics_shape(self, stack):
        store, queue = stack
        scheduler = _scheduler(queue, store, lambda *a: {})
        metrics = scheduler.metrics()
        assert metrics["workers"] == 2
        assert metrics["busy_workers"] == 0
        assert metrics["worker_utilization"] == 0.0
        assert metrics["computations"] == 0


class TestCancellationRaces:
    """ISSUE 6: cancellation/abort paths must always release the digest."""

    def test_executor_honouring_cancel_settles_as_cancelled(self, stack):
        from repro.service.queue import CANCELLED, JobCancelled

        store, queue = stack
        started = threading.Event()
        release = threading.Event()

        def executor(request, ctx, job):
            started.set()
            release.wait(timeout=5)
            if job.cancel_requested:
                raise JobCancelled()
            return {"ok": True}

        scheduler = _scheduler(queue, store, executor, workers=1)
        scheduler.start()
        try:
            job, _ = queue.submit("place", _place())
            assert started.wait(timeout=5)
            assert queue.cancel(job.job_id) is False  # running: flag only
            release.set()
            deadline = time.time() + 5
            while queue.get(job.job_id).state != CANCELLED:
                assert time.time() < deadline
                time.sleep(0.01)
            # no artifact was stored and the digest is free again
            assert store.get(job.digest) is None
            again, disp = queue.submit("place", _place())
            assert disp == "queued" and again.job_id != job.job_id
        finally:
            release.set()
            scheduler.stop()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_base_exception_in_executor_releases_digest(self, stack):
        """SystemExit out of an executor used to kill the worker thread
        with the job stuck RUNNING — every later identical submission
        then coalesced onto the zombie and hung forever.  (The re-raise
        that kills the thread is deliberate, hence the warning filter.)"""
        store, queue = stack

        def executor(request, ctx, job):
            raise SystemExit(3)

        scheduler = _scheduler(queue, store, executor, workers=1)
        scheduler.start()
        try:
            job, _ = queue.submit("place", _place())
            deadline = time.time() + 5
            while queue.get(job.job_id).state != FAILED:
                assert time.time() < deadline
                time.sleep(0.01)
            assert "SystemExit" in queue.get(job.job_id).error
            # the regression check: a resubmit must start fresh, not
            # coalesce onto the dead job
            again, disp = queue.submit("place", _place())
            assert disp == "queued" and again.job_id != job.job_id
        finally:
            scheduler.stop()

    def test_cancel_before_claim_skips_execution(self, stack):
        from repro.service.queue import CANCELLED

        store, queue = stack
        calls = []

        def executor(request, ctx, job):
            calls.append(job.job_id)
            return {"ok": True}

        scheduler = _scheduler(queue, store, executor, workers=1)
        # cancel lands between queueing and the claim: mark the flag
        # directly (a coalesced job's cancel cannot flip QUEUED state)
        job, _ = queue.submit("place", _place())
        queue.submit("place", _place())  # coalesce: cancel won't kill it
        assert queue.cancel(job.job_id) is False
        assert queue.cancel(job.job_id) is False
        job.cancel_requested = True  # the claim-window race, forced
        scheduler.start()
        try:
            deadline = time.time() + 5
            while queue.get(job.job_id).state != CANCELLED:
                assert time.time() < deadline
                time.sleep(0.01)
            assert calls == []  # never executed
            again, disp = queue.submit("place", _place())
            assert disp == "queued"
        finally:
            scheduler.stop()

"""Request parsing, normalisation, and validation rules."""

from __future__ import annotations

import pytest

from repro.core import PlacerConfig
from repro.service.requests import (EvaluateRequest, FidelityRequest,
                                    MapRequest, PlaceRequest, RequestError,
                                    check_options, parse_request)


class TestParsePlace:
    def test_minimal(self):
        req = parse_request("place", {"topology": "grid-25"})
        assert isinstance(req, PlaceRequest)
        assert req.strategies == ("qplacer", "classic", "human")
        assert req.include_layouts

    @pytest.mark.parametrize("key,value", [("seed", 5),
                                           ("segment_size_mm", 0.4)])
    def test_request_level_fields_rejected_inside_config(self, key, value):
        """Executors overwrite config-embedded seed/lb with the
        request-level fields, so accepting them would compute one thing
        and digest another."""
        with pytest.raises(RequestError) as err:
            parse_request("place", {"topology": "grid-25",
                                    "config": {key: value}})
        assert "request level" in str(err.value)

    def test_config_dict_becomes_placer_config(self):
        req = parse_request("place", {"topology": "grid-25",
                                      "config": {"num_bins": 32}})
        assert isinstance(req.config, PlacerConfig)
        assert req.config.num_bins == 32

    def test_strategies_list_and_csv(self):
        a = parse_request("place", {"topology": "grid-25",
                                    "strategies": ["qplacer"]})
        b = parse_request("place", {"topology": "grid-25",
                                    "strategies": "qplacer"})
        assert a.strategies == b.strategies == ("qplacer",)

    @pytest.mark.parametrize("payload,fragment", [
        ({"topology": "nowhere-9"}, "unknown topology"),
        ({"topology": "grid-25", "strategies": ["telepathy"]},
         "strategies"),
        ({"topology": "grid-25", "strategies": []}, "strategies"),
        ({"topology": "grid-25", "bogus_field": 1}, "bogus_field"),
        ({"topology": "grid-25", "config": {"bogus": 1}}, "config"),
        ({"topology": "grid-25", "config": {"num_bins": 2}}, "config"),
    ])
    def test_rejections(self, payload, fragment):
        with pytest.raises(RequestError) as err:
            parse_request("place", payload)
        assert fragment in str(err.value)

    def test_unknown_kind(self):
        with pytest.raises(RequestError):
            parse_request("divine", {"topology": "grid-25"})

    def test_non_string_kind(self):
        with pytest.raises(RequestError):
            parse_request(["map"], {"topology": "grid-25"})

    def test_non_mapping_payload(self):
        with pytest.raises(RequestError):
            parse_request("place", [1, 2, 3])

    @pytest.mark.parametrize("field,value", [
        ("seed", "7"),
        ("segment_size_mm", "0.3"),
        ("include_layouts", 1),
        ("topology", 25),
    ])
    def test_wrong_typed_fields_are_request_errors(self, field, value):
        """Type confusion must be a 400, never an escaping TypeError."""
        with pytest.raises(RequestError):
            parse_request("place", {"topology": "grid-25", field: value})


class TestParseFidelity:
    def test_suite_name_expands(self):
        req = parse_request("fidelity", {"topology": "grid-25",
                                         "workloads": "paper-8"})
        assert isinstance(req, FidelityRequest)
        assert len(req.workloads) == 8

    def test_empty_workloads_rejected(self):
        with pytest.raises(RequestError):
            parse_request("fidelity", {"topology": "grid-25"})

    def test_bad_workload_rejected(self):
        with pytest.raises(RequestError):
            parse_request("fidelity", {"topology": "grid-25",
                                       "workloads": ["astrology-7"]})


class TestParseMap:
    def test_minimal(self):
        req = parse_request("map", {"benchmark": "bv-4",
                                    "topology": "grid-25"})
        assert isinstance(req, MapRequest)
        assert req.router == "basic"

    def test_bad_router(self):
        with pytest.raises(RequestError):
            parse_request("map", {"benchmark": "bv-4",
                                  "topology": "grid-25",
                                  "router": "teleport"})

    def test_bad_num_mappings(self):
        with pytest.raises(RequestError):
            parse_request("map", {"benchmark": "bv-4",
                                  "topology": "grid-25",
                                  "num_mappings": 0})

    def test_string_num_mappings_is_request_error(self):
        with pytest.raises(RequestError):
            parse_request("map", {"benchmark": "bv-4",
                                  "topology": "grid-25",
                                  "num_mappings": "5"})

    def test_unknown_benchmark_rejected_at_parse_time(self):
        with pytest.raises(RequestError) as err:
            parse_request("map", {"benchmark": "astrology-7",
                                  "topology": "grid-25"})
        assert "benchmark" in str(err.value)

    def test_bad_optimization_level(self):
        with pytest.raises(RequestError):
            parse_request("map", {"benchmark": "bv-4",
                                  "topology": "grid-25",
                                  "optimization_level": 7})


class TestCheckOptions:
    def test_valid_options_pass_through(self):
        assert check_options("map", {"chunk_size": 4}) == {"chunk_size": 4}
        assert check_options("fidelity", {"shard_count": 2}) == \
            {"shard_count": 2}
        assert check_options("place", {}) == {}

    @pytest.mark.parametrize("kind,options", [
        ("map", {"shard_count": 2}),      # wrong kind's option
        ("place", {"chunk_size": 2}),     # place takes none
        ("map", {"chunk_size": 0}),       # non-positive
        ("map", {"chunk_size": "2"}),     # wrong type
        ("map", {"chunk_size": True}),    # bool is not an int here
        ("fidelity", {"shard_count": -1}),
    ])
    def test_invalid_options_rejected(self, kind, options):
        """Options never enter the digest, so a bad one would poison
        every identical request coalescing onto the job — reject at
        submit time instead."""
        with pytest.raises(RequestError):
            check_options(kind, options)


class TestParseEvaluate:
    def test_paper_defaults_materialise(self):
        req = parse_request("evaluate", {})
        assert isinstance(req, EvaluateRequest)
        assert len(req.topologies) == 6
        assert len(req.benchmarks) == 8

    def test_explicit_defaults_coalesce(self):
        from repro.circuits.library import PAPER_BENCHMARKS
        from repro.devices.topology import PAPER_TOPOLOGY_ORDER
        from repro.service.store import request_digest

        a = parse_request("evaluate", {})
        b = parse_request("evaluate",
                          {"topologies": list(PAPER_TOPOLOGY_ORDER),
                           "benchmarks": list(PAPER_BENCHMARKS)})
        assert request_digest("evaluate", a) == request_digest("evaluate", b)

    def test_bad_topology_in_list(self):
        with pytest.raises(RequestError):
            parse_request("evaluate", {"topologies": ["grid-25", "oops"]})

    def test_bad_benchmark_in_list(self):
        with pytest.raises(RequestError):
            parse_request("evaluate", {"topologies": ["grid-25"],
                                       "benchmarks": ["bv-4", "vibes-3"]})


class TestRefineRequest:
    def test_parses_with_defaults(self):
        request = parse_request("refine", {"source_digest": "ab" * 32})
        assert request.kind == "refine"
        assert request.strategy == "qplacer"
        assert request.deadline_s == 30.0

    def test_digest_must_be_64_hex(self):
        for bad in ("", "xyz", "AB" * 32, "ab" * 31):
            with pytest.raises(RequestError):
                parse_request("refine", {"source_digest": bad})

    def test_strategy_validated(self):
        with pytest.raises(RequestError) as err:
            parse_request("refine", {"source_digest": "ab" * 32,
                                     "strategy": "genetic"})
        assert "qplacer" in str(err.value)

    def test_bounds_validated(self):
        base = {"source_digest": "ab" * 32}
        for overrides in ({"deadline_s": 0.0}, {"deadline_s": 4000.0},
                          {"rounds": 0}, {"moves_per_round": 0},
                          {"rounds": 20_000}):
            with pytest.raises(RequestError):
                parse_request("refine", {**base, **overrides})

    def test_deadline_in_digest(self):
        from repro.service.store import request_digest
        a = parse_request("refine", {"source_digest": "ab" * 32,
                                     "deadline_s": 5.0})
        b = parse_request("refine", {"source_digest": "ab" * 32,
                                     "deadline_s": 10.0})
        assert request_digest("refine", a) != request_digest("refine", b)

    def test_refine_accepts_no_options(self):
        from repro.service.requests import check_options
        with pytest.raises(RequestError):
            check_options("refine", {"shard_count": 2})

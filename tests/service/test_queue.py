"""Job-queue semantics: dedup, priorities, states, cancellation."""

from __future__ import annotations

import threading

import pytest

from repro.service.queue import (CANCELLED, DONE, FAILED, QUEUED, RUNNING,
                                 JobQueue)
from repro.service.requests import parse_request
from repro.service.store import ArtifactStore


@pytest.fixture
def queue(tmp_path):
    return JobQueue(ArtifactStore(tmp_path))


def _place(topology="grid-25", **extra):
    return parse_request("place", {"topology": topology, **extra})


class TestDedup:
    def test_identical_inflight_coalesces(self, queue):
        a, disp_a = queue.submit("place", _place())
        b, disp_b = queue.submit("place", _place())
        assert disp_a == "queued" and disp_b == "coalesced"
        assert a is b
        assert a.submissions == 2
        assert queue.coalesced == 1
        assert queue.depth() == 1

    def test_distinct_requests_do_not_coalesce(self, queue):
        a, _ = queue.submit("place", _place(seed=0))
        b, _ = queue.submit("place", _place(seed=1))
        assert a is not b
        assert queue.depth() == 2

    def test_running_job_still_coalesces(self, queue):
        queue.submit("place", _place())
        job = queue.claim(timeout=0.1)
        assert job.state == RUNNING
        again, disp = queue.submit("place", _place())
        assert disp == "coalesced" and again is job

    def test_finished_job_answers_from_store(self, queue):
        record, _ = queue.submit("place", _place())
        job = queue.claim(timeout=0.1)
        queue.store.put(job.digest, {"ok": True})
        queue.finish(job.job_id)
        hit, disp = queue.submit("place", _place())
        assert disp == "cache_hit"
        assert hit.state == DONE and hit.cache_hit
        assert hit.job_id != record.job_id  # a fresh record, born done

    def test_failed_job_recomputes(self, queue):
        queue.submit("place", _place())
        job = queue.claim(timeout=0.1)
        queue.fail(job.job_id, "boom")
        assert queue.get(job.job_id).state == FAILED
        again, disp = queue.submit("place", _place())
        assert disp == "queued" and again.job_id != job.job_id


class TestPriorities:
    def test_pop_order_by_tier_then_fifo(self, queue):
        low, _ = queue.submit("place", _place(seed=1), priority="low")
        norm1, _ = queue.submit("place", _place(seed=2))
        high, _ = queue.submit("place", _place(seed=3), priority="high")
        norm2, _ = queue.submit("place", _place(seed=4))
        order = [queue.claim(timeout=0.1).job_id for _ in range(4)]
        assert order == [high.job_id, norm1.job_id, norm2.job_id,
                         low.job_id]

    def test_unknown_priority_rejected(self, queue):
        with pytest.raises(ValueError):
            queue.submit("place", _place(), priority="urgent")


class TestCancellation:
    def test_queued_job_cancels(self, queue):
        job, _ = queue.submit("place", _place())
        assert queue.cancel(job.job_id) is True
        assert job.state == CANCELLED
        assert queue.claim(timeout=0.05) is None
        # the digest is free again: a resubmit queues a new job
        again, disp = queue.submit("place", _place())
        assert disp == "queued" and again.job_id != job.job_id

    def test_running_job_gets_best_effort_flag(self, queue):
        queue.submit("place", _place())
        job = queue.claim(timeout=0.1)
        assert queue.cancel(job.job_id) is False
        assert job.state == RUNNING and job.cancel_requested

    def test_unknown_job_raises(self, queue):
        with pytest.raises(KeyError):
            queue.cancel("job-999999")


class TestCoalescedCancellation:
    def test_one_submitters_cancel_does_not_kill_the_rest(self, queue):
        """A coalesced duplicate survives the original's cancel."""
        job, _ = queue.submit("place", _place())
        dup, disp = queue.submit("place", _place())
        assert disp == "coalesced" and dup is job
        assert queue.cancel(job.job_id) is False  # one interest withdrawn
        assert job.state == QUEUED and job.submissions == 1
        assert queue.claim(timeout=0.1) is job  # still runs
        # the final interest's cancel (now running) is best-effort only
        assert queue.cancel(job.job_id) is False
        assert job.cancel_requested

    def test_coalesced_job_never_fully_cancels(self, queue):
        """Submitters are anonymous, so a blind cancel retry must not
        kill a job another client is still waiting on — once coalesced,
        cancels only shed interest."""
        job, _ = queue.submit("place", _place())
        queue.submit("place", _place())
        assert queue.cancel(job.job_id) is False  # 2 -> 1
        assert queue.cancel(job.job_id) is False  # retry: refused
        assert queue.cancel(job.job_id) is False  # still refused
        assert job.state == QUEUED
        assert queue.claim(timeout=0.1) is job  # it runs regardless

    def test_double_cancel_retry_cannot_kill_other_clients_job(self, queue):
        """The HTTP-retry scenario: A cancels twice, B still gets served."""
        a_view, _ = queue.submit("place", _place())
        b_view, disp = queue.submit("place", _place())
        assert disp == "coalesced"
        assert queue.cancel(a_view.job_id) is False  # A's cancel
        assert queue.cancel(a_view.job_id) is False  # A's network retry
        running = queue.claim(timeout=0.1)
        assert running is b_view  # B's interest survived
        queue.store.put(running.digest, {"ok": True})
        queue.finish(running.job_id)
        assert b_view.state == DONE


class TestClaimedCancellation:
    """The worker-side settle path for cancelled running jobs.

    A running job whose cancel flag is honoured must release its digest
    from the dedup index — otherwise every later identical submission
    coalesces onto the dead job and hangs forever (the ISSUE 6 race).
    """

    def test_cancel_claimed_releases_digest(self, queue):
        queue.submit("place", _place())
        job = queue.claim(timeout=0.1)
        assert queue.cancel(job.job_id) is False  # best-effort flag
        queue.cancel_claimed(job.job_id)
        assert job.state == CANCELLED
        assert queue.cancelled == 1
        # the regression: without the release this would coalesce onto
        # the dead job and the submitter would poll forever
        again, disp = queue.submit("place", _place())
        assert disp == "queued" and again.job_id != job.job_id

    def test_cancel_claimed_is_noop_on_settled_jobs(self, queue):
        queue.submit("place", _place())
        job = queue.claim(timeout=0.1)
        queue.fail(job.job_id, "boom")
        queue.cancel_claimed(job.job_id)  # racing settle: no effect
        assert job.state == FAILED
        assert queue.cancelled == 0 and queue.failed == 1

    def test_cancel_claimed_ignores_queued_jobs(self, queue):
        job, _ = queue.submit("place", _place())
        queue.cancel_claimed(job.job_id)
        assert job.state == QUEUED  # producers cancel via cancel()

    def test_stale_settle_cannot_evict_successor_dedup_entry(self, queue):
        """After a cancel settles job A, a straggling fail() from A's
        worker must not drop the *new* job B now owning the digest."""
        queue.submit("place", _place())
        a = queue.claim(timeout=0.1)
        queue.cancel_claimed(a.job_id)
        b, disp = queue.submit("place", _place())
        assert disp == "queued"
        queue.fail(a.job_id, "late worker settle")  # A's zombie thread
        _, disp = queue.submit("place", _place())
        assert disp == "coalesced"  # B's entry survived the stale pop

    def test_threaded_cancel_during_execution(self, queue):
        """End-to-end: a worker honouring the flag via JobCancelled."""
        from repro.service.queue import JobCancelled

        started = threading.Event()
        release = threading.Event()
        job, _ = queue.submit("place", _place())

        def worker():
            claimed = queue.claim(timeout=1.0)
            started.set()
            release.wait(timeout=5.0)
            try:
                if claimed.cancel_requested:
                    raise JobCancelled()
            except JobCancelled:
                queue.cancel_claimed(claimed.job_id)

        thread = threading.Thread(target=worker)
        thread.start()
        assert started.wait(timeout=5.0)
        assert queue.cancel(job.job_id) is False  # running: flag only
        release.set()
        thread.join(timeout=5.0)
        assert job.state == CANCELLED
        again, disp = queue.submit("place", _place())
        assert disp == "queued" and again.job_id != job.job_id


class TestPriorityUpgrade:
    def test_high_priority_duplicate_upgrades_queued_job(self, queue):
        first, _ = queue.submit("place", _place(seed=1), priority="low")
        second, _ = queue.submit("place", _place(seed=2), priority="normal")
        dup, disp = queue.submit("place", _place(seed=1), priority="high")
        assert disp == "coalesced" and dup is first
        assert first.priority == "high"
        assert queue.claim(timeout=0.1) is first  # jumped the queue
        assert queue.claim(timeout=0.1) is second
        assert queue.claim(timeout=0.05) is None  # stale entry skipped

    def test_lower_priority_duplicate_does_not_downgrade(self, queue):
        first, _ = queue.submit("place", _place(), priority="high")
        queue.submit("place", _place(), priority="low")
        assert first.priority == "high"


class TestRecordRetention:
    def test_finished_records_evicted_past_cap(self, tmp_path):
        queue = JobQueue(ArtifactStore(tmp_path), max_records=5)
        digest = queue.store.digest_request("place", _place())
        queue.store.put(digest, {"ok": True})
        hits = [queue.submit("place", _place())[0] for _ in range(12)]
        assert all(job.cache_hit for job in hits)
        assert len(queue.jobs()) <= 5
        # the newest record survives, the oldest were evicted
        surviving = {job.job_id for job in queue.jobs()}
        assert hits[-1].job_id in surviving
        assert hits[0].job_id not in surviving

    def test_eviction_order_is_finish_time_not_insertion(self, tmp_path):
        """A slow job that finished *last* outlives earlier finishers.

        Its submitter is still polling the record even though it was
        inserted first — insertion-order eviction would 404 them.
        """
        queue = JobQueue(ArtifactStore(tmp_path), max_records=4)
        slow, _ = queue.submit("place", _place(seed=99))  # inserted first
        running = queue.claim(timeout=0.1)
        digest = queue.store.digest_request("place", _place(seed=1))
        queue.store.put(digest, {"ok": True})
        for _ in range(4):  # finished records piling up after it
            queue.submit("place", _place(seed=1))
        queue.store.put(running.digest, {"ok": True})
        queue.finish(running.job_id)  # finishes LAST
        queue.submit("place", _place(seed=1))  # triggers a prune
        assert queue.get(slow.job_id) is slow  # survived
        assert slow.state == DONE

    def test_active_jobs_never_evicted(self, tmp_path):
        queue = JobQueue(ArtifactStore(tmp_path), max_records=2)
        live = [queue.submit("place", _place(seed=s))[0]
                for s in range(6)]
        # all six are queued: none may be evicted despite the cap
        assert len(queue.jobs()) == 6
        assert {job.state for job in live} == {QUEUED}

    def test_claim_survives_eviction_of_stale_heap_entries(self, tmp_path):
        queue = JobQueue(ArtifactStore(tmp_path), max_records=1)
        job, _ = queue.submit("place", _place())
        assert queue.cancel(job.job_id) is True  # leaves a stale entry
        # flood with cache hits so the cancelled record is evicted
        digest = queue.store.digest_request("place", _place(seed=9))
        queue.store.put(digest, {"ok": True})
        for _ in range(3):
            queue.submit("place", _place(seed=9))
        assert job.job_id not in {j.job_id for j in queue.jobs()}
        assert queue.claim(timeout=0.05) is None  # no KeyError


class TestClaimAndClose:
    def test_claim_blocks_until_submit(self, queue):
        got = []

        def worker():
            got.append(queue.claim(timeout=5.0))

        thread = threading.Thread(target=worker)
        thread.start()
        job, _ = queue.submit("place", _place())
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got and got[0].job_id == job.job_id

    def test_close_wakes_blocked_workers(self, queue):
        got = []

        def worker():
            got.append(queue.claim(timeout=10.0))

        thread = threading.Thread(target=worker)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]
        with pytest.raises(RuntimeError):
            queue.submit("place", _place())

    def test_close_refuses_still_queued_work(self, queue):
        """Shutdown must not hand out queued jobs to woken workers."""
        job, _ = queue.submit("place", _place())
        queue.close()
        assert queue.claim(timeout=0.05) is None
        assert job.state == QUEUED  # never started

    def test_metrics_shape(self, queue):
        queue.submit("place", _place())
        metrics = queue.metrics()
        assert metrics["queue_depth"] == 1
        assert metrics["jobs_by_state"] == {QUEUED: 1}
        assert metrics["jobs_total"] == 1


class TestJobRecord:
    def test_to_dict_is_json_able(self, queue):
        import json

        job, _ = queue.submit("place", _place(), options={"chunk_size": 4})
        payload = json.loads(json.dumps(job.to_dict()))
        assert payload["kind"] == "place"
        assert payload["state"] == QUEUED
        assert payload["options"] == {"chunk_size": 4}
        assert payload["artifact"] is None
        assert payload["request"]["__dataclass__"] == "PlaceRequest"

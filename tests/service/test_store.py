"""Artifact-store tests: digests, round-trips, schema invalidation."""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis import runner as runner_mod
from repro.core import PlacerConfig
from repro.service.requests import parse_request
from repro.service.store import ArtifactStore, request_digest


class TestRequestDigest:
    def test_stable_across_calls(self):
        req = parse_request("place", {"topology": "grid-25"})
        assert request_digest("place", req) == request_digest("place", req)

    def test_kind_in_digest(self):
        req = parse_request("place", {"topology": "grid-25"})
        assert request_digest("place", req) != request_digest("other", req)

    def test_field_changes_digest(self):
        a = parse_request("place", {"topology": "grid-25"})
        b = parse_request("place", {"topology": "grid-25", "seed": 1})
        assert request_digest("place", a) != request_digest("place", b)

    def test_defaults_coalesce_with_explicit(self):
        """An omitted field and its explicit default share one digest."""
        a = parse_request("place", {"topology": "grid-25"})
        b = parse_request("place", {"topology": "grid-25", "seed": 0,
                                    "segment_size_mm": 0.3})
        assert request_digest("place", a) == request_digest("place", b)

    def test_suite_name_coalesces_with_explicit_list(self):
        from repro.workloads import resolve_workload_names

        a = parse_request("fidelity", {"topology": "grid-25",
                                       "workloads": "paper-8"})
        b = parse_request("fidelity", {
            "topology": "grid-25",
            "workloads": list(resolve_workload_names("paper-8"))})
        assert request_digest("fidelity", a) == request_digest("fidelity", b)

    def test_config_in_digest(self):
        a = parse_request("place", {"topology": "grid-25",
                                    "config": {"num_bins": 32}})
        b = parse_request("place", {"topology": "grid-25",
                                    "config": {"num_bins": 64}})
        assert request_digest("place", a) != request_digest("place", b)

    def test_schema_version_in_digest(self, monkeypatch):
        req = parse_request("place", {"topology": "grid-25"})
        before = request_digest("place", req)
        monkeypatch.setattr(runner_mod, "CACHE_SCHEMA_VERSION",
                            runner_mod.CACHE_SCHEMA_VERSION + 1)
        assert request_digest("place", req) != before


class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ab" * 32
        store.put(digest, {"value": [1.5, 2.25]}, metadata={"kind": "test"})
        record = store.get(digest)
        assert record is not None
        assert record.result == {"value": [1.5, 2.25]}
        assert record.metadata["kind"] == "test"
        assert record.metadata["schema"] == runner_mod.CACHE_SCHEMA_VERSION
        assert store.hits == 1

    def test_missing_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("cd" * 32) is None
        assert store.misses == 1
        assert not store.contains("cd" * 32)

    def test_torn_document_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ef" * 32
        store.put(digest, {"x": 1})
        store.path(digest).write_text('{"format": "repro.artifact.v1", "di')
        assert store.get(digest) is None

    def test_wrong_digest_inside_document_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "12" * 32
        store.put(digest, {"x": 1})
        other = "34" * 32
        store.path(other).parent.mkdir(parents=True, exist_ok=True)
        store.path(other).write_text(store.path(digest).read_text())
        assert store.get(other) is None

    def test_float_bit_exact_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "56" * 32
        values = [0.1 + 0.2, 1e-300, 3.141592653589793, 2.0 ** -1074]
        store.put(digest, values)
        assert store.get(digest).result == values

    def test_put_is_atomic_under_thread_races(self, tmp_path):
        """Many threads writing one digest never produce a torn file."""
        store = ArtifactStore(tmp_path)
        digest = "78" * 32
        payload = {"rows": list(range(500))}
        errors = []

        def write(k):
            try:
                for _ in range(20):
                    store.put(digest, payload, metadata={"writer": k})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(k,))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        record = store.get(digest)
        assert record is not None and record.result == payload
        leftovers = [p for p in store.path(digest).parent.iterdir()
                     if ".tmp." in p.name]
        assert leftovers == []


class TestSchemaInvalidation:
    """A store populated at version N must miss after a bump (ISSUE 5)."""

    def _digest_roundtrip(self, store, kind, request):
        digest = store.digest_request(kind, request)
        store.put(digest, {"computed_at_schema":
                           runner_mod.CACHE_SCHEMA_VERSION})
        return digest

    @pytest.mark.parametrize("kind,payload", [
        ("place", {"topology": "grid-25"}),
        ("map", {"benchmark": "bv-4", "topology": "grid-25",
                 "num_mappings": 2}),
    ])
    def test_bump_misses_for_both_artifact_kinds(self, tmp_path,
                                                 monkeypatch, kind,
                                                 payload):
        store = ArtifactStore(tmp_path)
        request = parse_request(kind, payload)
        old_digest = self._digest_roundtrip(store, kind, request)
        assert store.get(old_digest) is not None

        monkeypatch.setattr(runner_mod, "CACHE_SCHEMA_VERSION",
                            runner_mod.CACHE_SCHEMA_VERSION + 1)
        new_digest = store.digest_request(kind, request)
        assert new_digest != old_digest
        # The lookup under the new version is a clean miss — no crash,
        # no stale data.
        assert store.get(new_digest) is None


class TestNearestPlacement:
    """The warm-start lookup scanning stored place artifacts."""

    def _place_artifact(self, store, digest, topology, created_at,
                        segment_size_mm=0.3, with_layout=True,
                        positions=((1.0, 2.0), (3.0, 4.0))):
        strategies = {"qplacer": {"metrics": {}}}
        if with_layout:
            strategies["qplacer"]["layout"] = {
                "format": "repro.layout.v1", "topology": topology,
                "positions": [list(p) for p in positions]}
        store.put(digest, {"topology": topology,
                           "segment_size_mm": segment_size_mm,
                           "strategies": strategies},
                  metadata={"kind": "place", "created_at": created_at,
                            "request": {"topology": topology,
                                        "segment_size_mm": segment_size_mm}})

    def test_empty_store_returns_none(self, tmp_path):
        assert ArtifactStore(tmp_path).nearest_placement("grid-25") is None

    def test_matches_topology_and_segment_size(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._place_artifact(store, "aa" * 32, "grid-25", 100.0)
        self._place_artifact(store, "bb" * 32, "falcon-27", 200.0)
        record = store.nearest_placement("grid-25", segment_size_mm=0.3)
        assert record is not None and record.digest == "aa" * 32
        assert store.nearest_placement("grid-25",
                                       segment_size_mm=0.5) is None
        assert store.nearest_placement("hummingbird-65") is None

    def test_newest_created_at_wins(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._place_artifact(store, "aa" * 32, "grid-25", 100.0)
        self._place_artifact(store, "cc" * 32, "grid-25", 300.0)
        self._place_artifact(store, "bb" * 32, "grid-25", 200.0)
        record = store.nearest_placement("grid-25")
        assert record.digest == "cc" * 32

    def test_ignores_layoutless_and_foreign_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._place_artifact(store, "aa" * 32, "grid-25", 100.0,
                             with_layout=False)
        store.put("dd" * 32, {"rows": []}, metadata={"kind": "map"})
        torn = store.path("ee" * 32)
        torn.parent.mkdir(parents=True, exist_ok=True)
        torn.write_text('{"format": "repro.artifact.v1", "metadata"')
        assert store.nearest_placement("grid-25") is None
        self._place_artifact(store, "ff" * 32, "grid-25", 50.0)
        assert store.nearest_placement("grid-25").digest == "ff" * 32

    def test_scan_does_not_skew_hit_metrics(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._place_artifact(store, "aa" * 32, "grid-25", 100.0)
        hits, misses = store.hits, store.misses
        store.nearest_placement("grid-25")
        assert (store.hits, store.misses) == (hits, misses)


class TestSizeCap:
    """max_bytes eviction: oldest-mtime artifacts go first."""

    def _fill(self, store, digests, payload_bytes=2000):
        import os
        for k, digest in enumerate(digests):
            store.put(digest, {"blob": "x" * payload_bytes, "k": k})
            # Distinct mtimes even on coarse-resolution filesystems.
            os.utime(store.path(digest), (1_000_000 + k, 1_000_000 + k))

    def test_unbounded_by_default(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._fill(store, [f"{k:02x}" * 32 for k in range(5)])
        assert store.evictions == 0
        assert all(store.contains(f"{k:02x}" * 32) for k in range(5))

    def test_rejects_nonpositive_cap(self, tmp_path):
        import pytest
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, max_bytes=0)

    def test_oldest_mtime_evicted_first(self, tmp_path):
        digests = [f"{k:02x}" * 32 for k in range(4)]
        store = ArtifactStore(tmp_path)
        self._fill(store, digests[:3])
        one_size = store.path(digests[0]).stat().st_size
        capped = ArtifactStore(tmp_path, max_bytes=2 * one_size + 10)
        capped.put(digests[3], {"blob": "y" * 2000})
        # Oldest two evicted; the just-written artifact always survives.
        assert not capped.contains(digests[0])
        assert not capped.contains(digests[1])
        assert capped.contains(digests[3])
        assert capped.evictions == 2

    def test_just_written_never_evicted_even_if_oversized(self, tmp_path):
        store = ArtifactStore(tmp_path, max_bytes=100)
        digest = "ab" * 32
        store.put(digest, {"blob": "z" * 5000})
        assert store.contains(digest)

    def test_evictions_counter_in_metrics(self, tmp_path):
        digests = [f"{k:02x}" * 32 for k in range(3)]
        store = ArtifactStore(tmp_path, max_bytes=1)
        self._fill(store, digests)
        metrics = store.metrics()
        assert metrics["artifact_evictions"] == store.evictions
        assert store.evictions == 2  # each write evicts the previous

    def test_evicted_artifact_reads_as_miss(self, tmp_path):
        digests = ["aa" * 32, "bb" * 32]
        store = ArtifactStore(tmp_path, max_bytes=1)
        self._fill(store, digests)
        assert store.get(digests[0]) is None
        assert not store.remembers(digests[0])

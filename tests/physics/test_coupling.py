"""Unit tests for the coupling-strength models (Eqs. 4-8)."""

import numpy as np
import pytest

from repro.physics.coupling import (
    dispersive_shift_ghz,
    effective_coupling_ghz,
    qubit_pair_coupling_vs_distance_ghz,
    qubit_qubit_coupling_ghz,
    resonator_pair_coupling_vs_distance_ghz,
    resonator_resonator_coupling_ghz,
    rip_gate_rate_rad_per_ns,
    smooth_exchange_ghz,
)


class TestEq6:
    def test_reference_value(self):
        # g = 0.5*sqrt(w1 w2)*Cp/sqrt((C1+Cp)(C2+Cp));
        # 5 GHz, Cp = 0.66 fF, C = 65 fF -> g ~ 25 MHz.
        g = qubit_qubit_coupling_ghz(5.0, 5.0, 0.66, 65.0, 65.0)
        assert 1e3 * g == pytest.approx(25.1, abs=0.5)

    def test_symmetric_in_qubits(self):
        a = qubit_qubit_coupling_ghz(4.9, 5.1, 0.5)
        b = qubit_qubit_coupling_ghz(5.1, 4.9, 0.5)
        assert a == pytest.approx(b)

    def test_increases_with_cp(self):
        gs = [qubit_qubit_coupling_ghz(5.0, 5.0, cp) for cp in (0.1, 0.5, 1.0)]
        assert gs[0] < gs[1] < gs[2]

    def test_zero_cp_zero_coupling(self):
        assert qubit_qubit_coupling_ghz(5.0, 5.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            qubit_qubit_coupling_ghz(-5.0, 5.0, 0.5)
        with pytest.raises(ValueError):
            qubit_qubit_coupling_ghz(5.0, 5.0, -0.5)

    def test_resonator_variant_uses_big_capacitance(self):
        g_res = resonator_resonator_coupling_ghz(6.5, 6.5, 0.66)
        g_qub = qubit_qubit_coupling_ghz(6.5, 6.5, 0.66)
        assert g_res < g_qub  # Cr = 400 fF >> Cq = 65 fF


class TestEffectiveCoupling:
    def test_resonant_returns_bare_g(self):
        assert effective_coupling_ghz(0.025, 0.05) == pytest.approx(0.025)

    def test_dispersive_reduction(self):
        g_eff = effective_coupling_ghz(0.025, 0.5)
        assert g_eff == pytest.approx(0.025 ** 2 / 0.5)

    def test_threshold_boundary(self):
        at = effective_coupling_ghz(0.02, 0.1, resonance_threshold_ghz=0.1)
        beyond = effective_coupling_ghz(0.02, 0.1001, resonance_threshold_ghz=0.1)
        assert at == pytest.approx(0.02)
        assert beyond < at

    def test_vectorised(self):
        out = effective_coupling_ghz(0.02, np.array([0.0, 0.05, 0.5]))
        assert out.shape == (3,)
        assert out[0] == out[1] == pytest.approx(0.02)
        assert out[2] < 0.02


class TestSmoothExchange:
    def test_peak_at_resonance(self):
        assert smooth_exchange_ghz(0.025, 0.0) == pytest.approx(0.025)

    def test_wing_limit(self):
        # For Delta >> g the smooth curve approaches g^2/Delta.
        val = smooth_exchange_ghz(0.025, 1.0)
        assert val == pytest.approx(0.025 ** 2 / 1.0, rel=1e-3)

    def test_even_in_detuning(self):
        assert smooth_exchange_ghz(0.02, 0.3) == pytest.approx(
            smooth_exchange_ghz(0.02, -0.3))


class TestDispersiveShift:
    def test_value(self):
        chi = dispersive_shift_ghz(0.07, 5.0, 6.5)
        assert chi == pytest.approx(0.07 ** 2 / 1.5)

    def test_zero_detuning_rejected(self):
        with pytest.raises(ValueError):
            dispersive_shift_ghz(0.07, 6.5, 6.5)


class TestDistanceCurves:
    def test_qubit_curve_monotone(self):
        d = np.linspace(0.02, 1.5, 40)
        g = qubit_pair_coupling_vs_distance_ghz(d, 5.0, 5.0)
        assert np.all(np.diff(g) < 0)

    def test_resonator_curve_monotone(self):
        d = np.linspace(0.02, 1.0, 40)
        g = resonator_pair_coupling_vs_distance_ghz(d, 1.0, 6.5, 6.5)
        assert np.all(np.diff(g) < 0)


class TestRipGate:
    def test_rate_positive(self):
        assert rip_gate_rate_rad_per_ns(0.2, 0.3) > 0

    def test_stronger_drive_faster_gate(self):
        slow = rip_gate_rate_rad_per_ns(0.1, 0.3)
        fast = rip_gate_rate_rad_per_ns(0.2, 0.3)
        assert fast > slow

    def test_resonant_drive_rejected(self):
        with pytest.raises(ValueError):
            rip_gate_rate_rad_per_ns(0.2, 0.0)

"""Unit tests for the parasitic-capacitance distance models."""

import numpy as np
import pytest

from repro import constants
from repro.physics.capacitance import (
    qubit_parasitic_capacitance_ff,
    qubit_resonator_parasitic_capacitance_ff,
    resonator_parasitic_capacitance_ff,
)


class TestQubitParasitic:
    def test_contact_value(self):
        assert qubit_parasitic_capacitance_ff(0.0) == pytest.approx(
            constants.PARASITIC_CP0_FF)

    def test_monotone_decay(self):
        d = np.linspace(0, 2, 50)
        cp = qubit_parasitic_capacitance_ff(d)
        assert np.all(np.diff(cp) < 0)

    def test_decay_length(self):
        lam = constants.PARASITIC_DECAY_MM
        ratio = (qubit_parasitic_capacitance_ff(lam)
                 / qubit_parasitic_capacitance_ff(0.0))
        assert ratio == pytest.approx(np.exp(-1.0))

    def test_negligible_at_padding_sum(self):
        # At the 0.8 mm qubit padding sum the capacitance is ~1e-7 of Cp0.
        cp = qubit_parasitic_capacitance_ff(0.8)
        assert cp < 1e-6 * constants.PARASITIC_CP0_FF

    def test_scalar_in_scalar_out(self):
        assert isinstance(qubit_parasitic_capacitance_ff(0.5), float)

    def test_array_in_array_out(self):
        out = qubit_parasitic_capacitance_ff(np.array([0.1, 0.2]))
        assert out.shape == (2,)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            qubit_parasitic_capacitance_ff(-0.1)


class TestResonatorParasitic:
    def test_scales_with_adjacent_length(self):
        short = resonator_parasitic_capacitance_ff(0.1, 0.5)
        long = resonator_parasitic_capacitance_ff(0.1, 1.0)
        assert long == pytest.approx(2.0 * short)

    def test_zero_length_zero_capacitance(self):
        assert resonator_parasitic_capacitance_ff(0.1, 0.0) == 0.0

    def test_monotone_decay_with_gap(self):
        d = np.linspace(0, 1, 30)
        cp = resonator_parasitic_capacitance_ff(d, 1.0)
        assert np.all(np.diff(cp) < 0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            resonator_parasitic_capacitance_ff(0.1, -1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            resonator_parasitic_capacitance_ff(-0.1, 1.0)


class TestQubitResonatorParasitic:
    def test_uses_qubit_edge_as_default_length(self):
        direct = resonator_parasitic_capacitance_ff(
            0.2, constants.QUBIT_SIZE_MM)
        assert qubit_resonator_parasitic_capacitance_ff(0.2) == \
            pytest.approx(direct)

"""Unit tests for the substrate box-mode model (Sec. III-C)."""

import pytest

from repro.physics.substrate_modes import (
    check_layout_against_box_modes,
    max_substrate_side_mm,
    tm110_frequency_ghz,
    tm_mode_frequency_ghz,
)


class TestTM110:
    def test_paper_values(self):
        # Sec. III-C: 12.41 GHz @ 5x5 mm^2, 6.20 GHz @ 10x10 mm^2.
        assert tm110_frequency_ghz(5.0, 5.0) == pytest.approx(12.41, abs=0.05)
        assert tm110_frequency_ghz(10.0, 10.0) == pytest.approx(6.20, abs=0.03)

    def test_inverse_scaling(self):
        assert tm110_frequency_ghz(10, 10) == pytest.approx(
            tm110_frequency_ghz(5, 5) / 2.0)

    def test_rectangular(self):
        f = tm110_frequency_ghz(5.0, 10.0)
        assert tm110_frequency_ghz(10.0, 10.0) < f < tm110_frequency_ghz(5.0, 5.0)

    def test_higher_modes_higher_frequency(self):
        f11 = tm_mode_frequency_ghz(8, 8, 1, 1)
        f21 = tm_mode_frequency_ghz(8, 8, 2, 1)
        f22 = tm_mode_frequency_ghz(8, 8, 2, 2)
        assert f11 < f21 < f22

    def test_validation(self):
        with pytest.raises(ValueError):
            tm110_frequency_ghz(0.0, 5.0)
        with pytest.raises(ValueError):
            tm_mode_frequency_ghz(5.0, 5.0, 0, 1)


class TestMaxSide:
    def test_roundtrip(self):
        side = max_substrate_side_mm(7.0)
        assert tm110_frequency_ghz(side, side) == pytest.approx(7.0)

    def test_higher_ceiling_smaller_chip(self):
        assert max_substrate_side_mm(8.0) < max_substrate_side_mm(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            max_substrate_side_mm(0.0)


class TestCheck:
    def test_small_chip_ok(self):
        ok, margin = check_layout_against_box_modes(6.0, 6.0, 7.0)
        assert ok and margin > 0

    def test_large_chip_violates(self):
        ok, margin = check_layout_against_box_modes(15.0, 15.0, 7.0)
        assert not ok and margin < 0

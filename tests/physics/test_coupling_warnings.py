"""Regression: the coupling paths must not emit RuntimeWarnings.

The dispersive branch of :func:`effective_coupling_ghz` used to divide
``g*g / delta`` for every positive detuning before discarding the
resonant entries, overflowing for tiny-but-nonzero detunings
(``RuntimeWarning: overflow encountered in divide``).  These tests run
the suite's coupling paths with warnings promoted to errors.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.crosstalk.violations import find_spatial_violations
from repro.devices.netlist import build_netlist
from repro.physics.coupling import (
    effective_coupling_ghz,
    qubit_qubit_coupling_ghz,
    smooth_exchange_ghz,
)

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


class TestEffectiveCouplingGuard:
    def test_tiny_positive_detuning_does_not_overflow(self):
        detunings = np.array([0.0, 1e-300, 1e-30, 1e-9, 0.05, 0.2])
        out = effective_coupling_ghz(0.01, detunings,
                                     resonance_threshold_ghz=0.06)
        assert np.all(np.isfinite(out))
        # Resonant entries return the bare g, dispersive ones g^2/Delta.
        np.testing.assert_allclose(out[:5], 0.01)
        np.testing.assert_allclose(out[5], 0.01 ** 2 / 0.2)

    def test_scalar_path(self):
        assert effective_coupling_ghz(0.02, 1e-300) == 0.02
        assert effective_coupling_ghz(0.02, 0.0) == 0.02

    def test_dispersive_values_unchanged(self):
        g, delta = 0.015, 0.25
        assert effective_coupling_ghz(g, delta) == pytest.approx(
            g * g / delta)

    def test_array_g_with_mixed_detunings(self):
        g = np.array([0.0, 0.01, 0.02])
        delta = np.array([1e-200, 0.0, 0.5])
        out = effective_coupling_ghz(g, delta)
        assert np.all(np.isfinite(out))


class TestSuiteCouplingPathsWarningFree:
    def test_violation_scan_is_warning_free(self, grid9_placed):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            violations = find_spatial_violations(grid9_placed.layout)
        for v in violations:
            assert np.isfinite(v.g_eff_ghz)

    def test_coupling_models_on_extreme_inputs(self):
        d = np.linspace(0.0, 5.0, 50)
        assert np.all(np.isfinite(smooth_exchange_ghz(0.01, d)))
        cp = np.linspace(0.0, 10.0, 20)
        assert np.all(np.isfinite(
            np.asarray(qubit_qubit_coupling_ghz(5.0, 5.1, cp))))

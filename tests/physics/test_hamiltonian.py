"""Unit tests for the exact small Hamiltonian models."""

import numpy as np
import pytest

from repro.physics.hamiltonian import (
    dressed_qubit_shift_ghz,
    eigensplitting_ghz,
    excitation_swap_probability,
    jaynes_cummings_hamiltonian,
    two_qubit_exchange_hamiltonian,
    vacuum_rabi_frequencies,
    worst_case_swap_probability,
)


class TestExchangeBlock:
    def test_matrix_shape(self):
        h = two_qubit_exchange_hamiltonian(5.0, 5.1, 0.02)
        assert h.shape == (2, 2)
        assert h[0, 1] == h[1, 0] == 0.02

    def test_splitting_at_resonance(self):
        # Vacuum-Rabi splitting 2g.
        assert eigensplitting_ghz(5.0, 5.0, 0.02) == pytest.approx(0.04)

    def test_splitting_detuned(self):
        split = eigensplitting_ghz(5.0, 5.3, 0.02)
        assert split == pytest.approx(np.sqrt(0.3 ** 2 + 4 * 0.02 ** 2))


class TestSwapProbability:
    def test_resonant_full_oscillation(self):
        g = 0.001  # 1 MHz
        # Half Rabi period: pi*2g*t = pi/2 -> t = 1/(4g)
        t_half = 1.0 / (4.0 * g)
        p = excitation_swap_probability(5.0, 5.0, g, t_half)
        assert p == pytest.approx(1.0, abs=1e-9)

    def test_zero_time_zero_probability(self):
        assert excitation_swap_probability(5.0, 5.0, 0.01, 0.0) == 0.0

    def test_zero_coupling_zero_probability(self):
        assert excitation_swap_probability(5.0, 5.1, 0.0, 100.0) == 0.0

    def test_detuning_suppresses_amplitude(self):
        g, t = 0.002, 1000.0
        resonant = max(excitation_swap_probability(5.0, 5.0, g, tt)
                       for tt in np.linspace(0, t, 500))
        detuned = max(excitation_swap_probability(5.0, 5.13, g, tt)
                      for tt in np.linspace(0, t, 500))
        assert detuned < 0.01 * resonant

    def test_bounded_by_one(self):
        for t in np.linspace(0, 500, 50):
            p = excitation_swap_probability(5.0, 5.02, 0.01, t)
            assert 0.0 <= p <= 1.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            excitation_swap_probability(5.0, 5.0, 0.01, -1.0)


class TestWorstCase:
    def test_envelope_reached(self):
        g = 0.001
        # Long exposure: the worst case saturates at the full amplitude.
        p = worst_case_swap_probability(5.0, 5.0, g, 10000.0)
        assert p == pytest.approx(1.0)

    def test_monotone_in_time(self):
        g = 0.0005
        times = np.linspace(0, 2000, 40)
        probs = [worst_case_swap_probability(5.0, 5.0, g, t) for t in times]
        assert all(b >= a - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_upper_bounds_instantaneous(self):
        g, delta = 0.002, 0.05
        for t in np.linspace(10, 3000, 25):
            inst = excitation_swap_probability(5.0, 5.0 + delta, g, t)
            worst = worst_case_swap_probability(5.0, 5.0 + delta, g, t)
            assert worst >= inst - 1e-9


class TestJaynesCummings:
    def test_dimension(self):
        h = jaynes_cummings_hamiltonian(5.0, 6.5, 0.07, n_photons=3)
        assert h.shape == (8, 8)
        assert np.allclose(h, h.T)

    def test_dispersive_limit_matches_chi(self):
        # Deep dispersive regime: dressed shift -> g^2/Delta (Eq. 8).
        g, delta = 0.05, 1.5
        shift = dressed_qubit_shift_ghz(5.0, 5.0 + delta, g)
        assert shift == pytest.approx(-g * g / delta, rel=0.01)

    def test_vacuum_rabi_splitting(self):
        lo, hi = vacuum_rabi_frequencies(6.5, 6.5, 0.07)
        assert hi - lo == pytest.approx(2 * 0.07)

    def test_photon_validation(self):
        with pytest.raises(ValueError):
            jaynes_cummings_hamiltonian(5.0, 6.5, 0.07, n_photons=0)

"""Unit tests for the transmon energy model."""

import math

import pytest

from repro import constants
from repro.physics.transmon import (
    TransmonParams,
    anharmonicity_ghz,
    charging_energy_ghz,
    josephson_energy_for_frequency,
    qubit_frequency_ghz,
)


class TestChargingEnergy:
    def test_paper_capacitance_gives_300mhz(self):
        # 65 fF -> EC/h ~ 0.3 GHz, matching the ~310 MHz anharmonicity.
        ec = charging_energy_ghz(constants.QUBIT_CAPACITANCE_FF)
        assert ec == pytest.approx(0.298, abs=0.01)

    def test_inverse_in_capacitance(self):
        assert charging_energy_ghz(130.0) == pytest.approx(
            charging_energy_ghz(65.0) / 2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            charging_energy_ghz(0.0)


class TestFrequencyRelations:
    def test_roundtrip(self):
        ec = 0.3
        for f01 in (4.8, 5.0, 5.2):
            ej = josephson_energy_for_frequency(f01, ec)
            assert qubit_frequency_ghz(ej, ec) == pytest.approx(f01)

    def test_transmon_limit(self):
        # A 5 GHz transmon with EC = 0.3 GHz sits deep in EJ/EC >> 1.
        ej = josephson_energy_for_frequency(5.0, 0.3)
        assert ej / 0.3 > 30

    def test_anharmonicity_sign(self):
        assert anharmonicity_ghz(0.3) == -0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            qubit_frequency_ghz(-1.0, 0.3)
        with pytest.raises(ValueError):
            josephson_energy_for_frequency(5.0, 0.0)


class TestTransmonParams:
    def make(self):
        return TransmonParams(f01_ghz=5.0)

    def test_anharmonicity_matches_paper(self):
        # alpha/2pi ~ -310 MHz (Sec. V-C).
        t = self.make()
        assert t.anharmonicity_ghz == pytest.approx(-0.31, abs=0.02)

    def test_level_progression(self):
        t = self.make()
        levels = t.levels_ghz(4)
        assert levels[0] == 0.0
        assert levels[1] == pytest.approx(5.0)
        # f12 = f01 + alpha < f01 (anharmonic ladder).
        f12 = t.transition_frequency_ghz(1, 2)
        assert f12 < 5.0
        assert f12 == pytest.approx(5.0 + t.anharmonicity_ghz)

    def test_transition_antisymmetry(self):
        t = self.make()
        assert t.transition_frequency_ghz(0, 2) == pytest.approx(
            -t.transition_frequency_ghz(2, 0))

    def test_ej_over_ec(self):
        # Deep transmon regime (EJ/EC >> 1; typically ~40-60 at 5 GHz
        # with EC ~ 0.3 GHz).
        t = self.make()
        assert 30 <= t.ej_over_ec <= 150

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            self.make().level_frequency_ghz(-1)

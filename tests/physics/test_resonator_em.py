"""Unit tests for half-wave resonator electromagnetics."""

import pytest

from repro.physics.resonator_em import (
    harmonic_ghz,
    resonator_frequency_ghz,
    resonator_length_mm,
)


class TestHalfWaveRelation:
    def test_paper_band_lengths(self):
        # Sec. V-C: 6.0-7.0 GHz corresponds to 10.8 down to 9.2 mm.
        assert resonator_length_mm(6.0) == pytest.approx(10.83, abs=0.01)
        assert resonator_length_mm(7.0) == pytest.approx(9.29, abs=0.01)

    def test_roundtrip(self):
        for f in (5.5, 6.0, 6.5, 7.0):
            assert resonator_frequency_ghz(resonator_length_mm(f)) == \
                pytest.approx(f)

    def test_monotone_decreasing(self):
        assert resonator_length_mm(7.0) < resonator_length_mm(6.0)

    def test_custom_velocity(self):
        slow = resonator_length_mm(6.0, phase_velocity_mm_per_ns=100.0)
        assert slow == pytest.approx(100.0 / 12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            resonator_length_mm(0.0)
        with pytest.raises(ValueError):
            resonator_frequency_ghz(-1.0)


class TestHarmonics:
    def test_fundamental(self):
        length = resonator_length_mm(6.5)
        assert harmonic_ghz(length, 1) == pytest.approx(6.5)

    def test_second_harmonic_doubles(self):
        length = resonator_length_mm(6.5)
        assert harmonic_ghz(length, 2) == pytest.approx(13.0)

    def test_index_validation(self):
        with pytest.raises(ValueError):
            harmonic_ghz(10.0, 0)

"""Unit tests for layout/plan JSON round-trips."""

import json

import numpy as np
import pytest

from repro.devices import assign_frequencies, grid_topology
from repro.io.serialization import (
    layout_from_dict,
    layout_to_dict,
    load_layout,
    plan_from_dict,
    plan_to_dict,
    save_layout,
)


class TestPlanRoundtrip:
    def test_roundtrip(self):
        plan = assign_frequencies(grid_topology(3, 3))
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert rebuilt.qubit_freq_ghz == plan.qubit_freq_ghz
        assert rebuilt.resonator_freq_ghz == plan.resonator_freq_ghz
        assert rebuilt.qubit_levels == plan.qubit_levels

    def test_json_serialisable(self):
        plan = assign_frequencies(grid_topology(2, 2))
        text = json.dumps(plan_to_dict(plan))
        assert "qubit_freq_ghz" in text


class TestLayoutRoundtrip:
    def test_roundtrip_positions_and_strategy(self, grid9_placed):
        layout = grid9_placed.layout
        data = layout_to_dict(layout, segment_size_mm=0.3)
        rebuilt = layout_from_dict(data)
        assert np.allclose(rebuilt.positions, layout.positions)
        assert rebuilt.strategy == layout.strategy
        assert [i.name for i in rebuilt.instances] == \
            [i.name for i in layout.instances]

    def test_roundtrip_preserves_metrics(self, grid9_placed):
        from repro.crosstalk import hotspot_report
        layout = grid9_placed.layout
        rebuilt = layout_from_dict(layout_to_dict(layout, 0.3))
        assert rebuilt.amer() == pytest.approx(layout.amer())
        assert hotspot_report(rebuilt).ph == pytest.approx(
            hotspot_report(layout).ph)

    def test_file_roundtrip(self, grid9_placed, tmp_path):
        path = tmp_path / "layout.json"
        save_layout(grid9_placed.layout, path, segment_size_mm=0.3)
        rebuilt = load_layout(path)
        assert np.allclose(rebuilt.positions, grid9_placed.layout.positions)

    def test_requires_netlist(self):
        from repro.devices.components import Qubit
        from repro.devices.layout import Layout
        lay = Layout(instances=[Qubit.create(0, 5.0)],
                     positions=np.zeros((1, 2)))
        with pytest.raises(ValueError, match="netlist"):
            layout_to_dict(lay, 0.3)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            layout_from_dict({"format": "something-else"})

    def test_mismatched_segment_size_rejected(self, grid9_placed):
        data = layout_to_dict(grid9_placed.layout, segment_size_mm=0.3)
        data["segment_size_mm"] = 0.4  # rebuild produces other instances
        with pytest.raises(ValueError, match="instance list"):
            layout_from_dict(data)

"""Unit tests for the minimal GDSII writer."""

import struct

import pytest

from repro.io.gds import (
    LAYER_QUBIT,
    LAYER_RESONATOR,
    _gds_real8,
    layout_to_gds_bytes,
    parse_gds_records,
    save_gds,
)


class TestReal8:
    def decode(self, data: bytes) -> float:
        """Reference decoder for GDSII excess-64 reals."""
        sign = -1.0 if data[0] & 0x80 else 1.0
        exponent = (data[0] & 0x7F) - 64
        mantissa = int.from_bytes(data[1:8], "big") / float(1 << 56)
        return sign * mantissa * (16.0 ** exponent)

    @pytest.mark.parametrize("value", [1e-9, 1e-3, 1.0, 0.5, 123.456, 3.14])
    def test_roundtrip(self, value):
        assert self.decode(_gds_real8(value)) == pytest.approx(value, rel=1e-12)

    def test_zero(self):
        assert _gds_real8(0.0) == b"\0" * 8

    def test_negative(self):
        assert self.decode(_gds_real8(-2.5)) == pytest.approx(-2.5)


class TestStream:
    def test_record_framing(self, grid9_placed):
        data = layout_to_gds_bytes(grid9_placed.layout)
        types = parse_gds_records(data)
        assert types[0] == 0x0002   # HEADER
        assert types[1] == 0x0102   # BGNLIB
        assert types[-1] == 0x0400  # ENDLIB

    def test_boundary_count(self, grid9_placed):
        data = layout_to_gds_bytes(grid9_placed.layout)
        types = parse_gds_records(data)
        assert types.count(0x0800) == grid9_placed.num_cells  # BOUNDARY
        assert types.count(0x1100) == grid9_placed.num_cells  # ENDEL

    def test_layers_present(self, grid9_placed):
        data = layout_to_gds_bytes(grid9_placed.layout)
        layers = set()
        offset = 0
        while offset + 4 <= len(data):
            length, rectype = struct.unpack(">HH", data[offset:offset + 4])
            if rectype == 0x0D02:  # LAYER
                layers.add(struct.unpack(">h", data[offset + 4:offset + 6])[0])
            offset += length
        assert layers == {LAYER_QUBIT, LAYER_RESONATOR}

    def test_coordinates_scale(self, grid9_placed):
        """First BOUNDARY's XY extent must match the instance in nm."""
        layout = grid9_placed.layout
        data = layout_to_gds_bytes(layout)
        offset = 0
        xy = None
        while offset + 4 <= len(data):
            length, rectype = struct.unpack(">HH", data[offset:offset + 4])
            if rectype == 0x1003:  # XY
                payload = data[offset + 4:offset + length]
                xy = struct.unpack(f">{len(payload) // 4}i", payload)
                break
            offset += length
        assert xy is not None
        xs = xy[0::2]
        width_nm = max(xs) - min(xs)
        assert width_nm == pytest.approx(layout.instances[0].width * 1e6)

    def test_even_record_lengths(self, grid9_placed):
        data = layout_to_gds_bytes(grid9_placed.layout)
        offset = 0
        while offset + 4 <= len(data):
            length, _ = struct.unpack(">HH", data[offset:offset + 4])
            assert length % 2 == 0
            offset += length

    def test_save(self, grid9_placed, tmp_path):
        path = tmp_path / "chip.gds"
        save_gds(grid9_placed.layout, path)
        assert path.stat().st_size > 100

    def test_corrupt_stream_rejected(self):
        with pytest.raises(ValueError):
            parse_gds_records(b"\x00\x01\x00\x02")

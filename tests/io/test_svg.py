"""Unit tests for the SVG layout renderer."""

import re

import pytest

from repro.io.svg import frequency_color, layout_to_svg, save_svg


class TestFrequencyColor:
    def test_format(self):
        color = frequency_color(5.0, (4.8, 5.2))
        assert re.fullmatch(r"#[0-9a-f]{6}", color)

    def test_band_extremes_differ(self):
        low = frequency_color(4.8, (4.8, 5.2))
        high = frequency_color(5.2, (4.8, 5.2))
        assert low != high

    def test_out_of_band_clamped(self):
        inside = frequency_color(4.8, (4.8, 5.2))
        below = frequency_color(4.0, (4.8, 5.2))
        assert inside == below

    def test_degenerate_band(self):
        assert re.fullmatch(r"#[0-9a-f]{6}", frequency_color(5.0, (5.0, 5.0)))


class TestLayoutSvg:
    def test_structure(self, grid9_placed):
        svg = layout_to_svg(grid9_placed.layout)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_one_rect_per_instance(self, grid9_placed):
        svg = layout_to_svg(grid9_placed.layout)
        # background + instances
        count = svg.count("<rect")
        assert count == grid9_placed.num_cells + 1

    def test_padding_outlines_optional(self, grid9_placed):
        plain = layout_to_svg(grid9_placed.layout)
        padded = layout_to_svg(grid9_placed.layout, show_padding=True)
        assert padded.count("<rect") == 2 * grid9_placed.num_cells + 1
        assert "stroke-dasharray" in padded
        assert "stroke-dasharray" not in plain

    def test_tooltips_name_instances(self, grid9_placed):
        svg = layout_to_svg(grid9_placed.layout)
        assert "<title>q0 @" in svg

    def test_footer_mentions_strategy(self, grid9_placed):
        svg = layout_to_svg(grid9_placed.layout)
        assert "qplacer" in svg

    def test_save(self, grid9_placed, tmp_path):
        path = tmp_path / "layout.svg"
        save_svg(grid9_placed.layout, path)
        assert path.read_text().startswith("<svg")

    def test_scale_changes_canvas(self, grid9_placed):
        small = layout_to_svg(grid9_placed.layout, scale=10)
        large = layout_to_svg(grid9_placed.layout, scale=100)
        w_small = float(re.search(r'width="(\d+)"', small).group(1))
        w_large = float(re.search(r'width="(\d+)"', large).group(1))
        assert w_large > 5 * w_small

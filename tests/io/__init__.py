"""Test package marker (enables relative imports across test modules)."""

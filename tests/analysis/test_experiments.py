"""Unit tests for the per-figure experiment pipelines."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    FIDELITY_FLOOR,
    area_experiment,
    build_suite,
    coupling_vs_detuning,
    coupling_vs_distance,
    fidelity_experiment,
    pareto_points,
    resonator_coupling_curves,
    segment_sweep,
    summary_experiment,
)
from repro.core.config import PlacerConfig


@pytest.fixture(scope="module")
def suite():
    cfg = PlacerConfig(max_iterations=120, min_iterations=20, num_bins=32)
    return build_suite("grid-25", config=cfg)


class TestBuildSuite:
    def test_all_strategies_present(self, suite):
        assert set(suite.layouts) == {"qplacer", "classic", "human"}
        assert suite.results["human"] is None


class TestPlacementPayloadTelemetry:
    def test_strategy_entries_carry_stats_and_phases(self, suite):
        from repro.analysis.experiments import placement_payload

        payload = placement_payload(suite, 0.3, include_layouts=False)
        entry = payload["strategies"]["qplacer"]
        assert set(entry) >= {"metrics", "num_cells", "iterations",
                              "runtime_s", "legalize", "detailed", "phases"}
        assert entry["legalize"]["qubit_displacement_mm"] >= 0
        assert entry["legalize"]["phase_seconds"]["legalize"] > 0
        assert entry["detailed"] is None  # dense tier: 0 passes resolved
        assert entry["phases"]["legalize"] > 0
        # The human baseline has no PlacementResult, hence no telemetry.
        assert "phases" not in payload["strategies"]["human"]
        assert suite.results["qplacer"] is not None

    def test_shared_netlist(self, suite):
        for layout in suite.layouts.values():
            assert layout.netlist is suite.netlist

    def test_metrics(self, suite):
        metrics = suite.metrics()
        assert metrics["human"].ph_percent == 0.0
        assert metrics["qplacer"].amer_mm2 > 0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            build_suite("grid-25", strategies=("qplacer", "alien"))


class TestFidelityExperiment:
    def test_table_structure(self, suite):
        table = fidelity_experiment(suite, benchmarks=("bv-4",),
                                    num_mappings=4)
        assert set(table) == {"bv-4"}
        assert set(table["bv-4"]) == {"qplacer", "classic", "human"}
        for value in table["bv-4"].values():
            assert FIDELITY_FLOOR <= value <= 1.0

    def test_oversized_benchmark_skipped(self, suite):
        table = fidelity_experiment(suite, benchmarks=("bv-4",),
                                    num_mappings=2)
        assert "bv-26" not in table

    def test_qplacer_beats_classic(self, suite):
        table = fidelity_experiment(suite, benchmarks=("bv-16", "qgan-4"),
                                    num_mappings=8)
        for row in table.values():
            assert row["qplacer"] >= row["classic"] * 0.9


class TestSummaryExperiment:
    def test_rows(self, suite):
        fid = fidelity_experiment(suite, benchmarks=("bv-4",), num_mappings=4)
        rows = summary_experiment(suite, benchmarks=("bv-4",),
                                  num_mappings=4, fidelity=fid)
        assert len(rows) == 3
        strategies = {r.strategy for r in rows}
        assert strategies == {"qplacer", "classic", "human"}
        for r in rows:
            assert r.topology == "grid-25"
            assert 0 <= r.avg_fidelity <= 1


class TestAreaExperiment:
    def test_qplacer_is_unity(self, suite):
        ratios = area_experiment(suite)
        assert ratios["qplacer"] == pytest.approx(1.0)
        assert ratios["human"] > 0


class TestSegmentSweep:
    def test_rows_and_scaling(self):
        cfg = PlacerConfig(max_iterations=100, min_iterations=20, num_bins=32)
        rows = segment_sweep("grid-25", segment_sizes=(0.3, 0.4), config=cfg)
        assert [r.segment_size_mm for r in rows] == [0.3, 0.4]
        assert rows[0].num_cells > rows[1].num_cells
        assert all(r.runtime_s > 0 for r in rows)


class TestPareto:
    def test_points(self, suite):
        points = pareto_points(suite, benchmarks=("bv-4",), num_mappings=4)
        assert len(points) == 3
        for p in points:
            assert 0.0 <= p.infidelity <= 1.0
            assert p.amer_mm2 > 0


class TestPhysicsCurves:
    def test_fig4_shapes(self):
        curve = coupling_vs_detuning(num_points=21)
        assert curve["freq2_ghz"].shape == (21,)
        assert curve["effective_coupling_ghz"].shape == (21,)

    def test_fig5_keys(self):
        curve = coupling_vs_distance(num_points=11)
        assert set(curve) == {"distance_mm", "cp_ff", "g_ghz", "g_eff_ghz"}

    def test_fig6_keys(self):
        curves = resonator_coupling_curves(num_points=11)
        assert "g_vs_distance_ghz" in curves
        assert "g_vs_detuning_ghz" in curves

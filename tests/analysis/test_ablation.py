"""Unit tests for the ablation experiments."""

import pytest

from repro.analysis.ablation import (
    ABLATION_VARIANTS,
    ablation_experiment,
    detailed_placement_gain,
    disorder_robustness,
    router_comparison,
)
from repro.core import PlacerConfig

FAST = PlacerConfig(max_iterations=100, min_iterations=20, num_bins=32)


@pytest.fixture(scope="module")
def ablation_rows():
    return ablation_experiment("grid-25", config=FAST)


class TestAblation:
    def test_all_variants_present(self, ablation_rows):
        assert [r.variant for r in ablation_rows] == list(ABLATION_VARIANTS)

    def test_full_flow_cleanest(self, ablation_rows):
        by_variant = {r.variant: r for r in ablation_rows}
        full = by_variant["full"]
        assert full.ph_percent <= min(r.ph_percent for r in ablation_rows) + 1e-9
        assert full.integrity == 1.0

    def test_frequency_legalizer_matters(self, ablation_rows):
        """Dropping the resonant checker must create hotspots."""
        by_variant = {r.variant: r for r in ablation_rows}
        assert by_variant["no-freq-legalizer"].ph_percent > \
            by_variant["full"].ph_percent

    def test_classic_loses_integrity_or_hotspots(self, ablation_rows):
        by_variant = {r.variant: r for r in ablation_rows}
        classic = by_variant["classic"]
        assert classic.ph_percent > 0 or classic.integrity < 1.0

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            ablation_experiment("grid-25", variants=("bogus",), config=FAST)


class TestDisorderRobustness:
    def test_rows_structure(self):
        rows = disorder_robustness("grid-25", sigmas_ghz=(0.0, 0.03),
                                   trials=2, config=FAST)
        strategies = {r.strategy for r in rows}
        assert strategies == {"qplacer", "classic"}
        assert len(rows) == 4

    def test_zero_sigma_matches_design(self):
        rows = disorder_robustness("grid-25", sigmas_ghz=(0.0,),
                                   trials=1, config=FAST)
        qplacer = next(r for r in rows if r.strategy == "qplacer")
        assert qplacer.mean_ph_percent == pytest.approx(0.0, abs=0.2)

    def test_scatter_degrades_ph(self):
        rows = disorder_robustness("grid-25", sigmas_ghz=(0.0, 0.05),
                                   trials=3, config=FAST)
        for strategy in ("qplacer", "classic"):
            clean = next(r for r in rows
                         if r.strategy == strategy and r.sigma_ghz == 0.0)
            noisy = next(r for r in rows
                         if r.strategy == strategy and r.sigma_ghz == 0.05)
            assert noisy.mean_ph_percent >= clean.mean_ph_percent


class TestRouterComparison:
    def test_rows(self):
        rows = router_comparison("grid-25", benchmarks=("bv-9",),
                                 num_mappings=4)
        routers = {r.router for r in rows}
        assert routers == {"basic", "sabre"}

    def test_sabre_not_worse(self):
        rows = router_comparison("falcon-27", benchmarks=("qaoa-9",),
                                 num_mappings=5)
        by_router = {r.router: r for r in rows}
        assert by_router["sabre"].total_swaps <= \
            by_router["basic"].total_swaps


class TestDetailedGain:
    def test_improvement_nonnegative(self):
        before, after, swaps = detailed_placement_gain("grid-25",
                                                       config=FAST,
                                                       max_passes=2)
        assert after <= before + 1e-9
        assert swaps >= 0

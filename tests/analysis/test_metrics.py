"""Unit tests for layout metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    LayoutMetrics,
    area_ratios,
    compute_layout_metrics,
    resonator_integrity,
)
from repro.devices.components import Qubit, Resonator
from repro.devices.layout import Layout


def qubit_layout(positions, freqs, strategy="test"):
    instances = [
        Qubit(name=f"q{i}", width=0.4, height=0.4, padding=0.4,
              frequency=f, index=i)
        for i, f in enumerate(freqs)
    ]
    return Layout(instances=instances,
                  positions=np.array(positions, float), strategy=strategy)


class TestComputeMetrics:
    def test_fields(self):
        lay = qubit_layout([(0, 0), (2, 0)], [5.0, 5.1])
        m = compute_layout_metrics(lay)
        assert m.strategy == "test"
        assert m.amer_mm2 == pytest.approx(2.4 * 0.4)
        assert m.apoly_mm2 == pytest.approx(0.32)
        assert m.utilization == pytest.approx(0.32 / 0.96)
        assert m.ph_percent == 0.0

    def test_hotspot_detected(self):
        lay = qubit_layout([(0, 0), (0.8, 0)], [5.0, 5.0])
        m = compute_layout_metrics(lay)
        assert m.num_hotspots == 1
        assert m.impacted_qubits == 2
        assert m.ph_percent > 0

    def test_violation_count_includes_detuned(self):
        lay = qubit_layout([(0, 0), (0.8, 0)], [4.8, 5.2])
        m = compute_layout_metrics(lay)
        assert m.num_violations == 1
        assert m.num_hotspots == 0


class TestAreaRatios:
    def test_relative_to_reference(self):
        metrics = [
            LayoutMetrics("qplacer", 100.0, 50, 0.5, 0, 0, 0, 0),
            LayoutMetrics("human", 220.0, 50, 0.23, 0, 0, 0, 0),
        ]
        ratios = area_ratios(metrics)
        assert ratios["qplacer"] == 1.0
        assert ratios["human"] == pytest.approx(2.2)

    def test_missing_reference(self):
        metrics = [LayoutMetrics("human", 220.0, 50, 0.23, 0, 0, 0, 0)]
        with pytest.raises(ValueError):
            area_ratios(metrics)


class TestResonatorIntegrity:
    def make_segments(self, positions):
        r = Resonator(name="r0", index=0, endpoints=(0, 1), frequency=6.5)
        segs = list(r.make_segments(0.3)[:len(positions)])
        return Layout(instances=segs, positions=np.array(positions, float))

    def test_contiguous_chain(self):
        lay = self.make_segments([(0, 0), (0.35, 0), (0.7, 0)])
        assert resonator_integrity(lay) == 1.0

    def test_broken_chain(self):
        lay = self.make_segments([(0, 0), (0.35, 0), (5.0, 5.0)])
        assert resonator_integrity(lay) == 0.0

    def test_single_segment_always_integral(self):
        lay = self.make_segments([(0, 0)])
        assert resonator_integrity(lay) == 1.0

    def test_no_segments(self):
        lay = qubit_layout([(0, 0)], [5.0])
        assert resonator_integrity(lay) == 1.0

    def test_qplacer_layout_integral(self, grid9_placed):
        assert resonator_integrity(grid9_placed.layout) == 1.0

"""On-disk caching of evaluation-mapping batches (MappingJob)."""

import numpy as np
import pytest

from repro.analysis.experiments import build_suite, fidelity_experiment
from repro.analysis.runner import (
    MappingJob,
    ParallelRunner,
    job_token,
    run_mapping_job,
    run_mapping_job_sharded,
    split_mapping_job,
)
from repro.circuits.library import get_benchmark
from repro.circuits.mapping import evaluation_mappings
from repro.devices.topology import get_topology


def _mapped_equal(a, b):
    return (a.physical_circuit.gates == b.physical_circuit.gates
            and a.initial_mapping == b.initial_mapping
            and a.final_mapping == b.final_mapping
            and a.swap_count == b.swap_count
            and a.schedule == b.schedule)


class TestMappingJob:
    def test_worker_matches_direct_computation(self):
        job = MappingJob(benchmark="bv-4", topology="grid-25",
                         num_mappings=3, base_seed=5)
        via_job = run_mapping_job(job)
        direct = evaluation_mappings(get_benchmark("bv-4"),
                                     get_topology("grid-25"),
                                     num_mappings=3, base_seed=5)
        assert len(via_job) == len(direct) == 3
        for a, b in zip(via_job, direct):
            assert a.initial_mapping == b.initial_mapping
            assert a.final_mapping == b.final_mapping
            assert a.swap_count == b.swap_count
            assert a.duration_ns == b.duration_ns

    def test_token_covers_transpiler_config(self):
        base = MappingJob(benchmark="bv-4", topology="grid-25",
                          num_mappings=3)
        assert job_token(base) != job_token(
            MappingJob(benchmark="bv-4", topology="grid-25",
                       num_mappings=3, router="sabre"))
        assert job_token(base) != job_token(
            MappingJob(benchmark="bv-4", topology="grid-25",
                       num_mappings=3, optimization_level=1))
        assert job_token(base) != job_token(
            MappingJob(benchmark="bv-4", topology="falcon-27",
                       num_mappings=3))
        assert job_token(base) != job_token(
            MappingJob(benchmark="bv-4", topology="grid-25",
                       num_mappings=3, base_seed=1))

    def test_cache_skips_recomputation(self, tmp_path):
        job = MappingJob(benchmark="bv-4", topology="grid-25",
                         num_mappings=2)
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        first = runner.map(run_mapping_job, [job], namespace="mappings")[0]
        assert runner.cache_misses == 1
        second = runner.map(run_mapping_job, [job], namespace="mappings")[0]
        assert runner.cache_hits == 1
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.final_mapping == b.final_mapping
            assert a.swap_count == b.swap_count


class TestSeedRangeSharding:
    """MappingJob seed-range chunks compose into the whole batch."""

    JOB = MappingJob(benchmark="bv-4", topology="grid-25",
                     num_mappings=7, base_seed=3)

    def test_split_covers_seed_range_exactly(self):
        chunks = split_mapping_job(self.JOB, chunk_size=3)
        assert [(c.base_seed, c.num_mappings) for c in chunks] == \
            [(3, 3), (6, 3), (9, 1)]
        # every non-seed field is inherited
        assert all(c.benchmark == "bv-4" and c.topology == "grid-25"
                   and c.router == "basic" for c in chunks)

    def test_split_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            split_mapping_job(self.JOB, chunk_size=0)

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 50])
    def test_chunked_identical_to_whole_batch(self, chunk_size):
        whole = run_mapping_job(self.JOB)
        chunked = run_mapping_job_sharded(
            self.JOB, ParallelRunner(max_workers=1), chunk_size=chunk_size)
        assert len(chunked) == len(whole) == 7
        for a, b in zip(whole, chunked):
            assert _mapped_equal(a, b)

    def test_auto_chunking_splits_across_workers(self):
        runner = ParallelRunner(max_workers=2)
        chunked = run_mapping_job_sharded(self.JOB, runner)
        whole = run_mapping_job(self.JOB)
        for a, b in zip(whole, chunked):
            assert _mapped_equal(a, b)

    def test_chunks_replay_from_cache_and_compose(self, tmp_path):
        """Partial batches cache independently and re-assemble."""
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        first = run_mapping_job_sharded(self.JOB, runner, chunk_size=3)
        assert runner.cache_misses == 3  # one per chunk
        replay = run_mapping_job_sharded(self.JOB, runner, chunk_size=3)
        assert runner.cache_hits == 3
        for a, b in zip(first, replay):
            assert _mapped_equal(a, b)
        # a later *larger* request reuses nothing but still matches
        bigger = run_mapping_job_sharded(
            MappingJob(benchmark="bv-4", topology="grid-25",
                       num_mappings=9, base_seed=3),
            runner, chunk_size=3)
        for a, b in zip(first, bigger):
            assert _mapped_equal(a, b)

    def test_chunk_token_matches_equivalent_whole_job(self):
        """A chunk IS a MappingJob: same token as the same-range batch."""
        chunk = split_mapping_job(self.JOB, chunk_size=3)[1]
        equivalent = MappingJob(benchmark="bv-4", topology="grid-25",
                                num_mappings=3, base_seed=6)
        assert job_token(chunk) == job_token(equivalent)


class TestFidelityExperimentCache:
    @pytest.fixture(scope="class")
    def suite(self):
        return build_suite("grid-25")

    def test_cached_run_matches_uncached(self, suite, tmp_path):
        benchmarks = ("bv-4", "ising-4")
        plain = fidelity_experiment(suite, benchmarks, num_mappings=3)
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        cached = fidelity_experiment(suite, benchmarks, num_mappings=3,
                                     runner=runner)
        assert runner.cache_misses == len(benchmarks)
        assert plain.keys() == cached.keys()
        for bench in plain:
            for strategy in plain[bench]:
                assert plain[bench][strategy] == cached[bench][strategy]

    def test_second_run_hits_cache(self, suite, tmp_path):
        benchmarks = ("bv-4",)
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        first = fidelity_experiment(suite, benchmarks, num_mappings=3,
                                    runner=runner)
        second = fidelity_experiment(suite, benchmarks, num_mappings=3,
                                     runner=runner)
        assert runner.cache_hits == 1
        assert first == second

    def test_wide_benchmarks_still_skipped(self, suite, tmp_path):
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        table = fidelity_experiment(suite, ("bv-4", "qgan-9"),
                                    num_mappings=2, runner=runner)
        # qgan-9 fits grid-25; both rows present, none crash.
        assert set(table) <= {"bv-4", "qgan-9"}

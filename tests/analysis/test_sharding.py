"""Sharded workload evaluation: contract, merging, bit-identity."""

import pytest

from repro.analysis.experiments import (build_suite, fidelity_experiment,
                                        sharded_fidelity_experiment)
from repro.analysis.runner import (ParallelRunner, PlacementJob,
                                   WorkloadShardJob, run_workload_shard)
from repro.workloads import merge_fidelity_shards, shard_items

WORKLOADS = ("bv-9", "ghz-9", "qaoa-9", "clifford-9-d4-s1")


class TestShardItems:
    def test_round_robin_partition(self):
        items = tuple("abcdefg")
        shards = [shard_items(items, k, 3) for k in range(3)]
        assert shards[0] == ("a", "d", "g")
        assert shards[1] == ("b", "e")
        assert shards[2] == ("c", "f")
        # Disjoint and complete.
        merged = [x for shard in shards for x in shard]
        assert sorted(merged) == sorted(items)

    def test_single_shard_is_identity(self):
        assert shard_items((1, 2, 3), 0, 1) == (1, 2, 3)

    def test_more_shards_than_items(self):
        assert shard_items(("a",), 1, 3) == ()

    @pytest.mark.parametrize("index,count", [(-1, 2), (2, 2), (0, 0)])
    def test_invalid_bounds(self, index, count):
        with pytest.raises(ValueError):
            shard_items(("a", "b"), index, count)


class TestMergeFidelityShards:
    def test_merges_in_declared_order(self):
        p0 = {"a": {"s": 1.0}, "c": {"s": 3.0}}
        p1 = {"b": {"s": 2.0}}
        merged = merge_fidelity_shards([p1, p0], order=("a", "b", "c"))
        assert list(merged) == ["a", "b", "c"]

    def test_duplicate_benchmark_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            merge_fidelity_shards([{"a": {}}, {"a": {}}])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            merge_fidelity_shards([{"zz": {}}], order=("a",))

    def test_skipped_benchmarks_stay_absent(self):
        merged = merge_fidelity_shards([{"a": {"s": 1.0}}],
                                       order=("a", "wide-9999"))
        assert list(merged) == ["a"]


@pytest.fixture(scope="module")
def grid_suite():
    return build_suite("grid-25", strategies=("qplacer",))


@pytest.fixture(scope="module")
def single_run(grid_suite):
    return fidelity_experiment(grid_suite, benchmarks=WORKLOADS,
                               num_mappings=3)


class TestShardIdentity:
    def test_fidelity_experiment_shard_slicing(self, grid_suite, single_run):
        partials = [
            fidelity_experiment(grid_suite, benchmarks=WORKLOADS,
                                num_mappings=3, shard_index=k, shard_count=2)
            for k in range(2)
        ]
        merged = merge_fidelity_shards(partials, order=WORKLOADS)
        assert merged == single_run
        assert list(merged) == list(single_run)

    def test_shard_args_must_come_together(self, grid_suite):
        with pytest.raises(ValueError, match="together"):
            fidelity_experiment(grid_suite, benchmarks=WORKLOADS,
                                shard_index=0)

    def test_sharded_experiment_in_process(self, single_run):
        merged = sharded_fidelity_experiment(
            "grid-25", workloads=WORKLOADS, shard_count=2,
            num_mappings=3, strategies=("qplacer",),
            runner=ParallelRunner(max_workers=1))
        assert merged == single_run

    def test_sharded_experiment_process_pool(self, single_run):
        merged = sharded_fidelity_experiment(
            "grid-25", workloads=WORKLOADS, shard_count=3,
            num_mappings=3, strategies=("qplacer",),
            runner=ParallelRunner(max_workers=2))
        assert merged == single_run

    def test_suite_name_resolution(self, grid_suite):
        # paper-8 via suite name == explicit benchmark list.
        expected = fidelity_experiment(grid_suite, num_mappings=2)
        merged = sharded_fidelity_experiment(
            "grid-25", workloads="paper-8", shard_count=2,
            num_mappings=2, strategies=("qplacer",),
            runner=ParallelRunner(max_workers=1))
        assert merged == expected

    def test_cached_rerun_is_identical(self, single_run, tmp_path):
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        first = sharded_fidelity_experiment(
            "grid-25", workloads=WORKLOADS, shard_count=2,
            num_mappings=3, strategies=("qplacer",), runner=runner)
        warm = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        second = sharded_fidelity_experiment(
            "grid-25", workloads=WORKLOADS, shard_count=2,
            num_mappings=3, strategies=("qplacer",), runner=warm)
        assert first == second == single_run
        assert warm.cache_hits > 0 and warm.cache_misses == 0


class TestWorkloadShardJob:
    def test_worker_scores_only_its_slice(self, single_run):
        job = WorkloadShardJob(
            placement=PlacementJob(topology="grid-25",
                                   strategies=("qplacer",)),
            workloads=WORKLOADS, shard_index=1, shard_count=2,
            num_mappings=3)
        partial = run_workload_shard(job)
        assert tuple(partial) == WORKLOADS[1::2]
        for name, row in partial.items():
            assert row == single_run[name]

    def test_too_wide_workloads_are_skipped(self):
        job = WorkloadShardJob(
            placement=PlacementJob(topology="grid-25",
                                   strategies=("qplacer",)),
            workloads=("bv-9", "ghz-64"), shard_index=0, shard_count=1,
            num_mappings=2)
        partial = run_workload_shard(job)
        assert "ghz-64" not in partial and "bv-9" in partial

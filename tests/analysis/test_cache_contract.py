"""Cache-directory contracts: atomic writes and schema invalidation.

Two satellite guarantees of ISSUE 5:

* concurrent writers racing on one cache entry go through a temp-file +
  atomic-rename protocol (unique temp per process *and thread*), so
  readers never observe a truncated/torn entry;
* a cache populated at schema version N must *miss* — not crash, not
  return stale data — after :data:`~repro.analysis.runner.
  CACHE_SCHEMA_VERSION` is bumped, for both placement and mapping
  artifacts.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.analysis import runner as runner_mod
from repro.analysis.runner import (MappingJob, ParallelRunner, PlacementJob,
                                   job_token, run_mapping_job,
                                   run_placement_job)
from repro.core import PlacerConfig
from repro.io.atomic import atomic_write_bytes

FAST = PlacerConfig(max_iterations=60, min_iterations=10, num_bins=32)


class TestAtomicCacheWrites:
    def test_concurrent_same_entry_writers_never_tear(self, tmp_path):
        """Threads hammering one path leave a complete winner behind."""
        path = tmp_path / "ns" / "entry.pkl"
        payloads = [pickle.dumps({"writer": k, "blob": bytes(200_000)})
                    for k in range(6)]
        errors = []
        stop = threading.Event()

        def write(k):
            try:
                while not stop.is_set():
                    atomic_write_bytes(path, payloads[k])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def read():
            try:
                while not stop.is_set():
                    if path.exists():
                        data = path.read_bytes()
                        value = pickle.loads(data)  # torn file would raise
                        assert data in payloads
                        assert "blob" in value
            except Exception as exc:
                errors.append(exc)

        threads = ([threading.Thread(target=write, args=(k,))
                    for k in range(6)]
                   + [threading.Thread(target=read) for _ in range(2)])
        for t in threads:
            t.start()
        timer = threading.Timer(1.0, stop.set)
        timer.start()
        for t in threads:
            t.join(timeout=30)
        timer.cancel()
        stop.set()
        assert not errors
        assert path.read_bytes() in payloads
        leftovers = [p for p in path.parent.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_runner_store_goes_through_atomic_writer(self, tmp_path):
        """_cache_store leaves no temp droppings and a loadable entry."""
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        job = MappingJob(benchmark="bv-4", topology="grid-25",
                         num_mappings=2)
        runner.map(run_mapping_job, [job], namespace="mappings")
        entries = list(tmp_path.rglob("*.pkl"))
        assert len(entries) == 1
        pickle.loads(entries[0].read_bytes())
        assert not [p for p in tmp_path.rglob("*") if ".tmp." in p.name]

    def test_cache_env_refcounts_across_threads(self, tmp_path,
                                                monkeypatch):
        """A fast thread's exit must not unset the var under a slow one.

        The service's scheduler threads drive one shared runner; the
        ``$REPRO_CACHE_DIR`` publication is reference-counted so the
        last exit restores, not the first.
        """
        import os
        import time

        from repro.analysis.runner import CACHE_ENV_VAR

        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        barrier = threading.Barrier(2)
        observed = []

        def use(delay):
            with runner._cache_env():
                barrier.wait()
                time.sleep(delay)
                observed.append(os.environ.get(CACHE_ENV_VAR))

        threads = [threading.Thread(target=use, args=(d,))
                   for d in (0.0, 0.3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # the slow thread still saw the directory after the fast exit
        assert observed == [str(tmp_path), str(tmp_path)]
        assert CACHE_ENV_VAR not in os.environ  # last exit restored

    def test_interrupted_write_preserves_previous_entry(self, tmp_path):
        path = tmp_path / "entry.pkl"
        atomic_write_bytes(path, b"old-complete-entry")

        class Explodes:
            def __reduce__(self):
                raise RuntimeError("mid-serialisation failure")

        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        runner._cache_store(path, Explodes())  # swallowed, non-fatal
        assert path.read_bytes() == b"old-complete-entry"


class TestSchemaVersionInvalidation:
    def _bump(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "CACHE_SCHEMA_VERSION",
                            runner_mod.CACHE_SCHEMA_VERSION + 1)

    def test_placement_cache_misses_after_bump(self, tmp_path, monkeypatch):
        job = PlacementJob(topology="grid-25", strategies=("qplacer",),
                           config=FAST)
        first = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        before = first.run_suites([job])[0]
        assert first.cache_misses == 1

        self._bump(monkeypatch)
        after_runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        after = after_runner.run_suites([job])[0]
        # clean miss and recompute: no crash, no stale read
        assert after_runner.cache_hits == 0
        assert after_runner.cache_misses == 1
        assert (after.layouts["qplacer"].positions
                == before.layouts["qplacer"].positions).all()

    def test_mapping_cache_misses_after_bump(self, tmp_path, monkeypatch):
        job = MappingJob(benchmark="bv-4", topology="grid-25",
                         num_mappings=2)
        first = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        first.map(run_mapping_job, [job], namespace="mappings")
        assert first.cache_misses == 1

        self._bump(monkeypatch)
        again = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        again.map(run_mapping_job, [job], namespace="mappings")
        assert again.cache_hits == 0 and again.cache_misses == 1
        # both versions' entries now coexist under distinct tokens
        assert len(list(tmp_path.rglob("*.pkl"))) == 2

    def test_token_depends_on_live_version(self, monkeypatch):
        job = PlacementJob(topology="grid-25")
        before = job_token(job)
        self._bump(monkeypatch)
        assert job_token(job) != before


class TestCorruptEntryRecovery:
    def test_truncated_pickle_recomputes_and_deletes(self, tmp_path):
        """A truncated entry is a clean miss AND gets evicted from disk."""
        job = PlacementJob(topology="grid-25", strategies=("qplacer",),
                           config=FAST)
        first = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        good = first.run_suites([job])[0]
        entry = next(tmp_path.rglob("*.pkl"))
        data = entry.read_bytes()
        entry.write_bytes(data[:len(data) // 2])  # a torn write survived

        again = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        suite = again.run_suites([job])[0]
        assert again.cache_hits == 0 and again.cache_misses == 1
        assert (suite.layouts["qplacer"].positions
                == good.layouts["qplacer"].positions).all()
        # the recompute replaced the corrupt file with a loadable entry
        third = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        third.run_suites([job])
        assert third.cache_hits == 1 and third.cache_misses == 0

    def test_cache_load_unlinks_corrupt_file(self, tmp_path):
        path = tmp_path / "ns" / "deadbeef.pkl"
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\x80\x04not really a pickle")
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        assert runner._cache_load(path) == (False, None)
        assert not path.exists()

    def test_missing_entry_is_a_plain_miss(self, tmp_path):
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        assert runner._cache_load(tmp_path / "ns" / "absent.pkl") \
            == (False, None)

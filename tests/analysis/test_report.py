"""Unit tests for report-table formatting."""

import pytest

from repro.analysis.experiments import ParetoPoint, SummaryRow, SweepRow
from repro.analysis.report import (
    area_table,
    fidelity_table,
    format_fidelity,
    format_table,
    pareto_table,
    summary_table,
    sweep_table,
)


class TestFormatFidelity:
    def test_floor_notation(self):
        assert format_fidelity(5e-5) == "<1e-4"
        assert format_fidelity(1e-4) == "<1e-4"

    def test_regular_value(self):
        assert format_fidelity(0.8389) == "0.8389"


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a     bbbb")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["a"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_wide_cells_stretch_columns(self):
        text = format_table(["h"], [["wide-cell-content"]])
        assert "wide-cell-content" in text


class TestDomainTables:
    def test_fidelity_table(self):
        table = fidelity_table(
            {"bv-4": {"qplacer": 0.9, "classic": 1e-5}}, "grid-25")
        assert "bv-4" in table
        assert "<1e-4" in table
        assert "0.9000" in table

    def test_summary_table(self):
        rows = [SummaryRow("grid-25", "qplacer", 0.4259, 5, 0.81)]
        table = summary_table(rows)
        assert "grid-25" in table and "0.4259" in table and "0.81" in table

    def test_area_table(self):
        table = area_table({"grid-25": {"qplacer": 1.0, "human": 1.806}})
        assert "1.806" in table

    def test_sweep_table(self):
        rows = [SweepRow("grid-25", 0.3, 490, 0.843, 0.0, 4.6, 0.017)]
        table = sweep_table(rows)
        assert "490" in table and "0.843" in table

    def test_pareto_table(self):
        points = [ParetoPoint("grid-25", "human", 87.1, 0.55)]
        table = pareto_table(points)
        assert "87.1" in table and "0.5500" in table

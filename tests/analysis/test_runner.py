"""Determinism and caching tests for the parallel experiment runner.

The contract under test (ISSUE 1):

* parallel execution is bit-identical to serial execution for the same
  jobs/seeds — positions and metrics, not just summaries;
* the on-disk cache returns identical results on a second run;
* per-job seed derivation is deterministic and collision-free over
  realistic index ranges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.runner import (
    CACHE_SCHEMA_VERSION,
    AblationJob,
    ParallelRunner,
    PlacementJob,
    derive_seed,
    job_token,
    run_ablation_job,
    run_placement_job,
)
from repro.core import PlacerConfig

FAST = PlacerConfig(max_iterations=60, min_iterations=10, num_bins=32)

JOBS = [
    PlacementJob(topology="grid-25", strategies=("qplacer",), config=FAST),
    PlacementJob(topology="grid-25", strategies=("classic",), config=FAST),
    PlacementJob(topology="grid-25", strategies=("qplacer",), config=FAST,
                 seed=7),
]


def _suite_signature(suite):
    """Everything that must match bit-for-bit between two executions."""
    out = {}
    for name, layout in suite.layouts.items():
        out[name] = (layout.positions.copy(),
                     layout.amer(), layout.apoly())
    return out


def _assert_signatures_equal(a, b):
    assert a.keys() == b.keys()
    for name in a:
        pos_a, amer_a, apoly_a = a[name]
        pos_b, amer_b, apoly_b = b[name]
        assert np.array_equal(pos_a, pos_b), f"{name} positions differ"
        assert amer_a == amer_b
        assert apoly_a == apoly_b


class TestParallelDeterminism:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = ParallelRunner(max_workers=1).run_suites(JOBS)
        parallel = ParallelRunner(max_workers=2).run_suites(JOBS)
        for s, p in zip(serial, parallel):
            _assert_signatures_equal(_suite_signature(s), _suite_signature(p))

    def test_results_in_job_order(self):
        suites = ParallelRunner(max_workers=2).run_suites(JOBS)
        assert list(suites[0].layouts) == ["qplacer"]
        assert list(suites[1].layouts) == ["classic"]
        assert suites[2].results["qplacer"].problem.config.seed == 7

    def test_seed_override_changes_result(self):
        base, seeded = ParallelRunner(max_workers=1).run_suites(
            [JOBS[0], JOBS[2]])
        assert not np.array_equal(base.layouts["qplacer"].positions,
                                  seeded.layouts["qplacer"].positions)


class TestDiskCache:
    def test_second_run_hits_cache_and_matches(self, tmp_path):
        first = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        a = first.run_suites(JOBS[:2])
        assert first.cache_hits == 0 and first.cache_misses == 2

        second = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        b = second.run_suites(JOBS[:2])
        assert second.cache_hits == 2 and second.cache_misses == 0
        for x, y in zip(a, b):
            _assert_signatures_equal(_suite_signature(x), _suite_signature(y))

    def test_cache_distinguishes_jobs(self, tmp_path):
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        runner.run_suites([JOBS[0]])
        runner.run_suites([JOBS[2]])  # same topology, different seed
        assert runner.cache_misses == 2

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        runner.run_suites([JOBS[0]])
        victims = list(tmp_path.rglob("*.pkl"))
        assert victims
        victims[0].write_bytes(b"not a pickle")
        again = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        suites = again.run_suites([JOBS[0]])
        assert again.cache_misses == 1
        assert suites[0].layouts["qplacer"].positions.shape[1] == 2

    def test_no_cache_dir_never_writes(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        runner = ParallelRunner(max_workers=1)
        assert runner.cache_dir is None
        runner.map(run_ablation_job,
                   [AblationJob(topology="grid-25", variant="classic",
                                config=FAST)])
        assert not list(tmp_path.rglob("*.pkl"))

    def test_env_var_sets_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = ParallelRunner(max_workers=1)
        assert runner.cache_dir == tmp_path


class TestTokensAndSeeds:
    def test_job_token_stable_and_distinct(self):
        assert job_token(JOBS[0]) == job_token(
            PlacementJob(topology="grid-25", strategies=("qplacer",),
                         config=FAST))
        assert job_token(JOBS[0]) != job_token(JOBS[1])
        assert job_token(JOBS[0]) != job_token(JOBS[0], namespace="other")

    def test_token_covers_config(self):
        slow = PlacementJob(topology="grid-25", strategies=("qplacer",),
                            config=PlacerConfig(max_iterations=61,
                                                min_iterations=10,
                                                num_bins=32))
        assert job_token(JOBS[0]) != job_token(slow)

    def test_derive_seed_deterministic(self):
        assert derive_seed(0, 3) == derive_seed(0, 3)
        seen = {derive_seed(0, k) for k in range(500)}
        assert len(seen) == 500
        assert derive_seed(1, 3) != derive_seed(0, 3)

    def test_schema_version_in_token(self):
        # Changing the schema version must change every token; the
        # constant itself is asserted so bumps are deliberate.
        assert CACHE_SCHEMA_VERSION >= 1


class TestParallelEvaluationPipelines:
    def test_ablation_parallel_matches_serial(self):
        from repro.analysis.ablation import ablation_experiment

        variants = ("full", "classic")
        serial = ablation_experiment("grid-25", variants=variants,
                                     config=FAST,
                                     runner=ParallelRunner(max_workers=1))
        parallel = ablation_experiment("grid-25", variants=variants,
                                       config=FAST,
                                       runner=ParallelRunner(max_workers=2))
        for s, p in zip(serial, parallel):
            assert s.variant == p.variant
            assert s.ph_percent == p.ph_percent
            assert s.impacted_qubits == p.impacted_qubits
            assert s.amer_mm2 == p.amer_mm2
            assert s.integrity == p.integrity

    def test_sweep_runs_through_runner(self, tmp_path):
        from repro.analysis.experiments import segment_sweep

        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        rows = segment_sweep("grid-25", segment_sizes=(0.3,), config=FAST,
                             runner=runner)
        assert len(rows) == 1 and rows[0].segment_size_mm == 0.3
        assert runner.cache_misses == 1
        rows2 = segment_sweep("grid-25", segment_sizes=(0.3,), config=FAST,
                              runner=ParallelRunner(max_workers=1,
                                                    cache_dir=tmp_path))
        assert rows2[0].ph_percent == rows[0].ph_percent
        assert rows2[0].num_cells == rows[0].num_cells

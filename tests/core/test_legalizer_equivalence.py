"""Golden equivalence: vectorized legalizer vs the preserved seed code.

The vectorized legalizer (:mod:`repro.core.legalizer`) must reproduce
the seed implementation (:mod:`repro.core.legalizer_reference`) on all
six paper topologies: overlap-free, frequency-legal layouts whose
wirelength/area metrics match within tolerance.  In practice the two
implementations track each other bit for bit; the assertions below
allow float-rounding headroom so legitimate numerical reordering does
not break the build, while any behavioural drift still does.

Global placement runs with a reduced iteration budget — legalizer
equivalence does not require a converged engine, and this keeps the
six-topology matrix affordable in CI.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import legalizer, legalizer_reference
from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.preprocess import build_problem
from repro.core.wirelength import hpwl
from repro.devices.netlist import build_netlist
from repro.devices.topology import PAPER_TOPOLOGY_ORDER, get_topology

FAST = PlacerConfig(max_iterations=60, min_iterations=10)
FAST_CLASSIC = PlacerConfig.classic(max_iterations=60, min_iterations=10)

#: Relative tolerance on aggregate metrics (wirelength, displacement).
METRIC_RTOL = 1e-9


def _legalized(topology_name: str, config: PlacerConfig):
    problem = build_problem(build_netlist(get_topology(topology_name)), config)
    global_result = GlobalPlacer(problem, config).run()
    ref_pos, ref_stats = legalizer_reference.legalize(
        problem, global_result.positions, config)
    vec_pos, vec_stats = legalizer.legalize(
        problem, global_result.positions, config)
    return problem, ref_pos, ref_stats, vec_pos, vec_stats


def _pair_gap(problem, positions, i, j) -> float:
    dx = abs(positions[i, 0] - positions[j, 0]) \
        - 0.5 * (problem.sizes[i, 0] + problem.sizes[j, 0])
    dy = abs(positions[i, 1] - positions[j, 1]) \
        - 0.5 * (problem.sizes[i, 1] + problem.sizes[j, 1])
    if dx > 0 or dy > 0:
        return math.hypot(max(dx, 0.0), max(dy, 0.0))
    return max(dx, dy)


def _assert_layout_legal(problem, positions, frequency_aware: bool) -> None:
    """No bare overlaps; resonant non-intended pairs keep their padding."""
    n = problem.num_instances
    for i in range(n):
        for j in range(i + 1, n):
            gap = _pair_gap(problem, positions, i, j)
            assert gap >= -1e-9, f"overlap between {i} and {j}: {gap}"


@pytest.mark.parametrize("topology_name", PAPER_TOPOLOGY_ORDER)
def test_equivalent_on_paper_topology(topology_name):
    problem, ref_pos, ref_stats, vec_pos, vec_stats = _legalized(
        topology_name, FAST)

    # Positions agree (bit-identical in practice; tolerance for headroom).
    np.testing.assert_allclose(vec_pos, ref_pos, rtol=0, atol=1e-9)

    # Aggregate metrics match within tolerance.
    assert math.isclose(hpwl(vec_pos, problem.nets),
                        hpwl(ref_pos, problem.nets), rel_tol=METRIC_RTOL)
    assert math.isclose(vec_stats.qubit_displacement_mm,
                        ref_stats.qubit_displacement_mm,
                        rel_tol=METRIC_RTOL, abs_tol=1e-9)
    assert math.isclose(vec_stats.segment_displacement_mm,
                        ref_stats.segment_displacement_mm,
                        rel_tol=METRIC_RTOL, abs_tol=1e-9)
    assert vec_stats.resonant_relaxations == ref_stats.resonant_relaxations
    assert vec_stats.integration_failures == ref_stats.integration_failures

    # Occupied bounding-box (area) agreement.
    for axis in (0, 1):
        assert math.isclose(float(vec_pos[:, axis].max() - vec_pos[:, axis].min()),
                            float(ref_pos[:, axis].max() - ref_pos[:, axis].min()),
                            rel_tol=METRIC_RTOL, abs_tol=1e-9)


@pytest.mark.parametrize("topology_name", ("grid-25", "falcon-27"))
def test_equivalent_under_classic_config(topology_name):
    _, ref_pos, _, vec_pos, _ = _legalized(topology_name, FAST_CLASSIC)
    np.testing.assert_allclose(vec_pos, ref_pos, rtol=0, atol=1e-9)


def test_vectorized_layout_is_overlap_free_and_frequency_legal():
    problem, _, _, vec_pos, vec_stats = _legalized("grid-25", FAST)
    _assert_layout_legal(problem, vec_pos, frequency_aware=True)
    # Frequency legality: resonant non-intended pairs need the padding
    # sum unless counted as an explicit relaxation.
    relaxations = 0
    for i in range(problem.num_instances):
        for j in range(i + 1, problem.num_instances):
            if problem.is_intended_pair(i, j):
                continue
            if not problem.is_resonant_pair(i, j):
                continue
            required = problem.paddings[i] + problem.paddings[j]
            if _pair_gap(problem, vec_pos, i, j) < required - 1e-9:
                relaxations += 1
    assert relaxations <= vec_stats.resonant_relaxations


def test_spiral_offsets_match_reference():
    for radius in (1, 2, 5, 16):
        vec = legalizer._spiral_offsets(radius)
        ref = legalizer_reference._spiral_offsets(radius)
        assert vec == [tuple(o) for o in ref]


def test_stats_dataclass_fields_match():
    from dataclasses import fields

    assert [f.name for f in fields(legalizer.LegalizeStats)] == \
        [f.name for f in fields(legalizer_reference.LegalizeStats)]

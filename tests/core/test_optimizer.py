"""Unit tests for the Nesterov/Barzilai-Borwein optimizer."""

import numpy as np
import pytest

from repro.core.optimizer import NesterovOptimizer


def quadratic_objective(target):
    def fn(x):
        delta = x - target
        return float((delta ** 2).sum()), 2.0 * delta
    return fn


class TestConvergence:
    def test_minimises_quadratic(self):
        target = np.array([[1.0, 2.0], [3.0, -1.0]])
        opt = NesterovOptimizer(quadratic_objective(target),
                                x0=np.zeros((2, 2)), max_move=0.5)
        for _ in range(200):
            opt.step()
        assert np.allclose(opt.x, target, atol=1e-3)

    def test_faster_than_no_momentum_baseline(self):
        # Ill-conditioned quadratic: Nesterov+BB should converge in a
        # modest number of iterations.
        scales = np.array([[1.0, 100.0]])

        def fn(x):
            return float((scales * x * x).sum()), 2.0 * scales * x

        opt = NesterovOptimizer(fn, x0=np.array([[10.0, 10.0]]), max_move=1.0)
        for _ in range(300):
            opt.step()
        assert float(np.abs(opt.x).max()) < 1e-2


class TestMechanics:
    def test_trust_region_respected(self):
        def fn(x):
            return float(x.sum()), np.full_like(x, 1e9)  # huge gradient

        opt = NesterovOptimizer(fn, x0=np.zeros((3, 2)), max_move=0.25)
        x_before = opt.x.copy()
        opt.step()
        assert float(np.abs(opt.x - x_before).max()) <= 0.25 + 1e-12

    def test_projection_applied(self):
        target = np.array([[10.0, 10.0]])

        def project(x):
            return np.clip(x, 0.0, 1.0)

        opt = NesterovOptimizer(quadratic_objective(target),
                                x0=np.zeros((1, 2)), max_move=5.0,
                                project=project)
        for _ in range(50):
            opt.step()
        assert np.all(opt.x <= 1.0 + 1e-12)
        assert np.allclose(opt.x, 1.0, atol=1e-6)

    def test_state_tracking(self):
        opt = NesterovOptimizer(quadratic_objective(np.ones((1, 2))),
                                x0=np.zeros((1, 2)), max_move=1.0)
        s1 = opt.step()
        s2 = opt.step()
        assert s1.iteration == 1 and s2.iteration == 2
        assert s1.grad_norm > 0
        assert s2.step_length > 0

    def test_initial_step_override(self):
        opt = NesterovOptimizer(quadratic_objective(np.ones((1, 2))),
                                x0=np.zeros((1, 2)), max_move=10.0,
                                initial_step=0.01)
        state = opt.step()
        assert state.step_length == pytest.approx(0.01)

    def test_max_move_validation(self):
        with pytest.raises(ValueError):
            NesterovOptimizer(quadratic_objective(np.zeros((1, 2))),
                              x0=np.zeros((1, 2)), max_move=0.0)

    def test_zero_gradient_stable(self):
        def fn(x):
            return 0.0, np.zeros_like(x)

        opt = NesterovOptimizer(fn, x0=np.ones((2, 2)), max_move=1.0)
        for _ in range(3):
            opt.step()
        assert np.allclose(opt.x, 1.0)

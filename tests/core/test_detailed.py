"""Unit tests for the detailed-placement refinement."""

import itertools
import math

import numpy as np
import pytest

from repro.core import PlacerConfig, QPlacer
from repro.core.detailed import DetailedPlacer, refine_placement
from repro.core.legalizer import Legalizer
from repro.core.wirelength import hpwl
from repro.devices import build_netlist, grid_topology


@pytest.fixture(scope="module")
def refined(grid9_placed, fast_config):
    positions, stats = refine_placement(
        grid9_placed.problem, grid9_placed.layout.positions, fast_config)
    return grid9_placed.problem, positions, stats


def pair_gap(problem, positions, i, j):
    dx = abs(positions[i, 0] - positions[j, 0]) \
        - 0.5 * (problem.sizes[i, 0] + problem.sizes[j, 0])
    dy = abs(positions[i, 1] - positions[j, 1]) \
        - 0.5 * (problem.sizes[i, 1] + problem.sizes[j, 1])
    if dx > 0 or dy > 0:
        return math.hypot(max(dx, 0.0), max(dy, 0.0))
    return max(dx, dy)


class TestRefinement:
    def test_never_increases_wirelength(self, refined):
        _, _, stats = refined
        assert stats.hpwl_after <= stats.hpwl_before + 1e-9

    def test_hpwl_bookkeeping_accurate(self, refined, grid9_placed):
        problem, positions, stats = refined
        assert stats.hpwl_before == pytest.approx(
            hpwl(grid9_placed.layout.positions, problem.nets))
        assert stats.hpwl_after == pytest.approx(
            hpwl(positions, problem.nets))

    def test_preserves_legality(self, refined):
        problem, positions, _ = refined
        for i, j in itertools.combinations(range(problem.num_instances), 2):
            gap = pair_gap(problem, positions, i, j)
            assert gap >= -1e-9
            if not problem.is_intended_pair(i, j):
                required = 0.5 * (problem.clearances[i]
                                  + problem.clearances[j])
                assert gap >= required - 1e-9

    def test_preserves_resonant_spacing(self, refined, grid9_placed):
        problem, positions, _ = refined
        if grid9_placed.legalize_stats.resonant_relaxations:
            pytest.skip("base layout already relaxed")
        for i, j in map(tuple, problem.collision_pairs.tolist()):
            if problem.is_intended_pair(i, j):
                continue
            required = problem.paddings[i] + problem.paddings[j]
            assert pair_gap(problem, positions, i, j) >= required - 1e-9

    def test_preserves_resonator_contiguity(self, refined):
        problem, positions, _ = refined
        lg = Legalizer(problem)
        lg.positions = positions
        for seg_ids in lg._segments_by_resonator().values():
            if len(seg_ids) > 1:
                assert len(lg._clusters(seg_ids)) == 1

    def test_stats_consistent(self, refined):
        _, _, stats = refined
        assert stats.passes >= 1
        assert stats.swaps_applied >= 0
        assert 0.0 <= stats.improvement < 1.0

    def test_idempotent_once_converged(self, refined, fast_config):
        problem, positions, _ = refined
        again, stats2 = refine_placement(problem, positions, fast_config,
                                         max_passes=5)
        assert stats2.improvement == pytest.approx(0.0, abs=0.02)


class TestRestrictedSweep:
    def test_full_index_set_matches_unrestricted(self, grid9_placed,
                                                 fast_config):
        problem = grid9_placed.problem
        positions = grid9_placed.layout.positions
        everyone = np.arange(problem.num_instances)
        restricted, stats_r = refine_placement(problem, positions,
                                               fast_config, only=everyone)
        full, stats_f = refine_placement(problem, positions, fast_config)
        np.testing.assert_array_equal(restricted, full)
        assert stats_r.swaps_applied == stats_f.swaps_applied

    def test_empty_set_is_a_noop_sweep(self, grid9_placed, fast_config):
        problem = grid9_placed.problem
        positions = grid9_placed.layout.positions
        out, stats = refine_placement(problem, positions, fast_config,
                                      only=np.array([], dtype=np.int64))
        np.testing.assert_array_equal(out, positions)
        assert stats.swaps_applied == 0
        assert stats.candidates_scored == 0

    def test_subset_never_increases_wirelength(self, grid9_placed,
                                               fast_config):
        problem = grid9_placed.problem
        positions = grid9_placed.layout.positions
        subset = np.arange(problem.num_instances)[::2]
        _, stats = refine_placement(problem, positions, fast_config,
                                    only=subset)
        assert stats.hpwl_after <= stats.hpwl_before + 1e-9


class TestConfigIntegration:
    def test_placer_flag_runs_refinement(self, grid9_netlist):
        cfg = PlacerConfig(max_iterations=100, min_iterations=20,
                           num_bins=32, detailed_passes=2)
        base_cfg = PlacerConfig(max_iterations=100, min_iterations=20,
                                num_bins=32)
        refined = QPlacer(cfg).place(grid9_netlist)
        base = QPlacer(base_cfg).place(grid9_netlist)
        wl_refined = hpwl(refined.layout.positions, refined.problem.nets)
        wl_base = hpwl(base.layout.positions, base.problem.nets)
        assert wl_refined <= wl_base + 1e-9

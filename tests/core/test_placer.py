"""Unit tests for the QPlacer orchestrator."""

import numpy as np
import pytest

from repro.core.placer import QPlacer, place_topology
from repro.devices import build_netlist, grid_topology
from repro.devices.components import Qubit


class TestPlacementResult:
    def test_fields(self, grid9_placed):
        result = grid9_placed
        assert result.num_cells == result.problem.num_instances
        assert result.iterations == result.global_result.iterations
        assert result.runtime_s > 0
        assert result.avg_iteration_s > 0

    def test_layout_matches_problem(self, grid9_placed):
        layout = grid9_placed.layout
        assert layout.num_instances == grid9_placed.num_cells
        assert layout.strategy == "qplacer"
        assert layout.netlist is grid9_placed.problem.netlist

    def test_layout_at_origin(self, grid9_placed):
        mer = grid9_placed.layout.enclosing_rect()
        assert mer.x == pytest.approx(0.0)
        assert mer.y == pytest.approx(0.0)

    def test_global_layout_kept(self, grid9_placed):
        assert grid9_placed.global_layout.strategy == "qplacer-global"
        assert grid9_placed.global_layout.num_instances == \
            grid9_placed.num_cells

    def test_qubit_count_preserved(self, grid9_placed):
        qubits = [i for i in grid9_placed.layout.instances
                  if isinstance(i, Qubit)]
        assert len(qubits) == 9


class TestStrategyNames:
    def test_qplacer_name(self, fast_config):
        assert QPlacer(fast_config).strategy_name == "qplacer"

    def test_classic_name(self, fast_classic_config):
        assert QPlacer(fast_classic_config).strategy_name == "classic"

    def test_classic_layout_tag(self, grid9_classic):
        assert grid9_classic.layout.strategy == "classic"


class TestPlaceTopology:
    def test_by_name(self, fast_config):
        result = place_topology("grid-25", fast_config)
        assert result.layout.netlist.topology.name == "grid-25"

    def test_by_netlist(self, grid9_netlist, fast_config):
        result = place_topology(grid9_netlist, fast_config)
        assert result.layout.netlist is grid9_netlist

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            place_topology("nonexistent-chip")


class TestDeterminism:
    def test_same_seed_same_layout(self, grid9_netlist, fast_config):
        a = QPlacer(fast_config).place(grid9_netlist)
        b = QPlacer(fast_config).place(grid9_netlist)
        assert np.allclose(a.layout.positions, b.layout.positions)

"""Unit tests for the global placement engine (Eq. 14 flow)."""

import numpy as np
import pytest

from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.frequency_force import resonant_pair_distances
from repro.core.preprocess import build_problem
from repro.devices import build_netlist, grid_topology


@pytest.fixture(scope="module")
def small_problem(fast_config):
    return build_problem(build_netlist(grid_topology(2, 2)), fast_config)


@pytest.fixture(scope="module")
def small_result(small_problem):
    return GlobalPlacer(small_problem).run()


class TestRun:
    def test_converges_to_overflow_target(self, small_problem, small_result):
        assert small_result.converged
        assert small_result.final_overflow <= \
            small_problem.config.overflow_target + 1e-9

    def test_positions_inside_region(self, small_problem, small_result):
        region = small_problem.region
        pos = small_result.positions
        assert np.all(pos[:, 0] >= region.x - 1e-9)
        assert np.all(pos[:, 0] <= region.x2 + 1e-9)
        assert np.all(pos[:, 1] >= region.y - 1e-9)
        assert np.all(pos[:, 1] <= region.y2 + 1e-9)

    def test_history_recorded(self, small_result):
        assert small_result.iterations == len(small_result.history)
        first = small_result.history[0]
        assert first.iteration == 0
        assert first.wirelength > 0

    def test_overflow_improves(self, small_result):
        history = small_result.history
        early = np.mean([h.overflow for h in history[:5]])
        late = np.mean([h.overflow for h in history[-5:]])
        assert late < early

    def test_lambda_schedule_monotone(self, small_result):
        lambdas = [h.lambda_density for h in small_result.history]
        assert all(b >= a for a, b in zip(lambdas, lambdas[1:]))

    def test_deterministic(self, small_problem):
        a = GlobalPlacer(small_problem).run()
        b = GlobalPlacer(small_problem).run()
        assert np.allclose(a.positions, b.positions)


class TestFrequencyAwareness:
    def test_classic_has_zero_frequency_energy(self, fast_classic_config):
        problem = build_problem(build_netlist(grid_topology(2, 2)),
                                fast_classic_config)
        result = GlobalPlacer(problem).run()
        assert all(h.frequency_energy == 0.0 for h in result.history)

    def test_qplacer_tracks_frequency_energy(self, fast_config):
        # A 2x2 grid has no frequency reuse; the 3x3 grid does, so its
        # collision map is non-empty and the F term must be live.
        problem = build_problem(build_netlist(grid_topology(3, 3)),
                                fast_config)
        assert problem.collision_pairs.size > 0
        result = GlobalPlacer(problem).run()
        assert any(h.frequency_energy > 0.0 for h in result.history)

    def test_frequency_force_separates_resonant_pairs(self, fast_config,
                                                      fast_classic_config):
        """The mean resonant-pair distance must be larger with the
        frequency force than without it (the Eq. 9 effect)."""
        netlist = build_netlist(grid_topology(3, 3))
        problem_q = build_problem(netlist, fast_config)
        problem_c = build_problem(netlist, fast_classic_config)
        pos_q = GlobalPlacer(problem_q).run().positions
        pos_c = GlobalPlacer(problem_c).run().positions
        pairs = problem_q.collision_pairs
        d_q = resonant_pair_distances(pos_q, pairs).mean()
        d_c = resonant_pair_distances(pos_c, pairs).mean()
        assert d_q > d_c

"""Unit tests for the frequency repulsive force (Eqs. 9-10)."""

import numpy as np
import pytest

from repro.core.frequency_force import (
    frequency_energy_and_grad,
    repulsion_force_magnitude,
    resonant_pair_distances,
)


class TestEnergy:
    def test_energy_decreases_with_distance(self):
        pairs = np.array([[0, 1]])
        near = frequency_energy_and_grad(
            np.array([[0.0, 0.0], [0.5, 0.0]]), pairs, 0.1)[0]
        far = frequency_energy_and_grad(
            np.array([[0.0, 0.0], [5.0, 0.0]]), pairs, 0.1)[0]
        assert near > far

    def test_finite_at_coincidence(self):
        pairs = np.array([[0, 1]])
        energy, grad = frequency_energy_and_grad(
            np.zeros((2, 2)), pairs, 0.3)
        assert np.isfinite(energy)
        assert np.all(np.isfinite(grad))

    def test_no_pairs(self):
        energy, grad = frequency_energy_and_grad(
            np.zeros((3, 2)), np.zeros((0, 2), dtype=int), 0.3)
        assert energy == 0.0
        assert np.allclose(grad, 0.0)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            frequency_energy_and_grad(np.zeros((2, 2)),
                                      np.array([[0, 1]]), 0.0)


class TestGradient:
    def test_repulsion_direction(self):
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        pairs = np.array([[0, 1]])
        _, grad = frequency_energy_and_grad(positions, pairs, 0.1)
        # Descent direction -grad pushes 0 left and 1 right: apart.
        assert -grad[0, 0] < 0
        assert -grad[1, 0] > 0

    def test_matches_finite_differences(self):
        rng = np.random.default_rng(11)
        positions = rng.normal(size=(5, 2)) * 2.0
        pairs = np.array([[0, 1], [1, 2], [0, 3], [3, 4]])
        s = 0.3
        _, grad = frequency_energy_and_grad(positions, pairs, s)
        eps = 1e-6
        for i in range(5):
            for dim in range(2):
                plus = positions.copy()
                plus[i, dim] += eps
                minus = positions.copy()
                minus[i, dim] -= eps
                numeric = (frequency_energy_and_grad(plus, pairs, s)[0]
                           - frequency_energy_and_grad(minus, pairs, s)[0]) \
                    / (2 * eps)
                assert grad[i, dim] == pytest.approx(numeric, abs=1e-5)

    def test_only_listed_pairs_interact(self):
        positions = np.array([[0.0, 0.0], [0.5, 0.0], [0.25, 0.4]])
        pairs = np.array([[0, 1]])
        _, grad = frequency_energy_and_grad(positions, pairs, 0.1)
        assert np.allclose(grad[2], 0.0)


class TestForceMagnitude:
    def test_inverse_square_far_field(self):
        s = 0.1
        d = np.array([2.0, 4.0])
        f = repulsion_force_magnitude(d, s)
        # Doubling the distance quarters the force (Eq. 9).
        assert f[0] / f[1] == pytest.approx(4.0, rel=0.02)

    def test_softened_core(self):
        f0 = repulsion_force_magnitude(np.array([0.0]), 0.3)
        assert f0[0] == 0.0  # symmetric softening: no force at the core


class TestDiagnostics:
    def test_pair_distances(self):
        positions = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = resonant_pair_distances(positions, np.array([[0, 1]]))
        assert d[0] == pytest.approx(5.0)

    def test_empty(self):
        assert resonant_pair_distances(np.zeros((2, 2)),
                                       np.zeros((0, 2), dtype=int)).size == 0

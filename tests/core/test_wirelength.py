"""Unit tests for the wirelength model and gradient."""

import numpy as np
import pytest

from repro.core.wirelength import hpwl, smooth_wirelength, wirelength_and_grad


@pytest.fixture
def simple_nets():
    positions = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
    nets = np.array([[0, 1], [1, 2]])
    return positions, nets


class TestHpwl:
    def test_manhattan_sum(self, simple_nets):
        positions, nets = simple_nets
        assert hpwl(positions, nets) == pytest.approx((3 + 4) + (2 + 3))

    def test_empty_nets(self):
        assert hpwl(np.zeros((3, 2)), np.zeros((0, 2), dtype=int)) == 0.0

    def test_translation_invariant(self, simple_nets):
        positions, nets = simple_nets
        shifted = positions + np.array([10.0, -5.0])
        assert hpwl(shifted, nets) == pytest.approx(hpwl(positions, nets))


class TestSmoothWirelength:
    def test_approaches_hpwl_for_small_gamma(self, simple_nets):
        positions, nets = simple_nets
        exact = hpwl(positions, nets)
        smooth = smooth_wirelength(positions, nets, gamma=1e-6)
        assert smooth == pytest.approx(exact, rel=1e-4)

    def test_underestimates_hpwl(self, simple_nets):
        positions, nets = simple_nets
        assert smooth_wirelength(positions, nets, 0.5) <= hpwl(positions, nets)

    def test_gamma_validation(self, simple_nets):
        positions, nets = simple_nets
        with pytest.raises(ValueError):
            smooth_wirelength(positions, nets, 0.0)


class TestGradient:
    def test_matches_finite_differences(self):
        rng = np.random.default_rng(3)
        positions = rng.normal(size=(6, 2))
        nets = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [0, 5]])
        gamma = 0.1
        _, grad = wirelength_and_grad(positions, nets, gamma)

        eps = 1e-6
        for i in range(6):
            for dim in range(2):
                plus = positions.copy()
                plus[i, dim] += eps
                minus = positions.copy()
                minus[i, dim] -= eps
                numeric = (smooth_wirelength(plus, nets, gamma)
                           - smooth_wirelength(minus, nets, gamma)) / (2 * eps)
                assert grad[i, dim] == pytest.approx(numeric, abs=1e-5)

    def test_value_matches_smooth(self, simple_nets):
        positions, nets = simple_nets
        value, _ = wirelength_and_grad(positions, nets, 0.2)
        assert value == pytest.approx(smooth_wirelength(positions, nets, 0.2))

    def test_gradient_pulls_pins_together(self):
        positions = np.array([[0.0, 0.0], [2.0, 0.0]])
        nets = np.array([[0, 1]])
        _, grad = wirelength_and_grad(positions, nets, 0.1)
        # Descent direction (-grad) moves pin 0 right and pin 1 left.
        assert grad[0, 0] < 0
        assert grad[1, 0] > 0

    def test_zero_at_coincident_points(self):
        positions = np.zeros((2, 2))
        nets = np.array([[0, 1]])
        _, grad = wirelength_and_grad(positions, nets, 0.1)
        assert np.allclose(grad, 0.0)

    def test_empty_nets_zero_grad(self):
        value, grad = wirelength_and_grad(np.zeros((3, 2)),
                                          np.zeros((0, 2), dtype=int), 0.1)
        assert value == 0.0
        assert np.allclose(grad, 0.0)

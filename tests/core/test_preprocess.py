"""Unit tests for placement preprocessing (padding, partitioning, nets)."""

import itertools

import numpy as np
import pytest

from repro.core.config import PlacerConfig
from repro.core.preprocess import build_problem
from repro.devices import build_netlist, grid_topology


@pytest.fixture(scope="module")
def problem():
    return build_problem(build_netlist(grid_topology(3, 3)), PlacerConfig())


class TestInstances:
    def test_counts(self, problem):
        netlist = problem.netlist
        expected_segments = sum(r.segment_count(0.3)
                                for r in netlist.resonators)
        assert problem.num_instances == 9 + expected_segments
        assert problem.num_qubits == 9

    def test_qubits_first(self, problem):
        assert problem.is_qubit[:9].all()
        assert not problem.is_qubit[9:].any()

    def test_arrays_consistent(self, problem):
        n = problem.num_instances
        assert problem.sizes.shape == (n, 2)
        assert problem.frequencies.shape == (n,)
        assert problem.paddings.shape == (n,)
        assert problem.resonator_index.shape == (n,)

    def test_paddings_by_kind(self, problem):
        assert np.allclose(problem.paddings[problem.is_qubit], 0.4)
        assert np.allclose(problem.paddings[~problem.is_qubit], 0.1)

    def test_clearances_by_kind(self, problem):
        cfg = problem.config
        assert np.allclose(problem.clearances[problem.is_qubit],
                           cfg.qubit_clearance_mm)
        assert np.allclose(problem.clearances[~problem.is_qubit],
                           cfg.segment_clearance_mm)

    def test_inflated_sizes(self, problem):
        inflated = problem.inflated_sizes()
        assert np.all(inflated > problem.sizes)


class TestNets:
    def test_chain_structure(self, problem):
        # Each resonator with k segments contributes k+1 two-pin links.
        total_segments = problem.num_instances - 9
        expected = total_segments + len(problem.netlist.resonators)
        assert problem.nets.shape == (expected, 2)

    def test_chains_connect_endpoint_qubits(self, problem):
        nets = {tuple(n) for n in problem.nets.tolist()}
        groups = {}
        for i in range(problem.num_instances):
            r = int(problem.resonator_index[i])
            if r >= 0:
                groups.setdefault(r, []).append(i)
        for resonator in problem.netlist.resonators:
            u, v = resonator.endpoints
            chain = groups[resonator.index]
            assert (u, chain[0]) in nets or (chain[0], u) in nets
            assert (chain[-1], v) in nets or (v, chain[-1]) in nets
            for a, b in zip(chain, chain[1:]):
                assert (a, b) in nets or (b, a) in nets


class TestCollisionMap:
    def test_matches_bruteforce(self, problem):
        threshold = problem.config.detuning_threshold_ghz
        expected = set()
        for i, j in itertools.combinations(range(problem.num_instances), 2):
            if abs(problem.frequencies[i] - problem.frequencies[j]) > threshold:
                continue
            ri, rj = problem.resonator_index[i], problem.resonator_index[j]
            if ri >= 0 and ri == rj:
                continue
            expected.add((i, j))
        got = {tuple(p) for p in problem.collision_pairs.tolist()}
        assert got == expected

    def test_no_sibling_pairs(self, problem):
        for i, j in problem.collision_pairs:
            ri, rj = problem.resonator_index[i], problem.resonator_index[j]
            assert not (ri >= 0 and ri == rj)

    def test_pairs_sorted_unique(self, problem):
        pairs = [tuple(p) for p in problem.collision_pairs.tolist()]
        assert pairs == sorted(set(pairs))
        assert all(i < j for i, j in pairs)


class TestRegionAndInit:
    def test_region_large_enough(self, problem):
        inflated_area = float(np.prod(problem.inflated_sizes(), axis=1).sum())
        assert problem.region.area >= inflated_area

    def test_initial_positions_inside_region(self, problem):
        pos = problem.initial_positions
        region = problem.region
        margin = 1.0
        assert np.all(pos[:, 0] >= region.x - margin)
        assert np.all(pos[:, 0] <= region.x2 + margin)

    def test_initial_positions_distinct(self, problem):
        pos = problem.initial_positions
        unique = {(round(x, 9), round(y, 9)) for x, y in pos}
        assert len(unique) == problem.num_instances

    def test_deterministic_under_seed(self):
        netlist = build_netlist(grid_topology(2, 2))
        a = build_problem(netlist, PlacerConfig(seed=5))
        b = build_problem(netlist, PlacerConfig(seed=5))
        c = build_problem(netlist, PlacerConfig(seed=6))
        assert np.allclose(a.initial_positions, b.initial_positions)
        assert not np.allclose(a.initial_positions, c.initial_positions)


class TestPairPredicates:
    def test_intended_sibling_segments(self, problem):
        groups = {}
        for i in range(problem.num_instances):
            r = int(problem.resonator_index[i])
            if r >= 0:
                groups.setdefault(r, []).append(i)
        chain = next(iter(groups.values()))
        assert problem.is_intended_pair(chain[0], chain[1])

    def test_intended_qubit_attachment(self, problem):
        resonator = problem.netlist.resonators[0]
        u = resonator.endpoints[0]
        seg = next(i for i in range(problem.num_instances)
                   if problem.resonator_index[i] == resonator.index)
        assert problem.is_intended_pair(u, seg)
        assert problem.is_intended_pair(seg, u)

    def test_unrelated_not_intended(self, problem):
        # Two qubits are never an intended pair.
        assert not problem.is_intended_pair(0, 1)

    def test_required_gap(self, problem):
        seg = 9  # first segment
        assert problem.required_gap(0, seg, resonant=True) == pytest.approx(0.5)
        assert problem.required_gap(0, seg, resonant=False) == pytest.approx(
            0.5 * (problem.clearances[0] + problem.clearances[seg]))

    def test_is_resonant_pair(self, problem):
        freqs = problem.frequencies
        i, j = problem.collision_pairs[0]
        assert problem.is_resonant_pair(int(i), int(j))
        detuned = next(
            (a, b) for a, b in itertools.combinations(range(9), 2)
            if abs(freqs[a] - freqs[b]) > 0.1)
        assert not problem.is_resonant_pair(*detuned)

"""Unit tests for the spatial interaction backend."""

import numpy as np
import pytest

from repro.core.config import PlacerConfig
from repro.core.interactions import (
    DEFAULT_SPARSE_MIN_INSTANCES,
    PrunedCollisionPairs,
    RequiredGapTable,
    dense_candidate_pairs,
    frequency_bands,
    grid_candidate_pairs,
    resolve_backend,
    sort_pairs,
)
from repro.core.preprocess import build_problem
from repro.devices.netlist import build_netlist
from repro.devices.topology import get_topology


class TestResolveBackend:
    def test_explicit_names_pass_through(self):
        assert resolve_backend("dense", 10**9) == "dense"
        assert resolve_backend("sparse", 2) == "sparse"

    def test_auto_switches_on_problem_size(self):
        assert resolve_backend("auto", DEFAULT_SPARSE_MIN_INSTANCES) == "dense"
        assert resolve_backend("auto",
                               DEFAULT_SPARSE_MIN_INSTANCES + 1) == "sparse"

    def test_auto_respects_custom_threshold(self):
        assert resolve_backend("auto", 50, sparse_min_instances=10) == "sparse"
        assert resolve_backend("auto", 50, sparse_min_instances=50) == "dense"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("banded", 10)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlacerConfig(interaction_backend="banded")
        with pytest.raises(ValueError):
            PlacerConfig(freq_pair_cutoff_mm=0.0)

    def test_config_resolution_helper(self):
        cfg = PlacerConfig(interaction_backend="auto",
                           sparse_min_instances=100)
        assert cfg.resolved_interaction_backend(100) == "dense"
        assert cfg.resolved_interaction_backend(101) == "sparse"


class TestGridCandidatePairs:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_superset_of_chebyshev_neighbours(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-5.0, 5.0, size=(int(rng.integers(2, 250)), 2))
        cutoff = float(rng.uniform(0.3, 3.0))
        a, b = grid_candidate_pairs(pts, cutoff)
        got = set(zip(a.tolist(), b.tolist()))
        iu, ju = np.triu_indices(len(pts), 1)
        cheb = np.abs(pts[iu] - pts[ju]).max(axis=1)
        need = set(zip(iu[cheb <= cutoff].tolist(),
                       ju[cheb <= cutoff].tolist()))
        assert need <= got
        # Nothing beyond twice the cutoff on either axis.
        far = set(zip(iu[cheb > 2.0 * cutoff + 1e-9].tolist(),
                      ju[cheb > 2.0 * cutoff + 1e-9].tolist()))
        assert not (far & got)

    def test_lex_sorted_and_unique(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0.0, 2.0, size=(120, 2))
        a, b = grid_candidate_pairs(pts, 0.5)
        pairs = np.stack([a, b], axis=1)
        order = np.lexsort((pairs[:, 1], pairs[:, 0]))
        assert np.array_equal(pairs, pairs[order])
        assert len({(i, j) for i, j in pairs.tolist()}) == len(pairs)
        assert bool(np.all(a < b))

    def test_huge_cutoff_reproduces_dense_pairs(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0.0, 1.0, size=(40, 2))
        a, b = grid_candidate_pairs(pts, 100.0)
        iu, ju = dense_candidate_pairs(40)
        assert np.array_equal(a, iu)
        assert np.array_equal(b, ju)

    def test_degenerate_inputs(self):
        a, b = grid_candidate_pairs(np.zeros((1, 2)), 1.0)
        assert a.size == 0 and b.size == 0
        with pytest.raises(ValueError):
            grid_candidate_pairs(np.zeros((3, 2)), 0.0)

    def test_coincident_points_all_pair(self):
        pts = np.zeros((10, 2))
        a, b = grid_candidate_pairs(pts, 0.1)
        assert a.size == 45  # 10 choose 2

    def test_sort_pairs_matches_lexsort(self):
        rng = np.random.default_rng(11)
        a = rng.integers(0, 50, size=200)
        b = rng.integers(50, 100, size=200)
        sa, sb = sort_pairs(a.copy(), b.copy(), 100)
        pairs = np.stack([a, b], axis=1)
        ref = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
        assert np.array_equal(np.stack([sa, sb], axis=1), ref)


def _gap_table_args(problem):
    return (problem.resonator_index, problem.frequencies,
            problem.clearances, problem.paddings,
            problem.attached_resonators,
            problem.config.detuning_threshold_ghz)


class TestRequiredGapTable:
    @pytest.fixture(scope="class")
    def problem(self):
        return build_problem(build_netlist(get_topology("falcon-27")),
                             PlacerConfig())

    def test_sparse_rows_match_dense(self, problem):
        dense = RequiredGapTable(*_gap_table_args(problem), backend="dense")
        sparse = RequiredGapTable(*_gap_table_args(problem), backend="sparse")
        for i in range(0, problem.num_instances, 5):
            for strict in (True, False):
                assert np.array_equal(dense.row(i, strict),
                                      sparse.row(i, strict))

    def test_lookup_matches_row(self, problem):
        sparse = RequiredGapTable(*_gap_table_args(problem), backend="sparse")
        js = np.array([0, 3, 17, 40])
        got = sparse.lookup(5, js, True)
        assert np.array_equal(got, sparse.row(5, True)[js])

    def test_intended_pairs_require_no_gap(self, problem):
        table = RequiredGapTable(*_gap_table_args(problem), backend="sparse")
        # A segment and its sibling: same resonator index.
        res = problem.resonator_index
        segs = np.flatnonzero(res == res[np.argmax(res >= 0)])
        if segs.size >= 2:
            row = table.row(int(segs[0]), True)
            assert row[segs[1]] == 0.0

    def test_requires_resolved_backend(self, problem):
        with pytest.raises(ValueError):
            RequiredGapTable(*_gap_table_args(problem), backend="auto")


class TestPrunedCollisionPairs:
    @pytest.fixture(scope="class")
    def problem(self):
        return build_problem(build_netlist(get_topology("grid-25")),
                             PlacerConfig())

    def test_huge_cutoff_matches_dense_collision_map(self, problem):
        provider = PrunedCollisionPairs(
            problem.frequencies, problem.resonator_index,
            problem.config.detuning_threshold_ghz,
            cutoff_mm=1e6, skin_mm=1.0)
        pairs, index = provider.pairs(problem.initial_positions)
        assert np.array_equal(pairs, problem.collision_pairs)
        assert np.array_equal(
            index, np.concatenate([pairs[:, 0], pairs[:, 1]]))

    def test_rebuild_only_after_drift(self, problem):
        provider = PrunedCollisionPairs(
            problem.frequencies, problem.resonator_index,
            problem.config.detuning_threshold_ghz,
            cutoff_mm=2.0, skin_mm=1.0)
        pos = problem.initial_positions.copy()
        provider.pairs(pos)
        assert provider.rebuilds == 1
        # Euclidean drift sqrt(2)*0.3 = 0.42 < skin/2: no rebuild.
        provider.pairs(pos + 0.3)
        assert provider.rebuilds == 1
        provider.pairs(pos + 1.0)
        assert provider.rebuilds == 2

    def test_diagonal_drift_triggers_rebuild(self, problem):
        # Per-axis drift of exactly skin/2 is a Euclidean drift of
        # sqrt(2)*skin/2 — the containment bound requires a rebuild.
        provider = PrunedCollisionPairs(
            problem.frequencies, problem.resonator_index,
            problem.config.detuning_threshold_ghz,
            cutoff_mm=2.0, skin_mm=1.0)
        pos = problem.initial_positions.copy()
        provider.pairs(pos)
        provider.pairs(pos + 0.5)
        assert provider.rebuilds == 2

    def test_dense_engine_on_sparse_built_problem_keeps_force(self):
        # A problem built under the sparse backend carries no
        # precomputed collision map; a dense-resolving placer must
        # materialise it rather than silently running frequency-unaware.
        from repro.core.engine import GlobalPlacer

        sparse_cfg = PlacerConfig(interaction_backend="sparse",
                                  max_iterations=12, min_iterations=2)
        problem = build_problem(
            build_netlist(get_topology("grid-25")), sparse_cfg)
        assert problem.collision_pairs.size == 0
        dense_cfg = PlacerConfig(interaction_backend="dense",
                                 max_iterations=12, min_iterations=2)
        engine = GlobalPlacer(problem, dense_cfg)
        assert engine._dense_pairs.size > 0
        result = engine.run()
        assert result.peak_collision_pairs == engine._dense_pairs.shape[0]
        assert any(h.frequency_energy > 0 for h in result.history)

    def test_cutoff_prunes_far_pairs(self, problem):
        provider = PrunedCollisionPairs(
            problem.frequencies, problem.resonator_index,
            problem.config.detuning_threshold_ghz,
            cutoff_mm=0.5, skin_mm=0.25)
        pos = problem.initial_positions
        pairs, _ = provider.pairs(pos)
        assert pairs.shape[0] < problem.collision_pairs.shape[0]
        if pairs.size:
            delta = pos[pairs[:, 0]] - pos[pairs[:, 1]]
            dist = np.sqrt((delta * delta).sum(axis=1))
            assert float(dist.max()) <= 0.75 + 1e-9


class TestFrequencyBanding:
    """The 3-D (band x grid) candidate generator (ISSUE 6 tentpole)."""

    def test_resonant_pairs_differ_by_at_most_one_band(self):
        rng = np.random.default_rng(0)
        threshold = 0.17
        freqs = rng.uniform(4.8, 9.6, size=400)
        bands = frequency_bands(freqs, threshold)
        i, j = np.triu_indices(freqs.size, k=1)
        resonant = np.abs(freqs[i] - freqs[j]) <= threshold
        assert (np.abs(bands[i] - bands[j])[resonant] <= 1).all()

    def test_exact_threshold_detuning_stays_adjacent(self):
        threshold = 0.2
        freqs = np.array([5.0, 5.2, 5.4])  # consecutive exact-threshold
        bands = frequency_bands(freqs, threshold)
        assert abs(bands[0] - bands[1]) <= 1
        assert abs(bands[1] - bands[2]) <= 1

    def test_banded_candidates_cover_resonant_near_pairs(self):
        rng = np.random.default_rng(1)
        n, cutoff, threshold = 300, 2.0, 0.15
        positions = rng.uniform(0, 25, size=(n, 2))
        freqs = rng.uniform(4.8, 9.6, size=n)
        bands = frequency_bands(freqs, threshold)
        a, b = grid_candidate_pairs(positions, cutoff, bands=bands)
        got = set(zip(a.tolist(), b.tolist()))
        i, j = np.triu_indices(n, k=1)
        near = (np.abs(positions[i] - positions[j]) <= cutoff).all(axis=1)
        resonant = np.abs(freqs[i] - freqs[j]) <= threshold
        for x, y in zip(i[near & resonant], j[near & resonant]):
            assert (int(x), int(y)) in got

    def test_banded_candidates_no_duplicates_and_sorted(self):
        rng = np.random.default_rng(2)
        positions = rng.uniform(0, 12, size=(150, 2))
        bands = frequency_bands(rng.uniform(4.8, 9.6, size=150), 0.15)
        a, b = grid_candidate_pairs(positions, 1.5, bands=bands)
        keys = a * 150 + b
        assert (a < b).all()
        assert np.unique(keys).size == keys.size
        assert (np.diff(keys) > 0).all()  # dense-candidate ordering

    def test_banding_prunes_off_band_candidates(self):
        rng = np.random.default_rng(3)
        positions = rng.uniform(0, 6, size=(200, 2))  # spatially dense
        freqs = np.repeat(np.linspace(5.0, 9.0, 8), 25)  # 8 far levels
        rng.shuffle(freqs)
        bands = frequency_bands(freqs, 0.1)
        a_all, _ = grid_candidate_pairs(positions, 2.0)
        a_band, _ = grid_candidate_pairs(positions, 2.0, bands=bands)
        assert a_band.size < a_all.size / 2  # most pairs never generated

    def test_banded_provider_matches_unbanded_results(self):
        """End to end: banding must not change the final pair set."""
        problem = build_problem(build_netlist(get_topology("grid-25")),
                                PlacerConfig())
        rng = np.random.default_rng(4)
        for trial in range(3):
            positions = problem.initial_positions \
                + rng.normal(0, 1.5, size=(problem.num_instances, 2))
            banded = PrunedCollisionPairs(
                problem.frequencies, problem.resonator_index,
                problem.config.detuning_threshold_ghz,
                cutoff_mm=3.0, skin_mm=1.0, band_pairs=True)
            plain = PrunedCollisionPairs(
                problem.frequencies, problem.resonator_index,
                problem.config.detuning_threshold_ghz,
                cutoff_mm=3.0, skin_mm=1.0, band_pairs=False)
            pairs_b, index_b = banded.pairs(positions)
            pairs_p, index_p = plain.pairs(positions)
            assert np.array_equal(pairs_b, pairs_p)
            assert np.array_equal(index_b, index_p)
            assert banded.peak_candidates <= plain.peak_candidates

"""Tests for the legalizer's public refinement API and diagnostics.

Covers the transactional batch-move surface (``load`` / ``neighbors`` /
``try_moves`` / ``commit`` / ``rollback``) that the detailed placer
drives, and the enriched spiral-exhaustion error.
"""

import numpy as np
import pytest

from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.legalizer import Legalizer, SpiralExhaustedError, legalize
from repro.core.preprocess import build_problem
from repro.devices import build_netlist, grid_topology


@pytest.fixture(scope="module")
def legal_grid9(fast_config):
    problem = build_problem(build_netlist(grid_topology(3, 3)), fast_config)
    positions = GlobalPlacer(problem).run().positions
    legal, _ = legalize(problem, positions, fast_config)
    return problem, legal


@pytest.fixture()
def loaded(legal_grid9, fast_config):
    problem, legal = legal_grid9
    lg = Legalizer(problem, fast_config)
    lg.load(legal)
    return problem, lg, legal


def _swap_pair(problem, lg):
    """Two same-size qubits to exchange (any grid has at least two)."""
    qubits = np.flatnonzero(problem.is_qubit)
    i, j = int(qubits[0]), int(qubits[1])
    pos_i = (float(lg.positions[i, 0]), float(lg.positions[i, 1]))
    pos_j = (float(lg.positions[j, 0]), float(lg.positions[j, 1]))
    return i, j, pos_i, pos_j


class TestLoad:
    def test_load_rejects_bad_shape(self, legal_grid9, fast_config):
        problem, _ = legal_grid9
        lg = Legalizer(problem, fast_config)
        with pytest.raises(ValueError):
            lg.load(np.zeros((3, 2)))

    def test_neighbors_is_superset_of_true_neighbors(self, loaded):
        problem, lg, legal = loaded
        radius = 1.0
        x, y = float(legal[0, 0]), float(legal[0, 1])
        got = set(lg.neighbors(x, y, radius).tolist())
        within = np.flatnonzero(
            (np.abs(legal[:, 0] - x) <= radius)
            & (np.abs(legal[:, 1] - y) <= radius))
        assert set(within.tolist()) <= got


class TestTryMoves:
    def test_swap_commit(self, loaded):
        problem, lg, legal = loaded
        i, j, pos_i, pos_j = _swap_pair(problem, lg)
        assert lg.try_moves([(i, pos_j), (j, pos_i)])
        lg.commit()
        assert tuple(lg.positions[i]) == pos_j
        assert tuple(lg.positions[j]) == pos_i
        untouched = [k for k in range(problem.num_instances)
                     if k not in (i, j)]
        assert np.array_equal(lg.positions[untouched], legal[untouched])

    def test_rollback_restores_layout(self, loaded):
        problem, lg, legal = loaded
        i, j, pos_i, pos_j = _swap_pair(problem, lg)
        assert lg.try_moves([(i, pos_j), (j, pos_i)])
        lg.rollback()
        assert np.array_equal(lg.positions, legal)

    def test_infeasible_move_restores_layout(self, loaded):
        problem, lg, legal = loaded
        qubits = np.flatnonzero(problem.is_qubit)
        i, j = int(qubits[0]), int(qubits[1])
        # Dropping i directly onto j violates the bare overlap rule.
        target = (float(legal[j, 0]), float(legal[j, 1]))
        assert not lg.try_moves([(i, target)])
        assert np.array_equal(lg.positions, legal)
        # No transaction was left open.
        with pytest.raises(RuntimeError):
            lg.commit()

    def test_contiguity_violation_rejected(self, loaded):
        problem, lg, legal = loaded
        by_res = {r: ids for r, ids in
                  lg._segments_by_resonator().items() if len(ids) > 1}
        if not by_res:
            pytest.skip("no multi-segment resonator on this device")
        seg = int(next(iter(by_res.values()))[0])
        # Far from everything: spacing-feasible but the chain breaks.
        far = (float(legal[:, 0].max()) + 10.0,
               float(legal[:, 1].max()) + 10.0)
        assert not lg.try_moves([(seg, far)])
        assert np.array_equal(lg.positions, legal)

    def test_double_open_transaction_raises(self, loaded):
        problem, lg, _ = loaded
        i, j, pos_i, pos_j = _swap_pair(problem, lg)
        assert lg.try_moves([(i, pos_j), (j, pos_i)])
        with pytest.raises(RuntimeError, match="already open"):
            lg.try_moves([(i, pos_i)])
        lg.rollback()

    def test_commit_without_transaction_raises(self, loaded):
        _, lg, _ = loaded
        with pytest.raises(RuntimeError):
            lg.commit()
        with pytest.raises(RuntimeError):
            lg.rollback()


class TestSpiralExhaustion:
    def test_overfull_chip_raises_with_diagnostics(self, fast_config):
        from dataclasses import replace

        # Radius 0 leaves each instance exactly one candidate site; a
        # collapsed global placement cannot fit more than one instance
        # there, so legalization must fail with the crowd diagnostics.
        config = replace(fast_config, spiral_max_radius_sites=0)
        problem = build_problem(build_netlist(grid_topology(2, 2)), config)
        collapsed = np.zeros((problem.num_instances, 2))
        with pytest.raises(SpiralExhaustedError) as info:
            legalize(problem, collapsed, config)
        err = info.value
        assert err.rings_attempted == 1
        assert err.sites_attempted == 1
        assert err.neighbors_in_reach >= 1
        assert err.densest_cell_count >= 1
        assert len(err.densest_cell_mm) == 2
        message = str(err)
        assert "ring" in message
        assert "densest" in message
        assert str(err.instance) in message

"""Unit tests for the placer configuration."""

import pytest

from repro.core.config import PlacerConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = PlacerConfig()
        assert cfg.segment_size_mm == 0.3
        assert cfg.qubit_padding_mm == 0.4
        assert cfg.resonator_padding_mm == 0.1
        assert cfg.detuning_threshold_ghz == 0.1
        assert cfg.frequency_aware

    def test_frozen(self):
        cfg = PlacerConfig()
        with pytest.raises(AttributeError):
            cfg.segment_size_mm = 0.2


class TestClassic:
    def test_classic_disables_frequency_machinery(self):
        cfg = PlacerConfig.classic()
        assert not cfg.frequency_aware
        assert not cfg.legalize_integration
        assert not cfg.chain_aware_tetris

    def test_classic_shares_other_hyperparameters(self):
        base = PlacerConfig()
        classic = PlacerConfig.classic()
        assert classic.segment_size_mm == base.segment_size_mm
        assert classic.target_density == base.target_density
        assert classic.whitespace_factor == base.whitespace_factor

    def test_classic_overrides(self):
        cfg = PlacerConfig.classic(segment_size_mm=0.2, seed=7)
        assert cfg.segment_size_mm == 0.2
        assert cfg.seed == 7
        assert not cfg.frequency_aware


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"segment_size_mm": 0.0},
        {"qubit_padding_mm": -0.1},
        {"qubit_clearance_mm": -0.1},
        {"target_density": 0.0},
        {"target_density": 3.0},
        {"whitespace_factor": 0.0},
        {"whitespace_factor": 1.5},
        {"num_bins": 4},
        {"max_iterations": 10, "min_iterations": 20},
        {"detailed_passes": -1},
        {"legalizer_screening": "octree"},
        {"spiral_max_radius_sites": -1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            PlacerConfig(**kwargs)

    def test_screening_error_lists_choices(self):
        with pytest.raises(ValueError, match="hash.*scan"):
            PlacerConfig(legalizer_screening="octree")


class TestDetailedPasses:
    def test_auto_follows_backend(self):
        cfg = PlacerConfig()
        assert cfg.detailed_passes is None
        assert cfg.resolved_detailed_passes(100) == 0  # dense paper tier
        assert cfg.resolved_detailed_passes(
            cfg.sparse_min_instances + 1) == 1  # condor tier

    def test_explicit_count_wins(self):
        assert PlacerConfig(detailed_passes=0).resolved_detailed_passes(
            10_000) == 0
        assert PlacerConfig(detailed_passes=3).resolved_detailed_passes(
            10) == 3


class TestDerived:
    def test_with_segment_size(self):
        cfg = PlacerConfig().with_segment_size(0.4)
        assert cfg.segment_size_mm == 0.4
        assert cfg.frequency_aware  # everything else preserved

    def test_site_pitches(self):
        cfg = PlacerConfig(qubit_clearance_mm=0.2, segment_clearance_mm=0.1)
        assert cfg.qubit_site_pitch_mm(0.4) == pytest.approx(0.6)
        assert cfg.segment_site_pitch_mm() == pytest.approx(0.4)

"""Unit tests for the electrostatic density field."""

import numpy as np
import pytest

from repro.core.density import DensityGrid
from repro.devices.geometry import Rect


def make_grid(num_instances=2, size=0.5, region_side=8.0, bins=16,
              target=1.0):
    sizes = np.full((num_instances, 2), size)
    return DensityGrid(Rect(0, 0, region_side, region_side), bins, sizes,
                       target_density=target)


class TestRasterize:
    def test_total_area_conserved(self):
        grid = make_grid(3, size=0.7)
        positions = np.array([[2.0, 2.0], [5.1, 4.3], [6.2, 6.7]])
        rho = grid.rasterize(positions)
        assert rho.sum() == pytest.approx(3 * 0.7 * 0.7, rel=1e-9)

    def test_aligned_instance_fills_bins(self):
        grid = make_grid(1, size=0.5, region_side=8.0, bins=16)  # bin 0.5
        rho = grid.rasterize(np.array([[2.25, 2.25]]))  # exactly bin (4,4)
        assert rho[4, 4] == pytest.approx(0.25)
        assert rho.sum() == pytest.approx(0.25)

    def test_straddling_instance_splits(self):
        grid = make_grid(1, size=0.5, region_side=8.0, bins=16)
        rho = grid.rasterize(np.array([[2.5, 2.25]]))  # split across x bins
        assert rho[4, 4] == pytest.approx(0.125)
        assert rho[5, 4] == pytest.approx(0.125)

    def test_mixed_sizes_grouped(self):
        sizes = np.array([[0.5, 0.5], [1.0, 1.0], [0.5, 0.5]])
        grid = DensityGrid(Rect(0, 0, 8, 8), 16, sizes)
        rho = grid.rasterize(np.array([[2, 2], [5, 5], [6.5, 2]], float))
        assert rho.sum() == pytest.approx(0.25 + 1.0 + 0.25)


class TestPoisson:
    def test_solver_satisfies_discrete_poisson(self):
        grid = make_grid(2, size=0.5)
        rho = grid.rasterize(np.array([[3.0, 3.0], [5.0, 5.0]]))
        rho_centered = rho - rho.mean()
        psi = grid.solve_potential(rho_centered)
        # Interior discrete Laplacian must equal -rho (Neumann boundary).
        lap = np.zeros_like(psi)
        lap[1:-1, 1:-1] = (
            (psi[2:, 1:-1] - 2 * psi[1:-1, 1:-1] + psi[:-2, 1:-1])
            / grid.bin_w ** 2
            + (psi[1:-1, 2:] - 2 * psi[1:-1, 1:-1] + psi[1:-1, :-2])
            / grid.bin_h ** 2)
        assert np.allclose(lap[2:-2, 2:-2], -rho_centered[2:-2, 2:-2],
                           atol=1e-8)

    def test_potential_peaks_at_density_peak(self):
        grid = make_grid(1, size=1.0)
        rho = grid.rasterize(np.array([[4.0, 4.0]]))
        psi = grid.solve_potential(rho - rho.mean())
        peak = np.unravel_index(np.argmax(psi), psi.shape)
        assert abs(peak[0] - 8) <= 1 and abs(peak[1] - 8) <= 1


class TestEvaluate:
    def test_gradient_pushes_overlapping_apart(self):
        grid = make_grid(2, size=1.0)
        positions = np.array([[4.0, 4.0], [4.5, 4.0]])  # heavy overlap
        result = grid.evaluate(positions)
        # Descent (-grad) must separate: left instance moves left (-x),
        # right instance moves right (+x).
        assert -result.grad[0, 0] < 0
        assert -result.grad[1, 0] > 0

    def test_overflow_zero_when_spread(self):
        grid = make_grid(2, size=0.4, region_side=8.0, bins=16)
        result = grid.evaluate(np.array([[2.0, 2.0], [6.0, 6.0]]))
        # bin area 0.25, instance area 0.16 < capacity: no overflow even
        # if an instance straddles bins.
        assert result.overflow < 0.35

    def test_overflow_positive_when_stacked(self):
        grid = make_grid(4, size=1.0)
        positions = np.tile([[4.0, 4.0]], (4, 1))
        result = grid.evaluate(positions)
        assert result.overflow > 0.5

    def test_energy_decreases_when_spreading(self):
        grid = make_grid(2, size=1.0)
        stacked = grid.evaluate(np.array([[4.0, 4.0], [4.2, 4.0]]))
        spread = grid.evaluate(np.array([[2.0, 2.0], [6.0, 6.0]]))
        assert spread.energy < stacked.energy

    def test_validation(self):
        with pytest.raises(ValueError):
            DensityGrid(Rect(0, 0, 8, 8), 2, np.ones((1, 2)))

"""Unit tests for the electrostatic density field."""

import numpy as np
import pytest

from repro.core.density import DensityGrid
from repro.devices.geometry import Rect


def make_grid(num_instances=2, size=0.5, region_side=8.0, bins=16,
              target=1.0):
    sizes = np.full((num_instances, 2), size)
    return DensityGrid(Rect(0, 0, region_side, region_side), bins, sizes,
                       target_density=target)


class TestRasterize:
    def test_total_area_conserved(self):
        grid = make_grid(3, size=0.7)
        positions = np.array([[2.0, 2.0], [5.1, 4.3], [6.2, 6.7]])
        rho = grid.rasterize(positions)
        assert rho.sum() == pytest.approx(3 * 0.7 * 0.7, rel=1e-9)

    def test_aligned_instance_fills_bins(self):
        grid = make_grid(1, size=0.5, region_side=8.0, bins=16)  # bin 0.5
        rho = grid.rasterize(np.array([[2.25, 2.25]]))  # exactly bin (4,4)
        assert rho[4, 4] == pytest.approx(0.25)
        assert rho.sum() == pytest.approx(0.25)

    def test_straddling_instance_splits(self):
        grid = make_grid(1, size=0.5, region_side=8.0, bins=16)
        rho = grid.rasterize(np.array([[2.5, 2.25]]))  # split across x bins
        assert rho[4, 4] == pytest.approx(0.125)
        assert rho[5, 4] == pytest.approx(0.125)

    def test_mixed_sizes_grouped(self):
        sizes = np.array([[0.5, 0.5], [1.0, 1.0], [0.5, 0.5]])
        grid = DensityGrid(Rect(0, 0, 8, 8), 16, sizes)
        rho = grid.rasterize(np.array([[2, 2], [5, 5], [6.5, 2]], float))
        assert rho.sum() == pytest.approx(0.25 + 1.0 + 0.25)


class TestPoisson:
    def test_solver_satisfies_discrete_poisson(self):
        grid = make_grid(2, size=0.5)
        rho = grid.rasterize(np.array([[3.0, 3.0], [5.0, 5.0]]))
        rho_centered = rho - rho.mean()
        psi = grid.solve_potential(rho_centered)
        # Interior discrete Laplacian must equal -rho (Neumann boundary).
        lap = np.zeros_like(psi)
        lap[1:-1, 1:-1] = (
            (psi[2:, 1:-1] - 2 * psi[1:-1, 1:-1] + psi[:-2, 1:-1])
            / grid.bin_w ** 2
            + (psi[1:-1, 2:] - 2 * psi[1:-1, 1:-1] + psi[1:-1, :-2])
            / grid.bin_h ** 2)
        assert np.allclose(lap[2:-2, 2:-2], -rho_centered[2:-2, 2:-2],
                           atol=1e-8)

    def test_potential_peaks_at_density_peak(self):
        grid = make_grid(1, size=1.0)
        rho = grid.rasterize(np.array([[4.0, 4.0]]))
        psi = grid.solve_potential(rho - rho.mean())
        peak = np.unravel_index(np.argmax(psi), psi.shape)
        assert abs(peak[0] - 8) <= 1 and abs(peak[1] - 8) <= 1


class TestEvaluate:
    def test_gradient_pushes_overlapping_apart(self):
        grid = make_grid(2, size=1.0)
        positions = np.array([[4.0, 4.0], [4.5, 4.0]])  # heavy overlap
        result = grid.evaluate(positions)
        # Descent (-grad) must separate: left instance moves left (-x),
        # right instance moves right (+x).
        assert -result.grad[0, 0] < 0
        assert -result.grad[1, 0] > 0

    def test_overflow_zero_when_spread(self):
        grid = make_grid(2, size=0.4, region_side=8.0, bins=16)
        result = grid.evaluate(np.array([[2.0, 2.0], [6.0, 6.0]]))
        # bin area 0.25, instance area 0.16 < capacity: no overflow even
        # if an instance straddles bins.
        assert result.overflow < 0.35

    def test_overflow_positive_when_stacked(self):
        grid = make_grid(4, size=1.0)
        positions = np.tile([[4.0, 4.0]], (4, 1))
        result = grid.evaluate(positions)
        assert result.overflow > 0.5

    def test_energy_decreases_when_spreading(self):
        grid = make_grid(2, size=1.0)
        stacked = grid.evaluate(np.array([[4.0, 4.0], [4.2, 4.0]]))
        spread = grid.evaluate(np.array([[2.0, 2.0], [6.0, 6.0]]))
        assert spread.energy < stacked.energy

    def test_validation(self):
        with pytest.raises(ValueError):
            DensityGrid(Rect(0, 0, 8, 8), 2, np.ones((1, 2)))


class TestIncrementalEvaluate:
    """ISSUE 6: incremental density updates vs the dense recompute."""

    def _walk(self, rng, positions, scale=0.3):
        return positions + rng.normal(0.0, scale, size=positions.shape)

    def test_flush_every_call_is_bit_identical_to_dense(self):
        rng = np.random.default_rng(0)
        dense = make_grid(12, size=0.6)
        inc = make_grid(12, size=0.6)
        positions = rng.uniform(1, 7, size=(12, 2))
        for _ in range(6):
            a = dense.evaluate(positions)
            b = inc.evaluate_incremental(positions, 0.0, flush=True)
            assert np.array_equal(a.grad, b.grad)
            assert a.energy == b.energy and a.overflow == b.overflow
            positions = np.clip(self._walk(rng, positions), 0.4, 7.6)

    def test_zero_threshold_tracks_dense_between_flushes(self):
        """Every nonzero move rescatters, so the incremental map stays
        within float drift of a fresh rasterise without any flush."""
        rng = np.random.default_rng(1)
        grid = make_grid(10, size=0.5)
        positions = rng.uniform(1, 7, size=(10, 2))
        grid.evaluate_incremental(positions, 0.0)
        for _ in range(8):
            positions = np.clip(self._walk(rng, positions), 0.4, 7.6)
            result = grid.evaluate_incremental(positions, 0.0)
            fresh = grid.rasterize(positions)
            assert np.abs(grid._inc_rho - fresh).max() < 1e-10
            assert result.energy == pytest.approx(
                grid._evaluate_at(fresh, positions).energy, rel=1e-12)

    def test_threshold_keeps_stale_charge_for_small_moves(self):
        grid = make_grid(2, size=0.5)
        positions = np.array([[2.0, 2.0], [6.0, 6.0]])
        grid.evaluate_incremental(positions, 0.05)
        nudged = positions + 0.01  # below the 0.05 threshold
        grid.evaluate_incremental(nudged, 0.05)
        assert grid.inc_rescattered == 0  # stale charge kept
        moved = positions + np.array([[1.0, 0.0], [0.0, 0.0]])
        grid.evaluate_incremental(moved, 0.05)
        assert grid.inc_rescattered == 1  # only the displaced instance

    def test_flush_checkpoint_detects_corruption(self):
        """The divergence assertion is live: a corrupted map trips it."""
        rng = np.random.default_rng(2)
        grid = make_grid(6, size=0.5)
        positions = rng.uniform(1, 7, size=(6, 2))
        grid.evaluate_incremental(positions, 0.0)
        grid._inc_rho = grid._inc_rho + 1.0  # bookkeeping bug, simulated
        with pytest.raises(AssertionError, match="diverged"):
            grid.evaluate_incremental(positions, 0.0, flush=True)

    def test_flush_tolerance_covers_threshold_staleness(self):
        """Stale charge from sub-threshold moves must NOT trip a flush."""
        rng = np.random.default_rng(3)
        grid = make_grid(8, size=0.5)
        positions = rng.uniform(1, 7, size=(8, 2))
        grid.evaluate_incremental(positions, 0.2)
        for _ in range(5):
            positions = positions + rng.uniform(-0.15, 0.15,
                                                size=positions.shape)
            positions = np.clip(positions, 0.4, 7.6)
            grid.evaluate_incremental(positions, 0.2)
        grid.evaluate_incremental(positions, 0.2, flush=True)  # no raise
        assert grid.inc_flushes == 2  # seed + explicit

    def test_telemetry_counters(self):
        rng = np.random.default_rng(4)
        grid = make_grid(5, size=0.5)
        positions = rng.uniform(1, 7, size=(5, 2))
        grid.evaluate_incremental(positions, 0.0, flush=True)  # seed
        positions = positions + 0.3
        grid.evaluate_incremental(positions, 0.0)
        assert grid.inc_flushes == 1
        assert grid.inc_rescattered == 5
        assert grid.inc_max_flush_error >= 0.0

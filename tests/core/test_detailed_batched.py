"""Tests for the batched detailed-placement engine vs the scalar seed.

The batched swap-gain kernel must agree with the preserved scalar
oracle everywhere, and the full batched refinement must match the
reference implementation's invariants (legality kept, wirelength never
increased) while reaching equivalent quality.
"""

import numpy as np
import pytest

from repro.core import detailed_reference
from repro.core.config import PlacerConfig
from repro.core.detailed import DetailedPlacer, refine_placement
from repro.core.engine import GlobalPlacer
from repro.core.legalizer import legalize
from repro.core.preprocess import build_problem
from repro.devices import build_netlist, grid_topology


@pytest.fixture(scope="module")
def legal_grid16(fast_config):
    problem = build_problem(build_netlist(grid_topology(4, 4)), fast_config)
    positions = GlobalPlacer(problem).run().positions
    legal, _ = legalize(problem, positions, fast_config)
    return problem, legal


class TestSwapGainKernel:
    def test_batched_matches_scalar_oracle(self, legal_grid16, fast_config):
        problem, legal = legal_grid16
        placer = DetailedPlacer(problem, fast_config)
        rng = np.random.default_rng(7)
        n = problem.num_instances
        wl = placer._instance_wl_all(legal)
        for _ in range(25):
            i = int(rng.integers(n))
            js = rng.choice(n, size=min(8, n), replace=False)
            js = js[js != i]
            if js.size == 0:
                continue
            gains = placer._swap_gains(legal, wl, i, js)
            expected = [placer._swap_gain(legal, i, int(j)) for j in js]
            np.testing.assert_allclose(gains, expected, atol=1e-9)

    def test_shared_net_partner_correction(self, legal_grid16, fast_config):
        """Swapping two *connected* instances must use post-swap geometry."""
        problem, legal = legal_grid16
        placer = DetailedPlacer(problem, fast_config)
        wl = placer._instance_wl_all(legal)
        a, b = map(int, problem.nets[0])
        gains = placer._swap_gains(legal, wl, a, np.array([b]))
        assert gains[0] == pytest.approx(placer._swap_gain(legal, a, b),
                                         abs=1e-9)

    def test_instance_wl_all_matches_scalar(self, legal_grid16, fast_config):
        problem, legal = legal_grid16
        placer = DetailedPlacer(problem, fast_config)
        wl = placer._instance_wl_all(legal)
        for i in range(problem.num_instances):
            assert wl[i] == pytest.approx(placer._instance_wl(legal, i),
                                          abs=1e-12)


class TestBatchedRefinement:
    def test_quality_parity_with_reference(self, legal_grid16, fast_config):
        problem, legal = legal_grid16
        _, ref_stats = detailed_reference.refine_placement(
            problem, legal.copy(), fast_config, max_passes=2)
        _, new_stats = refine_placement(
            problem, legal.copy(), fast_config, max_passes=2)
        assert new_stats.hpwl_after <= new_stats.hpwl_before + 1e-9
        if ref_stats.hpwl_after > 0:
            assert new_stats.hpwl_after <= 1.05 * ref_stats.hpwl_after

    def test_candidates_scored_counted(self, legal_grid16, fast_config):
        problem, legal = legal_grid16
        _, stats = refine_placement(problem, legal.copy(), fast_config,
                                    max_passes=1)
        assert stats.candidates_scored > 0
        assert stats.passes == 1

    def test_uses_no_private_legalizer_members(self):
        """The batched placer must drive only the public legalizer API."""
        import inspect

        from repro.core import detailed

        source = inspect.getsource(detailed)
        for private in ("_placed", "_unplace(", "_place(", "_can_place",
                        "_hash", "_segments_by_resonator", "_clusters"):
            assert ("legalizer." + private) not in source, private

"""Unit tests for the phase-timer layer (:mod:`repro.profiling`)."""

import threading

import pytest

from repro import profiling


@pytest.fixture(autouse=True)
def _clean_global():
    profiling.reset_global_phases()
    yield
    profiling.reset_global_phases()


class TestPhaseContext:
    def test_noop_without_active_profiler(self):
        # Must not raise, must not record anywhere.
        with profiling.phase("orphan"):
            pass
        assert profiling.current() is None

    def test_records_seconds_and_calls(self):
        with profiling.PhaseProfiler() as prof:
            with profiling.phase("alpha"):
                pass
            with profiling.phase("alpha"):
                pass
        assert prof.calls["alpha"] == 2
        assert prof.seconds["alpha"] >= 0.0

    def test_nested_phases_build_slash_paths(self):
        with profiling.PhaseProfiler() as prof:
            with profiling.phase("outer"):
                with profiling.phase("inner"):
                    pass
        flat = prof.flat_seconds()
        assert set(flat) == {"outer", "outer/inner"}
        assert flat["outer"] >= flat["outer/inner"]

    def test_top_level_excludes_subphases(self):
        with profiling.PhaseProfiler() as prof:
            with profiling.phase("a"):
                with profiling.phase("b"):
                    pass
            with profiling.phase("c"):
                pass
        assert prof.top_level_seconds() == pytest.approx(
            prof.seconds["a"] + prof.seconds["c"])

    def test_as_dict_shape(self):
        with profiling.PhaseProfiler() as prof:
            with profiling.phase("x"):
                pass
        doc = prof.as_dict()
        assert doc["x"]["calls"] == 1
        assert doc["x"]["seconds"] >= 0.0


class TestNestedProfilers:
    def test_inner_profiler_folds_into_outer_with_prefix(self):
        with profiling.PhaseProfiler() as outer:
            with profiling.phase("stage"):
                with profiling.PhaseProfiler() as inner:
                    with profiling.phase("work"):
                        pass
        assert "work" in inner.seconds
        # The inner capture lands in the outer profile under the path
        # that was active when the inner profiler exited.
        assert "stage/work" in outer.seconds
        assert "stage" in outer.seconds

    def test_profiler_restores_previous_active(self):
        with profiling.PhaseProfiler() as outer:
            with profiling.PhaseProfiler():
                pass
            assert profiling.current() is outer
        assert profiling.current() is None

    def test_thread_isolation(self):
        seen = {}

        def worker():
            seen["active"] = profiling.current()

        with profiling.PhaseProfiler():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["active"] is None


class TestGlobalAggregate:
    def test_accumulate_flat_seconds(self):
        profiling.accumulate({"legalize": 1.5, "detailed": 0.5})
        profiling.accumulate({"legalize": 0.5})
        agg = profiling.global_phases()
        assert agg["legalize"]["seconds"] == pytest.approx(2.0)
        assert agg["legalize"]["calls"] == 2
        assert agg["detailed"]["calls"] == 1

    def test_accumulate_rich_dicts(self):
        profiling.accumulate({"global": {"seconds": 2.0, "calls": 3}})
        agg = profiling.global_phases()
        assert agg["global"] == {"seconds": pytest.approx(2.0), "calls": 3}

    def test_reset(self):
        profiling.accumulate({"legalize": 1.0})
        profiling.reset_global_phases()
        assert profiling.global_phases() == {}

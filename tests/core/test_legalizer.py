"""Unit tests for the integration-aware legalizer (Algorithm 1)."""

import itertools
import math

import numpy as np
import pytest

from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.legalizer import Legalizer, _spiral_offsets, legalize
from repro.core.preprocess import build_problem
from repro.devices import build_netlist, grid_topology


@pytest.fixture(scope="module")
def placed_grid9(fast_config):
    problem = build_problem(build_netlist(grid_topology(3, 3)), fast_config)
    global_result = GlobalPlacer(problem).run()
    positions, stats = legalize(problem, global_result.positions)
    return problem, positions, stats


def pair_gap(problem, positions, i, j):
    dx = abs(positions[i, 0] - positions[j, 0]) \
        - 0.5 * (problem.sizes[i, 0] + problem.sizes[j, 0])
    dy = abs(positions[i, 1] - positions[j, 1]) \
        - 0.5 * (problem.sizes[i, 1] + problem.sizes[j, 1])
    if dx > 0 or dy > 0:
        return math.hypot(max(dx, 0.0), max(dy, 0.0))
    return max(dx, dy)


class TestSpiralOffsets:
    def test_starts_at_origin(self):
        assert _spiral_offsets(3)[0] == (0, 0)

    def test_ring_counts(self):
        offsets = _spiral_offsets(2)
        assert len(offsets) == 1 + 8 + 16

    def test_sorted_by_ring(self):
        offsets = _spiral_offsets(3)
        rings = [max(abs(dx), abs(dy)) for dx, dy in offsets]
        assert rings == sorted(rings)


class TestLegality:
    def test_no_bare_overlaps(self, placed_grid9):
        problem, positions, _ = placed_grid9
        n = problem.num_instances
        for i, j in itertools.combinations(range(n), 2):
            assert pair_gap(problem, positions, i, j) >= -1e-9, (i, j)

    def test_clearances_respected(self, placed_grid9):
        problem, positions, _ = placed_grid9
        n = problem.num_instances
        for i, j in itertools.combinations(range(n), 2):
            if problem.is_intended_pair(i, j):
                continue
            required = 0.5 * (problem.clearances[i] + problem.clearances[j])
            assert pair_gap(problem, positions, i, j) >= required - 1e-9, (i, j)

    def test_resonant_spacing_respected(self, placed_grid9):
        problem, positions, stats = placed_grid9
        if stats.resonant_relaxations:
            pytest.skip("legalizer reported relaxations on this instance")
        for i, j in map(tuple, problem.collision_pairs.tolist()):
            if problem.is_intended_pair(i, j):
                continue
            required = problem.paddings[i] + problem.paddings[j]
            assert pair_gap(problem, positions, i, j) >= required - 1e-9, (i, j)

    def test_resonators_contiguous(self, placed_grid9):
        problem, positions, stats = placed_grid9
        assert stats.integration_failures == 0
        lg = Legalizer(problem)
        lg.positions = positions
        for seg_ids in lg._segments_by_resonator().values():
            if len(seg_ids) > 1:
                assert len(lg._clusters(seg_ids)) == 1


class TestClassicMode:
    def test_classic_skips_resonant_rule(self, fast_classic_config):
        problem = build_problem(build_netlist(grid_topology(3, 3)),
                                fast_classic_config)
        global_result = GlobalPlacer(problem).run()
        positions, stats = legalize(problem, global_result.positions)
        # Classic must still be overlap-free...
        for i, j in itertools.combinations(range(problem.num_instances), 2):
            assert pair_gap(problem, positions, i, j) >= -1e-9
        # ...but reports no frequency bookkeeping.
        assert stats.resonant_relaxations == 0


class TestStats:
    def test_displacements_recorded(self, placed_grid9):
        _, _, stats = placed_grid9
        assert stats.qubit_displacement_mm >= 0
        assert stats.segment_displacement_mm > 0

    def test_shape_validation(self, placed_grid9):
        problem, _, _ = placed_grid9
        with pytest.raises(ValueError):
            legalize(problem, np.zeros((1, 2)))

    def test_deterministic(self, fast_config):
        problem = build_problem(build_netlist(grid_topology(2, 2)),
                                fast_config)
        global_positions = GlobalPlacer(problem).run().positions
        a, _ = legalize(problem, global_positions)
        b, _ = legalize(problem, global_positions)
        assert np.allclose(a, b)

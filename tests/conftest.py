"""Shared fixtures: small topologies and fast placer configurations.

Unit tests use deliberately small devices and reduced iteration budgets
so the whole suite stays fast; the full-scale paper protocol lives in
``benchmarks/``.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import PlacerConfig, QPlacer
from repro.devices import build_netlist, grid_topology
from repro.devices.topology import Topology


def make_ring_topology(n: int = 6) -> Topology:
    """A small ring device: n qubits, n couplers (cheap to place)."""
    graph = nx.cycle_graph(n)
    coords = {}
    import math
    for k in range(n):
        angle = 2 * math.pi * k / n
        coords[k] = (math.cos(angle) * n / 4, math.sin(angle) * n / 4)
    return Topology(name=f"ring-{n}", description="test ring",
                    graph=graph, coords=coords)


@pytest.fixture(scope="session")
def ring6() -> Topology:
    """Six-qubit ring topology."""
    return make_ring_topology(6)


@pytest.fixture(scope="session")
def grid9() -> Topology:
    """3x3 grid topology."""
    return grid_topology(3, 3)


@pytest.fixture(scope="session")
def fast_config() -> PlacerConfig:
    """Reduced-budget placer configuration for unit tests."""
    return PlacerConfig(max_iterations=120, min_iterations=20, num_bins=32)


@pytest.fixture(scope="session")
def fast_classic_config() -> PlacerConfig:
    """Classic counterpart of :func:`fast_config`."""
    return PlacerConfig.classic(max_iterations=120, min_iterations=20,
                                num_bins=32)


@pytest.fixture(scope="session")
def ring6_netlist(ring6):
    """Netlist for the six-qubit ring."""
    return build_netlist(ring6)


@pytest.fixture(scope="session")
def grid9_netlist(grid9):
    """Netlist for the 3x3 grid."""
    return build_netlist(grid9)


@pytest.fixture(scope="session")
def grid9_placed(grid9_netlist, fast_config):
    """A complete Qplacer result on the 3x3 grid (placed once per session)."""
    return QPlacer(fast_config).place(grid9_netlist)


@pytest.fixture(scope="session")
def grid9_classic(grid9_netlist, fast_classic_config):
    """A Classic placement on the 3x3 grid."""
    return QPlacer(fast_classic_config).place(grid9_netlist)

"""Property tests: workload generator invariants + batched transpiler.

Three contracts:

* every generator honours its declared width/depth and keeps gate
  qubits in range, for arbitrary spec parameters;
* identical specs are bit-reproducible (the process-pool determinism
  the sharded evaluation path relies on);
* the batched transpile engine reproduces the legacy gate sequence —
  hence gate counts and depth — on arbitrary circuits and on the
  ``paper-8`` suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.batch import transpile_batched
from repro.circuits.gates import BASIS_GATES, TWO_QUBIT_GATES
from repro.circuits.transpile import transpile
from repro.workloads import (SUITES, WORKLOAD_FAMILIES, WorkloadSpec,
                             build_workload)

from .test_transpile_props import random_circuits

#: Families with a depth knob whose value lower-bounds circuit depth
#: (each declared layer contributes at least one gate level per wire).
_DEPTH_FAMILIES = ("qaoa", "ising", "qgan", "clifford", "qv", "hhqaoa")

families = st.sampled_from(sorted(WORKLOAD_FAMILIES))
widths = st.integers(min_value=2, max_value=24)
depths = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=2 ** 31)


@st.composite
def workload_specs(draw):
    family = draw(families)
    meta = WORKLOAD_FAMILIES[family]
    depth = draw(depths) if meta.supports_depth else None
    return WorkloadSpec(family=family,
                        width=draw(widths),
                        depth=depth,
                        seed=draw(seeds) if meta.randomized else 0)


@given(workload_specs())
@settings(max_examples=60, deadline=None)
def test_generator_invariants(spec):
    circuit = build_workload(spec)
    assert circuit.num_qubits == spec.width
    assert circuit.name == spec.name
    for gate in circuit.gates:
        for q in gate.qubits:
            assert 0 <= q < spec.width
        if gate.name in TWO_QUBIT_GATES:
            assert gate.qubits[0] != gate.qubits[1]


@given(workload_specs())
@settings(max_examples=30, deadline=None)
def test_specs_are_bit_reproducible(spec):
    assert build_workload(spec).gates == build_workload(spec).gates


@given(st.sampled_from(_DEPTH_FAMILIES), widths, depths)
@settings(max_examples=40, deadline=None)
def test_declared_depth_is_honored(family, width, depth):
    shallow = build_workload(WorkloadSpec(family, width, depth=depth))
    assert shallow.depth() >= depth
    deeper = build_workload(WorkloadSpec(family, width, depth=depth + 3))
    assert deeper.size > shallow.size


@given(random_circuits(max_qubits=5, max_gates=40),
       st.sampled_from([0, 1, 2, 3]))
@settings(max_examples=80, deadline=None)
def test_batched_transpiler_matches_legacy(circuit, level):
    legacy = transpile(circuit, optimization_level=level)
    batched = transpile_batched(circuit, optimization_level=level)
    assert batched.gates == legacy.gates
    assert batched.count_ops() == legacy.count_ops()
    assert batched.depth() == legacy.depth()
    assert all(g.name in BASIS_GATES for g in batched.gates)


def test_batched_transpiler_matches_legacy_on_paper8():
    from repro.circuits.library import all_paper_benchmarks

    for circuit in all_paper_benchmarks():
        legacy = transpile(circuit)
        batched = transpile_batched(circuit)
        assert batched.gates == legacy.gates
        assert batched.count_ops() == legacy.count_ops()
        assert batched.depth() == legacy.depth()


def test_batched_transpiler_matches_legacy_on_scaled_suite():
    # The eagle-127 suite is the widest set cheap enough for tier-1.
    for spec in SUITES["eagle-127"]:
        circuit = build_workload(spec)
        legacy = transpile(circuit)
        batched = transpile_batched(circuit)
        assert batched.gates == legacy.gates

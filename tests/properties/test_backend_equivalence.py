"""Dense/sparse backend equivalence on all six paper topologies.

The sparse interaction backend must be a pure execution-strategy switch:
with a cutoff covering the whole placement region it produces exactly
the same energies, gradients, violation sets, and legalized layouts as
the dense backend, on every paper topology and across seeds.  (The
*pruned* production configuration intentionally truncates the frequency
force — these tests always widen the cutoff past the region diagonal so
no pair is dropped.)
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines.human import human_layout
from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.frequency_force import frequency_energy_and_grad
from repro.core.interactions import PrunedCollisionPairs
from repro.core.legalizer import legalize
from repro.core.preprocess import build_problem
from repro.crosstalk.fidelity import ViolationTable
from repro.crosstalk.violations import find_spatial_violations
from repro.devices.netlist import build_netlist
from repro.devices.topology import PAPER_TOPOLOGY_ORDER, get_topology

SEEDS = (0, 3)


def _problem(topology_name, seed, **overrides):
    cfg = PlacerConfig(seed=seed, **overrides)
    return build_problem(build_netlist(get_topology(topology_name)), cfg)


def _wide_cutoff(problem):
    """A cutoff past the region diagonal: prunes nothing."""
    return 2.0 * float(problem.region.w + problem.region.h) + 1.0


@pytest.mark.parametrize("topology_name", PAPER_TOPOLOGY_ORDER)
@pytest.mark.parametrize("seed", SEEDS)
class TestFrequencyForceEquivalence:
    def test_energy_and_grad_bit_identical(self, topology_name, seed):
        problem = _problem(topology_name, seed)
        provider = PrunedCollisionPairs(
            problem.frequencies, problem.resonator_index,
            problem.config.detuning_threshold_ghz,
            cutoff_mm=_wide_cutoff(problem), skin_mm=1.0)
        rng = np.random.default_rng(seed)
        positions = problem.initial_positions + rng.normal(
            0.0, 0.3, size=problem.initial_positions.shape)
        sparse_pairs, sparse_index = provider.pairs(positions)
        assert np.array_equal(sparse_pairs, problem.collision_pairs)
        dense_pairs = problem.collision_pairs
        dense_index = np.concatenate([dense_pairs[:, 0], dense_pairs[:, 1]])
        e_dense, g_dense = frequency_energy_and_grad(
            positions, dense_pairs, problem.config.freq_force_smoothing_mm,
            pair_index=dense_index)
        e_sparse, g_sparse = frequency_energy_and_grad(
            positions, sparse_pairs, problem.config.freq_force_smoothing_mm,
            pair_index=sparse_index)
        assert e_dense == e_sparse
        assert np.array_equal(g_dense, g_sparse)


@pytest.mark.parametrize("topology_name", PAPER_TOPOLOGY_ORDER)
@pytest.mark.parametrize("seed", SEEDS)
class TestViolationEquivalence:
    def test_violation_sets_identical(self, topology_name, seed):
        layout = human_layout(
            build_netlist(get_topology(topology_name)),
            PlacerConfig(seed=seed))
        dense = find_spatial_violations(layout, backend="dense")
        sparse = find_spatial_violations(layout, backend="sparse")
        assert dense == sparse

    def test_violation_tables_identical(self, topology_name, seed):
        layout = human_layout(
            build_netlist(get_topology(topology_name)),
            PlacerConfig(seed=seed))
        dense = ViolationTable.build(layout, backend="dense")
        sparse = ViolationTable.build(layout, backend="sparse")
        assert dense.violations == sparse.violations
        assert np.array_equal(dense.g_ghz, sparse.g_ghz)
        assert np.array_equal(dense.detuning_ghz, sparse.detuning_ghz)
        assert np.array_equal(dense.is_qq, sparse.is_qq)


#: Reduced-iteration engine settings so six topologies stay test-sized.
_FAST = dict(max_iterations=60, min_iterations=10)


@pytest.mark.parametrize("topology_name", PAPER_TOPOLOGY_ORDER)
@pytest.mark.parametrize("seed", SEEDS)
class TestLegalizedLayoutEquivalence:
    def test_legalized_layouts_identical(self, topology_name, seed):
        problem = _problem(topology_name, seed, **_FAST)
        global_positions = GlobalPlacer(problem, problem.config).run().positions
        dense_cfg = dataclasses.replace(problem.config,
                                        interaction_backend="dense")
        sparse_cfg = dataclasses.replace(problem.config,
                                         interaction_backend="sparse")
        pos_dense, stats_dense = legalize(problem, global_positions,
                                          dense_cfg)
        pos_sparse, stats_sparse = legalize(problem, global_positions,
                                            sparse_cfg)
        assert np.array_equal(pos_dense, pos_sparse)
        assert stats_dense == stats_sparse

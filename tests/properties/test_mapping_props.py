"""Property tests: vectorized mapping pipeline vs preserved references.

Three contracts:

* the vectorized ``initial_placement`` reproduces the seed greedy scan
  (``mapping_reference.initial_placement_reference``) exactly, for
  arbitrary circuits, subsets, and topologies;
* the array basic router emits the identical gate sequence, final
  mapping, and swap count as the seed per-gate walker
  (``mapping_reference.route_reference``);
* the fixed subset sampler deterministically covers the chip: the
  union of the paper's 50-seed batch spans every node of each
  <=50-qubit paper topology.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.batch import transpile_arrays
from repro.circuits.mapping import (
    initial_placement,
    route,
    route_basic_arrays,
    sample_connected_subset,
)
from repro.circuits.mapping_reference import (
    initial_placement_reference,
    route_reference,
)
from repro.devices.topology import get_topology, grid_topology

from .test_transpile_props import random_circuits

TOPOLOGIES = ("grid-16", "falcon-27")


def _topology(name):
    if name == "grid-16":
        return grid_topology(4, 4)
    return get_topology(name)


topology_names = st.sampled_from(TOPOLOGIES)
seeds = st.integers(min_value=0, max_value=500)


class TestPlacementIdentity:
    @given(random_circuits(max_qubits=5, max_gates=24), topology_names, seeds)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, circuit, name, seed):
        topology = _topology(name)
        subset = sample_connected_subset(topology, circuit.num_qubits, seed)
        assert initial_placement(circuit, topology, subset) == \
            initial_placement_reference(circuit, topology, subset)

    @given(random_circuits(max_qubits=4, max_gates=16), seeds)
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_on_oversized_subsets(self, circuit, seed):
        # Subsets wider than the circuit leave free nodes at the end —
        # the tie-break path (zero-cost candidates) must stay identical.
        topology = grid_topology(4, 4)
        subset = sample_connected_subset(
            topology, min(circuit.num_qubits + 3, 16), seed)
        assert initial_placement(circuit, topology, subset) == \
            initial_placement_reference(circuit, topology, subset)


class TestRouterIdentity:
    @given(random_circuits(max_qubits=5, max_gates=24), topology_names, seeds)
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, circuit, name, seed):
        topology = _topology(name)
        subset = sample_connected_subset(topology, circuit.num_qubits, seed)
        mapping = initial_placement(circuit, topology, subset)
        ref_circ, ref_final, ref_swaps = route_reference(
            circuit, topology, dict(mapping))
        vec_circ, vec_final, vec_swaps = route(circuit, topology,
                                               dict(mapping))
        assert vec_swaps == ref_swaps
        assert vec_final == ref_final
        assert vec_circ.gates == ref_circ.gates

    @given(random_circuits(max_qubits=5, max_gates=24), seeds)
    @settings(max_examples=30, deadline=None)
    def test_array_schedule_matches_decoded(self, circuit, seed):
        # The column-array ASAP schedule the mapped pipeline uses must
        # equal scheduling the decoded circuit gate for gate.
        topology = grid_topology(4, 4)
        subset = sample_connected_subset(topology, circuit.num_qubits, seed)
        mapping = initial_placement(circuit, topology, subset)
        arrays, _, _ = route_basic_arrays(circuit, topology, mapping)
        basis = transpile_arrays(arrays)
        assert basis.asap_schedule() == basis.to_circuit().asap_schedule()


class TestProtocolCoverage:
    def test_fifty_seeds_cover_small_paper_chips(self):
        # Sec. VI-A: the 50-subset batch must cover the whole chip.
        # Every <=50-qubit paper topology is covered exactly because
        # seeds cycle distinct start nodes of one fixed permutation.
        for name in ("grid-25", "falcon-27", "aspen11-40"):
            topology = get_topology(name)
            covered = set()
            for seed in range(50):
                covered.update(sample_connected_subset(topology, 4,
                                                       seed=seed))
            assert covered == set(range(topology.num_qubits)), name

    def test_start_nodes_distinct_within_one_cycle(self):
        # Each seed's subset contains its start node, and the first n
        # seeds walk the full fixed permutation: singleton subsets
        # enumerate every node exactly once per cycle.
        topology = grid_topology(4, 4)
        starts = [sample_connected_subset(topology, 1, seed=s)[0]
                  for s in range(16)]
        assert sorted(starts) == list(range(16))
        # The cycle repeats deterministically after n seeds.
        assert starts[0] == sample_connected_subset(topology, 1, seed=16)[0]

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_growth_stays_connected_and_sized(self, seed):
        import networkx as nx
        topology = _topology("falcon-27")
        subset = sample_connected_subset(topology, 8, seed)
        assert len(subset) == 8
        assert nx.is_connected(topology.graph.subgraph(subset))

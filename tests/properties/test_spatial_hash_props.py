"""Property-based tests: the legalizer's flat linked-cell spatial hash.

The hash is a *superset screen*: for any query point and per-axis
radius, every tracked instance whose centre lies within that radius on
both axes must be returned (extras sharing the covered cells are fine —
callers re-check exact distances).  These properties pin that contract,
and the add/remove/move bookkeeping, against a brute-force oracle over
random operation sequences.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.legalizer import _SpatialHash

CELL = 0.35
COORD = st.floats(min_value=-20.0, max_value=20.0,
                  allow_nan=False, allow_infinity=False)


@st.composite
def op_sequences(draw):
    """Random add/remove/move sequences over a small index space."""
    capacity = draw(st.integers(min_value=1, max_value=12))
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        idx = draw(st.integers(min_value=0, max_value=capacity - 1))
        kind = draw(st.sampled_from(("add", "remove", "move")))
        ops.append((kind, idx, draw(COORD), draw(COORD)))
    return capacity, ops


def _apply(capacity, ops):
    """Run the ops through the hash and a dict oracle in lockstep.

    ``add`` on an already-present index and ``remove`` on an absent one
    are normalised to the legalizer's actual usage (move / no-op).
    """
    hash_ = _SpatialHash(CELL, capacity)
    oracle = {}
    for kind, idx, x, y in ops:
        if kind == "add":
            if idx in oracle:
                hash_.move(idx, x, y)
            else:
                hash_.add(idx, x, y)
            oracle[idx] = (x, y)
        elif kind == "remove":
            hash_.remove(idx)
            oracle.pop(idx, None)
        else:
            hash_.move(idx, x, y)
            oracle[idx] = (x, y)
    return hash_, oracle


class TestSupersetScreen:
    @given(op_sequences(), COORD, COORD,
           st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_near_array_superset(self, seq, qx, qy, radius):
        capacity, ops = seq
        hash_, oracle = _apply(capacity, ops)
        got = set(hash_.near_array(qx, qy, radius).tolist())
        for idx, (x, y) in oracle.items():
            if abs(x - qx) <= radius and abs(y - qy) <= radius:
                assert idx in got, (idx, (x, y), (qx, qy), radius)
        # Everything returned is actually tracked.
        assert got <= set(oracle)

    @given(op_sequences(),
           st.lists(st.tuples(COORD, COORD), min_size=1, max_size=6),
           st.floats(min_value=0.0, max_value=3.0, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_near_many_superset(self, seq, points, radius):
        capacity, ops = seq
        hash_, oracle = _apply(capacity, ops)
        xs = np.array([p[0] for p in points])
        ys = np.array([p[1] for p in points])
        result = hash_.near_many(xs, ys, radius)
        got = set(result.tolist())
        for idx, (x, y) in oracle.items():
            if any(abs(x - qx) <= radius and abs(y - qy) <= radius
                   for qx, qy in points):
                assert idx in got, (idx, (x, y), radius)
        assert got <= set(oracle)
        # Each tracked instance occupies exactly one cell: no duplicates.
        assert len(got) == result.size

    @given(op_sequences())
    @settings(max_examples=120, deadline=None)
    def test_membership_matches_oracle(self, seq):
        capacity, ops = seq
        hash_, oracle = _apply(capacity, ops)
        # A huge radius around the origin must return exactly the
        # tracked set (coords are bounded by the strategy).
        got = set(hash_.near_array(0.0, 0.0, 100.0).tolist())
        assert got == set(oracle)

    @given(op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_near_generator_matches_array(self, seq):
        capacity, ops = seq
        hash_, _ = _apply(capacity, ops)
        assert set(hash_.near(1.0, -1.0, 2.0)) == \
            set(hash_.near_array(1.0, -1.0, 2.0).tolist())

    @given(op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_remove_is_idempotent(self, seq):
        capacity, ops = seq
        hash_, oracle = _apply(capacity, ops)
        for idx in range(capacity):
            hash_.remove(idx)
            hash_.remove(idx)  # second remove must be a no-op
        assert hash_.near_array(0.0, 0.0, 100.0).size == 0

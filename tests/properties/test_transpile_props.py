"""Property-based tests: the transpiler preserves circuit semantics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import BASIS_GATES, Gate
from repro.circuits.transpile import transpile

from ..circuits.util_sim import circuit_unitary, unitaries_equal_up_to_phase

angles = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi,
                   allow_nan=False)


@st.composite
def random_circuits(draw, max_qubits=3, max_gates=12):
    n = draw(st.integers(min_value=2, max_value=max_qubits))
    qc = QuantumCircuit(n)
    num_gates = draw(st.integers(min_value=0, max_value=max_gates))
    for _ in range(num_gates):
        kind = draw(st.sampled_from(
            ["h", "x", "sx", "rz", "rx", "ry", "cz", "cx", "rzz", "swap"]))
        q1 = draw(st.integers(min_value=0, max_value=n - 1))
        if kind in ("cz", "cx", "rzz", "swap"):
            q2 = draw(st.integers(min_value=0, max_value=n - 1).filter(
                lambda q: q != q1))
            if kind == "rzz":
                qc.append(Gate(kind, (q1, q2), (draw(angles),)))
            else:
                qc.append(Gate(kind, (q1, q2)))
        elif kind in ("rz", "rx", "ry"):
            qc.append(Gate(kind, (q1,), (draw(angles),)))
        else:
            qc.append(Gate(kind, (q1,)))
    return qc


class TestTranspileProperties:
    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_unitary_preserved_at_l3(self, circuit):
        compiled = transpile(circuit, optimization_level=3)
        assert unitaries_equal_up_to_phase(
            circuit_unitary(circuit), circuit_unitary(compiled), tol=1e-7)

    @given(random_circuits())
    @settings(max_examples=60, deadline=None)
    def test_output_always_in_basis(self, circuit):
        for level in (0, 1, 2, 3):
            compiled = transpile(circuit, optimization_level=level)
            assert all(g.name in BASIS_GATES or g.name == "barrier"
                       for g in compiled.gates)

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_optimization_never_grows_circuit(self, circuit):
        lowered = transpile(circuit, optimization_level=0)
        optimised = transpile(circuit, optimization_level=3)
        assert optimised.size <= lowered.size

    @given(random_circuits())
    @settings(max_examples=40, deadline=None)
    def test_two_qubit_interactions_subset(self, circuit):
        # Transpiling never introduces interactions between new pairs.
        compiled = transpile(circuit, optimization_level=3)
        assert compiled.used_pairs() <= circuit.used_pairs()

"""Property-based tests for physics-model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.capacitance import qubit_parasitic_capacitance_ff
from repro.physics.coupling import (
    effective_coupling_ghz,
    qubit_qubit_coupling_ghz,
    smooth_exchange_ghz,
)
from repro.physics.hamiltonian import (
    eigensplitting_ghz,
    excitation_swap_probability,
    worst_case_swap_probability,
)
from repro.physics.resonator_em import resonator_frequency_ghz, resonator_length_mm
from repro.physics.substrate_modes import tm110_frequency_ghz

freqs = st.floats(min_value=3.0, max_value=9.0, allow_nan=False)
couplings = st.floats(min_value=1e-6, max_value=0.1, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
distances = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)


class TestProbabilityBounds:
    @given(freqs, freqs, couplings, times)
    def test_swap_probability_in_unit_interval(self, f1, f2, g, t):
        p = excitation_swap_probability(f1, f2, g, t)
        assert 0.0 <= p <= 1.0 + 1e-12

    @given(freqs, freqs, couplings, times)
    def test_worst_case_dominates(self, f1, f2, g, t):
        worst = worst_case_swap_probability(f1, f2, g, t)
        inst = excitation_swap_probability(f1, f2, g, t)
        assert worst >= inst - 1e-9

    @given(freqs, freqs, couplings)
    def test_worst_case_monotone_in_time(self, f1, f2, g):
        times_sorted = [10.0, 100.0, 1000.0, 10000.0]
        values = [worst_case_swap_probability(f1, f2, g, t)
                  for t in times_sorted]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


class TestCouplingInvariants:
    @given(freqs, freqs, st.floats(min_value=0, max_value=5))
    def test_coupling_nonnegative(self, f1, f2, cp):
        assert qubit_qubit_coupling_ghz(f1, f2, cp) >= 0.0

    @given(freqs, freqs, st.floats(min_value=0.001, max_value=5))
    def test_coupling_below_frequency_scale(self, f1, f2, cp):
        g = qubit_qubit_coupling_ghz(f1, f2, cp)
        assert g < max(f1, f2)

    @given(couplings, st.floats(min_value=0.0, max_value=3.0))
    def test_effective_coupling_never_exceeds_bare(self, g, delta):
        assert effective_coupling_ghz(g, delta) <= g + 1e-12

    @given(couplings, st.floats(min_value=-3.0, max_value=3.0))
    def test_smooth_exchange_bounded_by_g(self, g, delta):
        assert smooth_exchange_ghz(g, delta) <= g + 1e-12

    @given(distances, distances)
    def test_capacitance_antitone(self, d1, d2):
        lo, hi = sorted((d1, d2))
        assert qubit_parasitic_capacitance_ff(hi) <= \
            qubit_parasitic_capacitance_ff(lo) + 1e-15


class TestSplittingInvariants:
    @given(freqs, freqs, couplings)
    def test_splitting_at_least_2g(self, f1, f2, g):
        assert eigensplitting_ghz(f1, f2, g) >= 2 * g - 1e-9

    @given(freqs, freqs, couplings)
    def test_splitting_at_least_detuning(self, f1, f2, g):
        assert eigensplitting_ghz(f1, f2, g) >= abs(f1 - f2) - 1e-9


class TestEmInvariants:
    @given(st.floats(min_value=1.0, max_value=20.0))
    def test_length_frequency_inverse(self, f):
        assert resonator_frequency_ghz(resonator_length_mm(f)) == \
            __import__("pytest").approx(f)

    @given(st.floats(min_value=1.0, max_value=50.0),
           st.floats(min_value=1.0, max_value=50.0))
    def test_tm110_antitone_in_size(self, a, b):
        bigger = tm110_frequency_ghz(a * 1.1, b * 1.1)
        assert bigger < tm110_frequency_ghz(a, b)

"""Property-based tests: legalization invariants on random devices.

For randomly generated connected device topologies, the full placement
flow must always produce overlap-free layouts with contiguous resonators
and (when frequency-aware) padded spacing between resonant pairs.
"""

import itertools
import math

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlacerConfig, QPlacer
from repro.core.legalizer import Legalizer
from repro.devices import build_netlist
from repro.devices.topology import Topology


@st.composite
def random_topologies(draw):
    """Small random connected device graphs with planar-ish coords."""
    n = draw(st.integers(min_value=3, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    # Random spanning tree plus a few extra edges.
    graph = nx.random_labeled_tree(n, seed=int(seed))
    extra = draw(st.integers(min_value=0, max_value=3))
    nodes = list(graph.nodes)
    for _ in range(extra):
        u, v = rng.choice(nodes, size=2, replace=False)
        if u != v:
            graph.add_edge(int(u), int(v))
    pos = nx.kamada_kawai_layout(graph)
    coords = {int(k): (float(x) * n, float(y) * n) for k, (x, y) in pos.items()}
    # Guarantee distinct coordinates.
    for i, k in enumerate(sorted(coords)):
        x, y = coords[k]
        coords[k] = (x + 1e-3 * i, y)
    return Topology(name=f"random-{n}", description="hypothesis device",
                    graph=graph, coords=coords)


FAST = PlacerConfig(max_iterations=60, min_iterations=10, num_bins=32)


def pair_gap(problem, positions, i, j):
    dx = abs(positions[i, 0] - positions[j, 0]) \
        - 0.5 * (problem.sizes[i, 0] + problem.sizes[j, 0])
    dy = abs(positions[i, 1] - positions[j, 1]) \
        - 0.5 * (problem.sizes[i, 1] + problem.sizes[j, 1])
    if dx > 0 or dy > 0:
        return math.hypot(max(dx, 0.0), max(dy, 0.0))
    return max(dx, dy)


class TestPlacementInvariants:
    @given(random_topologies())
    @settings(max_examples=10, deadline=None)
    def test_layout_always_legal(self, topology):
        result = QPlacer(FAST).place(build_netlist(topology))
        problem = result.problem
        positions = result.layout.positions
        for i, j in itertools.combinations(range(problem.num_instances), 2):
            gap = pair_gap(problem, positions, i, j)
            assert gap >= -1e-9, f"overlap between {i} and {j}"
            if not problem.is_intended_pair(i, j):
                required = 0.5 * (problem.clearances[i]
                                  + problem.clearances[j])
                assert gap >= required - 1e-9

    @given(random_topologies())
    @settings(max_examples=10, deadline=None)
    def test_resonators_always_contiguous(self, topology):
        result = QPlacer(FAST).place(build_netlist(topology))
        assert result.legalize_stats.integration_failures == 0
        lg = Legalizer(result.problem)
        lg.positions = result.layout.positions
        for seg_ids in lg._segments_by_resonator().values():
            if len(seg_ids) > 1:
                assert len(lg._clusters(seg_ids)) == 1

    @given(random_topologies())
    @settings(max_examples=8, deadline=None)
    def test_resonant_spacing_unless_relaxed(self, topology):
        result = QPlacer(FAST).place(build_netlist(topology))
        if result.legalize_stats.resonant_relaxations:
            return  # relaxations are counted, not silent
        problem = result.problem
        positions = result.layout.positions
        for i, j in map(tuple, problem.collision_pairs.tolist()):
            if problem.is_intended_pair(i, j):
                continue
            required = problem.paddings[i] + problem.paddings[j]
            assert pair_gap(problem, positions, i, j) >= required - 1e-9

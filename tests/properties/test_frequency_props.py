"""Property-based tests for frequency combs and conflict colouring."""

import networkx as nx
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.devices.frequency import (
    _limited_palette_coloring,
    frequency_levels,
)

bands = st.tuples(
    st.floats(min_value=1.0, max_value=9.0, allow_nan=False),
    st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
).map(lambda t: (t[0], t[0] + t[1]))

thresholds = st.floats(min_value=0.01, max_value=0.5, allow_nan=False)


class TestFrequencyLevelProperties:
    @given(bands, thresholds)
    def test_levels_inside_band(self, band, threshold):
        levels = frequency_levels(band, threshold)
        assert all(band[0] - 1e-9 <= f <= band[1] + 1e-9 for f in levels)

    @given(bands, thresholds)
    def test_adjacent_spacing_exceeds_threshold(self, band, threshold):
        levels = frequency_levels(band, threshold)
        for a, b in zip(levels, levels[1:]):
            assert b - a > threshold

    @given(bands, thresholds)
    def test_maximality(self, band, threshold):
        """Adding one more level would violate the spacing rule."""
        levels = frequency_levels(band, threshold)
        if len(levels) < 2:
            return
        span = band[1] - band[0]
        denser = span / len(levels)  # spacing with one extra level
        assert denser <= threshold + 1e-6

    @given(bands, thresholds)
    def test_sorted_and_unique(self, band, threshold):
        levels = frequency_levels(band, threshold)
        assert levels == sorted(levels)
        assert len(set(levels)) == len(levels)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    p = draw(st.floats(min_value=0.05, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return nx.gnp_random_graph(n, p, seed=seed)


class TestColoringProperties:
    @given(random_graphs())
    @settings(max_examples=60)
    def test_large_palette_always_proper(self, graph):
        max_degree = max((d for _, d in graph.degree), default=0)
        colors, unresolved = _limited_palette_coloring(graph, max_degree + 1)
        assert unresolved == []
        for u, v in graph.edges:
            assert colors[u] != colors[v]

    @given(random_graphs())
    @settings(max_examples=60)
    def test_all_nodes_colored_within_palette(self, graph):
        palette = 3
        colors, _ = _limited_palette_coloring(graph, palette)
        assert set(colors) == set(graph.nodes)
        assert all(0 <= c < palette for c in colors.values())

    @given(random_graphs())
    @settings(max_examples=60)
    def test_unresolved_edges_are_real_conflicts(self, graph):
        colors, unresolved = _limited_palette_coloring(graph, 2)
        for u, v in unresolved:
            assert graph.has_edge(u, v)
            assert colors[u] == colors[v]

    @given(random_graphs())
    @settings(max_examples=30)
    def test_deterministic(self, graph):
        a = _limited_palette_coloring(graph, 3)
        b = _limited_palette_coloring(graph, 3)
        assert a == b

"""Property-based tests for metric invariances on random layouts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crosstalk.hotspots import hotspot_report
from repro.crosstalk.violations import find_spatial_violations
from repro.devices.components import Qubit
from repro.devices.layout import Layout

positions_strategy = st.lists(
    st.tuples(st.floats(min_value=0, max_value=20, allow_nan=False),
              st.floats(min_value=0, max_value=20, allow_nan=False)),
    min_size=2, max_size=12,
)
level_strategy = st.lists(st.sampled_from([4.8, 4.933, 5.067, 5.2]),
                          min_size=2, max_size=12)


def make_layout(positions, freqs, strategy="prop"):
    n = min(len(positions), len(freqs))
    instances = [
        Qubit(name=f"q{i}", width=0.4, height=0.4, padding=0.4,
              frequency=freqs[i], index=i)
        for i in range(n)
    ]
    return Layout(instances=instances,
                  positions=np.array(positions[:n], float),
                  strategy=strategy)


class TestMetricInvariances:
    @given(positions_strategy, level_strategy)
    @settings(max_examples=50, deadline=None)
    def test_ph_nonnegative(self, positions, freqs):
        layout = make_layout(positions, freqs)
        report = hotspot_report(layout)
        assert report.ph >= 0.0
        assert report.num_impacted_qubits >= 0

    @given(positions_strategy, level_strategy,
           st.floats(min_value=-30, max_value=30),
           st.floats(min_value=-30, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_metrics_translation_invariant(self, positions, freqs, dx, dy):
        layout = make_layout(positions, freqs)
        shifted = layout.moved(layout.positions + np.array([dx, dy]))
        assert np.isclose(layout.amer(), shifted.amer())
        assert np.isclose(hotspot_report(layout).ph,
                          hotspot_report(shifted).ph)

    @given(positions_strategy, level_strategy)
    @settings(max_examples=50, deadline=None)
    def test_hotspots_subset_of_violations(self, positions, freqs):
        layout = make_layout(positions, freqs)
        violations = find_spatial_violations(layout)
        report = hotspot_report(layout, violations=violations)
        resonant = sum(1 for v in violations if v.resonant)
        assert report.num_hotspots == resonant

    @given(positions_strategy, level_strategy)
    @settings(max_examples=30, deadline=None)
    def test_spreading_never_creates_violations(self, positions, freqs):
        """Scaling all positions outward can only remove violations."""
        layout = make_layout(positions, freqs)
        before = len(find_spatial_violations(layout))
        centre = layout.positions.mean(axis=0)
        spread = layout.moved(centre + 3.0 * (layout.positions - centre))
        after = len(find_spatial_violations(spread))
        assert after <= before

    @given(positions_strategy, level_strategy)
    @settings(max_examples=30, deadline=None)
    def test_violation_symmetry_in_indices(self, positions, freqs):
        layout = make_layout(positions, freqs)
        for v in find_spatial_violations(layout):
            assert v.i < v.j
            assert v.gap_mm >= 0.0
            assert v.g_eff_ghz <= v.g_ghz + 1e-12

"""Property-based tests for rectangle geometry invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.geometry import (
    Rect,
    adjacency_length,
    minimum_enclosing_rect,
    total_polygon_area,
)

coords = st.floats(min_value=-100, max_value=100,
                   allow_nan=False, allow_infinity=False)
dims = st.floats(min_value=0.01, max_value=50,
                 allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw):
    return Rect(draw(coords), draw(coords), draw(dims), draw(dims))


class TestPairInvariants:
    @given(rects(), rects())
    def test_overlap_symmetric(self, a, b):
        assert a.overlap_area(b) == b.overlap_area(a)

    @given(rects(), rects())
    def test_gap_symmetric(self, a, b):
        assert math.isclose(a.gap(b), b.gap(a), abs_tol=1e-9)

    @given(rects(), rects())
    def test_gap_zero_iff_touching(self, a, b):
        gap = a.gap(b)
        if a.intersects(b):
            assert gap == 0.0
        if gap > 1e-9:
            assert not a.touches_or_intersects(b)

    @given(rects(), rects())
    def test_overlap_bounded_by_smaller_area(self, a, b):
        assert a.overlap_area(b) <= min(a.area, b.area) + 1e-9

    @given(rects(), rects())
    def test_adjacency_length_symmetric(self, a, b):
        assert math.isclose(adjacency_length(a, b), adjacency_length(b, a),
                            abs_tol=1e-9)

    @given(rects(), rects())
    def test_adjacency_bounded_by_extents(self, a, b):
        bound = min(max(a.w, a.h), max(b.w, b.h)) + 1e-9
        assert adjacency_length(a, b) <= bound

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)


class TestSelfInvariants:
    @given(rects())
    def test_self_overlap_is_area(self, r):
        # rel_tol covers the (x + w) - x != w floating-point roundoff.
        assert math.isclose(r.overlap_area(r), r.area, rel_tol=1e-6)

    @given(rects(), st.floats(min_value=0, max_value=10))
    def test_inflation_grows_area(self, r, margin):
        assert r.inflated(margin).area >= r.area

    @given(rects(), coords, coords)
    def test_move_preserves_dims(self, r, cx, cy):
        moved = r.moved_to_center(cx, cy)
        assert math.isclose(moved.w, r.w)
        assert math.isclose(moved.h, r.h)
        assert math.isclose(moved.cx, cx, abs_tol=1e-9)


class TestAggregateInvariants:
    @given(st.lists(rects(), min_size=1, max_size=12))
    def test_mer_contains_everything(self, rect_list):
        mer = minimum_enclosing_rect(rect_list)
        for r in rect_list:
            assert mer.contains_rect(r, tol=1e-9)

    @given(st.lists(rects(), min_size=1, max_size=12))
    def test_mer_is_tight(self, rect_list):
        mer = minimum_enclosing_rect(rect_list)
        assert any(math.isclose(r.x, mer.x, abs_tol=1e-9) for r in rect_list)
        assert any(math.isclose(r.x2, mer.x2, abs_tol=1e-9) for r in rect_list)

    @given(st.lists(rects(), min_size=1, max_size=12))
    def test_apoly_nonnegative_additive(self, rect_list):
        total = total_polygon_area(rect_list)
        assert total >= max(r.area for r in rect_list) - 1e-9

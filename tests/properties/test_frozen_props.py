"""Property tests: FrozenArrayCircuit immutability and content digests.

Four contracts:

* freezing is loss-free — ``freeze()`` → ``thaw()`` round-trips every
  column and the name bit-exactly, for arbitrary workload circuits;
* frozen circuits are genuinely immutable: attribute writes, attribute
  deletes, and direct column writes all raise, including after a pickle
  round-trip;
* hashing is consistent with content equality (equal content → equal
  hash; names do not participate) and the digest is stable across
  processes (the fleet-wide cache-identity requirement);
* a circuit and its frozen copy produce the same content digest, and
  any gate edit changes it.
"""

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.batch import ArrayCircuit, FrozenArrayCircuit
from repro.io.serialization import circuit_content_digest
from repro.workloads import WORKLOAD_FAMILIES, WorkloadSpec, build_workload

families = st.sampled_from(sorted(WORKLOAD_FAMILIES))
widths = st.integers(min_value=2, max_value=16)
depths = st.integers(min_value=1, max_value=4)
seeds = st.integers(min_value=0, max_value=2 ** 31)


@st.composite
def workload_arrays(draw):
    family = draw(families)
    meta = WORKLOAD_FAMILIES[family]
    spec = WorkloadSpec(family=family, width=draw(widths),
                        depth=draw(depths) if meta.supports_depth else None,
                        seed=draw(seeds) if meta.randomized else 0)
    return ArrayCircuit.from_circuit(build_workload(spec))


class TestFreezeThawRoundTrip:
    @given(workload_arrays())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_is_identity(self, arrays):
        frozen = arrays.freeze()
        thawed = frozen.thaw()
        assert type(thawed) is ArrayCircuit
        assert thawed.num_qubits == arrays.num_qubits
        assert thawed.name == arrays.name
        np.testing.assert_array_equal(thawed.codes, arrays.codes)
        np.testing.assert_array_equal(thawed.q0, arrays.q0)
        np.testing.assert_array_equal(thawed.q1, arrays.q1)
        assert thawed.params.tobytes() == arrays.params.tobytes()
        # thawed columns are fresh and writable — not views of the
        # frozen ones
        if len(thawed.codes):
            thawed.codes[0] = -7
            assert frozen.codes[0] != -7

    @given(workload_arrays())
    @settings(max_examples=20, deadline=None)
    def test_freeze_of_frozen_is_self(self, arrays):
        frozen = arrays.freeze()
        assert frozen.freeze() is frozen


class TestImmutability:
    @given(workload_arrays())
    @settings(max_examples=20, deadline=None)
    def test_mutation_attempts_raise(self, arrays):
        frozen = arrays.freeze()
        with pytest.raises(AttributeError):
            frozen.num_qubits = 99
        with pytest.raises(AttributeError):
            frozen.name = "other"
        with pytest.raises(AttributeError):
            del frozen.codes
        if len(frozen.codes):
            with pytest.raises(ValueError):
                frozen.codes[0] = 0
            with pytest.raises(ValueError):
                frozen.params[0] = 1.0

    @given(workload_arrays())
    @settings(max_examples=10, deadline=None)
    def test_pickle_round_trip_stays_frozen(self, arrays):
        frozen = arrays.freeze()
        back = pickle.loads(pickle.dumps(frozen))
        assert isinstance(back, FrozenArrayCircuit)
        assert back == frozen
        assert hash(back) == hash(frozen)
        with pytest.raises(AttributeError):
            back.num_qubits = 99
        if len(back.codes):
            with pytest.raises(ValueError):
                back.codes[0] = 0


class TestHashAndDigest:
    @given(workload_arrays())
    @settings(max_examples=30, deadline=None)
    def test_hash_consistent_with_equality(self, arrays):
        a = arrays.freeze()
        b = ArrayCircuit(num_qubits=arrays.num_qubits,
                         codes=arrays.codes.copy(), q0=arrays.q0.copy(),
                         q1=arrays.q1.copy(), params=arrays.params.copy(),
                         name="renamed-alias").freeze()
        assert a == b          # equality is content-only, name-blind
        assert hash(a) == hash(b)
        assert a.content_digest == b.content_digest

    @given(workload_arrays())
    @settings(max_examples=20, deadline=None)
    def test_digest_matches_unfrozen_and_tracks_content(self, arrays):
        frozen = arrays.freeze()
        assert frozen.content_digest == circuit_content_digest(arrays)
        if len(arrays.codes):
            edited = ArrayCircuit(
                num_qubits=arrays.num_qubits, codes=arrays.codes.copy(),
                q0=arrays.q0.copy(), q1=arrays.q1.copy(),
                params=arrays.params.copy(), name=arrays.name)
            edited.codes[0] = (edited.codes[0] + 1) % 4
            assert circuit_content_digest(edited) != frozen.content_digest

    def test_digest_stable_across_processes(self):
        spec = WorkloadSpec(family="qaoa", width=9, depth=2, seed=7)
        local = circuit_content_digest(build_workload(spec))
        script = (
            "from repro.workloads import WorkloadSpec, build_workload\n"
            "from repro.io.serialization import circuit_content_digest\n"
            "spec = WorkloadSpec(family='qaoa', width=9, depth=2, seed=7)\n"
            "print(circuit_content_digest(build_workload(spec)))\n")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == local

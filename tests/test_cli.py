"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place", "grid-25"])
        assert args.topology == "grid-25"
        assert args.segment_size == 0.3
        assert not args.classic

    def test_evaluate_options(self):
        args = build_parser().parse_args(
            ["evaluate", "falcon-27", "--mappings", "7",
             "--benchmarks", "bv-4,qgan-4"])
        assert args.mappings == 7
        assert args.benchmarks == "bv-4,qgan-4"


class TestCommands:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "falcon-27" in out and "eagle-127" in out

    def test_physics(self, capsys):
        assert main(["physics"]) == 0
        out = capsys.readouterr().out
        assert "Fig.4" in out and "TM110" in out

    def test_place_with_exports(self, capsys, tmp_path):
        svg = tmp_path / "chip.svg"
        gds = tmp_path / "chip.gds"
        code = main(["place", "grid-25",
                     "--svg", str(svg), "--gds", str(gds)])
        assert code == 0
        assert svg.exists() and gds.exists()
        out = capsys.readouterr().out
        assert "Ph (%)" in out

    def test_place_classic(self, capsys):
        assert main(["place", "grid-25", "--classic"]) == 0
        assert "classic" in capsys.readouterr().out

    def test_evaluate_small(self, capsys):
        code = main(["evaluate", "grid-25", "--mappings", "3",
                     "--benchmarks", "bv-4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig.11" in out and "Fig.12" in out and "Fig.13" in out

    def test_unknown_topology_errors(self):
        with pytest.raises(KeyError):
            main(["place", "not-a-chip"])

"""Unit tests for the command-line interface."""

import os
import re
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_place_defaults(self):
        args = build_parser().parse_args(["place", "grid-25"])
        assert args.topology == "grid-25"
        assert args.segment_size == 0.3
        assert not args.classic

    def test_evaluate_options(self):
        args = build_parser().parse_args(
            ["evaluate", "falcon-27", "--mappings", "7",
             "--benchmarks", "bv-4,qgan-4"])
        assert args.mappings == 7
        assert args.benchmarks == "bv-4,qgan-4"


class TestBackendArgValidation:
    """Parse-time validation of the engine switches (ISSUE 6).

    Bad values must die in argparse with the valid choices listed —
    never reach (and crash inside) the placement engine.
    """

    def _error_of(self, capsys, argv):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(argv)
        assert exc.value.code == 2
        return capsys.readouterr().err

    def test_interaction_backend_rejects_unknown(self, capsys):
        err = self._error_of(capsys, ["place", "grid-25",
                                      "--interaction-backend", "gpu"])
        assert "'auto', 'dense', 'sparse'" in err

    def test_incremental_density_rejects_unknown(self, capsys):
        err = self._error_of(capsys, ["place", "grid-25",
                                      "--incremental-density", "maybe"])
        assert "'auto', 'on', 'off'" in err

    def test_flush_interval_rejects_nonpositive(self, capsys):
        err = self._error_of(capsys, ["place", "grid-25",
                                      "--density-flush-interval", "0"])
        assert "positive integer" in err

    def test_flush_interval_rejects_noninteger(self, capsys):
        err = self._error_of(capsys, ["place", "grid-25",
                                      "--density-flush-interval", "two"])
        assert "positive integer" in err

    def test_move_threshold_rejects_negative(self, capsys):
        err = self._error_of(capsys, ["place", "grid-25",
                                      "--density-move-threshold", "-0.5"])
        assert "non-negative" in err

    def test_freq_pair_banding_rejects_unknown(self, capsys):
        err = self._error_of(capsys, ["place", "grid-25",
                                      "--freq-pair-banding", "yes"])
        assert "'on', 'off'" in err

    def test_switches_reach_the_config(self):
        from repro.cli import _config_from

        args = build_parser().parse_args(
            ["place", "grid-25", "--incremental-density", "on",
             "--density-flush-interval", "4",
             "--density-move-threshold", "0.02",
             "--freq-pair-banding", "off"])
        config = _config_from(args)
        assert config.incremental_density == "on"
        assert config.density_flush_interval == 4
        assert config.density_move_threshold_mm == 0.02
        assert config.freq_pair_banding is False

    def test_config_level_validation_lists_choices(self):
        from repro.core.config import PlacerConfig

        with pytest.raises(ValueError, match=r"'auto', 'on', 'off'"):
            PlacerConfig(incremental_density="sometimes")
        with pytest.raises(ValueError, match=r"'auto', 'dense', 'sparse'"):
            PlacerConfig(interaction_backend="cuda")
        with pytest.raises(ValueError, match=r">= 1"):
            PlacerConfig(density_flush_interval=0)
        with pytest.raises(ValueError, match=r">= 0"):
            PlacerConfig(density_move_threshold_mm=-1.0)

    def test_detailed_passes_accepts_auto_and_counts(self):
        parse = build_parser().parse_args
        assert parse(["place", "grid-25",
                      "--detailed-passes", "auto"]).detailed_passes is None
        assert parse(["place", "grid-25",
                      "--detailed-passes", "0"]).detailed_passes == 0
        assert parse(["place", "grid-25",
                      "--detailed-passes", "3"]).detailed_passes == 3

    def test_detailed_passes_rejects_bad_values(self, capsys):
        for bad in ("-1", "two", "1.5"):
            err = self._error_of(capsys, ["place", "grid-25",
                                          "--detailed-passes", bad])
            assert "'auto' or a non-negative integer" in err

    def test_legalizer_screening_rejects_unknown(self, capsys):
        err = self._error_of(capsys, ["place", "grid-25",
                                      "--legalizer-screening", "octree"])
        assert "'hash', 'scan'" in err

    def test_legalizer_switches_reach_the_config(self):
        from repro.cli import _config_from

        args = build_parser().parse_args(
            ["place", "grid-25", "--detailed-passes", "2",
             "--legalizer-screening", "scan"])
        config = _config_from(args)
        assert config.detailed_passes == 2
        assert config.legalizer_screening == "scan"


class TestCommands:
    def test_topologies(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        assert "falcon-27" in out and "eagle-127" in out

    def test_physics(self, capsys):
        assert main(["physics"]) == 0
        out = capsys.readouterr().out
        assert "Fig.4" in out and "TM110" in out

    def test_place_with_exports(self, capsys, tmp_path):
        svg = tmp_path / "chip.svg"
        gds = tmp_path / "chip.gds"
        code = main(["place", "grid-25",
                     "--svg", str(svg), "--gds", str(gds)])
        assert code == 0
        assert svg.exists() and gds.exists()
        out = capsys.readouterr().out
        assert "Ph (%)" in out

    def test_place_classic(self, capsys):
        assert main(["place", "grid-25", "--classic"]) == 0
        assert "classic" in capsys.readouterr().out

    def test_evaluate_small(self, capsys):
        code = main(["evaluate", "grid-25", "--mappings", "3",
                     "--benchmarks", "bv-4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig.11" in out and "Fig.12" in out and "Fig.13" in out

    def test_unknown_topology_errors(self):
        with pytest.raises(KeyError):
            main(["place", "not-a-chip"])

    def test_profile_round_trip(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "phases.json"
        assert main(["profile", "grid-25", "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "Placement phases" in out
        assert "legalize" in out and "(wall clock)" in out
        doc = json.loads(out_json.read_text())
        assert doc["topology"] == "grid-25"
        assert doc["runtime_s"] > 0
        phases = doc["phases"]
        assert {"preprocess", "global", "legalize"} <= set(phases)
        top = sum(s for path, s in phases.items() if "/" not in path)
        assert 0.5 * doc["runtime_s"] <= top <= 1.05 * doc["runtime_s"]

    def test_profile_forced_detailed_pass(self, capsys):
        # grid-25 resolves dense (0 passes by default); forcing one
        # must surface the "detailed" phase in the table.
        assert main(["profile", "grid-25", "--detailed-passes", "1"]) == 0
        assert "detailed" in capsys.readouterr().out


class TestWorkloadCommands:
    def test_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        assert "clifford" in out and "condor-1121" in out

    def test_build_with_transpile(self, capsys):
        code = main(["workloads", "build", "ghz-16", "qv-8-d3-s1",
                     "--transpile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ghz-16" in out and "basis gates" in out

    def test_build_suite_name(self, capsys):
        assert main(["workloads", "build", "paper-8"]) == 0
        assert "qgan-9" in capsys.readouterr().out

    def test_evaluate_fans_local_shards(self, capsys):
        code = main(["workloads", "evaluate", "--topology", "grid-25",
                     "--workloads", "bv-9,ghz-9", "--mappings", "2",
                     "--strategies", "qplacer", "--shard-count", "2",
                     "--jobs", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bv-9" in out and "ghz-9" in out

    def test_shard_and_merge_round_trip(self, capsys, tmp_path):
        common = ["workloads", "evaluate", "--topology", "grid-25",
                  "--workloads", "bv-9,ghz-9,qaoa-9", "--mappings", "2",
                  "--strategies", "qplacer", "--shard-count", "2",
                  "--jobs", "1"]
        shard0 = tmp_path / "s0.json"
        shard1 = tmp_path / "s1.json"
        assert main(common + ["--shard-index", "0",
                              "--json", str(shard0)]) == 0
        assert main(common + ["--shard-index", "1",
                              "--json", str(shard1)]) == 0
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert main(["workloads", "merge", str(shard0), str(shard1),
                     "--json", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "bv-9" in out and "qaoa-9" in out

        import json
        payload = json.loads(merged.read_text())
        assert list(payload["fidelity"]) == ["bv-9", "ghz-9", "qaoa-9"]

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8754
        assert args.workers == 2
        assert args.store_dir == "repro-service-data"

    @pytest.mark.parametrize("mismatch", [
        {"topology": "falcon-27"},
        {"placement_seed": 7},
        {"segment_size_mm": 0.5},
        {"strategies": ["qplacer", "classic"]},
    ])
    def test_merge_rejects_mismatched_shards(self, tmp_path, mismatch):
        import json
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        base = {"kind": "workload-shard", "topology": "grid-25",
                "workloads": ["bv-9"], "shard_count": 2,
                "num_mappings": 2, "base_seed": 0, "shard_index": 0,
                "strategies": ["qplacer"], "placement_seed": 0,
                "segment_size_mm": 0.3, "interaction_backend": "auto",
                "fidelity": {}}
        a.write_text(json.dumps(base))
        b.write_text(json.dumps({**base, **mismatch, "shard_index": 1}))
        with pytest.raises(SystemExit):
            main(["workloads", "merge", str(a), str(b)])


class TestServeCommand:
    def test_serve_round_trip_subprocess(self, tmp_path):
        """`repro serve` boots, serves a job over HTTP, stops cleanly.

        The same choreography as the CI service smoke step, on an
        ephemeral port with a stub-fast map request.
        """
        from repro.service import ServiceClient

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--jobs", "1",
             "--store-dir", str(tmp_path / "store")],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=str(tmp_path))
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:(\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            client = ServiceClient(f"http://127.0.0.1:{match.group(1)}",
                                   timeout=30.0)
            assert client.healthz()["status"] == "ok"
            result = client.run(
                "map", {"benchmark": "bv-4", "topology": "grid-25",
                        "num_mappings": 2}, timeout=120)
            assert len(result["mappings"]) == 2
            client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

"""Frozen-layout batch scoring vs the reference per-layout pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crosstalk import hotspot_report
from repro.devices import layout_with_netlist_frequencies, \
    netlist_with_frequencies
from repro.ensembles import (
    DisorderSpec,
    EnsembleScores,
    FrozenLayoutScorer,
    bootstrap_ci,
    sample_batch,
    summarize_scores,
)


@pytest.fixture(scope="module")
def scorer(grid9_placed):
    return FrozenLayoutScorer(grid9_placed.layout)


class TestScorerEquivalence:
    def test_matches_hotspot_report_per_sample(self, grid9_placed, scorer):
        """Batch row i == the full object-pipeline score of sample i."""
        layout = grid9_placed.layout
        batch = sample_batch(layout.netlist, DisorderSpec(0.05, 0.05),
                             base_seed=0, count=4)
        scores = scorer.score_batch(batch.qubit_freqs,
                                    batch.resonator_freqs)
        for i in range(batch.count):
            noisy_net = netlist_with_frequencies(layout.netlist,
                                                 *batch.row(i))
            noisy = layout_with_netlist_frequencies(layout, noisy_net)
            report = hotspot_report(noisy)
            assert scores.ph_percent[i] == pytest.approx(
                report.ph_percent, abs=1e-9)
            assert scores.num_hotspots[i] == report.num_hotspots
            assert scores.impacted_qubits[i] == report.num_impacted_qubits

    def test_zero_disorder_matches_the_design(self, grid9_placed, scorer):
        layout = grid9_placed.layout
        batch = sample_batch(layout.netlist, DisorderSpec(0.0, 0.0),
                             base_seed=0, count=2)
        scores = scorer.score_batch(batch.qubit_freqs,
                                    batch.resonator_freqs)
        design = hotspot_report(layout)
        assert np.allclose(scores.ph_percent, design.ph_percent)
        assert np.all(scores.num_hotspots == design.num_hotspots)

    def test_fidelity_proxy_in_unit_interval(self, grid9_placed, scorer):
        layout = grid9_placed.layout
        batch = sample_batch(layout.netlist, DisorderSpec(0.05, 0.05),
                             base_seed=1, count=6)
        scores = scorer.score_batch(batch.qubit_freqs,
                                    batch.resonator_freqs)
        assert np.all(scores.fidelity_proxy > 0.0)
        assert np.all(scores.fidelity_proxy <= 1.0)

    def test_column_count_validated(self, scorer):
        with pytest.raises(ValueError):
            scorer.score_batch(np.zeros((1, scorer.num_qubits + 1)),
                               np.zeros((1, scorer.num_resonators)))


class TestScoresAndSummary:
    def _scores(self):
        return EnsembleScores(
            ph_percent=np.array([0.0, 0.5, 2.0, 0.0]),
            num_hotspots=np.array([0, 1, 3, 0]),
            impacted_qubits=np.array([0, 2, 4, 0]),
            fidelity_proxy=np.array([1.0, 0.99, 0.9, 1.0]))

    def test_passed_threshold(self):
        scores = self._scores()
        assert scores.passed(0.0).tolist() == [True, False, False, True]
        assert scores.passed(1.0).tolist() == [True, True, False, True]

    def test_summary_fields(self):
        summary = summarize_scores(self._scores(), max_ph_percent=0.0,
                                   bootstrap=50)
        assert summary["samples"] == 4
        assert summary["yield"] == pytest.approx(0.5)
        assert summary["mean_ph_percent"] == pytest.approx(0.625)
        assert summary["max_ph_percent_observed"] == pytest.approx(2.0)
        lo, hi = summary["yield_ci"]
        assert 0.0 <= lo <= summary["yield"] <= hi <= 1.0

    def test_summary_is_json_able(self):
        import json
        json.dumps(summarize_scores(self._scores(), 0.0, bootstrap=10))


class TestBootstrapCI:
    def test_deterministic(self):
        values = np.arange(20, dtype=float)
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)
        assert bootstrap_ci(values, seed=3) != bootstrap_ci(values, seed=4)

    def test_brackets_the_mean(self):
        values = np.random.default_rng(0).normal(5.0, 1.0, size=100)
        lo, hi = bootstrap_ci(values, num_resamples=500)
        assert lo <= values.mean() <= hi
        assert hi - lo < 1.0

    def test_degenerate_sizes(self):
        assert bootstrap_ci(np.array([2.0])) == (2.0, 2.0)
        assert bootstrap_ci(np.array([1.0, 3.0]), num_resamples=0) \
            == (2.0, 2.0)
        lo, hi = bootstrap_ci(np.array([]))
        assert np.isnan(lo) and np.isnan(hi)

"""Incremental re-place repair against frozen design geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.preprocess import build_problem
from repro.devices import netlist_with_frequencies
from repro.ensembles import (
    DisorderSpec,
    check_layout_legal,
    problem_with_frequencies,
    repair_sample,
    sample_batch,
)


@pytest.fixture(scope="module")
def design(grid9_netlist, fast_config):
    return build_problem(grid9_netlist, fast_config)


@pytest.fixture(scope="module")
def noisy_netlist(grid9_netlist):
    batch = sample_batch(grid9_netlist, DisorderSpec(0.05, 0.05),
                         base_seed=0, count=1)
    return netlist_with_frequencies(grid9_netlist, *batch.row(0))


class TestCheckLayoutLegal:
    def test_placed_layout_is_legal(self, design, grid9_placed):
        assert check_layout_legal(design, grid9_placed.layout.positions)

    def test_overlap_detected(self, design, grid9_placed):
        positions = grid9_placed.layout.positions.copy()
        positions[1] = positions[0]  # stack two instances
        assert not check_layout_legal(design, positions)

    def test_shape_mismatch_rejected(self, design):
        with pytest.raises(ValueError):
            check_layout_legal(design, np.zeros((3, 2)))


class TestProblemWithFrequencies:
    def test_geometry_frozen(self, design, noisy_netlist):
        noisy = problem_with_frequencies(design, noisy_netlist)
        assert noisy.num_instances == design.num_instances
        assert np.array_equal(noisy.sizes, design.sizes)
        assert [i.name for i in noisy.instances] \
            == [i.name for i in design.instances]

    def test_frequencies_follow_the_realisation(self, design,
                                                noisy_netlist):
        noisy = problem_with_frequencies(design, noisy_netlist)
        qubit_freq = {q.index: q.frequency for q in noisy_netlist.qubits}
        for inst, freq in zip(noisy.instances, noisy.frequencies):
            assert inst.frequency == freq
            if not hasattr(inst, "resonator_index"):
                assert freq == qubit_freq[inst.index]
        assert not np.array_equal(noisy.frequencies, design.frequencies)

    def test_design_problem_untouched(self, design, noisy_netlist):
        before = design.frequencies.copy()
        problem_with_frequencies(design, noisy_netlist)
        assert np.array_equal(design.frequencies, before)


class TestRepairSample:
    def test_repair_is_legal_and_tagged(self, design, noisy_netlist,
                                        grid9_placed, fast_config):
        result = repair_sample(design, noisy_netlist,
                               grid9_placed.layout.positions, fast_config)
        assert result.legal
        assert result.layout.strategy == "qplacer+disorder+repair"
        assert result.moved_mm >= 0.0
        assert result.layout.netlist is noisy_netlist

    def test_misaligned_positions_rejected(self, design, noisy_netlist,
                                           fast_config):
        with pytest.raises(ValueError) as err:
            repair_sample(design, noisy_netlist, np.zeros((3, 2)),
                          fast_config)
        assert "do not align" in str(err.value)

    def test_repair_is_deterministic(self, design, noisy_netlist,
                                     grid9_placed, fast_config):
        a = repair_sample(design, noisy_netlist,
                          grid9_placed.layout.positions, fast_config)
        b = repair_sample(design, noisy_netlist,
                          grid9_placed.layout.positions, fast_config)
        assert np.array_equal(a.positions, b.positions)

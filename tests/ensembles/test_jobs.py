"""Chunk jobs, cache identity, and the shared ensemble executor."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.runner import ParallelRunner
from repro.ensembles import (
    DisorderSpec,
    EnsembleChunkJob,
    FrozenLayoutScorer,
    run_ensemble_chunk,
    run_ensemble_request,
    sample_batch,
    split_ensemble,
)
from repro.io.serialization import layout_to_dict


@pytest.fixture(scope="module")
def layout_doc(grid9_placed, fast_config):
    return layout_to_dict(grid9_placed.layout,
                          fast_config.segment_size_mm)


def _job(layout_doc, **over):
    fields = dict(layout_doc=layout_doc, sigma_qubit_ghz=0.05,
                  sigma_resonator_ghz=0.02, base_seed=0, start=0, count=3)
    fields.update(over)
    return EnsembleChunkJob(**fields)


class TestSplitEnsemble:
    def test_covers_the_range_without_overlap(self):
        ranges = split_ensemble(10, 4)
        assert [list(r) for r in ranges] \
            == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_single_chunk(self):
        assert [list(r) for r in split_ensemble(3, 16)] == [[0, 1, 2]]

    @pytest.mark.parametrize("samples,chunk", [(0, 1), (1, 0)])
    def test_invalid_rejected(self, samples, chunk):
        with pytest.raises(ValueError):
            split_ensemble(samples, chunk)


class TestChunkCacheKey:
    def test_layout_doc_replaced_by_digest(self, layout_doc):
        key = _job(layout_doc).cache_key()
        assert "layout_doc" not in key
        assert len(key["layout_digest"]) == 64

    def test_key_is_stable_and_sensitive(self, layout_doc):
        base = _job(layout_doc).cache_key()
        assert _job(layout_doc).cache_key() == base
        for over in ({"start": 3}, {"count": 2}, {"base_seed": 1},
                     {"sigma_qubit_ghz": 0.06}):
            assert _job(layout_doc, **over).cache_key() != base

    def test_key_omits_the_total_sample_count(self, layout_doc):
        """Growing an ensemble must re-use every cached chunk, so the
        chunk identity covers only its own slice."""
        key = _job(layout_doc).cache_key()
        assert "samples" not in key


class TestRunEnsembleChunk:
    def test_matches_direct_scoring(self, grid9_placed, layout_doc):
        job = _job(layout_doc, start=2, count=3)
        out = run_ensemble_chunk(job)
        batch = sample_batch(grid9_placed.layout.netlist,
                             DisorderSpec(0.05, 0.02), 0, start=2, count=3)
        scorer = FrozenLayoutScorer(grid9_placed.layout)
        scores = scorer.score_batch(batch.qubit_freqs,
                                    batch.resonator_freqs)
        assert out["start"] == 2
        assert out["ph_percent"] == pytest.approx(scores.ph_percent)
        assert out["num_hotspots"] == scores.num_hotspots.tolist()
        assert out["impacted_qubits"] == scores.impacted_qubits.tolist()
        assert out["fidelity_proxy"] == pytest.approx(
            scores.fidelity_proxy)

    def test_result_is_json_able(self, layout_doc):
        json.dumps(run_ensemble_chunk(_job(layout_doc, count=2)))


class TestRunEnsembleRequest:
    @pytest.fixture(scope="class")
    def payload(self, fast_config):
        runner = ParallelRunner(max_workers=1)
        seen = []

        def on_point(index, point):
            seen.append((index, point["sigma_qubit_ghz"]))

        payload = run_ensemble_request(
            topology="grid-9", sigmas=(0.0, 0.08), samples=4,
            resonator_sigma_scale=0.5, base_seed=0, strategy="qplacer",
            segment_size_mm=0.3, seed=0, config=fast_config,
            repair_samples=2, max_ph_percent=0.0, warm_start=False,
            bootstrap=20, runner=runner, chunk_size=2,
            on_point=on_point)
        payload["_seen"] = seen
        return payload

    def test_payload_shape(self, payload):
        assert payload["kind"] == "ensemble"
        assert payload["samples"] == 4
        assert payload["chunk_size"] == 2
        assert len(payload["points"]) == 2
        assert "ensemble/layout" in payload["phases"]
        assert "ensemble/score" in payload["phases"]

    def test_points_stream_in_order(self, payload):
        assert payload["_seen"] == [(0, 0.0), (1, 0.08)]

    def test_zero_sigma_point_is_degenerate(self, payload):
        point = payload["points"][0]
        assert point["sigma_qubit_ghz"] == 0.0
        # Every realisation is the design itself: one outcome only.
        assert point["yield"] in (0.0, 1.0)
        assert point["yield_ci"][0] == point["yield_ci"][1]

    def test_yield_after_repair_dominates(self, payload):
        for point in payload["points"]:
            assert point["yield_after_repair"] >= point["yield"] - 1e-12
            repair = point["repair"]
            assert repair["attempted"] <= 2
            assert repair["legal_all"]
            for row in repair["samples"]:
                assert row["ph_percent_before"] > 0.0
                assert len(row["sample_digest"]) == 64

    def test_spec_digests_differ_per_sigma(self, payload):
        digests = [p["spec_digest"] for p in payload["points"]]
        assert len(set(digests)) == len(digests)

    def test_each_point_counts_chunks(self, payload):
        assert all(p["chunks"] == 2 for p in payload["points"])

    def test_payload_json_able(self, payload):
        clean = {k: v for k, v in payload.items() if k != "_seen"}
        json.dumps(clean)


class TestChunkReuseAcrossEnsembleGrowth:
    def test_cached_chunks_survive_sample_growth(self, layout_doc,
                                                 tmp_path):
        """64 -> 256 style growth: the first chunks' cache entries are
        byte-identical keys, so the runner serves them without
        recomputation."""
        runner = ParallelRunner(max_workers=1, cache_dir=tmp_path)
        jobs_small = [_job(layout_doc, start=r.start, count=len(r))
                      for r in split_ensemble(4, 2)]
        first = runner.map(run_ensemble_chunk, jobs_small,
                           namespace="ensembles")
        jobs_grown = [_job(layout_doc, start=r.start, count=len(r))
                      for r in split_ensemble(8, 2)]
        second = runner.map(run_ensemble_chunk, jobs_grown,
                            namespace="ensembles")
        assert second[:2] == first

"""Vectorized disorder sampling: determinism, independence, chunking."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants
from repro.ensembles import (
    DisorderSpec,
    EnsembleSpec,
    child_seed_sequence,
    sample_batch,
    sample_ensemble,
)


@pytest.fixture(scope="module")
def spec():
    return DisorderSpec(sigma_qubit_ghz=0.03, sigma_resonator_ghz=0.02)


class TestChildSeedSequence:
    def test_matches_the_spawn_contract(self):
        """spawn_key construction == SeedSequence(base).spawn(n)[i]."""
        spawned = np.random.SeedSequence(7).spawn(10)
        for i in (0, 3, 9):
            a = np.random.default_rng(child_seed_sequence(7, i))
            b = np.random.default_rng(spawned[i])
            assert np.array_equal(a.random(4), b.random(4))

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            child_seed_sequence(0, -1)


class TestSampleBatch:
    def test_shapes_and_start(self, grid9_netlist, spec):
        batch = sample_batch(grid9_netlist, spec, base_seed=0,
                             start=2, count=5)
        assert batch.start == 2
        assert batch.count == 5
        assert batch.qubit_freqs.shape == (5, len(grid9_netlist.qubits))
        assert batch.resonator_freqs.shape == \
            (5, len(grid9_netlist.resonators))

    def test_deterministic(self, grid9_netlist, spec):
        a = sample_batch(grid9_netlist, spec, base_seed=3, count=4)
        b = sample_batch(grid9_netlist, spec, base_seed=3, count=4)
        assert np.array_equal(a.qubit_freqs, b.qubit_freqs)
        assert np.array_equal(a.resonator_freqs, b.resonator_freqs)
        c = sample_batch(grid9_netlist, spec, base_seed=4, count=4)
        assert not np.array_equal(a.qubit_freqs, c.qubit_freqs)

    def test_chunk_boundary_invariance(self, grid9_netlist, spec):
        """Any chunking reproduces the same per-sample realisations."""
        whole = sample_batch(grid9_netlist, spec, base_seed=0, count=6)
        for start, count in ((0, 2), (2, 3), (5, 1)):
            chunk = sample_batch(grid9_netlist, spec, base_seed=0,
                                 start=start, count=count)
            assert np.array_equal(
                chunk.qubit_freqs,
                whole.qubit_freqs[start:start + count])
            assert np.array_equal(
                chunk.resonator_freqs,
                whole.resonator_freqs[start:start + count])

    def test_rows_are_distinct_samples(self, grid9_netlist, spec):
        batch = sample_batch(grid9_netlist, spec, base_seed=0, count=3)
        assert not np.array_equal(batch.qubit_freqs[0],
                                  batch.qubit_freqs[1])

    def test_zero_sigma_is_the_identity(self, grid9_netlist):
        quiet = DisorderSpec(0.0, 0.0)
        batch = sample_batch(grid9_netlist, quiet, base_seed=0, count=2)
        targets = np.array([q.frequency for q in grid9_netlist.qubits])
        assert np.allclose(batch.qubit_freqs, targets[None, :])

    def test_band_clipping(self, grid9_netlist):
        loud = DisorderSpec(0.5, 0.5)
        batch = sample_batch(grid9_netlist, loud, base_seed=0, count=8)
        qlo, qhi = constants.QUBIT_FREQ_BAND_GHZ
        rlo, rhi = constants.RESONATOR_FREQ_BAND_GHZ
        assert np.all((batch.qubit_freqs >= qlo)
                      & (batch.qubit_freqs <= qhi))
        assert np.all((batch.resonator_freqs >= rlo)
                      & (batch.resonator_freqs <= rhi))

    def test_family_streams_independent(self, grid9_netlist):
        """Changing the qubit sigma must not move the resonator draws —
        the RNG-coupling fix this subsystem is built on."""
        a = sample_batch(grid9_netlist, DisorderSpec(0.01, 0.02),
                         base_seed=0, count=4)
        b = sample_batch(grid9_netlist, DisorderSpec(0.08, 0.02),
                         base_seed=0, count=4)
        assert np.array_equal(a.resonator_freqs, b.resonator_freqs)
        assert not np.array_equal(a.qubit_freqs, b.qubit_freqs)

    def test_bad_count_rejected(self, grid9_netlist, spec):
        with pytest.raises(ValueError):
            sample_batch(grid9_netlist, spec, base_seed=0, count=0)


class TestSampleEnsemble:
    def test_covers_the_whole_spec(self, grid9_netlist):
        spec = EnsembleSpec(topology="grid-9", strategy="qplacer",
                            segment_size_mm=0.3, samples=5, base_seed=2)
        batch = sample_ensemble(grid9_netlist, spec)
        assert batch.start == 0
        assert batch.count == 5
        direct = sample_batch(grid9_netlist, spec.disorder,
                              spec.base_seed, count=5)
        assert np.array_equal(batch.qubit_freqs, direct.qubit_freqs)

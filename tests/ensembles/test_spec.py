"""Ensemble/disorder spec validation and content-addressed digests."""

from __future__ import annotations

import pytest

from repro.ensembles import DisorderSpec, EnsembleSpec


class TestDisorderSpec:
    def test_defaults_bind_the_device_bands(self):
        from repro import constants
        spec = DisorderSpec(0.02, 0.01)
        assert spec.qubit_band == constants.QUBIT_FREQ_BAND_GHZ
        assert spec.resonator_band == constants.RESONATOR_FREQ_BAND_GHZ

    @pytest.mark.parametrize("kwargs", [
        {"sigma_qubit_ghz": -0.01, "sigma_resonator_ghz": 0.0},
        {"sigma_qubit_ghz": 0.0, "sigma_resonator_ghz": -0.01},
        {"sigma_qubit_ghz": 0.0, "sigma_resonator_ghz": 0.0,
         "qubit_band": (5.2, 4.8)},
        {"sigma_qubit_ghz": 0.0, "sigma_resonator_ghz": 0.0,
         "resonator_band": (6.0, 6.0)},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DisorderSpec(**kwargs)

    def test_digest_is_content_addressed(self):
        a = DisorderSpec(0.02, 0.01)
        b = DisorderSpec(0.02, 0.01)
        c = DisorderSpec(0.05, 0.01)
        assert a.digest == b.digest
        assert a.digest != c.digest
        assert len(a.digest) == 64


class TestEnsembleSpec:
    def _spec(self, **over):
        fields = dict(topology="grid-9", strategy="qplacer",
                      segment_size_mm=0.3, samples=8, base_seed=0)
        fields.update(over)
        return EnsembleSpec(**fields)

    @pytest.mark.parametrize("over", [
        {"samples": 0}, {"segment_size_mm": 0.0},
    ])
    def test_invalid_rejected(self, over):
        with pytest.raises(ValueError):
            self._spec(**over)

    def test_document_kind(self):
        assert self._spec().document()["kind"] == "disorder-ensemble"

    def test_digest_tracks_every_field(self):
        base = self._spec()
        assert base.digest == self._spec().digest
        for over in ({"topology": "grid-16"}, {"strategy": "classic"},
                     {"segment_size_mm": 0.4}, {"samples": 16},
                     {"base_seed": 1},
                     {"disorder": DisorderSpec(0.05, 0.01)}):
            assert self._spec(**over).digest != base.digest

    def test_sample_digest_distinct_and_deterministic(self):
        spec = self._spec()
        digests = [spec.sample_digest(i) for i in range(spec.samples)]
        assert len(set(digests)) == spec.samples
        assert spec.sample_digest(3) == self._spec().sample_digest(3)

    def test_sample_digest_range_checked(self):
        spec = self._spec()
        with pytest.raises(IndexError):
            spec.sample_digest(-1)
        with pytest.raises(IndexError):
            spec.sample_digest(spec.samples)

"""Unit tests for the noise-model error channels."""

import math

import pytest

from repro.crosstalk.noise_model import (
    NoiseParams,
    crosstalk_error,
    decoherence_error,
    gate_error_factor,
)


class TestNoiseParams:
    def test_defaults_paper_values(self):
        p = NoiseParams()
        assert p.t1_ns == 100_000.0
        assert p.detuning_threshold_ghz == 0.1

    def test_decoherence_rate(self):
        p = NoiseParams(t1_ns=100.0, t2_ns=50.0)
        assert p.decoherence_rate_per_ns == pytest.approx(0.5 * (0.01 + 0.02))

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseParams(t1_ns=0.0)
        with pytest.raises(ValueError):
            NoiseParams(single_qubit_gate_error=1.0)
        with pytest.raises(ValueError):
            NoiseParams(two_qubit_gate_error=-0.1)


class TestDecoherence:
    def test_zero_duration(self):
        assert decoherence_error(0.0) == 0.0

    def test_exponential_form(self):
        p = NoiseParams()
        t = 5000.0
        expected = 1.0 - math.exp(-t * p.decoherence_rate_per_ns)
        assert decoherence_error(t, p) == pytest.approx(expected)

    def test_monotone(self):
        assert decoherence_error(2000) > decoherence_error(1000)

    def test_saturates_at_one(self):
        assert decoherence_error(1e9) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            decoherence_error(-1.0)


class TestCrosstalkError:
    def test_zero_cases(self):
        assert crosstalk_error(0.0, 1000.0) == 0.0
        assert crosstalk_error(0.01, 0.0) == 0.0

    def test_resonant_long_exposure_saturates(self):
        # Resonant pair exposed long enough reaches the full envelope.
        assert crosstalk_error(0.001, 10_000.0) == pytest.approx(1.0)

    def test_short_exposure_small(self):
        eps = crosstalk_error(1e-6, 100.0)
        assert eps < 1e-4

    def test_detuning_suppression(self):
        g, t = 0.001, 10_000.0
        resonant = crosstalk_error(g, t, detuning_ghz=0.0)
        detuned = crosstalk_error(g, t, detuning_ghz=0.13)
        assert detuned < 0.01 * resonant

    def test_bounded(self):
        for g in (1e-5, 1e-3, 1e-1):
            for t in (10.0, 1e4, 1e7):
                assert 0.0 <= crosstalk_error(g, t) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            crosstalk_error(-0.01, 100.0)
        with pytest.raises(ValueError):
            crosstalk_error(0.01, -100.0)


class TestGateErrorFactor:
    def test_multiplicative(self):
        p = NoiseParams(single_qubit_gate_error=0.01, two_qubit_gate_error=0.1)
        assert gate_error_factor(2, 1, p) == pytest.approx(0.99 ** 2 * 0.9)

    def test_no_gates_perfect(self):
        assert gate_error_factor(0, 0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gate_error_factor(-1, 0)

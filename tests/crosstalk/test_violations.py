"""Unit tests for spatial-violation detection on synthetic layouts."""

import numpy as np
import pytest

from repro.devices.components import Qubit, Resonator
from repro.devices.layout import Layout
from repro.crosstalk.violations import (
    KIND_QQ,
    KIND_QR,
    KIND_RR,
    count_by_kind,
    find_spatial_violations,
)


def qubit(i, freq, padding=0.4):
    return Qubit(name=f"q{i}", width=0.4, height=0.4, padding=padding,
                 frequency=freq, index=i)


def segments(res_index, freq, count=2):
    r = Resonator(name=f"r{res_index}", index=res_index,
                  endpoints=(0, 1), frequency=freq)
    return list(r.make_segments(0.3)[:count])


def layout_of(instances, positions):
    return Layout(instances=instances, positions=np.array(positions, float))


class TestQubitPairs:
    def test_close_resonant_pair_detected(self):
        lay = layout_of([qubit(0, 5.0), qubit(1, 5.0)], [(0, 0), (0.8, 0)])
        violations = find_spatial_violations(lay)
        assert len(violations) == 1
        v = violations[0]
        assert v.kind == KIND_QQ
        assert v.resonant
        assert v.gap_mm == pytest.approx(0.4)
        assert v.g_ghz > 0

    def test_pair_at_padding_sum_is_legal(self):
        # gap = 0.8 = dq + dq exactly -> not a violation.
        lay = layout_of([qubit(0, 5.0), qubit(1, 5.0)], [(0, 0), (1.2, 0)])
        assert find_spatial_violations(lay) == []

    def test_detuned_pair_not_resonant(self):
        lay = layout_of([qubit(0, 4.8), qubit(1, 5.2)], [(0, 0), (0.8, 0)])
        violations = find_spatial_violations(lay)
        assert len(violations) == 1
        assert not violations[0].resonant
        # Dispersive residual is quadratically suppressed.
        assert violations[0].g_eff_ghz < violations[0].g_ghz

    def test_diagonal_euclidean_gap(self):
        # Diagonal offset: per-axis close, Euclidean gap >= padding sum.
        lay = layout_of([qubit(0, 5.0), qubit(1, 5.0)],
                        [(0, 0), (1.0, 1.0)])
        # gap = hypot(0.6, 0.6) = 0.849 > 0.8 -> legal.
        assert find_spatial_violations(lay) == []

    def test_coupling_grows_as_gap_shrinks(self):
        def g_at(dx):
            lay = layout_of([qubit(0, 5.0), qubit(1, 5.0)], [(0, 0), (dx, 0)])
            return find_spatial_violations(lay)[0].g_ghz
        assert g_at(0.5) > g_at(0.9)


class TestResonatorPairs:
    def test_foreign_segments_close(self):
        s1 = segments(0, 6.5, 1)
        s2 = segments(1, 6.5, 1)
        lay = layout_of(s1 + s2, [(0, 0), (0.4, 0)])
        violations = find_spatial_violations(lay)
        assert len(violations) == 1
        assert violations[0].kind == KIND_RR
        assert violations[0].resonant

    def test_sibling_segments_exempt(self):
        sibs = segments(0, 6.5, 2)
        lay = layout_of(sibs, [(0, 0), (0.3, 0)])
        assert find_spatial_violations(lay) == []

    def test_facing_length_recorded(self):
        s1 = segments(0, 6.5, 1)
        s2 = segments(1, 6.5, 1)
        lay = layout_of(s1 + s2, [(0, 0), (0.4, 0)])
        v = find_spatial_violations(lay)[0]
        assert v.facing_mm == pytest.approx(0.3)


class TestQubitResonatorPairs:
    def test_qr_kind(self):
        q = qubit(0, 5.0)
        s = segments(5, 6.5, 1)
        lay = layout_of([q] + s, [(0, 0), (0.5, 0)])
        violations = find_spatial_violations(lay)
        assert len(violations) == 1
        assert violations[0].kind == KIND_QR
        assert not violations[0].resonant  # bands never overlap

    def test_qr_excluded_when_disabled(self):
        q = qubit(0, 5.0)
        s = segments(5, 6.5, 1)
        lay = layout_of([q] + s, [(0, 0), (0.5, 0)])
        assert find_spatial_violations(lay, include_qr=False) == []


class TestHelpers:
    def test_count_by_kind(self):
        s1 = segments(0, 6.5, 1)
        s2 = segments(1, 6.5, 1)
        q0, q1 = qubit(0, 5.0), qubit(1, 5.0)
        lay = layout_of([q0, q1] + s1 + s2,
                        [(0, 0), (0.8, 0), (10, 10), (10.4, 10)])
        counts = count_by_kind(find_spatial_violations(lay))
        assert counts[KIND_QQ] == 1
        assert counts[KIND_RR] == 1

    def test_empty_layout(self):
        lay = layout_of([qubit(0, 5.0)], [(0, 0)])
        assert find_spatial_violations(lay) == []

"""Unit tests for the Eq. 18 hotspot-proportion metric."""

import numpy as np
import pytest

from repro.crosstalk.hotspots import hotspot_report
from repro.devices import build_netlist, grid_topology
from repro.devices.components import Qubit, Resonator
from repro.devices.layout import Layout


def qubit(i, freq):
    return Qubit(name=f"q{i}", width=0.4, height=0.4, padding=0.4,
                 frequency=freq, index=i)


class TestPhComputation:
    def test_hand_computed_value(self):
        # Two resonant qubits side by side, gap 0.4 (< 0.8 padding sum).
        instances = [qubit(0, 5.0), qubit(1, 5.0)]
        lay = Layout(instances=instances,
                     positions=np.array([[0.0, 0.0], [0.8, 0.0]]))
        report = hotspot_report(lay)
        assert report.num_hotspots == 1
        pair = report.pairs[0]
        # Padded rects are 1.2 wide at centres 0.8 apart: facing = 1.2
        # (y-extent overlap), centroid distance 0.8.
        assert pair.facing_mm == pytest.approx(1.2)
        assert pair.centroid_distance_mm == pytest.approx(0.8)
        apoly = 2 * 0.16
        assert report.ph == pytest.approx(1.2 * 0.8 / apoly)

    def test_detuned_pair_excluded(self):
        instances = [qubit(0, 4.8), qubit(1, 5.2)]
        lay = Layout(instances=instances,
                     positions=np.array([[0.0, 0.0], [0.8, 0.0]]))
        report = hotspot_report(lay)
        assert report.ph == 0.0
        assert report.num_hotspots == 0

    def test_ph_percent(self):
        instances = [qubit(0, 5.0), qubit(1, 5.0)]
        lay = Layout(instances=instances,
                     positions=np.array([[0.0, 0.0], [0.8, 0.0]]))
        report = hotspot_report(lay)
        assert report.ph_percent == pytest.approx(100 * report.ph)

    def test_impacted_qubits_direct(self):
        instances = [qubit(0, 5.0), qubit(1, 5.0), qubit(2, 5.2)]
        lay = Layout(instances=instances,
                     positions=np.array([[0, 0], [0.8, 0], [5, 5]], float))
        report = hotspot_report(lay)
        assert report.impacted_qubits == {0, 1}


class TestResonatorPropagation:
    def test_rr_hotspot_impacts_endpoint_qubits(self):
        """A segment-segment hotspot must impact all endpoint qubits of
        both resonators (the non-local effect of Sec. VI-B)."""
        netlist = build_netlist(grid_topology(2, 2))
        # Find two resonators with the same frequency? The conflict
        # colouring forbids that for couplers sharing a qubit; force two
        # synthetic resonators with identical frequency instead.
        r_a = Resonator(name="ra", index=0, endpoints=(0, 1), frequency=6.5)
        r_b = Resonator(name="rb", index=1, endpoints=(2, 3), frequency=6.5)
        seg_a = r_a.make_segments(0.3)[0]
        seg_b = r_b.make_segments(0.3)[0]

        class FakeNetlist:
            resonators = [r_a, r_b]

        lay = Layout(instances=[seg_a, seg_b],
                     positions=np.array([[0.0, 0.0], [0.35, 0.0]]))
        lay.netlist = FakeNetlist()
        report = hotspot_report(lay)
        assert report.num_hotspots == 1
        assert report.impacted_qubits == {0, 1, 2, 3}

    def test_no_netlist_counts_no_propagation(self):
        r_a = Resonator(name="ra", index=0, endpoints=(0, 1), frequency=6.5)
        r_b = Resonator(name="rb", index=1, endpoints=(2, 3), frequency=6.5)
        lay = Layout(instances=[r_a.make_segments(0.3)[0],
                                r_b.make_segments(0.3)[0]],
                     positions=np.array([[0.0, 0.0], [0.35, 0.0]]))
        report = hotspot_report(lay)
        assert report.num_hotspots == 1
        assert report.impacted_qubits == set()


class TestPrecomputedViolations:
    def test_reuse_violations(self):
        from repro.crosstalk.violations import find_spatial_violations
        instances = [qubit(0, 5.0), qubit(1, 5.0)]
        lay = Layout(instances=instances,
                     positions=np.array([[0.0, 0.0], [0.8, 0.0]]))
        violations = find_spatial_violations(lay)
        a = hotspot_report(lay)
        b = hotspot_report(lay, violations=violations)
        assert a.ph == b.ph

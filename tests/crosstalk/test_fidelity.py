"""Unit tests for the Eq. 15 program-fidelity estimator."""

import numpy as np
import pytest

from repro.circuits.library import get_benchmark
from repro.circuits.mapping import evaluation_mappings, map_circuit
from repro.crosstalk.fidelity import (
    average_program_fidelity,
    estimate_program_fidelity,
)
from repro.crosstalk.noise_model import NoiseParams
from repro.baselines.human import human_layout


@pytest.fixture(scope="module")
def clean_setup(grid9_module):
    return grid9_module


@pytest.fixture(scope="module")
def grid9_module():
    from repro.devices import build_netlist, grid_topology
    topo = grid_topology(3, 3)
    netlist = build_netlist(topo)
    layout = human_layout(netlist)   # crosstalk-free reference layout
    return topo, netlist, layout


class TestCleanLayout:
    def test_breakdown_structure(self, grid9_module):
        topo, _, layout = grid9_module
        mapped = map_circuit(get_benchmark("bv-4"), topo, seed=0)
        fb = estimate_program_fidelity(layout, mapped)
        assert 0.0 < fb.total <= 1.0
        assert fb.total == pytest.approx(
            fb.gate_factor * fb.decoherence_factor
            * fb.qubit_crosstalk_factor * fb.resonator_crosstalk_factor)

    def test_no_crosstalk_on_human_layout(self, grid9_module):
        # The Human layout has no resonant hotspots; the only crosstalk
        # residue comes from deeply detuned strip adjacencies near shared
        # qubits, which must stay at the sub-percent level.
        topo, _, layout = grid9_module
        mapped = map_circuit(get_benchmark("bv-4"), topo, seed=0)
        fb = estimate_program_fidelity(layout, mapped)
        assert fb.qubit_crosstalk_factor == pytest.approx(1.0, abs=1e-6)
        assert fb.resonator_crosstalk_factor == pytest.approx(1.0, abs=2e-2)

    def test_active_counts(self, grid9_module):
        topo, _, layout = grid9_module
        mapped = map_circuit(get_benchmark("bv-4"), topo, seed=0)
        fb = estimate_program_fidelity(layout, mapped)
        assert fb.active_qubits == len(mapped.active_qubits)
        assert fb.active_resonators == len(mapped.active_edges)

    def test_bigger_circuit_lower_fidelity(self, grid9_module):
        topo, _, layout = grid9_module
        small = map_circuit(get_benchmark("bv-4"), topo, seed=0)
        large = map_circuit(get_benchmark("qaoa-9"), topo, seed=0)
        f_small = estimate_program_fidelity(layout, small).total
        f_large = estimate_program_fidelity(layout, large).total
        assert f_large < f_small

    def test_noise_params_scale(self, grid9_module):
        topo, _, layout = grid9_module
        mapped = map_circuit(get_benchmark("bv-4"), topo, seed=0)
        good = estimate_program_fidelity(
            layout, mapped, NoiseParams(two_qubit_gate_error=1e-4)).total
        bad = estimate_program_fidelity(
            layout, mapped, NoiseParams(two_qubit_gate_error=5e-2)).total
        assert good > bad


class TestCrosstalkImpact:
    def test_hotspot_collapses_fidelity(self, grid9_module):
        """Moving two same-frequency qubits within the padding sum must
        destroy the fidelity of circuits that use them."""
        topo, netlist, layout = grid9_module
        # Find two same-frequency qubits.
        same = {}
        for q, f in netlist.plan.qubit_freq_ghz.items():
            same.setdefault(round(f, 6), []).append(q)
        pair = next(qs for qs in same.values() if len(qs) >= 2)[:2]

        polluted = layout.moved(layout.positions.copy())
        qi = polluted.qubit_indices
        # Centre distance 0.55 mm -> bare gap 0.15 mm, the clearance-scale
        # adjacency at which classic layouts create hotspots.
        polluted.positions[qi[pair[1]]] = \
            polluted.positions[qi[pair[0]]] + np.array([0.55, 0.0])

        # Build a connected subset guaranteed to engage both qubits.
        subset = list(topo.shortest_path(pair[0], pair[1]))
        for extra in topo.neighbors(pair[0]):
            if len(subset) >= 4:
                break
            if extra not in subset:
                subset.append(extra)
        mapped = map_circuit(get_benchmark("bv-4"), topo, subset=sorted(subset))
        assert set(pair) <= mapped.active_qubits
        clean = estimate_program_fidelity(layout, mapped).total
        dirty = estimate_program_fidelity(polluted, mapped).total
        assert dirty < 0.05 * clean

    def test_inactive_hotspot_harmless(self, grid9_module):
        """A hotspot between qubits the program never touches must not
        change the program fidelity (Sec. V-C)."""
        topo, netlist, layout = grid9_module
        same = {}
        for q, f in netlist.plan.qubit_freq_ghz.items():
            same.setdefault(round(f, 6), []).append(q)
        pair = next(qs for qs in same.values() if len(qs) >= 2)[:2]

        polluted = layout.moved(layout.positions.copy())
        qi = polluted.qubit_indices
        polluted.positions[qi[pair[1]]] = \
            polluted.positions[qi[pair[0]]] + np.array([0.8, 0.0])

        # Map onto a subset avoiding both qubits entirely.
        avoid = set(pair)
        subset = [q for q in range(9) if q not in avoid]
        sub = sorted(subset)[:4]
        import networkx as nx
        if not nx.is_connected(topo.graph.subgraph(sub)):
            pytest.skip("no connected clean subset on this plan")
        mapped = map_circuit(get_benchmark("bv-4"), topo, subset=sub)
        if set(mapped.active_qubits) & avoid:
            pytest.skip("routing touched the polluted qubits")
        clean = estimate_program_fidelity(layout, mapped).total
        dirty = estimate_program_fidelity(polluted, mapped).total
        assert dirty == pytest.approx(clean, rel=1e-6)


class TestAverage:
    def test_average_matches_mean(self, grid9_module):
        topo, _, layout = grid9_module
        mappings = evaluation_mappings(get_benchmark("bv-4"), topo,
                                       num_mappings=5)
        avg = average_program_fidelity(layout, mappings)
        singles = [estimate_program_fidelity(layout, m).total
                   for m in mappings]
        assert avg == pytest.approx(np.mean(singles))

    def test_empty_mappings_rejected(self, grid9_module):
        _, _, layout = grid9_module
        with pytest.raises(ValueError):
            average_program_fidelity(layout, [])

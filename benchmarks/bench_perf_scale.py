"""Scaling trajectory: topology size vs wall-time vs peak pair count.

The sparse interaction backend exists so condor-class topologies stay
tractable.  This harness records the scaling curve — for each tier the
instance count, the resolved backend, the end-to-end stage wall-times
(global place, legalize, violation scan), and the peak candidate-pair
counts of the engine's frequency neighbor list and the violation scan —
and emits machine-readable JSON to
``benchmarks/results/perf_scale.json``.

Two gates keep the backend honest:

* **no-regression on eagle-127**: ``auto`` must still resolve dense
  there, and forcing the sparse strategy through the legalizer and the
  violation scan must reproduce the dense results bit-identically;
* **subquadratic growth**: the sparse peak pair count must grow with an
  exponent well below 2 between the largest dense tier (eagle-127) and
  the condor tiers.

The default smoke mode covers grid-25, eagle-127, and condor-sm-433;
``REPRO_BENCH_FULL=1`` adds the full condor-1121 run (a few minutes on a
laptop-class machine).
"""

from __future__ import annotations

import dataclasses
import json
import math
import platform
import time
from typing import Dict

import numpy as np

from repro.core import legalizer
from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.preprocess import build_problem
from repro.crosstalk.violations import (
    count_candidate_pairs,
    find_spatial_violations,
)
from repro.devices.layout import Layout
from repro.devices.netlist import build_netlist
from repro.devices.topology import get_topology

from conftest import FULL, emit

#: Scaling tiers, smallest first (the gate compares consecutive tiers).
SCALE_TOPOLOGIES = (
    ("grid-25", "eagle-127", "condor-sm-433", "condor-1121") if FULL else
    ("grid-25", "eagle-127", "condor-sm-433")
)

#: Upper bound on the pair-count growth exponent between eagle-127 and
#: the condor tiers (2.0 = quadratic; the neighbor list lands ~0.5).
MAX_PAIR_GROWTH_EXPONENT = 1.5


def _scale_point(topology_name: str) -> Dict[str, object]:
    """Place + legalize + scan one tier and record its scaling row."""
    config = PlacerConfig()
    netlist = build_netlist(get_topology(topology_name))
    t0 = time.perf_counter()
    problem = build_problem(netlist, config)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    result = GlobalPlacer(problem, config).run()
    place_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    positions, stats = legalizer.legalize(problem, result.positions, config)
    legalize_s = time.perf_counter() - t0

    layout = Layout(instances=problem.instances, positions=positions,
                    netlist=netlist, strategy="qplacer")
    t0 = time.perf_counter()
    violations = find_spatial_violations(layout)
    scan_s = time.perf_counter() - t0

    n = problem.num_instances
    return {
        "topology": topology_name,
        "qubits": netlist.topology.num_qubits,
        "num_instances": n,
        "backend": problem.interaction_backend,
        "build_s": round(build_s, 3),
        "global_place_s": round(place_s, 2),
        "legalize_s": round(legalize_s, 2),
        "violation_scan_s": round(scan_s, 3),
        "iterations": result.iterations,
        "converged": result.converged,
        "peak_freq_pairs": result.peak_collision_pairs,
        "freq_list_rebuilds": result.freq_list_rebuilds,
        "peak_freq_candidates": result.peak_pair_candidates,
        "violation_candidates": count_candidate_pairs(layout),
        "num_violations": len(violations),
        "dense_pair_budget": n * (n - 1) // 2,
        "integration_failures": stats.integration_failures,
    }


def _eagle_dense_identity() -> Dict[str, object]:
    """Gate: forcing sparse on eagle-127 reproduces dense bit-for-bit."""
    config = PlacerConfig()
    netlist = build_netlist(get_topology("eagle-127"))
    problem = build_problem(netlist, config)
    assert problem.interaction_backend == "dense", \
        "auto must resolve dense on eagle-127"
    global_positions = GlobalPlacer(problem, config).run().positions
    dense_pos, dense_stats = legalizer.legalize(
        problem, global_positions,
        dataclasses.replace(config, interaction_backend="dense"))
    sparse_pos, sparse_stats = legalizer.legalize(
        problem, global_positions,
        dataclasses.replace(config, interaction_backend="sparse"))
    layout = Layout(instances=problem.instances, positions=dense_pos,
                    netlist=netlist, strategy="qplacer")
    dense_viol = find_spatial_violations(layout, backend="dense")
    sparse_viol = find_spatial_violations(layout, backend="sparse")
    return {
        "legalized_identical": bool(np.array_equal(dense_pos, sparse_pos)),
        "stats_identical": dense_stats == sparse_stats,
        "violations_identical": dense_viol == sparse_viol,
        "num_violations": len(dense_viol),
    }


def _growth_exponent(p1: Dict[str, object], p2: Dict[str, object]) -> float:
    """Pair-count growth exponent between two scaling rows."""
    n1, n2 = p1["num_instances"], p2["num_instances"]
    c1 = max(int(p1["peak_freq_pairs"]), 1)
    c2 = max(int(p2["peak_freq_pairs"]), 1)
    return math.log(c2 / c1) / math.log(n2 / n1)


def test_perf_scale(results_dir):
    points = [_scale_point(name) for name in SCALE_TOPOLOGIES]
    identity = _eagle_dense_identity()

    exponents = {}
    eagle = next(p for p in points if p["topology"] == "eagle-127")
    for point in points:
        if point["backend"] != "sparse":
            continue
        exponents[point["topology"]] = round(
            _growth_exponent(eagle, point), 3)

    report = {
        "bench": "perf_scale",
        "mode": "full" if FULL else "smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "points": points,
        "eagle_dense_identity": identity,
        "pair_growth_exponent_vs_eagle": exponents,
        "max_pair_growth_exponent": MAX_PAIR_GROWTH_EXPONENT,
    }
    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_scale", text)
    (results_dir / "perf_scale.json").write_text(text + "\n")

    # -- gates ----------------------------------------------------------
    assert identity["legalized_identical"], \
        "sparse legalizer diverged from dense on eagle-127"
    assert identity["stats_identical"], \
        "sparse legalizer stats diverged on eagle-127"
    assert identity["violations_identical"], \
        "sparse violation scan diverged on eagle-127"
    for point in points:
        assert point["integration_failures"] == 0, \
            f"{point['topology']}: resonator integration failed"
        if point["backend"] == "sparse":
            assert point["peak_freq_pairs"] < point["dense_pair_budget"], \
                f"{point['topology']}: neighbor list not smaller than dense"
    for name, exponent in exponents.items():
        assert exponent < MAX_PAIR_GROWTH_EXPONENT, \
            (f"{name}: pair count grows with exponent {exponent} "
             f">= {MAX_PAIR_GROWTH_EXPONENT} (superquadratic trend)")

"""Fig. 5-b — parasitic capacitance and coupling versus qubit distance.

Regenerates the distance decay: Cp, g, and g_eff all rise steeply as the
separation shrinks (motivating the padding strategy), plus the
Sec. III-C TM110 substrate rows (12.41 GHz @ 5x5 mm -> 6.20 GHz @ 10x10).
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.analysis import coupling_vs_distance, format_table
from repro.physics import tm110_frequency_ghz


def test_fig05_coupling_vs_distance(benchmark, results_dir) -> None:
    curve = benchmark(coupling_vs_distance)
    d = curve["distance_mm"]
    cp = curve["cp_ff"]
    g = curve["g_ghz"]
    g_eff = curve["g_eff_ghz"]

    # All three quantities must decrease monotonically with distance.
    assert np.all(np.diff(cp) < 0)
    assert np.all(np.diff(g) < 0)
    assert np.all(np.diff(g_eff) < 0)
    # Near contact the coupling reaches the tens-of-MHz regime.
    assert 1e3 * g[0] > 10.0
    # At the paper's padded qubit spacing the residual is negligible.
    at_padding = float(np.interp(0.8, d, g))
    assert 1e3 * at_padding < 0.01

    rows = [[f"{d[k]:.2f}", f"{cp[k]:.4f}", f"{1e3 * g[k]:.3f}",
             f"{1e6 * g_eff[k]:.3f}"]
            for k in range(0, len(d), 9)]
    table = format_table(["d (mm)", "Cp (fF)", "g (MHz)", "g_eff (kHz)"], rows,
                         title="Fig.5-b — coupling vs qubit distance")

    tm_rows = [[f"{side:.0f}x{side:.0f}",
                f"{tm110_frequency_ghz(side, side):.2f}"]
               for side in (5.0, 7.5, 10.0)]
    table += "\n\n" + format_table(
        ["substrate (mm)", "TM110 (GHz)"], tm_rows,
        title="Sec.III-C — substrate box mode (paper: 12.41 -> 6.20 GHz)")
    emit(results_dir, "fig05_coupling_vs_distance", table)

    assert abs(tm110_frequency_ghz(5, 5) - 12.41) < 0.1
    assert abs(tm110_frequency_ghz(10, 10) - 6.20) < 0.05

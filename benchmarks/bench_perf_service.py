"""Placement-service gates: dedup, bit-identity, HTTP throughput.

ISSUE 5's acceptance harness.  A real :class:`~repro.service.api.
PlacementService` (threading HTTP server + scheduler + artifact store)
boots on an ephemeral port and must show:

* **dedup** — 8 identical concurrent eagle-tier placement requests
  trigger exactly **one** underlying placement computation; the other 7
  coalesce onto the in-flight job (or hit the artifact store);
* **bit-identity** — the service's evaluate artifact equals a direct
  :func:`~repro.analysis.experiments.run_full_evaluation` converted
  with the shared :func:`~repro.analysis.experiments.
  evaluation_payload` (floats compared after a JSON round-trip, which
  is lossless);
* **throughput** — >= :data:`MIN_CACHE_HIT_RPS` cache-hit requests/sec
  sustained through the HTTP path once the artifact exists.

Machine-readable JSON goes to ``benchmarks/results/perf_service.json``.
"""

from __future__ import annotations

import json
import platform
import threading
import time
from typing import Dict, List

from repro.analysis.experiments import (_effective_config,
                                        evaluation_payload,
                                        run_full_evaluation)
from repro.analysis.runner import ParallelRunner
from repro.core import PlacerConfig
from repro.service import PlacementService, ServiceClient

from conftest import FULL, emit

#: Required sustained cache-hit request rate through HTTP (gate).
MIN_CACHE_HIT_RPS = 50.0

#: Identical concurrent placement submissions in the dedup gate.
CONCURRENT_CLIENTS = 8

#: Fast-but-real placer settings: the dedup and throughput gates are
#: about the service layer, not placement quality, so the eagle-tier
#: computation is kept to ~1-2 s.
FAST_CONFIG: Dict[str, object] = {
    "max_iterations": 60, "min_iterations": 10, "num_bins": 32,
}

#: The dedup gate's request: one eagle-tier placement.
EAGLE_PLACE_REQUEST: Dict[str, object] = {
    "topology": "eagle-127",
    "strategies": ["qplacer"],
    "config": FAST_CONFIG,
    "include_layouts": False,
}

#: Bit-identity instance (kept paper-small so the bench stays in CI
#: budget; every float of the nested payload must match).
EVALUATE_TOPOLOGIES = ("grid-25", "falcon-27") if FULL else ("grid-25",)
EVALUATE_BENCHMARKS = ("bv-4", "qgan-4", "ising-4")
EVALUATE_MAPPINGS = 6 if FULL else 3

#: Cache-hit requests issued in the throughput measurement.
THROUGHPUT_REQUESTS = 400 if FULL else 200
THROUGHPUT_THREADS = 4


def _dedup_gate(client: ServiceClient,
                service: PlacementService) -> Dict[str, object]:
    """8 identical concurrent placement submits -> 1 computation."""
    barrier = threading.Barrier(CONCURRENT_CLIENTS)
    records: List[Dict[str, object]] = []
    lock = threading.Lock()

    def submit() -> None:
        barrier.wait()
        record = client.submit("place", EAGLE_PLACE_REQUEST)
        with lock:
            records.append(record)

    threads = [threading.Thread(target=submit)
               for _ in range(CONCURRENT_CLIENTS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    submitted_s = time.perf_counter() - start
    job_ids = sorted({r["job_id"] for r in records})
    final = client.wait(job_ids[0], timeout=600)
    for job_id in job_ids[1:]:
        client.wait(job_id, timeout=600)
    dispositions = sorted(r["disposition"] for r in records)
    result = client.artifact(final["artifact"])["result"]
    return {
        "concurrent_clients": CONCURRENT_CLIENTS,
        "dispositions": dispositions,
        "unique_jobs": len(job_ids),
        "computations": len(service.scheduler.computed_digests),
        "submit_wall_s": round(submitted_s, 4),
        "compute_s": round(
            client.artifact(final["artifact"])["metadata"]["compute_s"], 3),
        "ph_percent": result["strategies"]["qplacer"]["metrics"][
            "ph_percent"],
    }


def _bit_identity_gate(client: ServiceClient) -> Dict[str, object]:
    """Service evaluate artifact == direct run_full_evaluation payload."""
    request = {
        "topologies": list(EVALUATE_TOPOLOGIES),
        "benchmarks": list(EVALUATE_BENCHMARKS),
        "num_mappings": EVALUATE_MAPPINGS,
        "seed": 0,
        "config": FAST_CONFIG,
    }
    start = time.perf_counter()
    via_service = client.run("evaluate", request, timeout=1800)
    service_s = time.perf_counter() - start

    start = time.perf_counter()
    direct = evaluation_payload(run_full_evaluation(
        topology_names=EVALUATE_TOPOLOGIES,
        benchmarks=EVALUATE_BENCHMARKS,
        num_mappings=EVALUATE_MAPPINGS,
        config=_effective_config(PlacerConfig(**FAST_CONFIG), 0, 0.3),
        runner=ParallelRunner(max_workers=1)))
    direct_s = time.perf_counter() - start
    direct_round_tripped = json.loads(json.dumps(direct))
    return {
        "topologies": list(EVALUATE_TOPOLOGIES),
        "benchmarks": list(EVALUATE_BENCHMARKS),
        "num_mappings": EVALUATE_MAPPINGS,
        "identical": via_service == direct_round_tripped,
        "service_s": round(service_s, 3),
        "direct_s": round(direct_s, 3),
    }


def _throughput_gate(client: ServiceClient,
                     service: PlacementService) -> Dict[str, object]:
    """Sustained cache-hit submissions through the HTTP path."""
    # Warm: the artifact exists after the dedup gate; one probe confirms.
    probe = client.submit("place", EAGLE_PLACE_REQUEST)
    assert probe["disposition"] == "cache_hit", probe["disposition"]

    computed_before = len(service.scheduler.computed_digests)
    per_thread = THROUGHPUT_REQUESTS // THROUGHPUT_THREADS
    errors: List[str] = []

    def hammer() -> None:
        local = ServiceClient(client.base_url, timeout=30.0)
        for _ in range(per_thread):
            record = local.submit("place", EAGLE_PLACE_REQUEST)
            if record["disposition"] != "cache_hit":
                errors.append(record["disposition"])

    threads = [threading.Thread(target=hammer)
               for _ in range(THROUGHPUT_THREADS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = per_thread * THROUGHPUT_THREADS
    return {
        "requests": total,
        "threads": THROUGHPUT_THREADS,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(total / elapsed, 1),
        "non_cache_hits": len(errors),
        "extra_computations":
            len(service.scheduler.computed_digests) - computed_before,
    }


def test_perf_service(results_dir, tmp_path):
    with PlacementService(store_dir=tmp_path / "store", port=0, workers=2,
                          runner_workers=1) as service:
        client = ServiceClient(service.base_url, timeout=60.0)
        report: Dict[str, object] = {
            "bench": "perf_service",
            "mode": "full" if FULL else "smoke",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "min_cache_hit_rps": MIN_CACHE_HIT_RPS,
            "dedup": _dedup_gate(client, service),
            "bit_identity": _bit_identity_gate(client),
            "throughput": _throughput_gate(client, service),
        }
        report["metrics"] = {
            key: value for key, value in client.metrics().items()
            if key in ("coalesced", "completed", "computations",
                       "queue_depth", "artifact_hits", "jobs_total")}

    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_service", text)
    (results_dir / "perf_service.json").write_text(text + "\n")

    # -- gates ----------------------------------------------------------
    dedup = report["dedup"]
    assert dedup["computations"] == 1, \
        (f"{CONCURRENT_CLIENTS} identical concurrent requests caused "
         f"{dedup['computations']} placement computations (want 1)")
    assert dedup["unique_jobs"] == 1, \
        f"coalescing produced {dedup['unique_jobs']} job ids (want 1)"
    assert dedup["dispositions"].count("queued") == 1
    assert all(d in ("queued", "coalesced", "cache_hit")
               for d in dedup["dispositions"])

    identity = report["bit_identity"]
    assert identity["identical"], \
        "service evaluate artifact differs from direct run_full_evaluation"

    throughput = report["throughput"]
    assert throughput["non_cache_hits"] == 0
    assert throughput["extra_computations"] == 0
    assert throughput["requests_per_s"] >= MIN_CACHE_HIT_RPS, \
        (f"cache-hit throughput {throughput['requests_per_s']} req/s "
         f"< {MIN_CACHE_HIT_RPS} req/s")

"""Placer-portfolio gates: fidelity ordering, SA scale, anytime refine.

Three acceptance gates for the :mod:`repro.placers` subsystem, emitted
as machine-readable JSON (``benchmarks/results/perf_portfolio.json``):

* **portfolio fidelity** — racing the default member set and keeping
  the argmax must never lose to the force-directed engine alone, on a
  paper-tier topology and on ``eagle-127`` (ties break toward the
  earlier member, and ``force`` races first, so the winning layout's
  shared fidelity score is ``>=`` force's by construction — this gate
  re-measures it end to end rather than trusting the tie rule);
* **SA scale** — simulated annealing seeded from the trivial grid
  placer completes ``eagle-127`` inside a wall-clock budget;
* **refine monotonicity** — an anytime ``refine`` job against the real
  HTTP service publishes a non-worsening cost stream over >= 3 rounds.

``REPRO_BENCH_FULL=1`` runs paper-scale budgets; the default smoke mode
shrinks engine iterations and annealing rounds so CI stays fast while
exercising every code path.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from typing import Dict

from repro.analysis.runner import ParallelRunner
from repro.core.config import PlacerConfig
from repro.devices.netlist import build_netlist
from repro.devices.topology import get_topology
from repro.placers import make_placer, score_layout
from repro.service import PlacementService, ServiceClient

from conftest import FULL, emit

#: Topologies the fidelity-ordering gate covers: one paper-tier device
#: plus the largest heavy-hex instance.
PORTFOLIO_TOPOLOGIES = ("falcon-27", "eagle-127")

#: Reduced engine budget for smoke mode (same shape as the service
#: bench's FAST_CONFIG, plus small annealing budgets).
SMOKE_OVERRIDES = dict(max_iterations=60, min_iterations=10, num_bins=32,
                       sa_rounds=6, sa_moves_per_round=120,
                       sa_probe_moves=24)

#: SA-from-trivial must finish eagle-127 inside this wall-clock budget.
SA_EAGLE_BUDGET_S = 600.0 if FULL else 240.0

#: Minimum published refine rounds the monotonicity gate inspects.
MIN_REFINE_ROUNDS = 3


def _config(**overrides) -> PlacerConfig:
    base = PlacerConfig() if FULL else PlacerConfig(**SMOKE_OVERRIDES)
    return dataclasses.replace(base, **overrides) if overrides else base


def _portfolio_gate(topology_name: str) -> Dict[str, object]:
    """Race the default portfolio and compare against force alone."""
    netlist = build_netlist(get_topology(topology_name))

    t0 = time.perf_counter()
    force = make_placer(_config(placer="force")).place(netlist)
    force_s = time.perf_counter() - t0
    force_score = score_layout(force.layout)

    portfolio = make_placer(_config(placer="portfolio")).place(netlist)
    scores = dict(portfolio.portfolio_scores)
    winner = max(scores, key=lambda member: scores[member])
    return {
        "topology": topology_name,
        "force_score": force_score,
        "force_s": round(force_s, 3),
        "portfolio_score": score_layout(portfolio.layout),
        "portfolio_s": round(portfolio.runtime_s, 3),
        "member_scores": scores,
        "member_seconds": {
            key.split("/", 1)[1]: round(value, 3)
            for key, value in portfolio.phase_profile.items()
            if key.startswith("portfolio/")},
        "winner": winner,
    }


def _sa_scale_gate() -> Dict[str, object]:
    """SA seeded from the trivial grid placer completes eagle-127."""
    netlist = build_netlist(get_topology("eagle-127"))
    config = _config(placer="sa", sa_seed_placer="trivial")
    placer = make_placer(config)
    t0 = time.perf_counter()
    result = placer.place(netlist)
    elapsed = time.perf_counter() - t0
    stats = placer.last_anneal_stats
    return {
        "topology": "eagle-127",
        "budget_s": SA_EAGLE_BUDGET_S,
        "elapsed_s": round(elapsed, 3),
        "rounds": stats.rounds,
        "attempted": stats.attempted,
        "accepted": stats.accepted,
        "initial_cost": round(stats.initial_cost, 3),
        "best_cost": round(stats.best_cost, 3),
        "score": score_layout(result.layout),
        "num_cells": result.num_cells,
    }


def _refine_gate(store_dir, cache_dir) -> Dict[str, object]:
    """Anytime refine over the live HTTP API publishes monotone costs."""
    rounds = 8 if FULL else max(MIN_REFINE_ROUNDS + 1, 4)
    svc = PlacementService(store_dir=store_dir, port=0, workers=1)
    svc.scheduler.runner = ParallelRunner(max_workers=1,
                                          cache_dir=cache_dir)
    with svc:
        client = ServiceClient(svc.base_url, timeout=60.0)
        engine = {"max_iterations": 60, "min_iterations": 10,
                  "num_bins": 32}
        source = client.submit("place", {"topology": "grid-25",
                                         "strategies": ["qplacer"],
                                         "config": engine})
        digest = client.wait(source["job_id"], timeout=300.0)["artifact"]
        t0 = time.perf_counter()
        refined = client.refine(digest, deadline_s=120.0, rounds=rounds,
                                moves_per_round=60, timeout=300.0)
        elapsed = time.perf_counter() - t0
    costs = refined["published_costs"]
    return {
        "source_digest": digest,
        "rounds_completed": refined["rounds_completed"],
        "published_costs": costs,
        "monotone": all(b <= a + 1e-9 for a, b in zip(costs, costs[1:])),
        "score": refined["score"],
        "elapsed_s": round(elapsed, 3),
    }


def test_perf_portfolio(results_dir, tmp_path):
    report: Dict[str, object] = {
        "bench": "perf_portfolio",
        "mode": "full" if FULL else "smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "portfolio": [_portfolio_gate(name)
                      for name in PORTFOLIO_TOPOLOGIES],
        "sa_scale": _sa_scale_gate(),
        "refine": _refine_gate(tmp_path / "store", tmp_path / "cache"),
    }

    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_portfolio", text)
    (results_dir / "perf_portfolio.json").write_text(text + "\n")

    # -- gates ----------------------------------------------------------
    for entry in report["portfolio"]:
        assert entry["portfolio_score"] >= entry["force_score"] - 1e-12, \
            (f"portfolio lost to force alone on {entry['topology']}: "
             f"{entry['portfolio_score']} < {entry['force_score']}")
        assert entry["member_scores"], "portfolio raced no members"

    scale = report["sa_scale"]
    assert scale["elapsed_s"] < scale["budget_s"], \
        (f"SA-from-trivial took {scale['elapsed_s']}s on eagle-127 "
         f"(budget {scale['budget_s']}s)")
    assert scale["best_cost"] <= scale["initial_cost"] + 1e-9
    assert 0.0 < scale["score"] <= 1.0

    refine = report["refine"]
    assert refine["rounds_completed"] >= MIN_REFINE_ROUNDS, \
        f"refine published only {refine['rounds_completed']} rounds"
    assert refine["monotone"], \
        f"refine cost stream regressed: {refine['published_costs']}"
    assert 0.0 < refine["score"] <= 1.0

"""Fig. 6 — resonator-resonator coupling versus frequency and distance.

Regenerates both panels: (b) maximum coupling at resonator resonance
(wr1 = wr2) decaying into the dispersive wings, and (c) coupling /
parasitic capacitance rising as the trace separation shrinks.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.analysis import format_table, resonator_coupling_curves


def test_fig06_resonator_coupling(benchmark, results_dir) -> None:
    curves = benchmark(resonator_coupling_curves)

    # Panel (c): monotone decay with distance.
    assert np.all(np.diff(curves["cp_ff"]) < 0)
    assert np.all(np.diff(curves["g_vs_distance_ghz"]) < 0)

    # Panel (b): peak at resonance.
    freq2 = curves["freq2_ghz"]
    g_freq = curves["g_vs_detuning_ghz"]
    peak = int(np.argmax(g_freq))
    assert abs(freq2[peak] - 6.5) < 0.02

    rows_c = [[f"{curves['distance_mm'][k]:.2f}",
               f"{curves['cp_ff'][k]:.4f}",
               f"{1e3 * curves['g_vs_distance_ghz'][k]:.3f}"]
              for k in range(0, len(curves["distance_mm"]), 9)]
    rows_b = [[f"{freq2[k]:.2f}", f"{1e3 * g_freq[k]:.3f}"]
              for k in range(0, len(freq2), 9)]
    table = format_table(["d (mm)", "Cp (fF)", "g (MHz)"], rows_c,
                         title="Fig.6-c — resonator coupling vs distance")
    table += "\n\n" + format_table(
        ["wr2 (GHz)", "g (MHz)"], rows_b,
        title="Fig.6-b — resonator coupling vs frequency (wr1 = 6.5 GHz)")
    emit(results_dir, "fig06_resonator_coupling", table)

"""Table II — placement runtime and instance counts per segment size.

Regenerates the #cells / RT / Avg columns: instance counts match the
paper's within a few percent by construction (the resonator-area model),
runtimes stay in the paper's seconds-scale regime, and the Eagle row
dominates (paper: 11.3 s at lb = 0.3).
"""

from __future__ import annotations

import pytest

from conftest import FULL, emit
from repro.analysis import format_table, segment_sweep

#: Paper Table II #cells at lb = 0.3 for tolerance checking.
PAPER_CELLS_LB03 = {
    "grid-25": 490, "xtree-53": 660, "falcon-27": 354,
    "eagle-127": 1801, "aspen11-40": 598, "aspenm-80": 1310,
}

TOPOLOGIES = tuple(PAPER_CELLS_LB03) if FULL else ("grid-25", "falcon-27", "aspen11-40")


def test_table2_runtime(benchmark, results_dir) -> None:
    def run():
        return {name: segment_sweep(name) for name in TOPOLOGIES}

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    headers = ["topology"]
    for lb in (0.2, 0.3, 0.4):
        headers += [f"#cells@{lb}", f"RT@{lb}", f"Avg@{lb}"]
    rows = []
    for name, sweep in sweeps.items():
        row = [name]
        for entry in sweep:
            row += [entry.num_cells, f"{entry.runtime_s:.1f}",
                    f"{entry.avg_iteration_s:.3f}"]
        rows.append(row)
    emit(results_dir, "table2_runtime",
         format_table(headers, rows, title="Table II — placement runtime"))

    for name, sweep in sweeps.items():
        cells = {e.segment_size_mm: e.num_cells for e in sweep}
        # Instance counts reproduce the paper's within 3%.
        paper = PAPER_CELLS_LB03[name]
        assert abs(cells[0.3] - paper) / paper < 0.03, (name, cells[0.3], paper)
        # Monotone in 1/lb^2.
        assert cells[0.2] > cells[0.3] > cells[0.4]
        # Seconds-scale runtime like the paper's Table II.
        assert all(e.runtime_s < 120.0 for e in sweep)

"""Transpile/routing throughput trajectory: legacy vs batched engine.

The batched engine (:mod:`repro.circuits.batch` array transpiler +
:mod:`repro.circuits.sabre` vectorized SABRE kernel) exists so
condor-scale workloads compile in seconds instead of minutes.  This
harness records the trajectory and enforces the contract:

* **paper-8 identity**: on all eight Table I benchmarks the batched
  transpiler must reproduce the legacy gate *sequence* (hence gate
  counts and depth) exactly;
* **SABRE identity**: the vectorized router must emit the same swaps,
  same routed gate order, and same final mapping as the preserved seed
  implementation (:mod:`repro.circuits.sabre_reference`);
* **>=3x on >=100-qubit workloads**: the batched transpiler must beat
  the legacy path by :data:`MIN_TRANSPILE_SPEEDUP` on every recorded
  routed workload at least 100 qubits wide;
* **shard merge identity**: a 2-shard
  :func:`~repro.analysis.experiments.sharded_fidelity_experiment`
  merge must equal the single-process run bit for bit (grid-25 in
  smoke mode; a condor-sm-433 study over >=100-qubit workloads under
  ``REPRO_BENCH_FULL=1``).

Machine-readable JSON goes to ``benchmarks/results/perf_transpile.json``
so every PR can compare against its predecessors.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Tuple

from repro.analysis.experiments import (build_suite, fidelity_experiment,
                                        sharded_fidelity_experiment)
from repro.analysis.runner import ParallelRunner
from repro.circuits.batch import transpile_batched
from repro.circuits.library import PAPER_BENCHMARKS, get_benchmark
from repro.circuits.mapping import (initial_placement,
                                    sample_connected_subset)
from repro.circuits.sabre import route_sabre
from repro.circuits.sabre_reference import route_sabre_reference
from repro.circuits.transpile import transpile
from repro.devices.topology import get_topology
from repro.workloads import get_workload

from conftest import FULL, emit

#: Required batched-transpiler speedup on >=100-qubit routed workloads.
MIN_TRANSPILE_SPEEDUP = 3.0

#: Routed workloads timed by the transpile comparison:
#: (workload name, topology, mapping seed).
WIDE_WORKLOADS: Tuple[Tuple[str, str, int], ...] = (
    ("ghz-433", "condor-sm-433", 0),
    ("qaoa-216", "condor-sm-433", 0),
    ("hhqaoa-433", "condor-sm-433", 0),
) + ((("qft-128", "condor-sm-433", 0),) if FULL else ())

#: Instances timed by the SABRE router comparison.
SABRE_CASES: Tuple[Tuple[str, str, int], ...] = (
    ("qaoa-120", "condor-sm-433", 0),
    ("qft-32", "eagle-127", 0),
)


def _time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _paper8_identity(repeats: int) -> Dict[str, Dict[str, object]]:
    """Legacy vs batched transpile on the eight Table I benchmarks."""
    rows: Dict[str, Dict[str, object]] = {}
    for name in PAPER_BENCHMARKS:
        circuit = get_benchmark(name)
        legacy_s, legacy = _time(lambda c=circuit: transpile(c), repeats)
        batched_s, batched = _time(
            lambda c=circuit: transpile_batched(c), repeats)
        rows[name] = {
            "gates": batched.size,
            "depth": batched.depth(),
            "counts_identical": legacy.count_ops() == batched.count_ops(),
            "depth_identical": legacy.depth() == batched.depth(),
            "sequence_identical": legacy.gates == batched.gates,
            "legacy_s": round(legacy_s, 5),
            "batched_s": round(batched_s, 5),
        }
    return rows


def _routed(workload: str, topology_name: str, seed: int):
    """Route one workload with the batched SABRE; returns the IR circuit."""
    circuit = get_workload(workload)
    topology = get_topology(topology_name)
    subset = sample_connected_subset(topology, circuit.num_qubits, seed)
    mapping = initial_placement(circuit, topology, subset)
    routed, _, swaps = route_sabre(circuit, topology, mapping)
    return circuit, routed, swaps


def _wide_transpile(repeats: int) -> List[Dict[str, object]]:
    """Legacy vs batched transpile on routed >=100-qubit workloads."""
    rows = []
    repeats = max(repeats, 3)  # the >=3x gate deserves stable timings
    for workload, topology_name, seed in WIDE_WORKLOADS:
        circuit, routed, swaps = _routed(workload, topology_name, seed)
        legacy_s, legacy = _time(lambda c=routed: transpile(c), repeats)
        batched_s, batched = _time(
            lambda c=routed: transpile_batched(c), repeats)
        rows.append({
            "workload": workload,
            "topology": topology_name,
            "width": circuit.num_qubits,
            "routed_gates": routed.size,
            "swaps": swaps,
            "basis_gates": batched.size,
            "sequence_identical": legacy.gates == batched.gates,
            "legacy_s": round(legacy_s, 4),
            "batched_s": round(batched_s, 4),
            "speedup": round(legacy_s / batched_s, 2),
        })
    return rows


def _sabre_comparison(repeats: int) -> List[Dict[str, object]]:
    """Reference vs vectorized SABRE on routing-heavy instances."""
    rows = []
    for workload, topology_name, seed in SABRE_CASES:
        circuit = get_workload(workload)
        topology = get_topology(topology_name)
        subset = sample_connected_subset(topology, circuit.num_qubits, seed)
        mapping = initial_placement(circuit, topology, subset)
        topology.hop_distance_matrix()  # warm the shared cache
        ref_s, ref = _time(
            lambda: route_sabre_reference(circuit, topology, dict(mapping)),
            repeats)
        vec_s, vec = _time(
            lambda: route_sabre(circuit, topology, dict(mapping)), repeats)
        rows.append({
            "workload": workload,
            "topology": topology_name,
            "swaps": vec[2],
            "swaps_identical": ref[2] == vec[2],
            "sequence_identical": ref[0].gates == vec[0].gates,
            "mapping_identical": ref[1] == vec[1],
            "reference_s": round(ref_s, 4),
            "vectorized_s": round(vec_s, 4),
            "speedup": round(ref_s / vec_s, 2),
        })
    return rows


def _shard_merge_identity() -> Dict[str, object]:
    """Gate: merging a 2-shard run equals the single-process run."""
    if FULL:
        topology = "condor-sm-433"
        workloads = ("ghz-433", "hhqaoa-433", "bv-256", "qaoa-216")
        num_mappings = 2
    else:
        topology = "grid-25"
        workloads = ("bv-9", "ghz-9", "qaoa-9", "clifford-9-d4-s1")
        num_mappings = 4
    strategies = ("qplacer",)
    start = time.perf_counter()
    suite = build_suite(topology, strategies=strategies)
    single = fidelity_experiment(suite, benchmarks=workloads,
                                 num_mappings=num_mappings)
    single_s = time.perf_counter() - start
    start = time.perf_counter()
    merged = sharded_fidelity_experiment(
        topology, workloads=workloads, shard_count=2,
        num_mappings=num_mappings, strategies=strategies,
        runner=ParallelRunner(max_workers=1))
    sharded_s = time.perf_counter() - start
    return {
        "topology": topology,
        "workloads": list(workloads),
        "num_mappings": num_mappings,
        "min_width": min(get_workload(w).num_qubits for w in workloads),
        "merge_identical": merged == single,
        "order_identical": list(merged) == list(single),
        "single_process_s": round(single_s, 2),
        "sharded_s": round(sharded_s, 2),
        "fidelity": {name: {s: float(v) for s, v in row.items()}
                     for name, row in merged.items()},
    }


def test_perf_transpile(results_dir):
    repeats = 3 if FULL else 2
    report: Dict[str, object] = {
        "bench": "perf_transpile",
        "mode": "full" if FULL else "smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "min_transpile_speedup": MIN_TRANSPILE_SPEEDUP,
        "paper8": _paper8_identity(repeats),
        "wide_transpile": _wide_transpile(repeats),
        "sabre": _sabre_comparison(repeats),
        "shard_merge": _shard_merge_identity(),
    }

    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_transpile", text)
    (results_dir / "perf_transpile.json").write_text(text + "\n")

    # -- gates ----------------------------------------------------------
    for name, row in report["paper8"].items():
        assert row["counts_identical"] and row["depth_identical"], \
            f"{name}: batched transpiler diverged from legacy counts/depth"
        assert row["sequence_identical"], \
            f"{name}: batched transpiler changed the gate sequence"
    for row in report["wide_transpile"]:
        assert row["sequence_identical"], \
            f"{row['workload']}: batched transpiler diverged on routed circuit"
        if row["width"] >= 100:
            assert row["speedup"] >= MIN_TRANSPILE_SPEEDUP, \
                (f"{row['workload']} ({row['width']}q): transpile speedup "
                 f"{row['speedup']}x < {MIN_TRANSPILE_SPEEDUP}x")
    for row in report["sabre"]:
        assert row["swaps_identical"] and row["sequence_identical"] \
            and row["mapping_identical"], \
            f"{row['workload']}: vectorized SABRE diverged from reference"
    shard = report["shard_merge"]
    assert shard["merge_identical"] and shard["order_identical"], \
        "sharded fidelity merge is not bit-identical to the single run"
    if FULL:
        assert shard["min_width"] >= 100, \
            "full-mode shard gate must cover a >=100-qubit suite"

"""Performance trajectory: legalization and end-to-end placement timing.

Unlike the figure benches, this harness records *speed*, not paper
numbers.  It times

* legalization on ``grid-25`` — vectorized (:mod:`repro.core.legalizer`)
  against the preserved seed implementation
  (:mod:`repro.core.legalizer_reference`), same problem, same global
  placement;
* end-to-end suite builds per topology;
* :func:`repro.analysis.run_full_evaluation` at default settings, with
  the recorded seed-commit wall time as the fixed reference point of the
  trajectory;

and emits machine-readable JSON to ``benchmarks/results/
perf_placement.json`` so every PR can compare against its predecessors.

``REPRO_BENCH_FULL=1`` runs the full protocol (all six topologies and
the complete ``run_full_evaluation``); the default smoke mode keeps CI
fast while still asserting the legalization speedup.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, Tuple

import numpy as np

from repro.analysis import run_full_evaluation
from repro.analysis.experiments import build_suite
from repro.core import legalizer, legalizer_reference
from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.preprocess import build_problem
from repro.devices.netlist import build_netlist
from repro.devices.topology import get_topology

from conftest import BENCH_TOPOLOGIES, FULL, emit

#: Wall time of ``run_full_evaluation()`` at the seed commit (49477db),
#: measured on the machine that started the perf trajectory.  This is
#: the fixed baseline the tentpole speedup is reported against; future
#: PRs compare primarily against their predecessor's JSON.
SEED_FULL_EVALUATION_S = 26.65

#: Required speedups (ISSUE 1 acceptance criteria).
MIN_LEGALIZE_SPEEDUP = 3.0
MIN_FULL_EVAL_SPEEDUP = 2.0


def _time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _legalization_comparison(topology_name: str,
                             repeats: int) -> Dict[str, float]:
    """Reference vs vectorized legalization on one prepared problem."""
    config = PlacerConfig()
    problem = build_problem(build_netlist(get_topology(topology_name)), config)
    global_positions = GlobalPlacer(problem, config).run().positions

    ref_s, (ref_pos, _) = _time(
        lambda: legalizer_reference.legalize(problem, global_positions,
                                             config), repeats)
    vec_s, (vec_pos, _) = _time(
        lambda: legalizer.legalize(problem, global_positions, config),
        repeats)
    return {
        "reference_s": round(ref_s, 4),
        "vectorized_s": round(vec_s, 4),
        "speedup": round(ref_s / vec_s, 2),
        "positions_identical": bool(np.array_equal(ref_pos, vec_pos)),
        "num_instances": problem.num_instances,
    }


def test_perf_placement(results_dir):
    repeats = 3 if FULL else 2
    report: Dict[str, object] = {
        "bench": "perf_placement",
        "mode": "full" if FULL else "smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
    }

    # -- legalization micro-benchmark (grid-25 is the pinned target) -----
    legalize_report = {"grid-25": _legalization_comparison("grid-25", repeats)}
    if FULL:
        for name in ("falcon-27", "eagle-127"):
            legalize_report[name] = _legalization_comparison(name, 1)
    report["legalization"] = legalize_report

    # -- end-to-end suite builds ----------------------------------------
    suites = {}
    for name in (BENCH_TOPOLOGIES if FULL else ("grid-25",)):
        seconds, _ = _time(lambda n=name: build_suite(n), 1)
        suites[name] = round(seconds, 3)
    report["suite_build_s"] = suites

    # -- end-to-end evaluation ------------------------------------------
    if FULL:
        eval_s, _ = _time(lambda: run_full_evaluation(), 1)
        report["full_evaluation"] = {
            "seconds": round(eval_s, 2),
            "seed_reference_s": SEED_FULL_EVALUATION_S,
            "speedup_vs_seed": round(SEED_FULL_EVALUATION_S / eval_s, 2),
        }
    else:
        eval_s, _ = _time(
            lambda: run_full_evaluation(topology_names=("grid-25",),
                                        num_mappings=6), 1)
        report["full_evaluation"] = {
            "seconds": round(eval_s, 2),
            "note": "smoke mode: grid-25 only, 6 mappings; "
                    "set REPRO_BENCH_FULL=1 for the paper-scale run",
        }

    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_placement", text)
    (results_dir / "perf_placement.json").write_text(text + "\n")

    grid = legalize_report["grid-25"]
    assert grid["positions_identical"], \
        "vectorized legalizer diverged from the reference"
    assert grid["speedup"] >= MIN_LEGALIZE_SPEEDUP, \
        f"legalization speedup {grid['speedup']}x < {MIN_LEGALIZE_SPEEDUP}x"
    if FULL:
        full = report["full_evaluation"]
        assert full["speedup_vs_seed"] >= MIN_FULL_EVAL_SPEEDUP, \
            (f"full-evaluation speedup {full['speedup_vs_seed']}x "
             f"< {MIN_FULL_EVAL_SPEEDUP}x")

"""Fig. 1 — system infidelity versus required layout area.

Regenerates the motivating scatter: Human designs achieve low infidelity
at a large area, Classic placers small area at high infidelity, and
Qplacer sits at the Pareto knee (low infidelity *and* compact area).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_TOPOLOGIES, NUM_MAPPINGS, emit, get_suite
from repro.analysis import pareto_points, pareto_table


def test_fig01_pareto(benchmark, results_dir) -> None:
    def run():
        points = []
        for name in BENCH_TOPOLOGIES:
            points.extend(pareto_points(get_suite(name),
                                        num_mappings=min(NUM_MAPPINGS, 10)))
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "fig01_pareto", pareto_table(points))

    by_strategy = {}
    for p in points:
        by_strategy.setdefault(p.strategy, []).append(p)

    mean_area = {s: np.mean([p.amer_mm2 for p in ps])
                 for s, ps in by_strategy.items()}
    mean_infid = {s: np.mean([p.infidelity for p in ps])
                  for s, ps in by_strategy.items()}

    # The Fig. 1 geometry: Qplacer is much smaller than Human at similar
    # infidelity, and much lower infidelity than Classic at similar area.
    assert mean_area["qplacer"] < 0.8 * mean_area["human"]
    assert mean_infid["qplacer"] < mean_infid["classic"]
    assert mean_infid["qplacer"] < 1.25 * mean_infid["human"] + 0.05

"""Fig. 15 — substrate utilisation and Ph for lb in {0.2, 0.3, 0.4} mm.

Regenerates the segment-size ablation: smaller blocks pack slightly
differently but multiply the instance count; the paper selects
lb = 0.3 mm as the best utilisation/hotspot/runtime balance.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_TOPOLOGIES, FULL, emit
from repro.analysis import segment_sweep, sweep_table

#: The sweep re-places every topology 3x; keep the default set small.
SWEEP_TOPOLOGIES = BENCH_TOPOLOGIES if FULL else ("grid-25", "falcon-27")


def test_fig15_segment_sweep(benchmark, results_dir) -> None:
    def run():
        rows = []
        for name in SWEEP_TOPOLOGIES:
            rows.extend(segment_sweep(name))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "fig15_segment_sweep", sweep_table(rows))

    by_lb = {}
    for r in rows:
        by_lb.setdefault(r.segment_size_mm, []).append(r)

    # Instance counts scale as 1/lb^2 (paper: 2.1x and 3.5x vs lb=0.3).
    cells = {lb: np.mean([r.num_cells for r in group])
             for lb, group in by_lb.items()}
    assert cells[0.2] > 1.6 * cells[0.3] > 1.3 * cells[0.4]

    # Runtime grows with the instance count (Table II trend).
    rt = {lb: np.mean([r.runtime_s for r in group])
          for lb, group in by_lb.items()}
    assert rt[0.2] > rt[0.4]

    # Utilisation stays in a tight band across lb (paper: 0.63-0.84).
    utils = [r.utilization for r in rows]
    assert max(utils) - min(utils) < 0.35

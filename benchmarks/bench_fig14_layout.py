"""Fig. 14 — Falcon layout prototype generation and export.

Regenerates the paper's end-to-end artefact: the optimised Falcon layout
(panel b) and its GDS export (panel c), checking the TM110 substrate
constraint and resonator integration on the way.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro import QPlacer, build_netlist, get_topology
from repro.analysis import format_table, resonator_integrity
from repro.crosstalk import hotspot_report
from repro.io import layout_to_gds_bytes, layout_to_svg, parse_gds_records
from repro.physics import tm110_frequency_ghz


def test_fig14_falcon_layout(benchmark, results_dir) -> None:
    netlist = build_netlist(get_topology("falcon-27"))

    result = benchmark.pedantic(
        lambda: QPlacer().place(netlist), rounds=1, iterations=1)
    layout = result.layout

    report = hotspot_report(layout)
    mer = layout.enclosing_rect()
    tm110 = tm110_frequency_ghz(mer.w, mer.h)
    fmax = netlist.max_component_frequency_ghz()
    integrity = resonator_integrity(layout)

    svg = layout_to_svg(layout)
    gds = layout_to_gds_bytes(layout)
    records = parse_gds_records(gds)

    rows = [
        ["cells", result.num_cells],
        ["iterations", result.iterations],
        ["runtime (s)", f"{result.runtime_s:.1f}"],
        ["substrate (mm)", f"{mer.w:.1f} x {mer.h:.1f}"],
        ["Amer (mm^2)", f"{layout.amer():.1f}"],
        ["TM110 (GHz)", f"{tm110:.2f} (max component {fmax:.2f})"],
        ["Ph (%)", f"{report.ph_percent:.3f}"],
        ["resonator integrity", f"{100 * integrity:.0f}%"],
        ["SVG bytes", len(svg)],
        ["GDS bytes / records", f"{len(gds)} / {len(records)}"],
    ]
    emit(results_dir, "fig14_layout",
         format_table(["quantity", "value"], rows,
                      title="Fig.14 — Falcon layout prototype"))

    assert report.num_hotspots == 0
    assert integrity == 1.0
    assert svg.startswith("<svg")
    # GDS stream: HEADER first, ENDLIB last, one BOUNDARY per instance.
    assert records[0] == 0x0002 and records[-1] == 0x0400
    assert records.count(0x0800) == result.num_cells

"""Fig. 11 — program fidelity per benchmark, topology, and placer.

Regenerates the paper's headline comparison: Qplacer consistently
outperforms the Classic baseline, with the gap widening on larger chips
and deeper benchmarks (paper: 36.7x average improvement, many Classic
entries below the 1e-4 floor).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_CIRCUITS, BENCH_TOPOLOGIES, NUM_MAPPINGS, emit, get_suite
from repro.analysis import FIDELITY_FLOOR, fidelity_experiment, fidelity_table


@pytest.mark.parametrize("topology_name", BENCH_TOPOLOGIES)
def test_fig11_fidelity(topology_name, benchmark, results_dir) -> None:
    suite = get_suite(topology_name)

    table = benchmark.pedantic(
        fidelity_experiment,
        args=(suite,),
        kwargs={"benchmarks": BENCH_CIRCUITS, "num_mappings": NUM_MAPPINGS},
        rounds=1, iterations=1,
    )
    emit(results_dir, f"fig11_fidelity_{topology_name}",
         fidelity_table(table, topology_name))

    q = [row["qplacer"] for row in table.values()]
    c = [row["classic"] for row in table.values()]
    # Headline shape: Qplacer beats Classic on average, and never loses
    # by more than noise on any single benchmark.
    assert np.mean(q) > np.mean(c)
    for bench, row in table.items():
        assert row["qplacer"] >= row["classic"] * 0.9, (
            f"{bench}: qplacer {row['qplacer']} vs classic {row['classic']}")
    # Qplacer stays within a whisker of the crosstalk-free Human design.
    h = [row["human"] for row in table.values()]
    assert np.mean(q) >= 0.7 * np.mean(h)

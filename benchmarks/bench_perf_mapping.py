"""Mapping-pipeline throughput trajectory: reference vs array kernels.

PR 4 rebuilt the basic mapping pipeline's hot loops on arrays — the
greedy ``initial_placement`` scan became one vectorized argmin per
logical qubit against the dense hop matrix, the basic router walks a
canonical next-hop table with batched emission, and the ASAP schedule
is computed straight from the transpiled columns.  The seed per-gate
implementations survive in :mod:`repro.circuits.mapping_reference`.
This harness records the trajectory and enforces the contract:

* **placement/router identity**: on the Table I benchmarks the
  vectorized ``initial_placement`` and array ``route`` must reproduce
  the reference mapping, routed gate sequence, final mapping, and swap
  count exactly;
* **>=3x on wide workloads**: ``evaluation_mappings`` (the paper's
  50-subset protocol, basic router) must beat the reference pipeline
  by :data:`MIN_MAPPING_SPEEDUP` on every gated >=32-qubit workload
  (eagle / condor-sm tiers);
* **protocol coverage**: the union of the 50-seed subset batch must
  span the whole chip on a <=50-qubit paper topology (the fixed
  start-node cycling this PR introduced);
* **runner round-trip**: a ``MappingJob`` computed through the
  parallel runner's on-disk cache must replay bit-identically.

Machine-readable JSON goes to ``benchmarks/results/perf_mapping.json``
so every PR can compare against its predecessors.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Tuple

from repro.analysis.runner import MappingJob, ParallelRunner, run_mapping_job
from repro.circuits.batch import transpile_batched
from repro.circuits.library import PAPER_BENCHMARKS, get_benchmark
from repro.circuits.mapping import (MappedCircuit, evaluation_mappings,
                                    initial_placement, route,
                                    sample_connected_subset)
from repro.circuits.mapping_reference import (initial_placement_reference,
                                              route_reference)
from repro.devices.topology import get_topology
from repro.workloads import get_workload

from conftest import FULL, emit

#: Required evaluation_mappings speedup on gated >=32-qubit workloads.
MIN_MAPPING_SPEEDUP = 3.0

#: Speedup cases: (workload, topology, num_mappings, gated).  Gated
#: rows enforce the >=3x floor and are chosen with ~3x headroom above
#: it (measured 8.8-10.8x) so shared-runner timing noise cannot flip
#: CI; the ungated rows record the trajectory on instances that sit
#: near the floor (qaoa-120 ~3.3x) or are tail-dominated by the shared
#: transpile cost (qft-32 ~1.9x, ghz-64 ~3.1x).
SPEEDUP_CASES: Tuple[Tuple[str, str, int, bool], ...] = (
    ("ghz-64", "eagle-127", 3, False),
    ("qft-32", "eagle-127", 2, False),
    ("qaoa-120", "condor-sm-433", 2, False),
    ("ghz-128", "condor-sm-433", 2, True),
    ("bv-256", "condor-sm-433", 1, True),
) + ((("hhqaoa-433", "condor-sm-433", 1, True),) if FULL else ())

#: (benchmark, topology, seeds) instances pinning kernel identity.
IDENTITY_CASES: Tuple[Tuple[str, str], ...] = tuple(
    (bench, topo)
    for topo in (("falcon-27", "eagle-127") if FULL else ("falcon-27",))
    for bench in PAPER_BENCHMARKS)


def _time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _reference_evaluation_mappings(circuit, topology, num_mappings: int,
                                   base_seed: int = 0) -> List[MappedCircuit]:
    """The seed mapping pipeline: per-candidate scan + per-gate walker.

    Subset sampling and the batched basis lowering are shared with the
    vectorized pipeline (neither was a mapping hot loop), so the timed
    difference isolates exactly the placement/router/schedule kernels
    this PR rebuilt.
    """
    out = []
    for k in range(num_mappings):
        subset = sample_connected_subset(topology, circuit.num_qubits,
                                         base_seed + k)
        mapping = initial_placement_reference(circuit, topology, subset)
        routed, final, swaps = route_reference(circuit, topology, mapping)
        physical = transpile_batched(routed, optimization_level=3)
        out.append(MappedCircuit(
            physical_circuit=physical, topology=topology,
            initial_mapping=mapping, final_mapping=final, swap_count=swaps,
            schedule=physical.asap_schedule()))
    return out


def _mapped_equal(a: MappedCircuit, b: MappedCircuit) -> bool:
    """Bit-identity of everything the fidelity model consumes."""
    return (a.physical_circuit.gates == b.physical_circuit.gates
            and a.initial_mapping == b.initial_mapping
            and a.final_mapping == b.final_mapping
            and a.swap_count == b.swap_count
            and a.schedule == b.schedule)


def _kernel_identity(repeats: int) -> List[Dict[str, object]]:
    """Reference vs vectorized placement + router on Table I cases."""
    rows = []
    for bench, topo_name in IDENTITY_CASES:
        circuit = get_benchmark(bench)
        topology = get_topology(topo_name)
        topology.hop_distance_matrix()  # warm the shared caches
        topology.shortest_path_next_hop()
        subset = sample_connected_subset(topology, circuit.num_qubits, 0)
        ref_place_s, ref_mapping = _time(
            lambda: initial_placement_reference(circuit, topology, subset),
            repeats)
        vec_place_s, vec_mapping = _time(
            lambda: initial_placement(circuit, topology, subset), repeats)
        ref_route_s, ref_routed = _time(
            lambda: route_reference(circuit, topology, dict(ref_mapping)),
            repeats)
        vec_route_s, vec_routed = _time(
            lambda: route(circuit, topology, dict(ref_mapping)), repeats)
        rows.append({
            "benchmark": bench,
            "topology": topo_name,
            "mapping_identical": ref_mapping == vec_mapping,
            "sequence_identical": ref_routed[0].gates == vec_routed[0].gates,
            "final_identical": ref_routed[1] == vec_routed[1],
            "swaps_identical": ref_routed[2] == vec_routed[2],
            "swaps": vec_routed[2],
            "reference_place_s": round(ref_place_s, 5),
            "vectorized_place_s": round(vec_place_s, 5),
            "reference_route_s": round(ref_route_s, 5),
            "vectorized_route_s": round(vec_route_s, 5),
        })
    return rows


def _evaluation_speedup(repeats: int) -> List[Dict[str, object]]:
    """Reference vs vectorized evaluation_mappings on wide workloads."""
    rows = []
    repeats = max(repeats, 3)  # the >=3x gate deserves stable timings
    for workload, topo_name, num_mappings, gated in SPEEDUP_CASES:
        circuit = get_workload(workload)
        topology = get_topology(topo_name)
        topology.hop_distance_matrix()  # warm the shared caches
        topology.shortest_path_next_hop()
        ref_s, ref = _time(
            lambda: _reference_evaluation_mappings(circuit, topology,
                                                   num_mappings), repeats)
        vec_s, vec = _time(
            lambda: evaluation_mappings(circuit, topology,
                                        num_mappings=num_mappings), repeats)
        rows.append({
            "workload": workload,
            "topology": topo_name,
            "width": circuit.num_qubits,
            "num_mappings": num_mappings,
            "gated": gated,
            "swaps": sum(m.swap_count for m in vec),
            "identical": all(_mapped_equal(a, b) for a, b in zip(ref, vec)),
            "reference_s": round(ref_s, 4),
            "vectorized_s": round(vec_s, 4),
            "speedup": round(ref_s / vec_s, 2),
        })
    return rows


def _subset_coverage() -> Dict[str, object]:
    """Gate: the 50-seed protocol batch spans the whole chip."""
    out: Dict[str, object] = {}
    for name in ("grid-25", "falcon-27"):
        topology = get_topology(name)
        covered = set()
        for seed in range(50):
            covered.update(sample_connected_subset(topology, 4, seed=seed))
        out[name] = {
            "qubits": topology.num_qubits,
            "covered": len(covered),
            "full_chip": covered == set(range(topology.num_qubits)),
        }
    return out


def _mapping_job_roundtrip(tmp_dir) -> Dict[str, object]:
    """Gate: MappingJob results replay bit-identically from the cache."""
    job = MappingJob(benchmark="bv-16", topology="falcon-27",
                     num_mappings=4, base_seed=0)
    runner = ParallelRunner(max_workers=1, cache_dir=tmp_dir)
    first = runner.map(run_mapping_job, [job], namespace="mappings")[0]
    replay = runner.map(run_mapping_job, [job], namespace="mappings")[0]
    direct = evaluation_mappings(get_benchmark("bv-16"),
                                 get_topology("falcon-27"), num_mappings=4)
    return {
        "cache_hits": runner.cache_hits,
        "replay_identical": all(_mapped_equal(a, b)
                                for a, b in zip(first, replay)),
        "direct_identical": all(_mapped_equal(a, b)
                                for a, b in zip(first, direct)),
    }


def test_perf_mapping(results_dir, tmp_path):
    repeats = 3 if FULL else 2
    report: Dict[str, object] = {
        "bench": "perf_mapping",
        "mode": "full" if FULL else "smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "min_mapping_speedup": MIN_MAPPING_SPEEDUP,
        "kernel_identity": _kernel_identity(repeats),
        "evaluation_speedup": _evaluation_speedup(repeats),
        "subset_coverage": _subset_coverage(),
        "mapping_job": _mapping_job_roundtrip(tmp_path),
    }

    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_mapping", text)
    (results_dir / "perf_mapping.json").write_text(text + "\n")

    # -- gates ----------------------------------------------------------
    for row in report["kernel_identity"]:
        assert row["mapping_identical"], \
            f"{row['benchmark']}@{row['topology']}: placement diverged"
        assert row["sequence_identical"] and row["final_identical"] \
            and row["swaps_identical"], \
            f"{row['benchmark']}@{row['topology']}: router diverged"
    for row in report["evaluation_speedup"]:
        assert row["identical"], \
            f"{row['workload']}: vectorized pipeline diverged from reference"
        if row["gated"]:
            assert row["width"] >= 32
            assert row["speedup"] >= MIN_MAPPING_SPEEDUP, \
                (f"{row['workload']} ({row['width']}q): mapping speedup "
                 f"{row['speedup']}x < {MIN_MAPPING_SPEEDUP}x")
    for name, row in report["subset_coverage"].items():
        assert row["full_chip"], \
            f"{name}: 50-seed subset batch left chip qubits uncovered"
    job = report["mapping_job"]
    assert job["cache_hits"] == 1 and job["replay_identical"] \
        and job["direct_identical"], \
        "MappingJob cache replay is not bit-identical"

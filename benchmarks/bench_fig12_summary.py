"""Fig. 12 — average fidelity, impacted qubits, and hotspot proportion.

Regenerates the three-panel summary: Qplacer reduces the frequency
hotspot proportion by an order of magnitude versus Classic (paper:
0.46% vs 5.87%, a 12.76x reduction) and with it the number of impacted
qubits, which tracks fidelity inversely.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_CIRCUITS, BENCH_TOPOLOGIES, NUM_MAPPINGS, emit, get_suite
from repro.analysis import summary_experiment, summary_table


def test_fig12_summary(benchmark, results_dir) -> None:
    def run():
        rows = []
        for name in BENCH_TOPOLOGIES:
            rows.extend(summary_experiment(
                get_suite(name), benchmarks=BENCH_CIRCUITS,
                num_mappings=NUM_MAPPINGS))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "fig12_summary", summary_table(rows))

    by_strategy = {}
    for r in rows:
        by_strategy.setdefault(r.strategy, []).append(r)

    ph_qplacer = np.mean([r.ph_percent for r in by_strategy["qplacer"]])
    ph_classic = np.mean([r.ph_percent for r in by_strategy["classic"]])
    # Paper: 12.76x average reduction in hotspot proportion.
    assert ph_qplacer < ph_classic / 5.0, (ph_qplacer, ph_classic)

    impacted_q = np.mean([r.impacted_qubits for r in by_strategy["qplacer"]])
    impacted_c = np.mean([r.impacted_qubits for r in by_strategy["classic"]])
    assert impacted_q < impacted_c

    fid_q = np.mean([r.avg_fidelity for r in by_strategy["qplacer"]])
    fid_c = np.mean([r.avg_fidelity for r in by_strategy["classic"]])
    assert fid_q > fid_c
    # Human is crosstalk-free by construction: Ph == 0.
    assert all(r.ph_percent == 0.0 for r in by_strategy["human"])

"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper figure — these quantify how much each Qplacer mechanism
(frequency force, resonant-aware legalization, integration repair,
chain-aware Tetris) contributes to the headline metrics, plus the two
reproduction extensions (SABRE router, detailed placement) and the
fabrication-disorder robustness study.
"""

from __future__ import annotations

import pytest

from conftest import FULL, emit
from repro.analysis import format_table
from repro.analysis.ablation import (
    ablation_experiment,
    detailed_placement_gain,
    disorder_robustness,
    router_comparison,
)
from repro.core import PlacerConfig

ABLATION_TOPOLOGY = "falcon-27" if not FULL else "eagle-127"


def test_mechanism_ablation(benchmark, results_dir) -> None:
    rows = benchmark.pedantic(
        lambda: ablation_experiment(ABLATION_TOPOLOGY),
        rounds=1, iterations=1)
    body = [[r.variant, f"{r.ph_percent:.3f}", r.impacted_qubits,
             f"{r.amer_mm2:.1f}", f"{r.integrity:.2f}", f"{r.runtime_s:.1f}"]
            for r in rows]
    emit(results_dir, "ablation_mechanisms",
         format_table(["variant", "Ph (%)", "impacted", "Amer", "integrity",
                       "RT (s)"],
                      body, title=f"Mechanism ablation — {ABLATION_TOPOLOGY}"))
    by_variant = {r.variant: r for r in rows}
    assert by_variant["full"].ph_percent <= \
        by_variant["no-freq-legalizer"].ph_percent
    assert by_variant["full"].integrity == 1.0


def test_disorder_robustness(benchmark, results_dir) -> None:
    rows = benchmark.pedantic(
        lambda: disorder_robustness(ABLATION_TOPOLOGY,
                                    sigmas_ghz=(0.0, 0.01, 0.02, 0.04),
                                    trials=5),
        rounds=1, iterations=1)
    body = [[r.strategy, f"{r.sigma_ghz * 1e3:.0f}",
             f"{r.mean_ph_percent:.2f}", f"{r.worst_ph_percent:.2f}",
             f"{r.mean_impacted:.1f}"]
            for r in rows]
    emit(results_dir, "ablation_disorder",
         format_table(["strategy", "sigma (MHz)", "mean Ph (%)",
                       "worst Ph (%)", "impacted"],
                      body,
                      title=f"Fabrication-disorder robustness — "
                            f"{ABLATION_TOPOLOGY}"))
    # Designed (sigma = 0) Qplacer layouts are hotspot-free.
    clean = [r for r in rows if r.strategy == "qplacer" and r.sigma_ghz == 0]
    assert clean[0].mean_ph_percent == pytest.approx(0.0, abs=0.3)


def test_router_ablation(benchmark, results_dir) -> None:
    rows = benchmark.pedantic(
        lambda: router_comparison(ABLATION_TOPOLOGY,
                                  benchmarks=("bv-16", "qaoa-9"),
                                  num_mappings=8),
        rounds=1, iterations=1)
    body = [[r.benchmark, r.router, r.total_swaps,
             f"{r.mean_duration_ns:.0f}"]
            for r in rows]
    emit(results_dir, "ablation_router",
         format_table(["benchmark", "router", "total swaps",
                       "mean duration (ns)"],
                      body, title=f"Router ablation — {ABLATION_TOPOLOGY}"))
    by_key = {(r.benchmark, r.router): r for r in rows}
    for bench in ("bv-16", "qaoa-9"):
        assert by_key[(bench, "sabre")].total_swaps <= \
            by_key[(bench, "basic")].total_swaps


def test_detailed_placement_gain(benchmark, results_dir) -> None:
    before, after, swaps = benchmark.pedantic(
        lambda: detailed_placement_gain(ABLATION_TOPOLOGY, max_passes=3),
        rounds=1, iterations=1)
    gain = 100.0 * (1.0 - after / before)
    emit(results_dir, "ablation_detailed",
         format_table(["quantity", "value"],
                      [["HPWL before (mm)", f"{before:.1f}"],
                       ["HPWL after (mm)", f"{after:.1f}"],
                       ["gain (%)", f"{gain:.1f}"],
                       ["swaps applied", swaps]],
                      title=f"Detailed placement — {ABLATION_TOPOLOGY}"))
    assert after <= before + 1e-9

"""Fully-columnar circuit gates: suite compile, zero decode, digest cache.

ISSUE 9's acceptance harness.  The circuit representation became
columnar end to end — ``map_circuit`` materialises no ``Gate`` objects,
``evaluation_mappings`` routes and transpiles all seeds in one stacked
column pass (``map_suite_arrays``), and compile results are
content-addressed by circuit digest.  Three gates:

* **suite bit-identity + >=2x** — the suite-batched
  ``evaluation_mappings`` must reproduce the per-seed ``map_circuit``
  loop (with its pre-PR forced decode) gate for gate, mapping for
  mapping, and beat it by :data:`MIN_SUITE_SPEEDUP` on every gated
  >=100-qubit (eagle-tier) suite;
* **zero eager decode** — compiling a suite under a ``to_circuit``
  tripwire must never decode; explicit ``physical_circuit`` access
  decodes once and memoizes;
* **circuit-digest cache, live** — two differently-named submissions
  of the same workload content to a real HTTP
  :class:`~repro.service.api.PlacementService` must compile once: the
  second request's ``MappingJob`` keys on the shared content digest
  and replays from the runner cache (``circuit_cache_hits`` in
  ``/metrics``).

Machine-readable JSON goes to ``benchmarks/results/perf_columnar.json``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.circuits.batch import ArrayCircuit
from repro.circuits.library import get_benchmark
from repro.circuits.mapping import (MappedCircuit, evaluation_mappings,
                                    map_circuit)
from repro.devices.topology import get_topology
from repro.io.serialization import circuit_content_digest
from repro.service import PlacementService, ServiceClient
from repro.workloads import get_workload

from conftest import FULL, emit

#: Required suite-batched speedup on gated >=100-qubit suites.
MIN_SUITE_SPEEDUP = 2.0

#: Suite cases: (workload, topology, num_mappings, gated).  Gated rows
#: enforce the >=2x floor on eagle-tier (>=100q) devices and are chosen
#: with ~30-50% headroom (measured 2.6-3.1x); ungated rows record the
#: trajectory where routing (per-seed in both paths) dominates.
SUITE_CASES: Tuple[Tuple[str, str, int, bool], ...] = (
    ("bv-16", "eagle-127", 50, True),
    ("qgan-16", "eagle-127", 50, True),
    ("ghz-64", "eagle-127", 25, False),
    ("qaoa-120", "eagle-127", 8, False),
) + ((("bv-256", "condor-sm-433", 8, False),) if FULL else ())

#: The live-service digest-cache pair: two names, one circuit content
#: (``qaoa-9`` is the registry's spelling of ``qaoa-9-d1-s0``).
ALIAS_BENCHMARKS = ("qaoa-9", "qaoa-9-d1-s0")
ALIAS_TOPOLOGY = "grid-25"
ALIAS_MAPPINGS = 6


def _time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall time and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _per_seed_reference(circuit, topology,
                        num_mappings: int) -> List[MappedCircuit]:
    """The pre-PR evaluation loop: one ``map_circuit`` per seed plus the
    eager decode the old pipeline performed on every mapping."""
    out = []
    for k in range(num_mappings):
        mapped = map_circuit(circuit, topology, seed=k)
        mapped.physical_circuit  # the old eager Gate materialisation
        out.append(mapped)
    return out


def _mapped_identical(a: MappedCircuit, b: MappedCircuit) -> bool:
    """Bit-identity over everything downstream consumers read."""
    pa, pb = a.physical_arrays, b.physical_arrays
    return (np.array_equal(pa.codes, pb.codes)
            and np.array_equal(pa.q0, pb.q0)
            and np.array_equal(pa.q1, pb.q1)
            and pa.params.tobytes() == pb.params.tobytes()
            and a.initial_mapping == b.initial_mapping
            and a.final_mapping == b.final_mapping
            and a.swap_count == b.swap_count
            and a.schedule == b.schedule)


def _suite_gate(repeats: int) -> List[Dict[str, object]]:
    """Suite-batched vs per-seed loop: identity + speedup rows."""
    rows = []
    for workload, topo_name, num_mappings, gated in SUITE_CASES:
        circuit = get_workload(workload)
        topology = get_topology(topo_name)
        topology.hop_distance_matrix()  # warm the shared caches
        topology.shortest_path_next_hop()
        ref_s, ref = _time(
            lambda: _per_seed_reference(circuit, topology, num_mappings),
            repeats)
        vec_s, vec = _time(
            lambda: evaluation_mappings(circuit, topology,
                                        num_mappings=num_mappings), repeats)
        rows.append({
            "workload": workload,
            "topology": topo_name,
            "device_qubits": topology.num_qubits,
            "num_mappings": num_mappings,
            "gated": gated,
            "swaps": sum(m.swap_count for m in vec),
            "identical": all(_mapped_identical(a, b)
                             for a, b in zip(ref, vec)),
            "per_seed_s": round(ref_s, 4),
            "suite_batched_s": round(vec_s, 4),
            "speedup": round(ref_s / vec_s, 2),
        })
    return rows


def _zero_decode_gate() -> Dict[str, object]:
    """Compile under a to_circuit tripwire; decode only on access."""
    circuit = get_benchmark("bv-16")
    topology = get_topology("eagle-127")
    original = ArrayCircuit.to_circuit
    decodes = {"count": 0}

    def counting(self):
        decodes["count"] += 1
        return original(self)

    ArrayCircuit.to_circuit = counting
    try:
        suite = evaluation_mappings(circuit, topology, num_mappings=10)
        compile_decodes = decodes["count"]
        first = suite[0].physical_circuit
        memoized = suite[0].physical_circuit is first
        access_decodes = decodes["count"] - compile_decodes
    finally:
        ArrayCircuit.to_circuit = original
    return {
        "mappings_compiled": len(suite),
        "decodes_during_compile": compile_decodes,
        "decodes_on_first_access": access_decodes,
        "memoized": memoized,
    }


def _digest_cache_gate(tmp_path) -> Dict[str, object]:
    """Live service round trip: aliased submissions compile once."""
    digests = [circuit_content_digest(get_workload(name))
               for name in ALIAS_BENCHMARKS]
    with PlacementService(store_dir=tmp_path / "store", port=0, workers=2,
                          runner_workers=1,
                          cache_dir=tmp_path / "cache") as service:
        client = ServiceClient(service.base_url, timeout=60.0)
        payloads = []
        for name in ALIAS_BENCHMARKS:
            payloads.append(client.run("map", {
                "benchmark": name, "topology": ALIAS_TOPOLOGY,
                "num_mappings": ALIAS_MAPPINGS}, timeout=600))
        metrics = client.metrics()
    return {
        "benchmarks": list(ALIAS_BENCHMARKS),
        "digests_match": len(set(digests)) == 1,
        "payload_digests": [p["circuit_digest"] for p in payloads],
        "identical_mappings": payloads[0]["mappings"] == payloads[1]["mappings"],
        "circuit_cache_hits": metrics["circuit_cache_hits"],
        "circuit_cache_misses": metrics["circuit_cache_misses"],
        "computations": metrics["computations"],
    }


def test_perf_columnar(results_dir, tmp_path):
    repeats = 4 if FULL else 3
    report: Dict[str, object] = {
        "bench": "perf_columnar",
        "mode": "full" if FULL else "smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "min_suite_speedup": MIN_SUITE_SPEEDUP,
        "suite": _suite_gate(repeats),
        "zero_decode": _zero_decode_gate(),
        "digest_cache": _digest_cache_gate(tmp_path),
    }

    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_columnar", text)
    (results_dir / "perf_columnar.json").write_text(text + "\n")

    # -- gates ----------------------------------------------------------
    for row in report["suite"]:
        assert row["identical"], \
            f"{row['workload']}: suite-batched compile diverged from per-seed"
        if row["gated"]:
            assert row["device_qubits"] >= 100
            assert row["speedup"] >= MIN_SUITE_SPEEDUP, \
                (f"{row['workload']}@{row['topology']}: suite speedup "
                 f"{row['speedup']}x < {MIN_SUITE_SPEEDUP}x")

    decode = report["zero_decode"]
    assert decode["decodes_during_compile"] == 0, \
        (f"suite compile decoded {decode['decodes_during_compile']} "
         f"circuits (want 0)")
    assert decode["decodes_on_first_access"] == 1
    assert decode["memoized"]

    cache = report["digest_cache"]
    assert cache["digests_match"], \
        "alias benchmarks no longer share a content digest"
    assert cache["identical_mappings"], \
        "aliased submissions produced different mapping summaries"
    assert cache["circuit_cache_hits"] >= 1, \
        (f"second aliased submission missed the circuit-digest cache "
         f"(hits={cache['circuit_cache_hits']})")
    assert cache["computations"] == 2, \
        "aliased requests should be distinct service jobs (2 computations)"

"""Fig. 13 — minimum-enclosing-rectangle area ratios versus Qplacer.

Regenerates the area comparison: Classic layouts land within ~±20% of
Qplacer (same engine, same hyper-parameters), while Human layouts pay a
large premium (paper: 2.14x on average) that grows with topology
sparsity (heavy-hex worst).
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import BENCH_TOPOLOGIES, emit, get_suite
from repro.analysis import area_experiment, area_table


def test_fig13_area(benchmark, results_dir) -> None:
    def run():
        return {name: area_experiment(get_suite(name))
                for name in BENCH_TOPOLOGIES}

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "fig13_area", area_table(ratios))

    classic = [row["classic"] for row in ratios.values()]
    human = [row["human"] for row in ratios.values()]
    # Classic tracks Qplacer (paper: 0.83-1.01x).
    assert all(0.6 <= r <= 1.4 for r in classic), classic
    # Human pays a clear premium on average (paper mean: 2.14x) and on
    # every sparse (non-grid) topology individually.
    assert np.mean(human) > 1.2, human
    for name, row in ratios.items():
        if name != "grid-25":
            assert row["human"] > 1.0, (name, row)

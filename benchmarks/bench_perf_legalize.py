"""Performance trajectory: condor-scale legalization + detailed placement.

Gates the PR-7 tentpole — the batched spatial-hash feasibility engine
and the vectorized detailed placer — against the in-tree references:

* **bit identity** on the paper tiers: the hash-screened legalizer must
  reproduce the preserved seed legalizer
  (:mod:`repro.core.legalizer_reference`) *and* the full-array scan
  screening mode exactly;
* **bit identity** at condor scale between the ``"hash"`` and ``"scan"``
  screening modes (same sites, different neighbor search);
* **combined speedup**: hash-screened legalize + batched detailed
  placement must beat scan-screened legalize + the scalar reference
  detailed placer (:mod:`repro.core.detailed_reference`) by at least
  :data:`MIN_COMBINED_SPEEDUP` on the condor tier;
* **quality parity**: the batched detailed placer's final wirelength
  must stay within :data:`MAX_HPWL_RATIO` of the scalar reference's;
* **profiler coverage**: the :mod:`repro.profiling` top-level phase sum
  must account for the measured wall-clock of the profiled section.

Emits ``benchmarks/results/perf_legalize.json`` (the CI artifact) with
the timings and the per-phase breakdown.  ``REPRO_BENCH_FULL=1`` runs
the 1121-qubit condor tier; smoke mode uses ``condor-sm-433``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict

import numpy as np

from repro import profiling
from repro.core import detailed, detailed_reference, legalizer
from repro.core import legalizer_reference
from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.preprocess import build_problem
from repro.devices.netlist import build_netlist
from repro.devices.topology import get_topology

from conftest import FULL, emit

#: Condor tier under test (full mode runs the 1121-qubit chip).
CONDOR_TOPOLOGY = "condor-1121" if FULL else "condor-sm-433"

#: Paper tiers pinned to bit-identity against the seed legalizer.
IDENTITY_TOPOLOGIES = ("grid-25", "eagle-127")

#: Required combined legalize+detailed speedup on the condor tier
#: (ISSUE 7 acceptance criterion; measured ~7x on condor-sm-433).
MIN_COMBINED_SPEEDUP = 3.0

#: Batched detailed placement may trail the scalar reference's final
#: wirelength by at most this factor (different visit order, same moves).
MAX_HPWL_RATIO = 1.02

#: Top-level phase seconds must cover at least this share of the
#: profiled section's wall clock (the rest is glue between phases).
MIN_PHASE_COVERAGE = 0.75


def _prepare(topology_name: str):
    """Problem + converged global positions for one topology."""
    config = PlacerConfig()
    problem = build_problem(build_netlist(get_topology(topology_name)),
                            config)
    positions = GlobalPlacer(problem, config).run().positions
    return config, problem, positions


def _identity_report(topology_name: str) -> Dict[str, object]:
    """Seed-reference vs scan vs hash legalization on one paper tier."""
    config, problem, gp = _prepare(topology_name)
    ref_pos, _ = legalizer_reference.legalize(problem, gp, config)
    scan_pos, _ = legalizer.legalize(
        problem, gp, PlacerConfig(legalizer_screening="scan"))
    hash_pos, _ = legalizer.legalize(problem, gp, config)
    return {
        "num_instances": problem.num_instances,
        "hash_matches_reference": bool(np.array_equal(hash_pos, ref_pos)),
        "scan_matches_reference": bool(np.array_equal(scan_pos, ref_pos)),
    }


def test_perf_legalize(results_dir):
    report: Dict[str, object] = {
        "bench": "perf_legalize",
        "mode": "full" if FULL else "smoke",
        "condor_topology": CONDOR_TOPOLOGY,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }

    # -- paper-tier bit identity against the seed legalizer --------------
    identity = {name: _identity_report(name)
                for name in IDENTITY_TOPOLOGIES}
    report["identity"] = identity

    # -- condor tier: screening identity + combined speedup --------------
    config, problem, gp = _prepare(CONDOR_TOPOLOGY)
    scan_cfg = PlacerConfig(legalizer_screening="scan")

    t0 = time.perf_counter()
    scan_pos, _ = legalizer.legalize(problem, gp, scan_cfg)
    scan_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    ref_det_pos, ref_det_stats = detailed_reference.refine_placement(
        problem, scan_pos, scan_cfg, max_passes=1)
    ref_detailed_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with profiling.PhaseProfiler() as prof:
        hash_pos, hash_stats = legalizer.legalize(problem, gp, config)
        new_det_pos, new_det_stats = detailed.refine_placement(
            problem, hash_pos, config, max_passes=1)
    new_s = time.perf_counter() - t0
    hash_s = prof.flat_seconds().get("legalize", 0.0)
    new_detailed_s = prof.flat_seconds().get("detailed", 0.0)

    baseline_s = scan_s + ref_detailed_s
    speedup = baseline_s / max(new_s, 1e-9)
    hpwl_ratio = new_det_stats.hpwl_after / ref_det_stats.hpwl_after
    phase_top_sum = prof.top_level_seconds()
    report["condor"] = {
        "num_instances": problem.num_instances,
        "scan_legalize_s": round(scan_s, 4),
        "hash_legalize_s": round(hash_s, 4),
        "reference_detailed_s": round(ref_detailed_s, 4),
        "batched_detailed_s": round(new_detailed_s, 4),
        "baseline_s": round(baseline_s, 4),
        "new_s": round(new_s, 4),
        "combined_speedup": round(speedup, 2),
        "screening_identical": bool(np.array_equal(hash_pos, scan_pos)),
        "hpwl_reference": round(float(ref_det_stats.hpwl_after), 3),
        "hpwl_batched": round(float(new_det_stats.hpwl_after), 3),
        "hpwl_ratio": round(float(hpwl_ratio), 5),
        "reference_swaps": ref_det_stats.swaps_applied,
        "batched_swaps": new_det_stats.swaps_applied,
        "candidates_scored": new_det_stats.candidates_scored,
        "phases": {k: round(v, 4)
                   for k, v in sorted(prof.flat_seconds().items())},
        "phase_top_level_s": round(phase_top_sum, 4),
        "legalize_phase_seconds": {k: round(v, 4) for k, v in
                                   sorted(hash_stats.phase_seconds.items())},
    }

    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_legalize", text)
    (results_dir / "perf_legalize.json").write_text(text + "\n")

    # -- gates -----------------------------------------------------------
    for name, entry in identity.items():
        assert entry["hash_matches_reference"], \
            f"{name}: hash-screened legalizer diverged from the reference"
        assert entry["scan_matches_reference"], \
            f"{name}: scan-screened legalizer diverged from the reference"
    condor = report["condor"]
    assert condor["screening_identical"], \
        "condor: hash and scan screening produced different layouts"
    assert speedup >= MIN_COMBINED_SPEEDUP, \
        (f"combined legalize+detailed speedup {speedup:.2f}x < "
         f"{MIN_COMBINED_SPEEDUP}x on {CONDOR_TOPOLOGY}")
    assert hpwl_ratio <= MAX_HPWL_RATIO, \
        (f"batched detailed hpwl {condor['hpwl_batched']} exceeds "
         f"{MAX_HPWL_RATIO}x the reference {condor['hpwl_reference']}")
    assert phase_top_sum >= MIN_PHASE_COVERAGE * new_s, \
        (f"phase profile covers only {phase_top_sum:.3f}s of the "
         f"{new_s:.3f}s profiled section")

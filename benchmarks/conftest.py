"""Shared fixtures for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows.  Placement suites are cached per session
so e.g. Fig. 11, 12, and 13 share the same layouts (as in the paper).

Set ``REPRO_BENCH_FULL=1`` to run the paper-scale protocol (all six
topologies, 50 mapping subsets); the default keeps the suite fast enough
for CI while preserving every trend.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.analysis import ParallelRunner, PlacementJob, PlacementSuite

#: Paper-scale protocol toggle.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Topologies evaluated by default (all six under REPRO_BENCH_FULL=1).
BENCH_TOPOLOGIES = (
    ("grid-25", "xtree-53", "falcon-27", "eagle-127", "aspen11-40", "aspenm-80")
    if FULL else
    ("grid-25", "falcon-27", "aspen11-40")
)

#: Mapping subsets per (benchmark, topology): 50 in the paper.
NUM_MAPPINGS = 50 if FULL else 12

#: Benchmarks evaluated in the fidelity experiments.
BENCH_CIRCUITS = (
    ("bv-4", "bv-9", "bv-16", "qaoa-4", "qaoa-9", "ising-4", "qgan-4", "qgan-9")
    if FULL else
    ("bv-4", "bv-16", "qaoa-9", "ising-4", "qgan-4")
)

_SUITE_CACHE: Dict[Tuple[str, float], PlacementSuite] = {}

#: Placement jobs route through the parallel runner; the on-disk cache
#: (``$REPRO_CACHE_DIR``, off by default) persists suites across bench
#: sessions, on top of this in-memory per-session cache.
_RUNNER = ParallelRunner()


def get_suite(topology_name: str, segment_size_mm: float = 0.3) -> PlacementSuite:
    """Session-cached placement suite (qplacer + classic + human).

    The first request for a default-sized suite prewarms *all* bench
    topologies through the runner in one batch, so multi-worker runs
    place them concurrently instead of one figure at a time.
    """
    key = (topology_name, segment_size_mm)
    if key not in _SUITE_CACHE:
        wanted = [key]
        if segment_size_mm == 0.3:
            wanted += [(name, segment_size_mm) for name in BENCH_TOPOLOGIES
                       if (name, segment_size_mm) not in _SUITE_CACHE
                       and name != topology_name]
        jobs = [PlacementJob(topology=name, segment_size_mm=lb)
                for name, lb in wanted]
        for (name, lb), suite in zip(wanted, _RUNNER.run_suites(jobs)):
            _SUITE_CACHE[(name, lb)] = suite
    return _SUITE_CACHE[key]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the printed tables as text artefacts."""
    path = Path(__file__).parent / "results"
    path.mkdir(exist_ok=True)
    return path


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a table and persist it under ``benchmarks/results/``."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")

"""Incremental placement engine: identity + speedup gates (ISSUE 6).

The condor-scale inner-loop rework has three moving parts — frequency-
banded neighbor-list candidates, Verlet list reuse, and incremental
density updates with periodic full-rebuild checkpoints.  This harness
pins the two contracts that make them safe to default on:

* **eagle-127 bit-identity**: with increments flushed every evaluation
  (``density_flush_interval=1``) the incremental density path must
  reproduce the dense-recompute global placement bit for bit — every
  flush adopts a fresh rasterise, so flush-1 *is* the dense path plus a
  live divergence assertion;
* **condor speedup**: the new defaults must beat the PR 2 baseline path
  (no banding, dense density recompute every iteration) by a safe
  margin on condor-sm-433 in smoke mode, and by >= 5x — landing global
  placement in single-digit seconds — on condor-1121 under
  ``REPRO_BENCH_FULL=1``.

Telemetry (rebuild/reuse counts, flush counts and max checkpoint error,
peak pair/candidate high-water marks) goes to
``benchmarks/results/perf_incremental.json``.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import time
from typing import Dict

import numpy as np

from repro.core.config import PlacerConfig
from repro.core.engine import GlobalPlacer
from repro.core.preprocess import build_problem
from repro.devices.netlist import build_netlist
from repro.devices.topology import get_topology

from conftest import FULL, emit

#: Speedup gate vs the PR 2 path: conservative in smoke mode (CI noise,
#: shared runners), the paper-facing >= 5x only at condor-1121 scale.
MIN_SPEEDUP_SMOKE = 2.5
MIN_SPEEDUP_FULL = 5.0

#: Full-mode wall-clock gate: condor-1121 global placement must land in
#: single-digit seconds on the new path.
MAX_CONDOR_1121_PLACE_S = 10.0

CONDOR_TOPOLOGY = "condor-1121" if FULL else "condor-sm-433"
MIN_SPEEDUP = MIN_SPEEDUP_FULL if FULL else MIN_SPEEDUP_SMOKE

#: The PR 2 baseline path: every-iteration dense density recompute and
#: an unbanded (spatial-only) neighbor-list grid.
BASELINE = dict(incremental_density="off", freq_pair_banding=False)


def _run(topology: str, **overrides) -> Dict[str, object]:
    config = dataclasses.replace(PlacerConfig(), **overrides)
    problem = build_problem(build_netlist(get_topology(topology)), config)
    engine = GlobalPlacer(problem, config)
    t0 = time.perf_counter()
    result = engine.run()
    place_s = time.perf_counter() - t0
    return {
        "topology": topology,
        "overrides": overrides,
        "num_instances": problem.num_instances,
        "place_s": round(place_s, 3),
        "iterations": result.iterations,
        "converged": result.converged,
        "final_overflow": result.final_overflow,
        "peak_collision_pairs": result.peak_collision_pairs,
        "peak_pair_candidates": result.peak_pair_candidates,
        "freq_list_rebuilds": result.freq_list_rebuilds,
        "freq_list_reuses": result.freq_list_reuses,
        "density_flushes": result.density_flushes,
        "density_rescattered": result.density_rescattered,
        "density_max_flush_error": result.density_max_flush_error,
        "positions": result.positions,
    }


def _strip(row: Dict[str, object]) -> Dict[str, object]:
    return {k: v for k, v in row.items() if k != "positions"}


def test_perf_incremental(results_dir):
    # -- gate 1: eagle-127 flush-1 bit-identity -------------------------
    eagle_inc = _run("eagle-127", incremental_density="on",
                     density_flush_interval=1,
                     density_move_threshold_mm=0.0)
    eagle_ref = _run("eagle-127", incremental_density="off")
    identical = bool(np.array_equal(eagle_inc["positions"],
                                    eagle_ref["positions"]))

    # -- gate 2: condor speedup vs the PR 2 baseline path ---------------
    new = _run(CONDOR_TOPOLOGY)  # the new defaults
    old = _run(CONDOR_TOPOLOGY, **BASELINE)
    speedup = old["place_s"] / max(new["place_s"], 1e-9)

    report = {
        "bench": "perf_incremental",
        "mode": "full" if FULL else "smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "eagle_flush1_identity": identical,
        "eagle_incremental": _strip(eagle_inc),
        "eagle_reference": _strip(eagle_ref),
        "condor_topology": CONDOR_TOPOLOGY,
        "condor_new": _strip(new),
        "condor_baseline": _strip(old),
        "condor_speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
    }
    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_incremental", text)
    (results_dir / "perf_incremental.json").write_text(text + "\n")

    # -- gates ----------------------------------------------------------
    assert identical, \
        "flush-every-iteration incremental density diverged from the " \
        "dense recompute on eagle-127"
    # flush-1 means every incremental evaluation ran the divergence
    # checkpoint; the recorded worst error stays within float drift.
    assert eagle_inc["density_flushes"] >= eagle_inc["iterations"]
    assert speedup >= MIN_SPEEDUP, (
        f"{CONDOR_TOPOLOGY}: new path {new['place_s']}s vs baseline "
        f"{old['place_s']}s = {speedup:.2f}x < required {MIN_SPEEDUP}x")
    if FULL:
        assert new["place_s"] <= MAX_CONDOR_1121_PLACE_S, (
            f"condor-1121 global placement took {new['place_s']}s "
            f"(> {MAX_CONDOR_1121_PLACE_S}s)")
    # the sparse machinery actually engaged on the condor tier
    assert new["freq_list_reuses"] > 0, "Verlet list never reused"
    assert new["density_flushes"] > 0, "incremental density never flushed"
    assert new["density_rescattered"] > 0
    # banding must shrink the candidate screening set vs the baseline
    assert new["peak_pair_candidates"] < old["peak_pair_candidates"]

"""Disorder-ensemble gates: service fan-out, caching, repair speedup.

The Monte-Carlo ensemble engine's acceptance harness.  Two stages:

* **service** — a 64-sample eagle-tier ensemble runs end-to-end through
  a live :class:`~repro.service.api.PlacementService`: the sample range
  fans out as chunked runner jobs, progress streams one entry per sigma
  point via ``GET /jobs/<id>``, yield-after-repair dominates the frozen
  yield at every point, and an identical re-submission is served
  straight from the artifact store (``cache_hit``);
* **repair speed** — at matched sigma and matched (default-quality)
  config, incrementally repairing a realisation (cached positions ->
  re-legalize -> dirty-set transactional detailed pass) must be >=
  :data:`MIN_REPAIR_SPEEDUP`x faster than a from-scratch global
  placement of the noisy netlist.  Both legs time placement work only;
  the ``check_layout_legal`` verdict on every repaired layout is a
  separate untimed gate.

Machine-readable JSON goes to ``benchmarks/results/perf_ensembles.json``.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, List

import numpy as np

from repro.analysis.experiments import _effective_config
from repro.core import PlacerConfig
from repro.core.preprocess import build_problem
from repro.devices import build_netlist, get_topology, \
    netlist_with_frequencies
from repro.ensembles import (DisorderSpec, check_layout_legal,
                             place_from_scratch, problem_with_frequencies,
                             repair_positions, sample_batch)
from repro.placers import make_placer
from repro.service import PlacementService, ServiceClient

from conftest import FULL, emit

#: Required incremental-repair speedup over from-scratch placement.
MIN_REPAIR_SPEEDUP = 3.0

#: Ensemble size of the service gate (the acceptance number).
SAMPLES = 64

#: Runner chunk size: 64 samples -> 4 chunk jobs.
CHUNK_SIZE = 16

#: Sigma sweep of the service gate.
SIGMAS = (0.01, 0.02, 0.05) if FULL else (0.05,)

#: Disorder realisations timed per leg of the repair race.
REPAIR_RACE_SAMPLES = 3

#: Matched sigma of the repair race (strong enough to break layouts).
RACE_SIGMA = 0.05

#: Fast-but-real placer settings (the service gate is about the
#: ensemble machinery, not placement quality).
FAST_CONFIG: Dict[str, object] = {
    "max_iterations": 60, "min_iterations": 10, "num_bins": 32,
}

#: Repair-race placer settings: the *default* iteration budget, i.e.
#: what a from-scratch re-placement actually costs users.  Both race
#: legs share this config.
RACE_CONFIG: Dict[str, object] = {"num_bins": 32}


def _service_gate(client: ServiceClient,
                  service: PlacementService) -> Dict[str, object]:
    """64-sample eagle ensemble through the live service."""
    request = {
        "topology": "eagle-127",
        "sigmas": list(SIGMAS),
        "samples": SAMPLES,
        "repair_samples": 2,
        "config": FAST_CONFIG,
        "bootstrap": 100,
    }
    start = time.perf_counter()
    job = client.submit("ensemble", request,
                        options={"chunk_size": CHUNK_SIZE})
    record = client.wait(job["job_id"], timeout=1800)
    first_s = time.perf_counter() - start
    result = client.artifact(record["artifact"])["result"]
    progress = record.get("progress") or {}

    start = time.perf_counter()
    again = client.submit("ensemble", request,
                          options={"chunk_size": CHUNK_SIZE})
    client.wait(again["job_id"], timeout=60)
    resubmit_s = time.perf_counter() - start

    return {
        "topology": "eagle-127",
        "samples": SAMPLES,
        "sigmas": list(SIGMAS),
        "chunk_size": CHUNK_SIZE,
        "chunks_per_point": [p["chunks"] for p in result["points"]],
        "progress_published": progress.get("published"),
        "progress_total": progress.get("total"),
        "points": [
            {"sigma_qubit_ghz": p["sigma_qubit_ghz"],
             "yield": p["yield"],
             "yield_ci": p["yield_ci"],
             "yield_after_repair": p["yield_after_repair"],
             "repair_attempted": p["repair"]["attempted"],
             "repair_legal_all": p["repair"]["legal_all"],
             "mean_ph_percent": round(p["mean_ph_percent"], 4),
             "fidelity_mean": round(p["fidelity_mean"], 6)}
            for p in result["points"]
        ],
        "first_run_s": round(first_s, 3),
        "resubmit_s": round(resubmit_s, 3),
        "resubmit_disposition": again["disposition"],
        "ensemble_phase_s": {
            name: round(entry["seconds"], 3)
            for name, entry in result["phases"].items()
            if name.startswith("ensemble/") and name.count("/") == 1},
    }


def _repair_race(report_samples: int = REPAIR_RACE_SAMPLES
                 ) -> Dict[str, object]:
    """Incremental repair vs from-scratch placement at matched sigma.

    Each leg times only the placement work: the repair leg re-tunes the
    design problem to the noisy frequencies and runs re-legalization
    plus the dirty-set detailed polish on the cached positions; the
    scratch leg runs the full placer on the noisy netlist.  Legality of
    every repaired layout is verified afterwards, outside the timing.
    """
    effective = _effective_config(PlacerConfig(**RACE_CONFIG), 0, 0.3)
    netlist = build_netlist(get_topology("eagle-127"))
    design = make_placer(effective).place(netlist).layout
    design_problem = build_problem(netlist, effective)

    disorder = DisorderSpec(RACE_SIGMA, RACE_SIGMA * 0.5)
    batch = sample_batch(netlist, disorder, base_seed=0,
                         count=report_samples)
    noisy = [netlist_with_frequencies(netlist, *batch.row(i))
             for i in range(report_samples)]
    cached = design.positions

    repaired: List[tuple] = []
    start = time.perf_counter()
    for n in noisy:
        problem = problem_with_frequencies(design_problem, n)
        repaired.append((problem, repair_positions(problem, cached,
                                                   effective)))
    repair_s = time.perf_counter() - start

    start = time.perf_counter()
    scratched = [place_from_scratch(n, effective) for n in noisy]
    scratch_s = time.perf_counter() - start

    legal = [check_layout_legal(problem, pos) for problem, pos in repaired]
    moved = [float(np.abs(pos - cached).sum()) for _, pos in repaired]
    return {
        "topology": "eagle-127",
        "sigma": RACE_SIGMA,
        "samples": report_samples,
        "repair_s": round(repair_s, 3),
        "scratch_s": round(scratch_s, 3),
        "speedup": round(scratch_s / repair_s, 2) if repair_s else
            float("inf"),
        "repair_legal": legal,
        "repair_moved_mm": [round(m, 3) for m in moved],
        "scratch_layouts": len(scratched),
    }


def test_perf_ensembles(results_dir, tmp_path):
    with PlacementService(store_dir=tmp_path / "store", port=0, workers=1,
                          runner_workers=2) as service:
        client = ServiceClient(service.base_url, timeout=60.0)
        report: Dict[str, object] = {
            "bench": "perf_ensembles",
            "mode": "full" if FULL else "smoke",
            "python": platform.python_version(),
            "machine": platform.machine(),
            "min_repair_speedup": MIN_REPAIR_SPEEDUP,
            "service": _service_gate(client, service),
            "repair_race": _repair_race(),
        }

    text = json.dumps(report, indent=2)
    emit(results_dir, "perf_ensembles", text)
    (results_dir / "perf_ensembles.json").write_text(text + "\n")

    # -- gates ----------------------------------------------------------
    svc = report["service"]
    expected_chunks = -(-SAMPLES // CHUNK_SIZE)
    assert all(c == expected_chunks for c in svc["chunks_per_point"]), \
        f"expected {expected_chunks} chunk jobs/point, got " \
        f"{svc['chunks_per_point']}"
    assert svc["progress_published"] == len(SIGMAS), \
        f"progress published {svc['progress_published']} of {len(SIGMAS)}"
    assert svc["progress_total"] == len(SIGMAS)
    for point in svc["points"]:
        assert point["yield_after_repair"] >= point["yield"] - 1e-12, \
            f"repair lowered yield at sigma {point['sigma_qubit_ghz']}"
        assert point["repair_legal_all"], \
            f"illegal repaired layout at sigma {point['sigma_qubit_ghz']}"
    assert svc["resubmit_disposition"] == "cache_hit", \
        f"re-submission not served from the artifact store: " \
        f"{svc['resubmit_disposition']}"
    assert svc["resubmit_s"] < svc["first_run_s"]

    race = report["repair_race"]
    assert all(race["repair_legal"]), "incremental repair left an " \
        "illegal layout"
    assert race["speedup"] >= MIN_REPAIR_SPEEDUP, \
        (f"incremental repair only {race['speedup']}x faster than "
         f"from-scratch (gate {MIN_REPAIR_SPEEDUP}x)")

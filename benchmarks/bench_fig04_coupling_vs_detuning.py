"""Fig. 4 — qubit-qubit coupling strength versus detuning.

Regenerates the resonance curve: peak coupling ``g`` when the two
transmons are resonant (w1 = w2), falling off as ``g^2/Delta`` with
increasing detuning, with g/2pi in the paper's 20-30 MHz band.
"""

from __future__ import annotations

import numpy as np

from conftest import emit
from repro.analysis import coupling_vs_detuning, format_table


def test_fig04_coupling_vs_detuning(benchmark, results_dir) -> None:
    curve = benchmark(coupling_vs_detuning)
    freq2 = curve["freq2_ghz"]
    geff = curve["effective_coupling_ghz"]

    peak_idx = int(np.argmax(geff))
    assert abs(freq2[peak_idx] - 5.0) < 0.02, "peak must sit at resonance"
    peak_mhz = 1e3 * geff[peak_idx]
    assert 15.0 <= peak_mhz <= 35.0, "peak g/2pi should be 20-30 MHz (Fig. 4)"
    # Wings decay as g^2/Delta.
    wing = 1e3 * geff[-1]
    assert wing < peak_mhz / 5.0

    rows = [[f"{freq2[k]:.2f}", f"{1e3 * geff[k]:.3f}"]
            for k in range(0, len(freq2), 8)]
    emit(results_dir, "fig04_coupling_vs_detuning",
         format_table(["w2 (GHz)", "effective coupling (MHz)"], rows,
                      title="Fig.4 — coupling vs detuning (w1 = 5 GHz)"))

"""Spatial interaction backend: candidate-pair generation at scale.

Every pairwise structure of the placement flow — the legalizer's
required-gap lookups, the engine's frequency-collision force, the
spatial-violation scan, and the fidelity crosstalk tables — reduces to
the same primitive: *which instance pairs can interact within a cutoff
distance?*  This module centralises that primitive behind two
interchangeable strategies:

* ``dense`` — materialise every pair (``triu`` index arrays, ``(n, n)``
  gap matrices).  O(n^2) memory/time, bit-identical to the original
  implementation, and the default for the six paper topologies.
* ``sparse`` — a uniform-grid neighbor list: instances are bucketed
  into cells of the cutoff size and only pairs in adjacent cells are
  candidates.  O(n x local density) memory/time, which is what makes
  condor-1121-class topologies tractable.

``auto`` (the default everywhere) selects ``sparse`` once the instance
count crosses :data:`DEFAULT_SPARSE_MIN_INSTANCES`; the six paper
topologies stay below it, so their results remain bit-identical to the
dense-only implementation.  Config override via
:attr:`~repro.core.config.PlacerConfig.interaction_backend` and CLI
``--interaction-backend``.

Sparse candidate generation is fully vectorized: cell keys are sorted
once, and for each of the five half-neighborhood offsets the matching
key ranges are found with ``searchsorted`` and expanded with one global
``arange`` — no per-bucket Python loop.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

#: Recognised backend names (``auto`` resolves by problem size).
BACKEND_AUTO = "auto"
BACKEND_DENSE = "dense"
BACKEND_SPARSE = "sparse"
BACKENDS: Tuple[str, ...] = (BACKEND_AUTO, BACKEND_DENSE, BACKEND_SPARSE)

#: ``auto`` switches to the sparse strategy above this instance count.
#: Chosen so every Table I topology (largest: eagle-127 at 1814
#: instances) resolves dense — their results stay bit-identical — while
#: condor-class problems (>6000 instances) go sparse.
DEFAULT_SPARSE_MIN_INSTANCES = 2048

#: Bound on cached required-gap rows in sparse mode (rows are O(n) each
#: and cheap to recompute; the cache only smooths repeated probing of
#: one instance during spiral search and integration repair).
_ROW_CACHE_MAX = 256


def resolve_backend(backend: str, num_instances: int,
                    sparse_min_instances: int = DEFAULT_SPARSE_MIN_INSTANCES
                    ) -> str:
    """Resolve ``auto`` to a concrete strategy for a problem size.

    Raises:
        ValueError: for unknown backend names.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown interaction backend {backend!r}; known: {BACKENDS}")
    if backend != BACKEND_AUTO:
        return backend
    return (BACKEND_SPARSE if num_instances > sparse_min_instances
            else BACKEND_DENSE)


# ---------------------------------------------------------------------------
# candidate-pair generation
# ---------------------------------------------------------------------------

def dense_candidate_pairs(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """All ``i < j`` index pairs, in ``triu`` (lexicographic) order."""
    return np.triu_indices(n, 1)


def sort_pairs(a: np.ndarray, b: np.ndarray,
               n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Sort ``i < j`` pairs lexicographically via one scalar-key sort.

    Each pair is encoded as ``i * n + j`` so a single 1-D ``np.sort``
    replaces the far costlier row-wise ``np.unique(axis=0)``; callers
    filter candidate sets down *before* sorting, which is what keeps
    neighbor-list rebuilds cheap on clustered early-iteration layouts.
    """
    if a.size == 0:
        return a, b
    key = np.sort(a.astype(np.int64) * np.int64(n) + b)
    return key // n, key % n


#: Half-neighborhood offsets of the 2-D uniform grid: each unordered
#: cell pair is visited exactly once.
_PLANE_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (0, 0), (0, 1), (1, -1), (1, 0), (1, 1))

#: Cross-band offsets: cells one *frequency band* up pair against the
#: full 3x3 spatial neighborhood (visited only from the lower band, so
#: again each unordered cell pair appears exactly once).
_BAND_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 0), (0, 1),
    (1, -1), (1, 0), (1, 1))


def frequency_bands(frequencies: np.ndarray, threshold: float) -> np.ndarray:
    """Integer band labels such that resonant pairs differ by <= 1 band.

    Bands are ``floor(f / w)`` with a band width ``w`` slightly above
    the detuning threshold — the same guard-band trick as the grid cell
    size, so a pair at exactly the threshold detuning can never end up
    two bands apart through float rounding.
    """
    width = max(float(threshold), 0.0) * (1.0 + 1e-9) + 1e-12
    return np.floor(np.asarray(frequencies, dtype=float)
                    / width).astype(np.int64)


def grid_candidate_pairs(positions: np.ndarray, cutoff: float,
                         sort: bool = True,
                         bands: Optional[np.ndarray] = None
                         ) -> Tuple[np.ndarray, np.ndarray]:
    """Candidate ``i < j`` pairs from a uniform grid.

    Guarantee: the result is a superset of every pair whose per-axis
    (Chebyshev) centre distance is at most ``cutoff``; pairs further
    than ``2 * cutoff`` on either axis are never produced.  With
    ``sort=True`` the ordering matches :func:`dense_candidate_pairs`
    (sorted by ``(i, j)``) so downstream filters yield identical result
    sequences under either strategy; callers that filter heavily first
    pass ``sort=False`` and apply :func:`sort_pairs` to the survivors.

    With ``bands`` (integer labels, e.g. :func:`frequency_bands`) the
    grid gains a third dimension: only pairs in the *same or adjacent*
    band are produced.  Callers whose exact acceptance test implies a
    band difference of at most one (resonance under the banding
    threshold) get a candidate set smaller by roughly the occupied band
    count — the spatial guarantee then holds per band neighborhood.

    Args:
        positions: ``(n, 2)`` instance centres.
        cutoff: Interaction reach (mm); also the grid cell size.
        sort: Lex-sort the pairs before returning.
        bands: Optional ``(n,)`` integer band labels.
    """
    n = positions.shape[0]
    empty = (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
    if n < 2:
        return empty
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    # A hair of slack so a pair at exactly the cutoff distance can never
    # straddle two cell boundaries (float rounding in the division).
    cell = cutoff * (1.0 + 1e-12) + 1e-9
    cx = np.floor(positions[:, 0] / cell).astype(np.int64)
    cy = np.floor(positions[:, 1] / cell).astype(np.int64)
    cx -= cx.min()
    cy -= cy.min()
    width = int(cy.max()) + 2
    key = cx * width + cy
    offsets: Sequence[Tuple[int, int]] = _PLANE_OFFSETS
    if bands is not None:
        bands = np.asarray(bands, dtype=np.int64)
        depth = int(cx.max()) + 2
        plane = depth * width
        key = (bands - bands.min()) * plane + key
        # Same band: half neighborhood; band above: full 3x3 (a pair in
        # adjacent bands is seen only from its lower band).
        offsets = tuple((0, dx * width + dy) for dx, dy in _PLANE_OFFSETS) \
            + tuple((1, dx * width + dy) for dx, dy in _BAND_OFFSETS)
        offsets = tuple(db * plane + d for db, d in offsets)
    else:
        offsets = tuple(dx * width + dy for dx, dy in _PLANE_OFFSETS)
    order = np.argsort(key, kind="stable")
    skey = key[order]

    parts_a: List[np.ndarray] = []
    parts_b: List[np.ndarray] = []
    positions_in_sorted = np.arange(n)
    for delta in offsets:
        target = skey + delta
        if delta == 0:
            lo = positions_in_sorted + 1
            hi = np.searchsorted(skey, target, side="right")
        else:
            lo = np.searchsorted(skey, target, side="left")
            hi = np.searchsorted(skey, target, side="right")
        counts = np.maximum(hi - lo, 0)
        total = int(counts.sum())
        if total == 0:
            continue
        src = np.repeat(positions_in_sorted, counts)
        starts = np.cumsum(counts) - counts
        dst = lo[src] + (np.arange(total) - starts[src])
        parts_a.append(order[src])
        parts_b.append(order[dst])
    if not parts_a:
        return empty
    a = np.concatenate(parts_a)
    b = np.concatenate(parts_b)
    a, b = np.minimum(a, b), np.maximum(a, b)
    return sort_pairs(a, b, n) if sort else (a, b)


# ---------------------------------------------------------------------------
# required-gap lookups (legalizer)
# ---------------------------------------------------------------------------

class RequiredGapTable:
    """Pairwise required edge-to-edge gaps with pluggable storage.

    ``strict`` rows apply the resonant checker tau (padding sum for
    resonant non-intended pairs); ``relaxed`` rows use the plain
    clearance rule.  Intended pairs (sibling segments; a qubit and the
    segments of an attached resonator) require no gap in either.

    The ``dense`` strategy materialises both ``(n, n)`` matrices exactly
    as the original legalizer did — lookups are bit-identical views into
    them.  The ``sparse`` strategy computes rows on demand (O(n) each,
    elementwise-identical to the dense rows) behind a small bounded
    cache, so condor-class problems never allocate n x n floats.
    """

    def __init__(self, resonator_index: np.ndarray, frequencies: np.ndarray,
                 clearances: np.ndarray, paddings: np.ndarray,
                 attached_resonators: Mapping[int, Set[int]],
                 detuning_threshold_ghz: float,
                 backend: str = BACKEND_DENSE) -> None:
        if backend not in (BACKEND_DENSE, BACKEND_SPARSE):
            raise ValueError("RequiredGapTable needs a resolved backend")
        self.backend = backend
        self._res = np.asarray(resonator_index, dtype=np.int64)
        self._freqs = np.asarray(frequencies, dtype=float)
        self._clear = np.asarray(clearances, dtype=float)
        self._pads = np.asarray(paddings, dtype=float)
        self._threshold = float(detuning_threshold_ghz)
        self._attached: Dict[int, np.ndarray] = {
            qi: np.fromiter(rset, dtype=np.int64)
            for qi, rset in attached_resonators.items() if rset
        }
        # Inverse map: resonator id -> instance indices of the (at most
        # two) qubits it may legally abut — the attach.T row support.
        qubits_of: Dict[int, List[int]] = {}
        for qi, rset in attached_resonators.items():
            for r in rset:
                qubits_of.setdefault(int(r), []).append(qi)
        self._qubits_of_resonator = {
            r: np.asarray(sorted(qs), dtype=np.int64)
            for r, qs in qubits_of.items()
        }
        self._rows: Dict[Tuple[int, bool], np.ndarray] = {}
        self._strict_matrix: Optional[np.ndarray] = None
        self._relaxed_matrix: Optional[np.ndarray] = None
        if backend == BACKEND_DENSE:
            self._strict_matrix, self._relaxed_matrix = self._build_dense()

    @property
    def num_instances(self) -> int:
        """Number of instances covered by the table."""
        return self._res.shape[0]

    def _build_dense(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(n, n)`` matrices (the original legalizer layout)."""
        n = self.num_instances
        res = self._res
        same_res = (res[:, None] == res[None, :]) & (res[:, None] >= 0)
        attach = np.zeros((n, n), dtype=bool)
        for qi, rids in self._attached.items():
            attach[qi] = np.isin(res, rids)
        intended = same_res | attach | attach.T
        freqs = self._freqs
        resonant = (np.abs(freqs[:, None] - freqs[None, :])
                    <= self._threshold)
        clear_req = 0.5 * (self._clear[:, None] + self._clear[None, :])
        pad_req = self._pads[:, None] + self._pads[None, :]
        strict = np.where(intended, 0.0,
                          np.where(resonant, pad_req, clear_req))
        relaxed = np.where(intended, 0.0, clear_req)
        return strict, relaxed

    def _compute_row(self, i: int, strict: bool) -> np.ndarray:
        """One required-gap row, elementwise-identical to the dense row."""
        res = self._res
        ri = int(res[i])
        intended = (res == ri) if ri >= 0 \
            else np.zeros(self.num_instances, dtype=bool)
        rids = self._attached.get(i)
        if rids is not None:
            intended = intended | np.isin(res, rids)
        if ri >= 0:
            partners = self._qubits_of_resonator.get(ri)
            if partners is not None:
                intended[partners] = True
        clear_req = 0.5 * (self._clear[i] + self._clear)
        if not strict:
            return np.where(intended, 0.0, clear_req)
        resonant = np.abs(self._freqs[i] - self._freqs) <= self._threshold
        pad_req = self._pads[i] + self._pads
        return np.where(intended, 0.0,
                        np.where(resonant, pad_req, clear_req))

    def row(self, i: int, strict: bool) -> np.ndarray:
        """Required gaps from instance ``i`` to every instance."""
        if self._strict_matrix is not None:
            return (self._strict_matrix if strict
                    else self._relaxed_matrix)[i]
        key = (int(i), bool(strict))
        row = self._rows.get(key)
        if row is None:
            row = self._compute_row(int(i), bool(strict))
            if len(self._rows) >= _ROW_CACHE_MAX:
                self._rows.pop(next(iter(self._rows)))
            self._rows[key] = row
        return row

    def lookup(self, i: int, js: np.ndarray, strict: bool) -> np.ndarray:
        """Required gaps from instance ``i`` to the instances ``js``."""
        return self.row(i, strict)[js]

    def pairs(self, i: int, js: np.ndarray, strict: bool) -> np.ndarray:
        """Required gaps from ``i`` to ``js`` in O(len(js)).

        Elementwise identical to ``row(i, strict)[js]`` but never
        materialises the full row — the sparse backend's answer to
        hash-screened neighbourhoods, where ``js`` holds a handful of
        nearby instances out of thousands.
        """
        if self._strict_matrix is not None:
            return (self._strict_matrix if strict
                    else self._relaxed_matrix)[i, js]
        js = np.asarray(js, dtype=np.int64)
        res = self._res
        ri = int(res[i])
        res_js = res[js]
        intended = ((res_js == ri) if ri >= 0
                    else np.zeros(js.shape[0], dtype=bool))
        # Membership sets here hold 1-4 ids; direct comparisons beat
        # np.isin's sort-based machinery by ~40x at this size.
        rids = self._attached.get(i)
        if rids is not None:
            for r in rids.tolist():
                intended = intended | (res_js == r)
        if ri >= 0:
            partners = self._qubits_of_resonator.get(ri)
            if partners is not None:
                for q in partners.tolist():
                    intended = intended | (js == q)
        clear_req = 0.5 * (self._clear[i] + self._clear[js])
        if not strict:
            return np.where(intended, 0.0, clear_req)
        resonant = (np.abs(self._freqs[i] - self._freqs[js])
                    <= self._threshold)
        pad_req = self._pads[i] + self._pads[js]
        return np.where(intended, 0.0,
                        np.where(resonant, pad_req, clear_req))


# ---------------------------------------------------------------------------
# distance-pruned frequency collision pairs (engine)
# ---------------------------------------------------------------------------

class PrunedCollisionPairs:
    """Neighbor-list view of the frequency collision map.

    The dense engine precomputes *every* resonant pair once; on
    condor-class problems that set is O(n^2 / levels) and evaluating the
    repulsive force over it each iteration dominates the run.  This
    provider keeps only resonant pairs currently within
    ``cutoff + skin`` of each other, rebuilding the list (Verlet-style)
    whenever some instance has drifted more than ``skin / 2`` since the
    last build — between rebuilds the list provably still contains every
    pair within ``cutoff``.

    The truncated potential differs from the dense sum (far pairs
    contribute ``< 1/cutoff`` each), which is why this provider is only
    engaged by the sparse backend; with a cutoff covering the whole
    region the produced pair array is bit-identical (same contents, same
    lex order) to the precomputed dense collision map.

    With ``band_pairs`` (default) candidate generation adds a frequency
    dimension to the grid (:func:`frequency_bands`): instances more than
    one detuning-threshold band apart can never be resonant, so their
    spatial pairs are never materialised.  Profiling condor-sm-433
    placement showed the rebuild filter — millions of spatially-near
    but non-resonant candidates — at >90% of the run; banding removes
    them at the source while the exact resonance filter keeps the final
    pair array bit-identical.
    """

    def __init__(self, frequencies: np.ndarray, resonator_index: np.ndarray,
                 detuning_threshold_ghz: float,
                 cutoff_mm: float, skin_mm: Optional[float] = None,
                 band_pairs: bool = True) -> None:
        if cutoff_mm <= 0:
            raise ValueError("cutoff must be positive")
        self._freqs = np.asarray(frequencies, dtype=float)
        self._res = np.asarray(resonator_index, dtype=np.int64)
        self._threshold = float(detuning_threshold_ghz)
        self.cutoff_mm = float(cutoff_mm)
        self.skin_mm = float(skin_mm) if skin_mm is not None \
            else 0.5 * float(cutoff_mm)
        self._bands = (frequency_bands(self._freqs, self._threshold)
                       if band_pairs else None)
        self._pairs: Optional[np.ndarray] = None
        self._pair_index: Optional[np.ndarray] = None
        self._ref_positions: Optional[np.ndarray] = None
        self.rebuilds = 0
        self.reuses = 0
        self.peak_pairs = 0
        self.peak_candidates = 0

    def _needs_rebuild(self, positions: np.ndarray) -> bool:
        if self._pairs is None or self._ref_positions is None:
            return True
        # Euclidean per-instance drift: two instances approaching each
        # other diagonally close the gap by at most twice this, so the
        # skin/2 bound keeps every in-cutoff pair inside the list.
        delta = positions - self._ref_positions
        drift2 = float((delta * delta).sum(axis=1).max())
        return drift2 > (0.5 * self.skin_mm) ** 2

    def _rebuild(self, positions: np.ndarray) -> None:
        reach = self.cutoff_mm + self.skin_mm
        a, b = grid_candidate_pairs(positions, reach, sort=False,
                                    bands=self._bands)
        self.peak_candidates = max(self.peak_candidates, int(a.size))
        if a.size:
            delta = positions[a] - positions[b]
            within = (delta * delta).sum(axis=1) <= reach * reach
            resonant = (np.abs(self._freqs[a] - self._freqs[b])
                        <= self._threshold)
            ra, rb = self._res[a], self._res[b]
            sibling = (ra >= 0) & (ra == rb)
            keep = within & resonant & ~sibling
            a, b = sort_pairs(a[keep], b[keep], positions.shape[0])
        self._pairs = np.stack([a, b], axis=1).astype(np.int64)
        self._pair_index = (np.concatenate([a, b]) if a.size else None)
        self._ref_positions = positions.copy()
        self.rebuilds += 1
        self.peak_pairs = max(self.peak_pairs, int(a.size))

    def pairs(self, positions: np.ndarray
              ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Current active pair array and its scatter index."""
        if self._needs_rebuild(positions):
            self._rebuild(positions)
        else:
            self.reuses += 1
        assert self._pairs is not None
        return self._pairs, self._pair_index

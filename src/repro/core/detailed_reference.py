"""Reference detailed placement: the pre-vectorization implementation.

Preserved verbatim from the scalar detailed placer (per-pair
``_swap_gain`` evaluation, per-sweep wirelength recompute, direct use of
legalizer internals) as the baseline for
``benchmarks/bench_perf_legalize.py``'s speedup gate and as an
independent oracle for the rewritten :mod:`repro.core.detailed`.

Do not optimise this file.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import PlacerConfig
from .detailed import DetailedPlaceStats
from .legalizer import Legalizer
from .preprocess import PlacementProblem
from .wirelength import hpwl


class DetailedPlacer:
    """Greedy legality-preserving refinement over a legalized layout."""

    def __init__(self, problem: PlacementProblem,
                 config: Optional[PlacerConfig] = None) -> None:
        self.problem = problem
        self.config = config if config is not None else problem.config
        self._nets_by_instance: Dict[int, List[int]] = {}
        for net_idx, (a, b) in enumerate(problem.nets):
            self._nets_by_instance.setdefault(int(a), []).append(net_idx)
            self._nets_by_instance.setdefault(int(b), []).append(net_idx)
        # Net partners per instance: all 2-pin nets of instance i reduce
        # to |pos[i] - pos[partner]|, so wirelength sums vectorize over
        # one int array per instance.
        self._partners: Dict[int, np.ndarray] = {}
        for inst, net_ids in self._nets_by_instance.items():
            self._partners[inst] = np.array(
                [int(problem.nets[k, 1]) if int(problem.nets[k, 0]) == inst
                 else int(problem.nets[k, 0]) for k in net_ids],
                dtype=np.int64)
        # Same-kind groups: instances are swappable when both are qubits
        # or both segments with equal footprints.
        kind_keys = np.column_stack([
            problem.is_qubit.astype(np.int64),
            problem.sizes[:, 0], problem.sizes[:, 1]])
        _, self._kind_id = np.unique(kind_keys, axis=0, return_inverse=True)

    # -- wirelength deltas -------------------------------------------------------

    def _instance_wl(self, positions: np.ndarray, inst: int) -> float:
        """Wirelength of all nets touching one instance."""
        partners = self._partners.get(inst)
        if partners is None:
            return 0.0
        return float(np.abs(positions[inst] - positions[partners]).sum())

    def _pair_wl(self, positions: np.ndarray, i: int, j: int) -> float:
        """Combined wirelength of the nets of two instances.

        Shared nets are counted twice on both sides of a comparison, so
        deltas stay correct.
        """
        return self._instance_wl(positions, i) + self._instance_wl(positions, j)

    def _swap_gain(self, positions: np.ndarray, i: int, j: int) -> float:
        """Wirelength gain of swapping the sites of ``i`` and ``j``.

        Evaluates the same quantity as ``_pair_wl(before) -
        _pair_wl(after-swap)`` without materialising a swapped copy of
        the position array.
        """
        pi, pj = positions[i], positions[j]
        gain = 0.0
        for inst, other, new_pos in ((i, j, pj), (j, i, pi)):
            partners = self._partners.get(inst)
            if partners is None:
                continue
            pp = positions[partners]
            before = np.abs(positions[inst] - pp).sum()
            # After the swap the partner that *is* the swap peer has
            # moved to this instance's old site.
            pp = pp.copy()
            pp[partners == other] = positions[inst]
            after = np.abs(new_pos - pp).sum()
            gain += float(before - after)
        return gain

    # -- feasibility --------------------------------------------------------------

    def _feasible(self, legalizer: Legalizer,
                  moves: Sequence[Tuple[int, Tuple[float, float]]]) -> bool:
        """Try a batch of moves under the legalizer's spacing rule.

        On success the instances are left at their new sites (hash and
        positions updated); on any failure the original state is fully
        restored and False is returned.
        """
        originals = [(i, tuple(legalizer.positions[i])) for i, _ in moves]

        def restore() -> None:
            for i, _ in moves:
                if i in legalizer._placed:
                    legalizer._unplace(i)
            for i, (x, y) in originals:
                legalizer._place(i, x, y)

        for i, _ in moves:
            legalizer._unplace(i)
        for i, (x, y) in moves:
            if not legalizer._can_place(i, x, y):
                restore()
                return False
            legalizer._place(i, x, y)
        # Contiguity guard for every affected resonator.
        by_res = legalizer._segments_by_resonator()
        for i, _ in moves:
            r = int(self.problem.resonator_index[i])
            if r >= 0 and len(by_res[r]) > 1:
                if len(legalizer._clusters(by_res[r])) > 1:
                    restore()
                    return False
        return True

    # -- main loop ----------------------------------------------------------------

    def refine(self, positions: np.ndarray,
               max_passes: int = 3,
               neighbor_radius_mm: float = 1.5
               ) -> Tuple[np.ndarray, DetailedPlaceStats]:
        """Refine a legal placement; returns (positions, stats).

        Args:
            positions: Legalized instance centres.
            max_passes: Sweeps over all instances.
            neighbor_radius_mm: Swap-partner search radius.
        """
        p = self.problem
        legalizer = Legalizer(p, self.config)
        legalizer.positions = positions.copy()
        for i in range(p.num_instances):
            legalizer._place(i, positions[i, 0], positions[i, 1])

        stats = DetailedPlaceStats(hpwl_before=hpwl(positions, p.nets))
        kind_id = self._kind_id

        for _ in range(max_passes):
            stats.passes += 1
            improved = False
            wl_all = np.array([self._instance_wl(legalizer.positions, i)
                               for i in range(p.num_instances)])
            order = np.argsort(-wl_all, kind="stable")
            for i in order:
                i = int(i)
                xi, yi = legalizer.positions[i]
                best_gain = 1e-9
                best_partner = None
                for j in legalizer._hash.near(xi, yi, neighbor_radius_mm):
                    if j == i or kind_id[j] != kind_id[i]:
                        continue
                    gain = self._swap_gain(legalizer.positions, i, j)
                    if gain > best_gain:
                        best_gain = gain
                        best_partner = j
                if best_partner is None:
                    continue
                j = best_partner
                pos_i = tuple(legalizer.positions[i])
                pos_j = tuple(legalizer.positions[j])
                # _feasible leaves the pair at the new sites on success
                # and fully restores the old state on failure.
                if self._feasible(legalizer, [(i, pos_j), (j, pos_i)]):
                    stats.swaps_applied += 1
                    improved = True
            if not improved:
                break

        stats.hpwl_after = hpwl(legalizer.positions, p.nets)
        return legalizer.positions.copy(), stats


def refine_placement(problem: PlacementProblem, positions: np.ndarray,
                     config: Optional[PlacerConfig] = None,
                     max_passes: int = 3
                     ) -> Tuple[np.ndarray, DetailedPlaceStats]:
    """Convenience wrapper around :class:`DetailedPlacer`."""
    return DetailedPlacer(problem, config).refine(positions,
                                                  max_passes=max_passes)

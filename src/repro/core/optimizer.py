"""Nesterov accelerated gradient optimizer with Barzilai-Borwein steps.

This is the optimizer of ePlace [56] (which DREAMPlace [53], the engine
the paper builds on, re-implements in PyTorch): Nesterov's accelerated
first-order method whose step length is predicted by the Barzilai-Borwein
(BB) secant rule instead of an expensive line search.  Steps are clamped
to a trust radius so the noisy FFT density gradient cannot explode the
iterate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

GradFn = Callable[[np.ndarray], Tuple[float, np.ndarray]]


@dataclass
class OptimizerState:
    """Internal optimizer state exposed for inspection/tests."""

    iteration: int
    value: float
    grad_norm: float
    step_length: float
    #: Largest single-coordinate displacement of the accepted iterate in
    #: this step (mm) — the quantity the engine's incremental density
    #: and Verlet neighbor-list reuse are keyed on.
    max_move_mm: float = 0.0


class NesterovOptimizer:
    """Nesterov + BB first-order minimiser over ``(n, 2)`` positions."""

    def __init__(self, objective: GradFn, x0: np.ndarray,
                 max_move: float, initial_step: Optional[float] = None,
                 project: Optional[Callable[[np.ndarray], np.ndarray]] = None) -> None:
        """Args:
            objective: Callback returning ``(value, grad)`` at a point.
            x0: Initial positions, shape ``(n, 2)``.
            max_move: Trust radius — no coordinate moves further than
                this in one step (mm).
            initial_step: First step length; defaults to ``max_move``
                divided by the initial gradient infinity-norm.
            project: Optional feasibility projection applied after every
                step (e.g. clamping into the placement region).
        """
        if max_move <= 0:
            raise ValueError("max_move must be positive")
        self.objective = objective
        self.max_move = max_move
        self.project = project if project is not None else (lambda x: x)
        self.x = np.array(x0, dtype=float)
        self.v = self.x.copy()  # lookahead (reference) point
        self.a = 1.0            # Nesterov momentum coefficient
        self._initial_step = initial_step
        self._prev_v: Optional[np.ndarray] = None
        self._prev_grad: Optional[np.ndarray] = None
        self.state = OptimizerState(iteration=0, value=np.inf,
                                    grad_norm=np.inf, step_length=0.0)

    def _bb_step(self, grad: np.ndarray) -> float:
        """Barzilai-Borwein step-length prediction."""
        if self._prev_v is None or self._prev_grad is None:
            if self._initial_step is not None:
                return self._initial_step
            gmax = float(np.abs(grad).max())
            return self.max_move / max(gmax, 1e-12)
        dv = (self.v - self._prev_v).ravel()
        dg = (grad - self._prev_grad).ravel()
        denom = float(dg @ dg)
        if denom <= 1e-18:
            return self.state.step_length or self.max_move
        return abs(float(dv @ dg)) / denom

    def step(self) -> OptimizerState:
        """One Nesterov iteration; returns the updated state."""
        value, grad = self.objective(self.v)
        # Adaptive restart (O'Donoghue & Candes): momentum past a valley
        # makes the objective climb — drop it and continue from x.  The
        # 10% slack tolerates the engine's growing penalty multipliers.
        if (self.state.iteration > 0 and np.isfinite(self.state.value)
                and value > 1.10 * abs(self.state.value)):
            self.a = 1.0
            self.v = self.x.copy()
            value, grad = self.objective(self.v)
        alpha = self._bb_step(grad)
        # Trust region: cap the largest single-coordinate displacement.
        gmax = float(np.abs(grad).max())
        if gmax > 0:
            alpha = min(alpha, self.max_move / gmax)
        x_new = self.project(self.v - alpha * grad)
        a_new = 0.5 * (1.0 + np.sqrt(4.0 * self.a * self.a + 1.0))
        v_new = self.project(x_new + (self.a - 1.0) / a_new * (x_new - self.x))

        self._prev_v = self.v
        self._prev_grad = grad
        moved = float(np.abs(x_new - self.x).max()) if x_new.size else 0.0
        self.x, self.v, self.a = x_new, v_new, a_new
        self.state = OptimizerState(
            iteration=self.state.iteration + 1,
            value=value,
            grad_norm=float(np.linalg.norm(grad)),
            step_length=alpha,
            max_move_mm=moved,
        )
        return self.state

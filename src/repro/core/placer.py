"""Qplacer orchestrator (Fig. 7): the public placement entry point.

``QPlacer.place(netlist)`` runs the full flow of the paper:

1. frequency assignment is already part of the netlist (Fig. 7-a);
2. preprocessing pads the instances and partitions the resonators
   (Fig. 7-b, :mod:`repro.core.preprocess`);
3. the frequency-aware electrostatic engine optimises positions
   (Fig. 7-c, :mod:`repro.core.engine`);
4. the integration-aware legalizer finalises the layout (Fig. 7-d,
   :mod:`repro.core.legalizer`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .. import profiling
from ..devices.layout import Layout
from ..devices.netlist import QuantumNetlist
from .config import PlacerConfig
from .detailed import DetailedPlaceStats
from .engine import GlobalPlacer, GlobalPlaceResult
from .legalizer import LegalizeStats, legalize
from .preprocess import PlacementProblem, build_problem


@dataclass
class PlacementResult:
    """Complete output of one placement run.

    Attributes:
        layout: The final legalized layout.
        global_layout: The (illegal) global-placement layout, useful for
            diagnostics and the engine benchmarks.
        problem: The preprocessed placement problem.
        global_result: Optimizer telemetry.
        legalize_stats: Legalizer telemetry.
        runtime_s: Wall-clock duration of the whole flow.
        detailed_stats: Detailed-placement telemetry (None when the
            resolved pass count is 0).
        phase_profile: Per-phase wall-clock of the run
            (:mod:`repro.profiling` paths: ``"preprocess"``,
            ``"global"``, ``"legalize"``, ``"legalize/qubits"``, ...,
            ``"detailed"``); top-level entries sum to ~``runtime_s``.
        portfolio_scores: Per-member fidelity scores when this result
            was produced by the portfolio placer (None otherwise).
    """

    layout: Layout
    global_layout: Layout
    problem: PlacementProblem
    global_result: GlobalPlaceResult
    legalize_stats: LegalizeStats
    runtime_s: float
    detailed_stats: Optional[DetailedPlaceStats] = None
    phase_profile: Dict[str, float] = field(default_factory=dict)
    portfolio_scores: Optional[Dict[str, float]] = None

    @property
    def num_cells(self) -> int:
        """Movable instance count (#cells of Table II)."""
        return self.problem.num_instances

    @property
    def iterations(self) -> int:
        """Global-placement iterations executed."""
        return self.global_result.iterations

    @property
    def avg_iteration_s(self) -> float:
        """Average runtime per iteration (Table II's "Avg")."""
        return self.runtime_s / max(self.iterations, 1)


class QPlacer:
    """Frequency-aware electrostatic placer for superconducting QCs."""

    def __init__(self, config: Optional[PlacerConfig] = None) -> None:
        self.config = config if config is not None else PlacerConfig()

    @property
    def strategy_name(self) -> str:
        """Layout tag: ``"qplacer"`` or ``"classic"``."""
        return "qplacer" if self.config.frequency_aware else "classic"

    def place(self, netlist: QuantumNetlist,
              initial_positions: Optional[np.ndarray] = None
              ) -> PlacementResult:
        """Run the full placement flow on a netlist.

        Args:
            netlist: The netlist to place.
            initial_positions: Optional ``(n, 2)`` warm-start centres
                for the global placement (e.g. a cached layout of the
                same topology); ``None`` uses the seeded default.
        """
        start = time.perf_counter()
        detailed_stats: Optional[DetailedPlaceStats] = None
        with profiling.PhaseProfiler() as prof:
            with profiling.phase("preprocess"):
                problem = build_problem(netlist, self.config)
            engine = GlobalPlacer(problem, self.config,
                                  initial_positions=initial_positions)
            global_result = engine.run()
            legal_positions, legalize_stats = legalize(
                problem, global_result.positions, self.config)
            passes = self.config.resolved_detailed_passes(
                problem.num_instances)
            if passes > 0:
                from .detailed import refine_placement
                legal_positions, detailed_stats = refine_placement(
                    problem, legal_positions, self.config,
                    max_passes=passes)
        runtime = time.perf_counter() - start

        layout = Layout(
            instances=problem.instances,
            positions=legal_positions,
            netlist=netlist,
            strategy=self.strategy_name,
        ).translated_to_origin()
        global_layout = Layout(
            instances=problem.instances,
            positions=global_result.positions,
            netlist=netlist,
            strategy=f"{self.strategy_name}-global",
        )
        return PlacementResult(
            layout=layout,
            global_layout=global_layout,
            problem=problem,
            global_result=global_result,
            legalize_stats=legalize_stats,
            runtime_s=runtime,
            detailed_stats=detailed_stats,
            phase_profile=prof.flat_seconds(),
        )


def place_topology(topology_name_or_netlist, config: Optional[PlacerConfig] = None
                   ) -> PlacementResult:
    """One-call helper: place a topology by name or a prebuilt netlist."""
    from ..devices.netlist import build_netlist
    from ..devices.topology import get_topology

    if isinstance(topology_name_or_netlist, QuantumNetlist):
        netlist = topology_name_or_netlist
    else:
        netlist = build_netlist(get_topology(topology_name_or_netlist))
    return QPlacer(config).place(netlist)

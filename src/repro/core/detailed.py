"""Detailed placement: legality-preserving wirelength refinement.

Classical placement flows follow legalization with a *detailed placement*
stage that locally improves wirelength without breaking legality.  This
module implements same-kind swaps for the quantum layout problem:
exchange the sites of two equal-footprint instances when that shortens
the chain wirelength — the quantum twist is that a swap must also
preserve the resonant-spacing rule (swapping two instances of
*different* frequencies can create a hotspot) and resonator contiguity,
so every accepted move goes through the legalizer's transactional
:meth:`~repro.core.legalizer.Legalizer.try_moves` feasibility gate.

This is the *batched* engine: net partners live in one CSR-style flat
array pair, each visited instance scores all its hash-screened swap
candidates with a single vectorized gain evaluation
(:meth:`DetailedPlacer._swap_gains`), and per-instance wirelengths are
maintained incrementally across accepted swaps instead of being
recomputed every sweep.  The scalar seed implementation is preserved in
:mod:`repro.core.detailed_reference` and the perf bench gates this
engine against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import profiling
from .config import PlacerConfig
from .legalizer import Legalizer
from .preprocess import PlacementProblem
from .wirelength import hpwl


@dataclass
class DetailedPlaceStats:
    """Telemetry of one detailed-placement run.

    Attributes:
        swaps_applied: Accepted pairwise swaps.
        slides_applied: Accepted single-instance slides.
        passes: Refinement sweeps executed.
        hpwl_before: Chain wirelength entering refinement.
        hpwl_after: Chain wirelength after refinement.
        candidates_scored: Swap candidates gain-evaluated (batched).
    """

    swaps_applied: int = 0
    slides_applied: int = 0
    passes: int = 0
    hpwl_before: float = 0.0
    hpwl_after: float = 0.0
    candidates_scored: int = 0

    @property
    def improvement(self) -> float:
        """Relative wirelength reduction (0.05 = 5% shorter)."""
        if self.hpwl_before <= 0:
            return 0.0
        return 1.0 - self.hpwl_after / self.hpwl_before


class DetailedPlacer:
    """Greedy legality-preserving refinement over a legalized layout."""

    def __init__(self, problem: PlacementProblem,
                 config: Optional[PlacerConfig] = None) -> None:
        self.problem = problem
        self.config = config if config is not None else problem.config
        n = problem.num_instances
        self._nets_by_instance: Dict[int, List[int]] = {}
        for net_idx, (a, b) in enumerate(problem.nets):
            self._nets_by_instance.setdefault(int(a), []).append(net_idx)
            self._nets_by_instance.setdefault(int(b), []).append(net_idx)
        # Net partners per instance: all 2-pin nets of instance i reduce
        # to |pos[i] - pos[partner]|, stored CSR-style so both the
        # full-array wirelength pass and the batched gain kernel gather
        # partner slices without dict lookups.
        self._partners: Dict[int, np.ndarray] = {}
        counts = np.zeros(n, dtype=np.int64)
        for inst, net_ids in self._nets_by_instance.items():
            arr = np.array(
                [int(problem.nets[k, 1]) if int(problem.nets[k, 0]) == inst
                 else int(problem.nets[k, 0]) for k in net_ids],
                dtype=np.int64)
            self._partners[inst] = arr
            counts[inst] = arr.size
        self._poff = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self._poff[1:])
        self._pflat = np.zeros(int(self._poff[-1]), dtype=np.int64)
        for inst, arr in self._partners.items():
            self._pflat[self._poff[inst]:self._poff[inst + 1]] = arr
        # Same-kind groups: instances are swappable when both are qubits
        # or both segments with equal footprints.
        kind_keys = np.column_stack([
            problem.is_qubit.astype(np.int64),
            problem.sizes[:, 0], problem.sizes[:, 1]])
        _, self._kind_id = np.unique(kind_keys, axis=0, return_inverse=True)

    # -- wirelength deltas -------------------------------------------------------

    def _instance_wl(self, positions: np.ndarray, inst: int) -> float:
        """Wirelength of all nets touching one instance."""
        partners = self._partners.get(inst)
        if partners is None:
            return 0.0
        return float(np.abs(positions[inst] - positions[partners]).sum())

    def _instance_wl_all(self, positions: np.ndarray) -> np.ndarray:
        """Per-instance net wirelengths, one vectorized pass."""
        n = self.problem.num_instances
        if self._pflat.size == 0:
            return np.zeros(n)
        owners = np.repeat(np.arange(n), np.diff(self._poff))
        terms = np.abs(positions[owners] - positions[self._pflat]).sum(axis=1)
        csum = np.concatenate([[0.0], np.cumsum(terms)])
        return csum[self._poff[1:]] - csum[self._poff[:-1]]

    def _pair_wl(self, positions: np.ndarray, i: int, j: int) -> float:
        """Combined wirelength of the nets of two instances.

        Shared nets are counted twice on both sides of a comparison, so
        deltas stay correct.
        """
        return self._instance_wl(positions, i) + self._instance_wl(positions, j)

    def _swap_gain(self, positions: np.ndarray, i: int, j: int) -> float:
        """Wirelength gain of swapping the sites of ``i`` and ``j``.

        The scalar oracle: evaluates the same quantity as
        ``_pair_wl(before) - _pair_wl(after-swap)`` without
        materialising a swapped copy of the position array.  The batched
        kernel (:meth:`_swap_gains`) is property-tested against it.
        """
        pi, pj = positions[i], positions[j]
        gain = 0.0
        for inst, other, new_pos in ((i, j, pj), (j, i, pi)):
            partners = self._partners.get(inst)
            if partners is None:
                continue
            pp = positions[partners]
            before = np.abs(positions[inst] - pp).sum()
            # After the swap the partner that *is* the swap peer has
            # moved to this instance's old site.
            pp = pp.copy()
            pp[partners == other] = positions[inst]
            after = np.abs(new_pos - pp).sum()
            gain += float(before - after)
        return gain

    def _swap_gains(self, positions: np.ndarray, wl: np.ndarray,
                    i: int, js: np.ndarray) -> np.ndarray:
        """Gains of swapping ``i`` with each candidate in ``js``.

        ``wl`` must hold the *current* per-instance wirelengths (the
        incrementally maintained array), which stand in for the "before"
        sums; the "after" sums come from one (candidates x partners)
        distance matrix per side, with the mover-is-partner entries
        corrected to the post-swap geometry.
        """
        pos_i = positions[i]
        pos_js = positions[js]
        # Side 1: i sits at each candidate's site; partner j (if any)
        # has moved to i's old site.
        mine = self._pflat[self._poff[i]:self._poff[i + 1]]
        if mine.size:
            d = np.abs(pos_js[:, None, :]
                       - positions[mine][None, :, :]).sum(axis=2)
            match = js[:, None] == mine[None, :]
            if match.any():
                corr = np.abs(pos_js - pos_i).sum(axis=1)
                d = np.where(match, corr[:, None], d)
            after_i = d.sum(axis=1)
        else:
            after_i = np.zeros(js.size)
        # Side 2: each candidate j sits at i's site; its partners stay
        # put except i itself, which now occupies j's old site.
        counts = self._poff[js + 1] - self._poff[js]
        total = int(counts.sum())
        if total:
            ends = np.cumsum(counts)
            within = np.arange(total) - np.repeat(ends - counts, counts)
            q = self._pflat[np.repeat(self._poff[js], counts) + within]
            owner = np.repeat(np.arange(js.size), counts)
            terms = np.abs(pos_i - positions[q]).sum(axis=1)
            hit = q == i
            if hit.any():
                terms[hit] = np.abs(pos_i - pos_js[owner[hit]]).sum(axis=1)
            csum = np.concatenate([[0.0], np.cumsum(terms)])
            after_j = csum[ends] - csum[ends - counts]
        else:
            after_j = np.zeros(js.size)
        return (wl[i] - after_i) + (wl[js] - after_j)

    # -- main loop ----------------------------------------------------------------

    def refine(self, positions: np.ndarray,
               max_passes: int = 3,
               neighbor_radius_mm: float = 1.5,
               only: Optional[np.ndarray] = None
               ) -> Tuple[np.ndarray, DetailedPlaceStats]:
        """Refine a legal placement; returns (positions, stats).

        Args:
            positions: Legalized instance centres.
            max_passes: Sweeps over all instances.
            neighbor_radius_mm: Swap-partner search radius.
            only: Optional instance indices to restrict the sweep to.
                Swap *partners* still come from the full spatial hash;
                only the set of instances visited shrinks.  Incremental
                flows (ensemble repair) pass the instances the
                legalizer actually disturbed.
        """
        with profiling.phase("detailed"):
            return self._refine(positions, max_passes, neighbor_radius_mm,
                                only)

    def _refine(self, positions: np.ndarray, max_passes: int,
                neighbor_radius_mm: float,
                only: Optional[np.ndarray] = None
                ) -> Tuple[np.ndarray, DetailedPlaceStats]:
        p = self.problem
        legalizer = Legalizer(p, self.config)
        legalizer.load(positions)

        stats = DetailedPlaceStats(hpwl_before=hpwl(positions, p.nets))
        kind_id = self._kind_id
        wl = self._instance_wl_all(legalizer.positions)
        visit = None
        if only is not None:
            visit = np.zeros(p.num_instances, dtype=bool)
            visit[np.asarray(only, dtype=np.int64)] = True

        for _ in range(max_passes):
            stats.passes += 1
            improved = False
            order = np.argsort(-wl, kind="stable")
            if visit is not None:
                order = order[visit[order]]
            for i in order.tolist():
                xi, yi = legalizer.positions[i]
                js = legalizer.neighbors(float(xi), float(yi),
                                         neighbor_radius_mm)
                if js.size:
                    js = js[(js != i) & (kind_id[js] == kind_id[i])]
                if js.size == 0:
                    continue
                gains = self._swap_gains(legalizer.positions, wl, i, js)
                stats.candidates_scored += int(js.size)
                k = int(np.argmax(gains))
                if gains[k] <= 1e-9:
                    continue
                j = int(js[k])
                pos_i = (float(legalizer.positions[i, 0]),
                         float(legalizer.positions[i, 1]))
                pos_j = (float(legalizer.positions[j, 0]),
                         float(legalizer.positions[j, 1]))
                if legalizer.try_moves([(i, pos_j), (j, pos_i)]):
                    legalizer.commit()
                    stats.swaps_applied += 1
                    improved = True
                    # Refresh the touched wirelengths: the movers and
                    # every partner of either (their net terms changed).
                    touched = {i, j}
                    touched.update(
                        self._pflat[self._poff[i]:self._poff[i + 1]].tolist())
                    touched.update(
                        self._pflat[self._poff[j]:self._poff[j + 1]].tolist())
                    for t in touched:
                        wl[t] = self._instance_wl(legalizer.positions, t)
            if not improved:
                break

        stats.hpwl_after = hpwl(legalizer.positions, p.nets)
        return legalizer.positions.copy(), stats


def refine_placement(problem: PlacementProblem, positions: np.ndarray,
                     config: Optional[PlacerConfig] = None,
                     max_passes: int = 3,
                     only: Optional[np.ndarray] = None
                     ) -> Tuple[np.ndarray, DetailedPlaceStats]:
    """Convenience wrapper around :class:`DetailedPlacer`."""
    return DetailedPlacer(problem, config).refine(positions,
                                                  max_passes=max_passes,
                                                  only=only)

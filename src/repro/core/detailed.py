"""Detailed placement: legality-preserving wirelength refinement.

Classical placement flows follow legalization with a *detailed placement*
stage that locally improves wirelength without breaking legality.  This
module implements two such moves for the quantum layout problem:

* **same-kind swap**: exchange the sites of two equal-footprint instances
  when that shortens the chain wirelength — the quantum twist is that a
  swap must also preserve the resonant-spacing rule (swapping two
  instances of *different* frequencies can create a hotspot, so every
  candidate is re-checked with the legalizer's feasibility rule);
* **slide**: move one instance to a nearby free site.

Both moves preserve resonator contiguity by construction: a move is
rejected when it would disconnect the mover's (or the partner's)
resonator cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import PlacerConfig
from .legalizer import Legalizer
from .preprocess import PlacementProblem
from .wirelength import hpwl


@dataclass
class DetailedPlaceStats:
    """Telemetry of one detailed-placement run.

    Attributes:
        swaps_applied: Accepted pairwise swaps.
        slides_applied: Accepted single-instance slides.
        passes: Refinement sweeps executed.
        hpwl_before: Chain wirelength entering refinement.
        hpwl_after: Chain wirelength after refinement.
    """

    swaps_applied: int = 0
    slides_applied: int = 0
    passes: int = 0
    hpwl_before: float = 0.0
    hpwl_after: float = 0.0

    @property
    def improvement(self) -> float:
        """Relative wirelength reduction (0.05 = 5% shorter)."""
        if self.hpwl_before <= 0:
            return 0.0
        return 1.0 - self.hpwl_after / self.hpwl_before


class DetailedPlacer:
    """Greedy legality-preserving refinement over a legalized layout."""

    def __init__(self, problem: PlacementProblem,
                 config: Optional[PlacerConfig] = None) -> None:
        self.problem = problem
        self.config = config if config is not None else problem.config
        self._nets_by_instance: Dict[int, List[int]] = {}
        for net_idx, (a, b) in enumerate(problem.nets):
            self._nets_by_instance.setdefault(int(a), []).append(net_idx)
            self._nets_by_instance.setdefault(int(b), []).append(net_idx)

    # -- wirelength deltas -------------------------------------------------------

    def _instance_wl(self, positions: np.ndarray, inst: int) -> float:
        """Wirelength of all nets touching one instance."""
        total = 0.0
        for net_idx in self._nets_by_instance.get(inst, ()):
            a, b = self.problem.nets[net_idx]
            delta = positions[a] - positions[b]
            total += abs(float(delta[0])) + abs(float(delta[1]))
        return total

    def _pair_wl(self, positions: np.ndarray, i: int, j: int) -> float:
        """Combined wirelength of the nets of two instances.

        Shared nets are counted twice on both sides of a comparison, so
        deltas stay correct.
        """
        return self._instance_wl(positions, i) + self._instance_wl(positions, j)

    # -- feasibility --------------------------------------------------------------

    def _feasible(self, legalizer: Legalizer,
                  moves: Sequence[Tuple[int, Tuple[float, float]]]) -> bool:
        """Try a batch of moves under the legalizer's spacing rule.

        On success the instances are left at their new sites (hash and
        positions updated); on any failure the original state is fully
        restored and False is returned.
        """
        originals = [(i, tuple(legalizer.positions[i])) for i, _ in moves]

        def restore() -> None:
            for i, _ in moves:
                if i in legalizer._placed:
                    legalizer._unplace(i)
            for i, (x, y) in originals:
                legalizer._place(i, x, y)

        for i, _ in moves:
            legalizer._unplace(i)
        for i, (x, y) in moves:
            if not legalizer._can_place(i, x, y):
                restore()
                return False
            legalizer._place(i, x, y)
        # Contiguity guard for every affected resonator.
        by_res = legalizer._segments_by_resonator()
        for i, _ in moves:
            r = int(self.problem.resonator_index[i])
            if r >= 0 and len(by_res[r]) > 1:
                if len(legalizer._clusters(by_res[r])) > 1:
                    restore()
                    return False
        return True

    # -- main loop ----------------------------------------------------------------

    def refine(self, positions: np.ndarray,
               max_passes: int = 3,
               neighbor_radius_mm: float = 1.5
               ) -> Tuple[np.ndarray, DetailedPlaceStats]:
        """Refine a legal placement; returns (positions, stats).

        Args:
            positions: Legalized instance centres.
            max_passes: Sweeps over all instances.
            neighbor_radius_mm: Swap-partner search radius.
        """
        p = self.problem
        legalizer = Legalizer(p, self.config)
        legalizer.positions = positions.copy()
        for i in range(p.num_instances):
            legalizer._hash.add(i, positions[i, 0], positions[i, 1])
            legalizer._placed.add(i)

        stats = DetailedPlaceStats(hpwl_before=hpwl(positions, p.nets))

        def same_kind(i: int, j: int) -> bool:
            return (bool(p.is_qubit[i]) == bool(p.is_qubit[j])
                    and bool(np.allclose(p.sizes[i], p.sizes[j])))

        for _ in range(max_passes):
            stats.passes += 1
            improved = False
            order = sorted(range(p.num_instances),
                           key=lambda i: -self._instance_wl(legalizer.positions, i))
            for i in order:
                xi, yi = legalizer.positions[i]
                best_gain = 1e-9
                best_partner = None
                for j in legalizer._hash.near(xi, yi, neighbor_radius_mm):
                    if j == i or not same_kind(i, j):
                        continue
                    before = self._pair_wl(legalizer.positions, i, j)
                    trial = legalizer.positions.copy()
                    trial[[i, j]] = trial[[j, i]]
                    after = self._pair_wl(trial, i, j)
                    gain = before - after
                    if gain > best_gain:
                        best_gain = gain
                        best_partner = j
                if best_partner is None:
                    continue
                j = best_partner
                pos_i = tuple(legalizer.positions[i])
                pos_j = tuple(legalizer.positions[j])
                # _feasible leaves the pair at the new sites on success
                # and fully restores the old state on failure.
                if self._feasible(legalizer, [(i, pos_j), (j, pos_i)]):
                    stats.swaps_applied += 1
                    improved = True
            if not improved:
                break

        stats.hpwl_after = hpwl(legalizer.positions, p.nets)
        return legalizer.positions.copy(), stats


def refine_placement(problem: PlacementProblem, positions: np.ndarray,
                     config: Optional[PlacerConfig] = None,
                     max_passes: int = 3
                     ) -> Tuple[np.ndarray, DetailedPlaceStats]:
    """Convenience wrapper around :class:`DetailedPlacer`."""
    return DetailedPlacer(problem, config).refine(positions,
                                                  max_passes=max_passes)

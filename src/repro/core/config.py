"""Placer configuration (the paper's hyper-parameters, Sec. V-B/C).

One :class:`PlacerConfig` drives preprocessing, the electrostatic global
placement, and legalization.  ``Classic`` (the baseline of Sec. V-B) is
the *identical* configuration with the frequency-awareness switched off:
``PlacerConfig.classic()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .. import constants

#: The placement algorithms selectable through ``PlacerConfig.placer``
#: (implemented in :mod:`repro.placers`; defined here so the config —
#: and its parse-time validation — never imports the placer package).
PLACER_CHOICES: Tuple[str, ...] = ("force", "sa", "trivial", "subgraph",
                                   "portfolio")

#: Seed placers usable as simulated-annealing warm starts.
SEED_PLACER_CHOICES: Tuple[str, ...] = ("trivial", "subgraph")


@dataclass(frozen=True)
class PlacerConfig:
    """All tunable parameters of the placement flow.

    Geometry / preprocessing:

    Attributes:
        segment_size_mm: Resonator segment block size ``lb`` (Sec. IV-B2).
        qubit_padding_mm: Qubit padding ``dq``.
        resonator_padding_mm: Resonator padding ``dr``.
        qubit_clearance_mm: Legalized routing clearance between a qubit
            and any non-attached neighbour (sub-padding lattice spacing).
        segment_clearance_mm: Likewise between resonator segments of
            different resonators.
        detuning_threshold_ghz: Resonance threshold ``Delta_c``.

    Global placement:

    Attributes:
        frequency_aware: Enables the frequency repulsive force and the
            resonant checker in legalization; False = Classic baseline.
        target_density: Bin-density ceiling ``D_hat`` (Eq. 11).
        whitespace_factor: Region sizing: region area = total inflated
            instance area / whitespace_factor.
        num_bins: Density grid resolution per axis (power of two).
        max_iterations: Upper bound on optimizer iterations.
        min_iterations: Iterations before convergence checks begin.
        overflow_target: Stop when density overflow drops below this.
        wirelength_smoothing_mm: Smooth-|x| parameter of the wirelength
            model (comparable to a fraction of a bin).
        freq_force_smoothing_mm: Softening length of the 1/d repulsion.
        lambda_density_multiplier: Per-iteration density-penalty growth.
        lambda_freq_multiplier: Per-iteration frequency-penalty growth.
        initial_freq_weight: Initial ratio |grad F| / |grad WL|.
        seed: Seed for the deterministic initial-position jitter.

    Legalization:

    Attributes:
        legalize_integration: Run the integration-aware repair (Alg. 1).
        spiral_max_radius_sites: Search bound of the greedy spiral.
        detailed_passes: Post-legalization refinement sweeps; ``None``
            resolves per problem size (:meth:`resolved_detailed_passes`).
        legalizer_screening: ``"hash"`` (spatial-hash candidate screen)
            or ``"scan"`` (full-array mask baseline).

    Spatial interaction backend (:mod:`repro.core.interactions`):

    Attributes:
        interaction_backend: ``"auto"`` (sparse above
            ``sparse_min_instances`` instances), ``"dense"``, or
            ``"sparse"``.
        sparse_min_instances: Problem-size threshold for ``auto``.
        freq_pair_cutoff_mm: Sparse-only distance cutoff of the
            frequency repulsive force.
        freq_pair_skin_mm: Sparse-only Verlet skin of the neighbor list.
        freq_pair_banding: Bucket neighbor-list candidates by frequency
            band before the spatial grid, so never-resonant pairs are
            never materialised.  Result-preserving (the exact resonance
            filter still runs); off reproduces the PR 2 rebuild cost.
        incremental_density: ``"auto"`` (incremental on sparse-resolved
            problems, dense recompute elsewhere), ``"on"``, or ``"off"``.
        density_flush_interval: Full-rasterise checkpoint cadence of the
            incremental density path, in objective evaluations; ``1``
            flushes every evaluation, which is arithmetically identical
            to the dense recompute (the bench's bit-identity gate).
        density_move_threshold_mm: Instances displaced at most this per
            axis since their last scatter keep their stale bin charge
            between flushes (0 = re-scatter every moved instance).
    """

    # geometry / preprocessing
    segment_size_mm: float = constants.DEFAULT_SEGMENT_SIZE_MM
    qubit_padding_mm: float = constants.QUBIT_PADDING_MM
    resonator_padding_mm: float = constants.RESONATOR_PADDING_MM
    qubit_clearance_mm: float = 0.1
    segment_clearance_mm: float = 0.05
    detuning_threshold_ghz: float = constants.DETUNING_THRESHOLD_GHZ

    # global placement
    frequency_aware: bool = True
    target_density: float = constants.DEFAULT_TARGET_DENSITY
    whitespace_factor: float = 0.85
    num_bins: int = 64
    max_iterations: int = 400
    min_iterations: int = 40
    overflow_target: float = 0.08
    wirelength_smoothing_mm: float = 0.05
    freq_force_smoothing_mm: float = 0.3
    lambda_density_multiplier: float = 1.05
    lambda_freq_multiplier: float = 1.03
    initial_freq_weight: float = 0.5
    seed: int = 0

    # legalization
    legalize_integration: bool = True
    chain_aware_tetris: bool = True
    spiral_max_radius_sites: int = 64
    #: Detailed-placement refinement sweeps after legalization.
    #: ``None`` = auto: one pass on sparse-resolved (condor-class)
    #: problems where the vectorized engine makes it affordable, none on
    #: the dense paper tiers (whose layouts stay bit-identical).
    detailed_passes: Optional[int] = None
    #: Candidate screening of the legalizer's feasibility checks:
    #: ``"hash"`` queries the linked-cell spatial hash (superset screen,
    #: identical verdicts), ``"scan"`` keeps the full-array mask path —
    #: the pre-hash baseline the perf bench measures against.
    legalizer_screening: str = "hash"

    # spatial interaction backend (see repro.core.interactions)
    #: ``"auto"`` (size-based), ``"dense"``, or ``"sparse"``.
    interaction_backend: str = "auto"
    #: ``auto`` resolves to sparse above this instance count.
    sparse_min_instances: int = 2048
    #: Sparse-only: frequency-force interaction cutoff (mm).  Resonant
    #: pairs further apart contribute < 1/cutoff each and are dropped
    #: from the repulsive sum; the dense backend always sums every pair.
    freq_pair_cutoff_mm: float = 3.0
    #: Sparse-only: Verlet skin added to the cutoff when building the
    #: neighbor list; the list is rebuilt once any instance drifts more
    #: than half the skin.
    freq_pair_skin_mm: float = 1.5
    #: Frequency-banded candidate generation during neighbor-list
    #: rebuilds (result-preserving; the dominant condor-scale win).
    freq_pair_banding: bool = True

    # incremental density (see repro.core.density)
    #: ``"auto"`` (on for sparse-resolved problems), ``"on"``, ``"off"``.
    incremental_density: str = "auto"
    #: Objective evaluations between full-rasterise checkpoints (>= 1).
    density_flush_interval: int = 16
    #: Per-axis displacement below which an instance's bin charge is
    #: left stale between flushes (mm, >= 0).
    density_move_threshold_mm: float = 0.01

    # placement algorithm selection (see repro.placers)
    #: Which placement engine runs the engine strategies: ``"force"``
    #: (the paper's electrostatic flow), ``"sa"`` (simulated annealing
    #: over the transactional legalizer), the cheap ``"trivial"`` /
    #: ``"subgraph"`` seed placers, or ``"portfolio"`` (race members and
    #: keep the best-fidelity layout).
    placer: str = "force"
    #: Seed placer annealing warm-starts from (``"trivial"`` or
    #: ``"subgraph"``) when no explicit initial positions are given.
    sa_seed_placer: str = "trivial"
    #: Annealing rounds (temperature steps).
    sa_rounds: int = 24
    #: Proposed moves per round.
    sa_moves_per_round: int = 400
    #: Random probe moves used to calibrate the initial temperature
    #: from the mean uphill cost delta (Enola's adaptive-T scheme).
    sa_probe_moves: int = 64
    #: Target probability of accepting a mean-uphill move at T0.
    sa_uphill_probability: float = 0.85
    #: Exponential cooling factor per round (0 < c < 1).
    sa_cooling: float = 0.82
    #: Reheat once a round's acceptance rate drops below this.
    sa_reheat_threshold: float = 0.02
    #: Temperature multiplier applied on reheat (>= 1).
    sa_reheat_factor: float = 1.6
    #: Relocation radius in lattice sites per proposed move.
    sa_move_radius_sites: int = 3
    #: Probability a proposed move is a same-kind swap instead of a
    #: single relocation.
    sa_swap_probability: float = 0.3
    #: Member placers the portfolio races (any non-portfolio choice).
    portfolio_members: Tuple[str, ...] = ("force", "sa", "subgraph")

    def __post_init__(self) -> None:
        # JSON payloads deliver tuple fields as lists; normalise before
        # validation so equal configs canonicalise identically.
        if not isinstance(self.portfolio_members, tuple):
            object.__setattr__(self, "portfolio_members",
                               tuple(self.portfolio_members))
        if self.segment_size_mm <= 0:
            raise ValueError("segment size must be positive")
        if self.qubit_padding_mm < 0 or self.resonator_padding_mm < 0:
            raise ValueError("paddings must be non-negative")
        if self.qubit_clearance_mm < 0 or self.segment_clearance_mm < 0:
            raise ValueError("clearances must be non-negative")
        if not (0 < self.target_density <= 2.0):
            raise ValueError("target density must be in (0, 2]")
        if not (0 < self.whitespace_factor <= 1.0):
            raise ValueError("whitespace factor must be in (0, 1]")
        if self.num_bins < 8:
            raise ValueError("need at least 8 density bins per axis")
        if self.max_iterations < self.min_iterations:
            raise ValueError("max_iterations must be >= min_iterations")
        if self.detailed_passes is not None and self.detailed_passes < 0:
            raise ValueError("detailed_passes must be >= 0 (or None for "
                             f"auto), got {self.detailed_passes}")
        if self.legalizer_screening not in ("hash", "scan"):
            raise ValueError(
                f"legalizer_screening must be one of ('hash', 'scan'), "
                f"got {self.legalizer_screening!r}")
        if self.spiral_max_radius_sites < 0:
            raise ValueError("spiral_max_radius_sites must be >= 0, got "
                             f"{self.spiral_max_radius_sites}")
        if self.interaction_backend not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"interaction_backend must be one of ('auto', 'dense', "
                f"'sparse'), got {self.interaction_backend!r}")
        if self.sparse_min_instances < 1:
            raise ValueError("sparse_min_instances must be positive")
        if self.freq_pair_cutoff_mm <= 0 or self.freq_pair_skin_mm <= 0:
            raise ValueError("frequency pair cutoff and skin must be "
                             "positive")
        if self.incremental_density not in ("auto", "on", "off"):
            raise ValueError(
                f"incremental_density must be one of ('auto', 'on', "
                f"'off'), got {self.incremental_density!r}")
        if self.density_flush_interval < 1:
            raise ValueError("density_flush_interval must be >= 1, got "
                             f"{self.density_flush_interval}")
        if self.density_move_threshold_mm < 0:
            raise ValueError("density_move_threshold_mm must be >= 0, "
                             f"got {self.density_move_threshold_mm}")
        if self.placer not in PLACER_CHOICES:
            raise ValueError(
                f"placer must be one of {PLACER_CHOICES}, "
                f"got {self.placer!r}")
        if self.sa_seed_placer not in SEED_PLACER_CHOICES:
            raise ValueError(
                f"sa_seed_placer must be one of {SEED_PLACER_CHOICES}, "
                f"got {self.sa_seed_placer!r}")
        if self.sa_rounds < 1 or self.sa_moves_per_round < 1 \
                or self.sa_probe_moves < 1:
            raise ValueError("sa_rounds, sa_moves_per_round and "
                             "sa_probe_moves must all be >= 1")
        if not (0.0 < self.sa_uphill_probability < 1.0):
            raise ValueError("sa_uphill_probability must be in (0, 1), "
                             f"got {self.sa_uphill_probability}")
        if not (0.0 < self.sa_cooling < 1.0):
            raise ValueError("sa_cooling must be in (0, 1), got "
                             f"{self.sa_cooling}")
        if not (0.0 <= self.sa_reheat_threshold < 1.0):
            raise ValueError("sa_reheat_threshold must be in [0, 1), got "
                             f"{self.sa_reheat_threshold}")
        if self.sa_reheat_factor < 1.0:
            raise ValueError("sa_reheat_factor must be >= 1, got "
                             f"{self.sa_reheat_factor}")
        if self.sa_move_radius_sites < 1:
            raise ValueError("sa_move_radius_sites must be >= 1, got "
                             f"{self.sa_move_radius_sites}")
        if not (0.0 <= self.sa_swap_probability <= 1.0):
            raise ValueError("sa_swap_probability must be in [0, 1], got "
                             f"{self.sa_swap_probability}")
        if not self.portfolio_members:
            raise ValueError("portfolio_members must name at least one "
                             "member placer")
        bad = [m for m in self.portfolio_members
               if m not in PLACER_CHOICES or m == "portfolio"]
        if bad:
            allowed = tuple(c for c in PLACER_CHOICES if c != "portfolio")
            raise ValueError(
                f"portfolio_members must be drawn from {allowed}, "
                f"got {bad}")

    @staticmethod
    def classic(**overrides) -> "PlacerConfig":
        """The Classic baseline: same hyper-parameters, frequency off.

        Mirrors Sec. V-B: the classical engine shares every setting with
        Qplacer but has no frequency repulsive force, no resonant checks
        during legalization, no chain-aware Tetris ordering, and no
        integration-aware repair.
        """
        base = PlacerConfig(frequency_aware=False, legalize_integration=False,
                            chain_aware_tetris=False)
        return replace(base, **overrides) if overrides else base

    def with_segment_size(self, lb_mm: float) -> "PlacerConfig":
        """Copy with a different resonator segment size (Fig. 15 sweep)."""
        return replace(self, segment_size_mm=lb_mm)

    def resolved_interaction_backend(self, num_instances: int) -> str:
        """Concrete backend ("dense"/"sparse") for a problem size."""
        from .interactions import resolve_backend
        return resolve_backend(self.interaction_backend, num_instances,
                               self.sparse_min_instances)

    def resolved_detailed_passes(self, num_instances: int) -> int:
        """Concrete detailed-placement pass count for a problem size.

        ``None`` (auto) follows the interaction backend: condor-class
        (sparse-resolved) problems get one pass — affordable since the
        vectorized swap engine — while the dense paper tiers skip
        refinement and keep their bit-identical legalized layouts.
        """
        if self.detailed_passes is not None:
            return self.detailed_passes
        return 1 if self.resolved_interaction_backend(num_instances) \
            == "sparse" else 0

    def resolved_incremental_density(self, num_instances: int) -> bool:
        """Whether the density field updates incrementally at this size.

        ``"auto"`` couples the decision to the interaction backend: the
        six paper topologies resolve dense and keep the bit-exact dense
        recompute, while condor-class problems go incremental.
        """
        if self.incremental_density == "on":
            return True
        if self.incremental_density == "off":
            return False
        return self.resolved_interaction_backend(num_instances) == "sparse"

    def qubit_site_pitch_mm(self, qubit_size_mm: float = constants.QUBIT_SIZE_MM) -> float:
        """Legalization lattice pitch for qubits."""
        return qubit_size_mm + self.qubit_clearance_mm

    def segment_site_pitch_mm(self) -> float:
        """Legalization lattice pitch for resonator segments."""
        return self.segment_size_mm + self.segment_clearance_mm

"""Placement preprocessing (Sec. IV-B): padding, partitioning, nets.

Turns a :class:`~repro.devices.netlist.QuantumNetlist` into a
:class:`PlacementProblem` — flat numpy arrays the optimizer consumes:

* movable **instances**: every qubit plus every resonator segment
  (resonators are partitioned into ``lb x lb`` blocks here);
* **chain nets**: for a resonator coupling ``(q_u, q_v)`` with segments
  ``s_0..s_k`` the 2-pin chain ``q_u-s_0, s_0-s_1, ..., s_k-q_v`` — the
  wirelength objective pulls each coupler into a contiguous snake
  between its endpoints;
* the **frequency collision map** (Sec. IV-C1): all instance pairs within
  ``Delta_c``, excluding sibling segments (Eq. 10's Kronecker delta), so
  the repulsive force never iterates all-to-all;
* the placement **region**, sized from the clearance-inflated footprint
  area and the whitespace factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..devices.components import Instance, Qubit, ResonatorSegment
from ..devices.geometry import Rect
from ..devices.netlist import QuantumNetlist
from .config import PlacerConfig


@dataclass
class PlacementProblem:
    """Numeric view of one placement instance.

    Attributes:
        netlist: Source netlist.
        config: Placer configuration used to build the problem.
        instances: Movable instances (all qubits first, then segments).
        nets: ``(m, 2)`` int array of 2-pin chain nets.
        sizes: ``(n, 2)`` bare footprint dimensions (mm).
        clearances: ``(n,)`` per-instance routing clearance (mm).
        paddings: ``(n,)`` per-instance crosstalk padding (mm).
        frequencies: ``(n,)`` operating frequencies (GHz).
        resonator_index: ``(n,)`` owner resonator id, -1 for qubits.
        is_qubit: ``(n,)`` bool mask.
        collision_pairs: ``(p, 2)`` int array of resonant pairs.  Empty
            on sparse-backend problems, where the engine prunes pairs by
            distance instead of materialising the full map (use
            :meth:`resonant_collision_pairs` to force materialisation).
        region: Placement canvas.
        initial_positions: ``(n, 2)`` deterministic starting centres.
        attached_resonators: qubit instance index -> resonator ids whose
            segments may legally abut that qubit.
        interaction_backend: Resolved spatial backend ("dense"/"sparse")
            this problem was built for.
    """

    netlist: QuantumNetlist
    config: PlacerConfig
    instances: List[Instance]
    nets: np.ndarray
    sizes: np.ndarray
    clearances: np.ndarray
    paddings: np.ndarray
    frequencies: np.ndarray
    resonator_index: np.ndarray
    is_qubit: np.ndarray
    collision_pairs: np.ndarray
    region: Rect
    initial_positions: np.ndarray
    attached_resonators: Dict[int, Set[int]]
    interaction_backend: str = "dense"

    @property
    def num_instances(self) -> int:
        """Number of movable instances."""
        return len(self.instances)

    @property
    def num_qubits(self) -> int:
        """Number of qubit instances."""
        return int(self.is_qubit.sum())

    def inflated_sizes(self) -> np.ndarray:
        """Footprints grown by the routing clearance (density footprint)."""
        return self.sizes + self.clearances[:, None]

    def required_gap(self, i: int, j: int, resonant: bool) -> float:
        """Minimum legal edge-to-edge gap between two instances.

        Intended pairs (handled by the caller) need none; resonant pairs
        need the full padding sum; ordinary pairs need the mean clearance.
        """
        if resonant:
            return float(self.paddings[i] + self.paddings[j])
        return float(0.5 * (self.clearances[i] + self.clearances[j]))

    def is_intended_pair(self, i: int, j: int) -> bool:
        """Pairs allowed to touch: siblings, or qubit + attached segment."""
        ri, rj = int(self.resonator_index[i]), int(self.resonator_index[j])
        if ri >= 0 and ri == rj:
            return True
        if self.is_qubit[i] and rj >= 0:
            return rj in self.attached_resonators.get(i, ())
        if self.is_qubit[j] and ri >= 0:
            return ri in self.attached_resonators.get(j, ())
        return False

    def is_resonant_pair(self, i: int, j: int) -> bool:
        """Eq. (9)'s tau: detuning within the threshold."""
        return (abs(float(self.frequencies[i] - self.frequencies[j]))
                <= self.config.detuning_threshold_ghz)

    def resonant_collision_pairs(self) -> np.ndarray:
        """The full frequency collision map, materialised on demand.

        Dense problems precomputed it at build time; sparse problems
        skipped the O(n^2 / levels) materialisation, so the first call
        computes and caches it.  Prefer the engine's distance-pruned
        provider on sparse problems — this accessor exists for
        diagnostics and the dense/sparse equivalence tests.
        """
        if self.collision_pairs.size or self.interaction_backend != "sparse":
            return self.collision_pairs
        cached = getattr(self, "_lazy_collision_pairs", None)
        if cached is None:
            cached = _collision_pairs(self.frequencies, self.resonator_index,
                                      self.config.detuning_threshold_ghz)
            self._lazy_collision_pairs = cached
        return cached


def _collision_pairs(frequencies: np.ndarray, resonator_index: np.ndarray,
                     threshold: float) -> np.ndarray:
    """Frequency collision map: resonant pairs, sibling segments excluded.

    Components were assigned frequencies from a discrete comb, so pairs
    within ``threshold`` are found by sorting: for each instance only a
    short run of the frequency-sorted order can collide.
    """
    n = len(frequencies)
    order = np.argsort(frequencies, kind="stable")
    sorted_freqs = frequencies[order]
    # For each sorted position a, candidates extend to hi[a]-1.  The
    # searchsorted bound is slightly widened so the exact run condition
    # ``sorted_freqs[b] - fa <= threshold`` (applied below, matching the
    # scalar implementation bit for bit) is always a subset of it.
    hi = np.searchsorted(sorted_freqs, sorted_freqs + (threshold + 1e-9),
                         side="right")
    counts = np.maximum(hi - np.arange(n) - 1, 0)
    if counts.max(initial=0) <= 0:
        return np.zeros((0, 2), dtype=np.int64)
    a_idx = np.repeat(np.arange(n), counts)
    # Offsets 1..count within each run, built from one global arange.
    ends = np.cumsum(counts)
    b_idx = a_idx + (np.arange(ends[-1]) - (ends - counts)[a_idx]) + 1
    keep = sorted_freqs[b_idx] - sorted_freqs[a_idx] <= threshold
    i = order[a_idx[keep]]
    j = order[b_idx[keep]]
    ri, rj = resonator_index[i], resonator_index[j]
    keep = ~((ri >= 0) & (ri == rj))
    i, j = i[keep], j[keep]
    pairs = np.stack([np.minimum(i, j), np.maximum(i, j)], axis=1)
    return np.unique(pairs, axis=0).astype(np.int64)


def build_problem(netlist: QuantumNetlist,
                  config: Optional[PlacerConfig] = None) -> PlacementProblem:
    """Run the Sec. IV-B preprocessing and assemble the numeric problem."""
    if config is None:
        config = PlacerConfig()

    qubits: List[Instance] = list(netlist.qubits)
    segments: List[Instance] = []
    chain_nets: List[Tuple[int, int]] = []
    attached: Dict[int, Set[int]] = {}

    qubit_instance_index = {q.index: i for i, q in enumerate(netlist.qubits)}
    next_index = len(qubits)
    for resonator in netlist.resonators:
        segs = resonator.make_segments(config.segment_size_mm,
                                       config.resonator_padding_mm)
        seg_indices = list(range(next_index, next_index + len(segs)))
        segments.extend(segs)
        next_index += len(segs)
        u, v = resonator.endpoints
        iu, iv = qubit_instance_index[u], qubit_instance_index[v]
        chain = [iu, *seg_indices, iv]
        chain_nets.extend((chain[k], chain[k + 1]) for k in range(len(chain) - 1))
        attached.setdefault(iu, set()).add(resonator.index)
        attached.setdefault(iv, set()).add(resonator.index)

    instances: List[Instance] = qubits + segments
    n = len(instances)
    sizes = np.array([[inst.width, inst.height] for inst in instances])
    paddings = np.array([inst.padding for inst in instances])
    frequencies = np.array([inst.frequency for inst in instances])
    is_qubit = np.array([isinstance(inst, Qubit) for inst in instances])
    resonator_index = np.array([
        inst.resonator_index if isinstance(inst, ResonatorSegment) else -1
        for inst in instances
    ], dtype=np.int64)
    clearances = np.where(is_qubit, config.qubit_clearance_mm,
                          config.segment_clearance_mm)

    inflated = sizes + clearances[:, None]
    total_area = float(np.prod(inflated, axis=1).sum())
    side = float(np.sqrt(total_area / config.whitespace_factor))
    region = Rect(0.0, 0.0, side, side)

    initial = _initial_positions(netlist, instances, qubit_instance_index,
                                 region, config)
    backend = config.resolved_interaction_backend(n)
    if backend == "sparse":
        # The engine prunes resonant pairs by distance on sparse
        # problems; materialising the full collision map here would be
        # the very O(n^2) structure the backend exists to avoid.
        collision = np.zeros((0, 2), dtype=np.int64)
    else:
        collision = _collision_pairs(frequencies, resonator_index,
                                     config.detuning_threshold_ghz)
    return PlacementProblem(
        netlist=netlist,
        config=config,
        instances=instances,
        nets=np.array(chain_nets, dtype=np.int64),
        sizes=sizes,
        clearances=clearances,
        paddings=paddings,
        frequencies=frequencies,
        resonator_index=resonator_index,
        is_qubit=is_qubit,
        collision_pairs=collision,
        region=region,
        initial_positions=initial,
        attached_resonators=attached,
        interaction_backend=backend,
    )


def _initial_positions(netlist: QuantumNetlist, instances: Sequence[Instance],
                       qubit_instance_index: Dict[int, int], region: Rect,
                       config: PlacerConfig) -> np.ndarray:
    """Deterministic warm start: scaled topology coordinates plus jitter.

    Qubits land on their canonical topology drawing scaled into the
    middle 70% of the region; each resonator's segments start near the
    midpoint of their endpoint qubits with a small seeded jitter that
    breaks the coincident-position symmetry.
    """
    coords = netlist.topology.coords
    xs = np.array([coords[q][0] for q in sorted(coords)])
    ys = np.array([coords[q][1] for q in sorted(coords)])
    span_x = max(xs.max() - xs.min(), 1e-9)
    span_y = max(ys.max() - ys.min(), 1e-9)
    margin = 0.15
    scale_x = region.w * (1 - 2 * margin) / span_x
    scale_y = region.h * (1 - 2 * margin) / span_y

    rng = np.random.default_rng(config.seed)
    positions = np.zeros((len(instances), 2))
    for q, inst_idx in qubit_instance_index.items():
        cx, cy = coords[q]
        positions[inst_idx, 0] = region.x + region.w * margin + (cx - xs.min()) * scale_x
        positions[inst_idx, 1] = region.y + region.h * margin + (cy - ys.min()) * scale_y

    jitter = 0.25 * config.segment_site_pitch_mm()
    # One pass groups segments by resonator (same enumeration order as a
    # per-resonator scan) — the repeated O(n) scans were a scaling sink
    # on condor-class netlists with thousands of resonators.
    segs_by_resonator: Dict[int, List[int]] = {}
    for i, inst in enumerate(instances):
        if isinstance(inst, ResonatorSegment):
            segs_by_resonator.setdefault(inst.resonator_index, []).append(i)
    for resonator in netlist.resonators:
        u, v = resonator.endpoints
        pu = positions[qubit_instance_index[u]]
        pv = positions[qubit_instance_index[v]]
        seg_ids = segs_by_resonator.get(resonator.index, [])
        count = len(seg_ids)
        for k, i in enumerate(seg_ids):
            t = (k + 1) / (count + 1)
            base = pu + t * (pv - pu)
            positions[i] = base + rng.normal(0.0, jitter, size=2)
    return positions

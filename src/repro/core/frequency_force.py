"""Frequency repulsive force (Eqs. 9-10, the paper's core novelty).

Instances that share (near-)resonant frequencies repel each other like
equal charges.  Eq. (9) prescribes a force of magnitude ``1/d^2`` on
every colliding pair, i.e. the pairwise potential

``U(i, j) = tau(w_i, w_j, Delta_c) * (1 - delta(r_i, r_j)) / d_ij``

softened as ``1/sqrt(d^2 + s^2)`` so coincident points stay finite.  The
collision map (which already excludes sibling segments and non-resonant
pairs) is precomputed once in :mod:`repro.core.preprocess`, so each
evaluation only touches the colliding pairs — never all-to-all.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def frequency_energy_and_grad(positions: np.ndarray,
                              collision_pairs: np.ndarray,
                              smoothing_mm: float,
                              pair_index: np.ndarray = None
                              ) -> Tuple[float, np.ndarray]:
    """Total repulsive potential and its gradient.

    Args:
        positions: ``(n, 2)`` instance centres.
        collision_pairs: ``(p, 2)`` precomputed resonant pairs.
        smoothing_mm: Softening length ``s`` (mm).
        pair_index: Optional precomputed ``concatenate([a, b])`` of the
            pair columns — the optimizer evaluates this function every
            iteration with the same static pair set, so the caller can
            build the scatter index once.

    Returns:
        ``(energy, grad)`` with ``grad`` shaped ``(n, 2)``.
    """
    if smoothing_mm <= 0:
        raise ValueError("smoothing length must be positive")
    grad = np.zeros_like(positions)
    if collision_pairs.size == 0:
        return 0.0, grad
    a = collision_pairs[:, 0]
    b = collision_pairs[:, 1]
    delta = positions[a] - positions[b]
    dist2 = (delta * delta).sum(axis=1) + smoothing_mm * smoothing_mm
    inv = 1.0 / np.sqrt(dist2)
    energy = float(inv.sum())
    # dU/dp_a = -delta / (d^2 + s^2)^(3/2)  (repulsion: -grad pushes apart)
    n = positions.shape[0]
    force = delta * (inv / dist2)[:, None]
    # One bincount over the concatenated (a, b) index stream scatter-adds
    # in the same sequential order as the former np.add.at pair, bit for
    # bit, while running an order of magnitude faster.
    idx = pair_index if pair_index is not None else np.concatenate([a, b])
    m = a.shape[0]
    w = np.empty(2 * m)
    for axis in (0, 1):
        np.negative(force[:, axis], out=w[:m])
        w[m:] = force[:, axis]
        grad[:, axis] = np.bincount(idx, weights=w, minlength=n)
    return energy, grad


def repulsion_force_magnitude(distance_mm: np.ndarray,
                              smoothing_mm: float) -> np.ndarray:
    """Force magnitude ``d / (d^2 + s^2)^(3/2)`` (≈ 1/d^2 for d >> s).

    Exposed for tests and the physics benches: verifies the Eq. (9)
    inverse-square behaviour away from the softened core.
    """
    d = np.asarray(distance_mm, dtype=float)
    return d / np.power(d * d + smoothing_mm * smoothing_mm, 1.5)


def resonant_pair_distances(positions: np.ndarray,
                            collision_pairs: np.ndarray) -> np.ndarray:
    """Euclidean centre distances of every colliding pair (diagnostics)."""
    if collision_pairs.size == 0:
        return np.zeros(0)
    delta = positions[collision_pairs[:, 0]] - positions[collision_pairs[:, 1]]
    return np.sqrt((delta * delta).sum(axis=1))

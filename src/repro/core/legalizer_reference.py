"""Reference (pure-Python) legalizer, kept verbatim from the seed.

This module preserves the original scalar implementation of Algorithm 1
for two purposes:

* **golden equivalence tests** — the vectorized legalizer in
  :mod:`repro.core.legalizer` must produce overlap-free, frequency-legal
  layouts whose metrics match this implementation within tolerance;
* **performance baselines** — ``benchmarks/bench_perf_placement.py``
  times this implementation against the vectorized one to record the
  speedup of every PR.

Do not optimise this file; it is the fixed point the fast path is
measured against.  See :mod:`repro.core.legalizer` for the maintained
documentation of the algorithm itself.

The legalizer turns the global-placement result into a legal layout in
three phases, exactly following Alg. 1:

1. **Qubit legalization** (``Q-LG``): a greedy spiral search snaps every
   qubit to the nearest free site of the qubit lattice, followed by a
   min-cost assignment refinement (per frequency level, so the resonant
   separation achieved by the spiral is preserved) that minimises total
   displacement — the paper's min-cost-flow step [88].
2. **Segment legalization** (``T-LG``): a Tetris-like scan places the
   resonator segments left-to-right onto the segment lattice with
   minimal displacement [17].
3. **Resonator integration**: every resonator's segments must form one
   contiguous cluster.  Non-compliant resonators keep their largest
   cluster and reclaim the scattered segments by moving them to free
   sites adjacent to the cluster or swapping them with neighbouring
   instances, subject to the resonant checker ``tau``.

Placement feasibility for a candidate site is a single rule,
:meth:`Legalizer._can_place`: intended pairs may touch; resonant
non-intended pairs need the full padding sum (only when the config is
frequency-aware — the Classic baseline skips this check, which is where
its frequency hotspots come from); all other pairs need the mean routing
clearance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from .config import PlacerConfig
from .preprocess import PlacementProblem


# The reference shares the live telemetry dataclass so the two
# implementations stay field-compatible (``phase_seconds`` simply stays
# empty on this unprofiled path).
from .legalizer import LegalizeStats  # noqa: E402


class _SpatialHash:
    """Uniform-grid index of placed instances for local queries."""

    def __init__(self, cell_size: float) -> None:
        self.cell = cell_size
        self._buckets: Dict[Tuple[int, int], Set[int]] = {}
        self._where: Dict[int, Tuple[int, int]] = {}

    def _key(self, x: float, y: float) -> Tuple[int, int]:
        return (int(math.floor(x / self.cell)), int(math.floor(y / self.cell)))

    def add(self, idx: int, x: float, y: float) -> None:
        key = self._key(x, y)
        self._buckets.setdefault(key, set()).add(idx)
        self._where[idx] = key

    def remove(self, idx: int) -> None:
        key = self._where.pop(idx, None)
        if key is not None:
            self._buckets.get(key, set()).discard(idx)

    def near(self, x: float, y: float, radius: float) -> Iterable[int]:
        """Indices of instances whose centres may lie within ``radius``."""
        span = int(math.ceil(radius / self.cell))
        kx, ky = self._key(x, y)
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                yield from self._buckets.get((kx + dx, ky + dy), ())


def _spiral_offsets(max_radius: int) -> List[Tuple[int, int]]:
    """Lattice offsets ordered by ring, then by Euclidean distance."""
    offsets: List[Tuple[int, int]] = [(0, 0)]
    for r in range(1, max_radius + 1):
        ring = []
        for dx in range(-r, r + 1):
            for dy in range(-r, r + 1):
                if max(abs(dx), abs(dy)) == r:
                    ring.append((dx, dy))
        ring.sort(key=lambda o: (o[0] * o[0] + o[1] * o[1], o))
        offsets.extend(ring)
    return offsets


class Legalizer:
    """Stateful legalization of one placement problem."""

    def __init__(self, problem: PlacementProblem,
                 config: Optional[PlacerConfig] = None) -> None:
        self.problem = problem
        self.config = config if config is not None else problem.config
        p = self.problem
        self.positions = np.zeros_like(p.initial_positions)
        self._placed: Set[int] = set()
        # Interaction radius: the largest possible required gap plus the
        # largest instance extent — hash queries beyond it are never needed.
        max_half = float(np.max(p.sizes)) / 2.0
        max_gap = float(2.0 * np.max(p.paddings))
        self._interact_radius = 2.0 * max_half + max_gap + 1e-6
        self._hash = _SpatialHash(cell_size=max(self._interact_radius, 0.5))
        self._qubit_pitch = self.config.qubit_site_pitch_mm(
            float(p.sizes[p.is_qubit][:, 0].max()) if p.is_qubit.any() else 0.4)
        self._segment_pitch = self.config.segment_site_pitch_mm()
        self._offsets = _spiral_offsets(self.config.spiral_max_radius_sites)
        self.stats = LegalizeStats()

    # -- geometric feasibility ---------------------------------------------------

    def _gap(self, i: int, xi: float, yi: float, j: int) -> float:
        """Edge-to-edge gap between instance i at (xi, yi) and placed j."""
        p = self.problem
        xj, yj = self.positions[j]
        gx = abs(xi - xj) - 0.5 * (p.sizes[i, 0] + p.sizes[j, 0])
        gy = abs(yi - yj) - 0.5 * (p.sizes[i, 1] + p.sizes[j, 1])
        return math.hypot(max(gx, 0.0), max(gy, 0.0)) if (gx > 0 or gy > 0) \
            else max(gx, gy)

    def _can_place(self, i: int, x: float, y: float,
                   ignore: Tuple[int, ...] = (),
                   enforce_resonant: Optional[bool] = None) -> bool:
        """Check all spacing rules for instance ``i`` at ``(x, y)``."""
        p = self.problem
        if enforce_resonant is None:
            enforce_resonant = self.config.frequency_aware
        tol = 1e-9
        for j in self._hash.near(x, y, self._interact_radius):
            if j == i or j in ignore or j not in self._placed:
                continue
            gap = self._gap(i, x, y, j)
            if p.is_intended_pair(i, j):
                required = 0.0
            elif enforce_resonant and p.is_resonant_pair(i, j):
                required = p.paddings[i] + p.paddings[j]
            else:
                required = 0.5 * (p.clearances[i] + p.clearances[j])
            if gap < required - tol:
                return False
        return True

    def _place(self, i: int, x: float, y: float) -> None:
        self.positions[i] = (x, y)
        self._hash.add(i, x, y)
        self._placed.add(i)

    def _unplace(self, i: int) -> None:
        self._hash.remove(i)
        self._placed.discard(i)

    def _site(self, target: np.ndarray, pitch: float,
              offset: Tuple[int, int]) -> Tuple[float, float]:
        """Lattice site nearest ``target`` shifted by ``offset`` cells."""
        base_x = round(target[0] / pitch) * pitch
        base_y = round(target[1] / pitch) * pitch
        return (base_x + offset[0] * pitch, base_y + offset[1] * pitch)

    def _spiral_place(self, i: int, target: np.ndarray, pitch: float) -> bool:
        """Greedy spiral: nearest feasible lattice site around ``target``.

        When the config is frequency-aware and no resonant-compliant site
        exists within the search bound, the constraint is relaxed to the
        plain clearance rule and the relaxation is counted (residual
        hotspot).
        """
        for offset in self._offsets:
            x, y = self._site(target, pitch, offset)
            if self._can_place(i, x, y):
                self._place(i, x, y)
                return True
        if self.config.frequency_aware:
            for offset in self._offsets:
                x, y = self._site(target, pitch, offset)
                if self._can_place(i, x, y, enforce_resonant=False):
                    self.stats.resonant_relaxations += 1
                    self._place(i, x, y)
                    return True
        raise RuntimeError(
            f"legalizer spiral exhausted for instance {i}; "
            f"increase spiral_max_radius_sites")

    # -- phase 1: qubits ------------------------------------------------------------

    def _legalize_qubits(self, global_positions: np.ndarray) -> None:
        p = self.problem
        qubit_ids = [i for i in range(p.num_instances) if p.is_qubit[i]]
        for i in sorted(qubit_ids,
                        key=lambda q: (global_positions[q, 0], global_positions[q, 1])):
            self._spiral_place(i, global_positions[i], self._qubit_pitch)
        self._refine_qubits(global_positions, qubit_ids)
        self.stats.qubit_displacement_mm = float(np.abs(
            self.positions[qubit_ids] - global_positions[qubit_ids]).sum())

    def _refine_qubits(self, global_positions: np.ndarray,
                       qubit_ids: Sequence[int]) -> None:
        """Min-cost assignment refinement per frequency level.

        Qubits of one frequency level may permute over their site set
        without changing any resonant-separation property, so each level
        is refined independently with an optimal assignment [88].
        """
        p = self.problem
        by_level: Dict[float, List[int]] = {}
        for i in qubit_ids:
            by_level.setdefault(round(float(p.frequencies[i]), 6), []).append(i)
        for ids in by_level.values():
            if len(ids) < 2:
                continue
            sites = self.positions[ids].copy()
            desired = global_positions[ids]
            cost = ((desired[:, None, :] - sites[None, :, :]) ** 2).sum(axis=2)
            rows, cols = linear_sum_assignment(cost)
            for r, c in zip(rows, cols):
                idx = ids[r]
                self._hash.remove(idx)
                self.positions[idx] = sites[c]
                self._hash.add(idx, sites[c][0], sites[c][1])

    # -- phase 2: segments (Tetris) ----------------------------------------------------

    def _adjacent_sites(self, anchor_xy: Tuple[float, float],
                        target: np.ndarray) -> List[Tuple[float, float]]:
        """Ring-1 lattice sites around ``anchor``, nearest-to-target first."""
        pitch = self._segment_pitch
        ax = round(anchor_xy[0] / pitch)
        ay = round(anchor_xy[1] / pitch)
        sites = [((ax + dx) * pitch, (ay + dy) * pitch)
                 for dx in (-1, 0, 1) for dy in (-1, 0, 1)
                 if not (dx == 0 and dy == 0)]
        sites.sort(key=lambda s: (s[0] - target[0]) ** 2 + (s[1] - target[1]) ** 2)
        return sites

    def _legalize_segments(self, global_positions: np.ndarray) -> None:
        """Tetris-like chain placement (T-LG).

        Resonators are processed left-to-right; within one resonator the
        segments follow their chain order, each snapping to a feasible
        lattice site adjacent to the previously placed sibling so the
        resonator stays contiguous by construction.  When a chain gets
        walled in, the segment falls back to a free-standing spiral and
        the integration phase repairs it.
        """
        p = self.problem
        if not self.config.chain_aware_tetris:
            # Classical flavour [17]: plain left-to-right scan, each
            # segment independently snapped to the nearest feasible site.
            seg_ids = [i for i in range(p.num_instances) if not p.is_qubit[i]]
            for i in sorted(seg_ids,
                            key=lambda s: (global_positions[s, 0],
                                           global_positions[s, 1])):
                self._spiral_place(i, global_positions[i], self._segment_pitch)
            self.stats.segment_displacement_mm = float(np.abs(
                self.positions[seg_ids] - global_positions[seg_ids]).sum())
            return
        by_resonator = self._segments_by_resonator()
        order = sorted(
            by_resonator,
            key=lambda r: (float(global_positions[by_resonator[r], 0].mean()),
                           float(global_positions[by_resonator[r], 1].mean())))
        for r in order:
            chain = by_resonator[r]  # creation order == chain order
            placed_chain: List[int] = []
            broke_contiguity = False
            for seg in chain:
                target = global_positions[seg]
                placed = False
                # Prefer contiguity: sites adjacent to the previous
                # sibling, then to any placed sibling.
                anchors = list(reversed(placed_chain))
                for anchor in anchors:
                    for (x, y) in self._adjacent_sites(tuple(self.positions[anchor]), target):
                        if self._can_place(seg, x, y):
                            self._place(seg, x, y)
                            placed = True
                            break
                    if placed:
                        break
                if not placed:
                    self._spiral_place(seg, target, self._segment_pitch)
                    broke_contiguity = placed_chain != []
                placed_chain.append(seg)
            if broke_contiguity and len(chain) > 1:
                # Re-coil the whole chain now, while the layout is still
                # sparse — far cheaper than post-hoc integration repair.
                if len(self._clusters(chain)) > 1:
                    self._rebuild_resonator(chain)
        seg_ids = [i for i in range(p.num_instances) if not p.is_qubit[i]]
        self.stats.segment_displacement_mm = float(np.abs(
            self.positions[seg_ids] - global_positions[seg_ids]).sum())

    # -- phase 3: resonator integration (Alg. 1 lines 3-16) ------------------------------

    def _proximity_mm(self) -> float:
        """Segments within this centre distance count as connected."""
        return 1.6 * self._segment_pitch

    def _clusters(self, seg_ids: Sequence[int]) -> List[List[int]]:
        """Connected components of a resonator's segments by proximity."""
        prox = self._proximity_mm()
        parent = {i: i for i in seg_ids}

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        ids = list(seg_ids)
        for ai in range(len(ids)):
            for bi in range(ai + 1, len(ids)):
                a, b = ids[ai], ids[bi]
                dx = self.positions[a, 0] - self.positions[b, 0]
                dy = self.positions[a, 1] - self.positions[b, 1]
                if math.hypot(dx, dy) <= prox:
                    ra, rb = find(a), find(b)
                    if ra != rb:
                        parent[ra] = rb
        groups: Dict[int, List[int]] = {}
        for i in ids:
            groups.setdefault(find(i), []).append(i)
        return sorted(groups.values(), key=len, reverse=True)

    def _sites_adjacent_to_cluster(self, cluster: Sequence[int],
                                   ring: int = 1) -> List[Tuple[float, float]]:
        """Candidate lattice sites within ``ring`` cells of the cluster.

        Only ring-1 sites keep the mover inside the proximity radius of a
        cluster member; larger rings are used as stepping stones when the
        immediate frontier is congested (the mover then becomes the new
        frontier for the next pass).
        """
        pitch = self._segment_pitch
        span = range(-ring, ring + 1)
        sites: Set[Tuple[float, float]] = set()
        for member in cluster:
            mx, my = self.positions[member]
            for dx in span:
                for dy in span:
                    if dx == 0 and dy == 0:
                        continue
                    x = round(mx / pitch + dx) * pitch
                    y = round(my / pitch + dy) * pitch
                    sites.add((x, y))
        centre = self.positions[list(cluster)].mean(axis=0)
        # Sole deviation from the seed: an explicit (d2, x, y) tie-break
        # instead of set-iteration order for equidistant sites, so the
        # reference and the vectorized legalizer are comparable site by
        # site (the seed's tie order was an accident of hashing).
        return sorted(sites, key=lambda s: ((s[0] - centre[0]) ** 2
                                            + (s[1] - centre[1]) ** 2,
                                            s[0], s[1]))

    def _neighbors_of_cluster(self, cluster: Sequence[int]) -> List[int]:
        """Placed non-qubit instances adjacent to the cluster."""
        prox = self._proximity_mm()
        cluster_set = set(cluster)
        found: Set[int] = set()
        for member in cluster:
            mx, my = self.positions[member]
            for j in self._hash.near(mx, my, prox):
                if j in cluster_set or j in found or self.problem.is_qubit[j]:
                    continue
                dx = self.positions[j, 0] - mx
                dy = self.positions[j, 1] - my
                if math.hypot(dx, dy) <= prox:
                    found.add(j)
        return sorted(found)

    def _try_move(self, seg: int, cluster: Sequence[int],
                  enforce_resonant: Optional[bool] = None) -> bool:
        """Move a scattered segment onto a free site beside the cluster."""
        self._unplace(seg)
        for (x, y) in self._sites_adjacent_to_cluster(cluster):
            if self._can_place(seg, x, y, enforce_resonant=enforce_resonant):
                self._place(seg, x, y)
                self.stats.integration_moves += 1
                if enforce_resonant is False and self.config.frequency_aware:
                    self.stats.resonant_relaxations += 1
                return True
        self._place(seg, self.positions[seg, 0], self.positions[seg, 1])
        return False

    def _try_swap(self, seg: int, cluster: Sequence[int],
                  enforce_resonant: Optional[bool] = None) -> bool:
        """Swap a scattered segment with a neighbour of the cluster.

        Both relocations must pass the resonant checker ``tau`` embedded
        in :meth:`_can_place` (Alg. 1 line 12), unless the caller relaxes
        the check in the final repair pass.
        """
        p = self.problem
        seg_pos = tuple(self.positions[seg])
        by_resonator = self._segments_by_resonator()
        seg_res = int(p.resonator_index[seg])
        seg_segs = by_resonator.get(seg_res, [seg])
        for other in self._neighbors_of_cluster(cluster):
            if int(p.resonator_index[other]) == seg_res:
                continue
            other_res = int(p.resonator_index[other])
            other_segs = by_resonator.get(other_res, [other])
            before = (len(self._clusters(seg_segs))
                      + len(self._clusters(other_segs)))
            other_pos = tuple(self.positions[other])
            self._unplace(seg)
            self._unplace(other)
            if (self._can_place(seg, other_pos[0], other_pos[1],
                                enforce_resonant=enforce_resonant)
                    and self._can_place(other, seg_pos[0], seg_pos[1], ignore=(seg,),
                                        enforce_resonant=enforce_resonant)):
                self._place(seg, other_pos[0], other_pos[1])
                self._place(other, seg_pos[0], seg_pos[1])
                # Accept only when the swap strictly reduces the total
                # fragmentation of the two resonators involved: greedy
                # descent on a global objective cannot ping-pong.
                after = (len(self._clusters(seg_segs))
                         + len(self._clusters(other_segs)))
                if after < before:
                    self.stats.integration_swaps += 1
                    if enforce_resonant is False and self.config.frequency_aware:
                        self.stats.resonant_relaxations += 1
                    return True
                self._unplace(seg)
                self._unplace(other)
            self._place(seg, seg_pos[0], seg_pos[1])
            self._place(other, other_pos[0], other_pos[1])
        return False

    def _segments_by_resonator(self) -> Dict[int, List[int]]:
        groups: Dict[int, List[int]] = {}
        for i in range(self.problem.num_instances):
            r = int(self.problem.resonator_index[i])
            if r >= 0:
                groups.setdefault(r, []).append(i)
        return groups

    def _repair_resonator(self, seg_ids: Sequence[int], relaxed: bool) -> bool:
        """One repair sweep over a disconnected resonator; True = moved."""
        clusters = self._clusters(seg_ids)
        if len(clusters) == 1:
            return False
        main = clusters[0]
        progressed = False
        for cluster in clusters[1:]:
            for seg in cluster:
                moved = self._try_move(seg, main) or self._try_swap(seg, main)
                if not moved and relaxed:
                    moved = (self._try_move(seg, main, enforce_resonant=False)
                             or self._try_swap(seg, main, enforce_resonant=False))
                if moved:
                    main = self._clusters(seg_ids)[0]
                    progressed = True
        return progressed

    def _rebuild_resonator(self, seg_ids: Sequence[int],
                           enforce_resonant: Optional[bool] = None,
                           max_starts: int = 8) -> bool:
        """Tear a disconnected resonator down and re-place it as a chain.

        All segments are unplaced (freeing their own sites) and re-laid
        contiguously, trying up to ``max_starts`` feasible start sites
        spiralling out from the chain's centroid.  Restores the original
        positions when no start yields a complete chain.
        """
        old = {s: tuple(self.positions[s]) for s in seg_ids}
        centroid = self.positions[list(seg_ids)].mean(axis=0)
        for s in seg_ids:
            self._unplace(s)

        def build_chain(start_xy: Tuple[float, float]) -> bool:
            """Coil the whole chain from one start site; False = undo."""
            placed_chain: List[int] = []
            coil_centre = np.array(start_xy)
            for seg in seg_ids:
                placed = False
                if not placed_chain:
                    if self._can_place(seg, start_xy[0], start_xy[1],
                                       enforce_resonant=enforce_resonant):
                        self._place(seg, start_xy[0], start_xy[1])
                        placed = True
                else:
                    for anchor in reversed(placed_chain):
                        for (x, y) in self._adjacent_sites(
                                tuple(self.positions[anchor]), coil_centre):
                            if self._can_place(seg, x, y,
                                               enforce_resonant=enforce_resonant):
                                self._place(seg, x, y)
                                placed = True
                                break
                        if placed:
                            break
                if not placed:
                    for s in placed_chain:
                        self._unplace(s)
                    return False
                placed_chain.append(seg)
            return True

        # Multi-start: a free pocket may be too small for the whole
        # chain, so try successive feasible start sites spiralling out.
        attempts = 0
        success = False
        for offset in self._offsets:
            start = self._site(centroid, self._segment_pitch, offset)
            if not self._can_place(seg_ids[0], start[0], start[1],
                                   enforce_resonant=enforce_resonant):
                continue
            attempts += 1
            if build_chain(start):
                success = True
                break
            if attempts >= max_starts:
                break
        if not success:
            # Fresh territory beside the occupied bounding box: always
            # enough room for a full chain (costs area, keeps integrity).
            placed = sorted(self._placed)
            if placed:
                edge_x = float(self.positions[placed, 0].max())
                for row_step in range(0, 40):
                    start = self._site(
                        np.array([edge_x + 2.0 * self._segment_pitch,
                                  centroid[1] + row_step * 2.0 * self._segment_pitch]),
                        self._segment_pitch, (0, 0))
                    if self._can_place(seg_ids[0], start[0], start[1],
                                       enforce_resonant=enforce_resonant) \
                            and build_chain(start):
                        success = True
                        break
        if not success:
            for s in seg_ids:
                if s not in self._placed:
                    self._place(s, old[s][0], old[s][1])
            return False
        if enforce_resonant is False and self.config.frequency_aware:
            self.stats.resonant_relaxations += 1
        self.stats.integration_moves += len(seg_ids)
        return True

    def _integrate_resonators(self, max_passes: int = 6) -> None:
        by_resonator = self._segments_by_resonator()
        multi = {r: segs for r, segs in by_resonator.items() if len(segs) > 1}

        def disconnected() -> List[int]:
            return [r for r, segs in sorted(multi.items())
                    if len(self._clusters(segs)) > 1]

        # Strict fixpoint passes first, then relaxed ones: a swap may
        # only be fixable after another resonator's repair freed space.
        for attempt in range(max_passes):
            relaxed = attempt >= max_passes - 2
            todo = disconnected()
            if not todo:
                break
            progressed = False
            for r in todo:
                if self._repair_resonator(multi[r], relaxed):
                    progressed = True
            if not progressed and relaxed:
                break
        # Last resort: rebuild whole chains, strict first, then relaxed.
        for r in disconnected():
            self._rebuild_resonator(multi[r])
        for r in disconnected():
            self._rebuild_resonator(multi[r], enforce_resonant=False)
        self.stats.integration_failures = len(disconnected())

    # -- entry point ---------------------------------------------------------------------

    def run(self, global_positions: np.ndarray) -> Tuple[np.ndarray, LegalizeStats]:
        """Legalize ``global_positions``; returns (positions, stats)."""
        if global_positions.shape != self.positions.shape:
            raise ValueError("position array shape mismatch")
        self._legalize_qubits(global_positions)
        self._legalize_segments(global_positions)
        if self.config.legalize_integration:
            self._integrate_resonators()
        return self.positions.copy(), self.stats


def legalize(problem: PlacementProblem, global_positions: np.ndarray,
             config: Optional[PlacerConfig] = None
             ) -> Tuple[np.ndarray, LegalizeStats]:
    """Convenience wrapper: run Algorithm 1 on a global-placement result."""
    return Legalizer(problem, config).run(global_positions)

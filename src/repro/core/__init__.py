"""Qplacer core: the frequency-aware electrostatic placement engine."""

from .config import PlacerConfig
from .density import DensityGrid, DensityResult
from .detailed import DetailedPlacer, DetailedPlaceStats, refine_placement
from .engine import GlobalPlacer, GlobalPlaceResult, IterationStats
from .frequency_force import (
    frequency_energy_and_grad,
    repulsion_force_magnitude,
    resonant_pair_distances,
)
from .interactions import (
    BACKENDS,
    PrunedCollisionPairs,
    RequiredGapTable,
    grid_candidate_pairs,
    resolve_backend,
)
from .legalizer import (Legalizer, LegalizeStats, SpiralExhaustedError,
                        legalize)
from .optimizer import NesterovOptimizer, OptimizerState
from .placer import PlacementResult, QPlacer, place_topology
from .preprocess import PlacementProblem, build_problem
from .wirelength import hpwl, smooth_wirelength, wirelength_and_grad

__all__ = [
    "BACKENDS",
    "PrunedCollisionPairs",
    "RequiredGapTable",
    "grid_candidate_pairs",
    "resolve_backend",
    "DensityGrid",
    "DensityResult",
    "DetailedPlaceStats",
    "DetailedPlacer",
    "refine_placement",
    "GlobalPlacer",
    "GlobalPlaceResult",
    "IterationStats",
    "Legalizer",
    "LegalizeStats",
    "SpiralExhaustedError",
    "NesterovOptimizer",
    "OptimizerState",
    "PlacementProblem",
    "PlacementResult",
    "PlacerConfig",
    "QPlacer",
    "build_problem",
    "frequency_energy_and_grad",
    "hpwl",
    "legalize",
    "place_topology",
    "repulsion_force_magnitude",
    "resonant_pair_distances",
    "smooth_wirelength",
    "wirelength_and_grad",
]

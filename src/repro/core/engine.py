"""Frequency-aware electrostatic global placement (Sec. IV-C1, Eq. 14).

Minimises the penalty objective

``min_x  WL(x) + lambda_d * D(x) + lambda_f * F(x)``

with a multiplicative schedule on both multipliers: early iterations
optimise area (wirelength) almost alone; as the penalties grow the
instances spread until the density overflow drops below the target
(Eq. 14's "seamless shift from area minimisation to constraint
balance").  ``lambda_f = 0`` turns the engine into the Classic baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .. import profiling
from .config import PlacerConfig
from .density import DensityGrid
from .frequency_force import frequency_energy_and_grad
from .interactions import BACKEND_SPARSE, PrunedCollisionPairs
from .optimizer import NesterovOptimizer
from .preprocess import PlacementProblem
from .wirelength import hpwl, wirelength_and_grad


@dataclass
class IterationStats:
    """Per-iteration telemetry of the global placer."""

    iteration: int
    objective: float
    wirelength: float
    density_energy: float
    frequency_energy: float
    overflow: float
    lambda_density: float
    lambda_freq: float


@dataclass
class GlobalPlaceResult:
    """Output of the global placement stage.

    Attributes:
        positions: Final ``(n, 2)`` instance centres (not yet legal).
        history: Per-iteration statistics.
        converged: True when the overflow target was reached.
        peak_collision_pairs: Largest frequency-pair set evaluated in
            one objective call (static on the dense backend; the
            neighbor-list high-water mark on the sparse one).
        freq_list_rebuilds: Sparse-only: neighbor-list rebuild count.
        peak_pair_candidates: Sparse-only: largest raw grid candidate
            set screened during a rebuild.
    """

    positions: np.ndarray
    history: List[IterationStats]
    converged: bool
    peak_collision_pairs: int = 0
    freq_list_rebuilds: int = 0
    peak_pair_candidates: int = 0
    #: Sparse-only: objective evaluations that reused the neighbor list.
    freq_list_reuses: int = 0
    #: Incremental-density telemetry (0 on the dense recompute path).
    density_flushes: int = 0
    density_rescattered: int = 0
    density_max_flush_error: float = 0.0
    #: True when the run was seeded from externally supplied positions.
    warm_started: bool = False

    @property
    def iterations(self) -> int:
        """Number of optimizer iterations executed."""
        return len(self.history)

    @property
    def final_overflow(self) -> float:
        """Density overflow at the final iterate."""
        return self.history[-1].overflow if self.history else float("inf")


class GlobalPlacer:
    """Runs Eq. (14) on one :class:`PlacementProblem`.

    Args:
        problem: The preprocessed placement problem.
        config: Configuration override (defaults to the problem's).
        initial_positions: Optional ``(n, 2)`` warm-start centres that
            replace the problem's seeded initial positions (e.g. a
            cached placement of the same topology from the artifact
            store).  They are projected into the region before use.
    """

    def __init__(self, problem: PlacementProblem,
                 config: Optional[PlacerConfig] = None,
                 initial_positions: Optional[np.ndarray] = None) -> None:
        self.problem = problem
        self.config = config if config is not None else problem.config
        self.density = DensityGrid(
            region=problem.region,
            num_bins=self.config.num_bins,
            sizes=problem.inflated_sizes(),
            target_density=self.config.target_density,
        )
        self._warm_start: Optional[np.ndarray] = None
        if initial_positions is not None:
            initial_positions = np.asarray(initial_positions, dtype=float)
            if initial_positions.shape != (problem.num_instances, 2):
                raise ValueError(
                    f"initial_positions must be shaped "
                    f"({problem.num_instances}, 2), got "
                    f"{initial_positions.shape}")
            self._warm_start = initial_positions
        self._incremental_density = \
            self.config.resolved_incremental_density(problem.num_instances)
        self._density_evals = 0
        self._lambda_density = 0.0
        self._lambda_freq = 0.0
        self._last_overflow = 1.0
        self._last_parts: Tuple[float, float, float] = (0.0, 0.0, 0.0)
        nets = problem.nets
        self._net_pin_index: Optional[np.ndarray] = (
            np.concatenate([nets[:, 0], nets[:, 1]]) if nets.size else None)
        backend = self.config.resolved_interaction_backend(
            problem.num_instances)
        self._sparse_pairs: Optional[PrunedCollisionPairs] = None
        self._dense_pairs = problem.collision_pairs
        self._freq_pair_index: Optional[np.ndarray] = None
        self._peak_pairs = 0
        if backend == BACKEND_SPARSE and self.config.frequency_aware:
            # Distance-pruned neighbor list instead of the full map.
            self._sparse_pairs = PrunedCollisionPairs(
                problem.frequencies, problem.resonator_index,
                self.config.detuning_threshold_ghz,
                cutoff_mm=self.config.freq_pair_cutoff_mm,
                skin_mm=self.config.freq_pair_skin_mm,
                band_pairs=self.config.freq_pair_banding)
        elif self.config.frequency_aware:
            # Static pair set with a precomputed scatter index (pairs
            # never change between iterations).  Materialises the map
            # when the problem was built sparse but this placer resolves
            # dense — a free lookup in the ordinary dense-on-dense case.
            self._dense_pairs = problem.resonant_collision_pairs()
            pairs = self._dense_pairs
            self._freq_pair_index = (
                np.concatenate([pairs[:, 0], pairs[:, 1]])
                if pairs.size else None)
            self._peak_pairs = int(pairs.shape[0])

    def _freq_pairs(self, positions: np.ndarray
                    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Active collision pairs and scatter index for these positions."""
        if self._sparse_pairs is not None:
            pairs, index = self._sparse_pairs.pairs(positions)
            self._peak_pairs = max(self._peak_pairs,
                                   self._sparse_pairs.peak_pairs)
            return pairs, index
        return self._dense_pairs, self._freq_pair_index

    # -- objective ---------------------------------------------------------------

    def _density(self, positions: np.ndarray):
        """One density evaluation through the configured path."""
        if not self._incremental_density:
            return self.density.evaluate(positions)
        flush = (self._density_evals
                 % self.config.density_flush_interval) == 0
        self._density_evals += 1
        return self.density.evaluate_incremental(
            positions, self.config.density_move_threshold_mm, flush=flush)

    def _objective(self, positions: np.ndarray) -> Tuple[float, np.ndarray]:
        cfg = self.config
        wl, wl_grad = wirelength_and_grad(
            positions, self.problem.nets, cfg.wirelength_smoothing_mm,
            pin_index=self._net_pin_index)
        dens = self._density(positions)
        value = wl + self._lambda_density * dens.energy
        grad = wl_grad + self._lambda_density * dens.grad
        freq_energy = 0.0
        if cfg.frequency_aware:
            pairs, pair_index = self._freq_pairs(positions)
            if pairs.size:
                freq_energy, freq_grad = frequency_energy_and_grad(
                    positions, pairs, cfg.freq_force_smoothing_mm,
                    pair_index=pair_index)
                value += self._lambda_freq * freq_energy
                grad = grad + self._lambda_freq * freq_grad
        self._last_overflow = dens.overflow
        self._last_parts = (wl, dens.energy, freq_energy)
        return value, grad

    def _project(self, positions: np.ndarray) -> np.ndarray:
        """Clamp every centre into the placement region."""
        region = self.problem.region
        half = self.problem.sizes / 2.0
        out = positions.copy()
        out[:, 0] = np.clip(out[:, 0], region.x + half[:, 0], region.x2 - half[:, 0])
        out[:, 1] = np.clip(out[:, 1], region.y + half[:, 1], region.y2 - half[:, 1])
        return out

    def _initial_multipliers(self, positions: np.ndarray) -> None:
        """Balance gradient magnitudes (the ePlace initialisation)."""
        cfg = self.config
        _, wl_grad = wirelength_and_grad(
            positions, self.problem.nets, cfg.wirelength_smoothing_mm,
            pin_index=self._net_pin_index)
        dens = self.density.evaluate(positions)
        wl_norm = float(np.abs(wl_grad).sum())
        dens_norm = float(np.abs(dens.grad).sum())
        self._lambda_density = wl_norm / max(dens_norm, 1e-12) * 0.5
        if cfg.frequency_aware:
            pairs, _ = self._freq_pairs(positions)
            if pairs.size:
                _, freq_grad = frequency_energy_and_grad(
                    positions, pairs, cfg.freq_force_smoothing_mm)
                freq_norm = float(np.abs(freq_grad).sum())
                self._lambda_freq = (cfg.initial_freq_weight * wl_norm
                                     / max(freq_norm, 1e-12))

    # -- main loop -------------------------------------------------------------------

    def run(self) -> GlobalPlaceResult:
        """Execute the penalty schedule until the overflow target."""
        with profiling.phase("global"):
            return self._run()

    def _run(self) -> GlobalPlaceResult:
        cfg = self.config
        start = (self._warm_start if self._warm_start is not None
                 else self.problem.initial_positions)
        positions = self._project(start.copy())
        self._initial_multipliers(positions)
        max_move = max(self.density.bin_w, self.density.bin_h)
        optimizer = NesterovOptimizer(
            objective=self._objective,
            x0=positions,
            max_move=max_move,
            project=self._project,
        )
        history: List[IterationStats] = []
        converged = False
        for it in range(cfg.max_iterations):
            state = optimizer.step()
            wl, dens_energy, freq_energy = self._last_parts
            history.append(IterationStats(
                iteration=it,
                objective=state.value,
                wirelength=wl,
                density_energy=dens_energy,
                frequency_energy=freq_energy,
                overflow=self._last_overflow,
                lambda_density=self._lambda_density,
                lambda_freq=self._lambda_freq,
            ))
            self._lambda_density *= cfg.lambda_density_multiplier
            self._lambda_freq *= cfg.lambda_freq_multiplier
            if it >= cfg.min_iterations and self._last_overflow <= cfg.overflow_target:
                converged = True
                break
        sparse = self._sparse_pairs
        return GlobalPlaceResult(
            positions=self._project(optimizer.x),
            history=history,
            converged=converged,
            peak_collision_pairs=self._peak_pairs,
            freq_list_rebuilds=sparse.rebuilds if sparse else 0,
            peak_pair_candidates=sparse.peak_candidates if sparse else 0,
            freq_list_reuses=sparse.reuses if sparse else 0,
            density_flushes=self.density.inc_flushes,
            density_rescattered=self.density.inc_rescattered,
            density_max_flush_error=self.density.inc_max_flush_error,
            warm_started=self._warm_start is not None,
        )

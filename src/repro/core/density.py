"""Electrostatic density field (Eq. 11, ePlace formulation [56]).

Instances are rasterised into a uniform bin grid as area "charge".  The
electric potential ``psi`` follows Poisson's equation
``laplace(psi) = -rho`` with Neumann boundaries, solved spectrally with a
type-II discrete cosine transform.  The penalty energy is
``sum_b rho_b psi_b`` and the per-instance gradient is the instance's
bin-overlap-weighted electric field ``-grad(psi)`` — overlapping regions
push instances apart exactly like like charges repel.

Rasterisation is vectorised by *size groups*: the quantum problem has
only two footprints (qubits and segments), so each group processes all
its instances with fixed-size bin windows in pure numpy.

The grid optionally maintains the density map *incrementally*
(:meth:`DensityGrid.evaluate_incremental`): between full-rasterise
checkpoints only instances displaced beyond a per-axis threshold have
their old bin charge subtracted and their new charge added.  Each
checkpoint ("flush") re-rasterises from scratch and asserts the
incremental map agrees with the dense recompute to within the staleness
bound, so bookkeeping bugs cannot drift silently; a flush interval of 1
routes every evaluation through :meth:`DensityGrid.rasterize` and is
arithmetically identical to :meth:`DensityGrid.evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.fft import dctn, idctn

from ..devices.geometry import Rect


@dataclass
class DensityResult:
    """One density evaluation.

    Attributes:
        energy: Potential energy ``sum_b rho_b psi_b``.
        grad: ``(n, 2)`` gradient w.r.t. instance centres.
        overflow: Fraction of total instance area exceeding the per-bin
            capacity (the ePlace stopping metric).
        density: The ``(nb, nb)`` bin density map (area per bin).
    """

    energy: float
    grad: np.ndarray
    overflow: float
    density: np.ndarray


class DensityGrid:
    """Bin grid + spectral Poisson solver for one placement region."""

    def __init__(self, region: Rect, num_bins: int, sizes: np.ndarray,
                 target_density: float = 1.0) -> None:
        """Args:
            region: Placement canvas.
            num_bins: Bins per axis.
            sizes: ``(n, 2)`` *inflated* instance footprints used as the
                charge shape (bare size + routing clearance).
            target_density: Bin capacity fraction ``D_hat``.
        """
        if num_bins < 4:
            raise ValueError("need at least 4 bins per axis")
        self.region = region
        self.num_bins = num_bins
        self.sizes = np.asarray(sizes, dtype=float)
        self.target_density = target_density
        self.bin_w = region.w / num_bins
        self.bin_h = region.h / num_bins
        self.bin_area = self.bin_w * self.bin_h
        self.instance_area = np.prod(self.sizes, axis=1)
        # Precompute the DCT Laplacian eigenvalues (Neumann boundary).
        k = np.arange(num_bins)
        wx = 2.0 * (1.0 - np.cos(np.pi * k / num_bins)) / (self.bin_w ** 2)
        wy = 2.0 * (1.0 - np.cos(np.pi * k / num_bins)) / (self.bin_h ** 2)
        denom = wx[:, None] + wy[None, :]
        denom[0, 0] = 1.0  # DC mode removed separately
        self._laplace_denom = denom
        # Group instances by identical footprint for vectorised windows.
        self._groups: List[Tuple[np.ndarray, int, int]] = []
        seen: Dict[Tuple[float, float], List[int]] = {}
        for i, (w, h) in enumerate(self.sizes):
            seen.setdefault((round(w, 9), round(h, 9)), []).append(i)
        for (w, h), idxs in sorted(seen.items()):
            win_x = int(np.ceil(w / self.bin_w)) + 1
            win_y = int(np.ceil(h / self.bin_h)) + 1
            self._groups.append((np.array(idxs, dtype=np.int64), win_x, win_y))
        # Incremental-rasterisation state (evaluate_incremental).
        self._inc_rho: Optional[np.ndarray] = None
        self._inc_ref: Optional[np.ndarray] = None
        self._stale_bound = 0.0
        self.inc_flushes = 0
        self.inc_rescattered = 0
        self.inc_max_flush_error = 0.0

    # -- rasterisation ---------------------------------------------------------

    def _window_overlaps(self, idxs: np.ndarray, positions: np.ndarray,
                         win_x: int, win_y: int):
        """Clipped overlap lengths of each instance with its bin window.

        Returns ``(ix0, iy0, ox, oy)`` where ``ox`` is ``(g, win_x)`` of
        x-overlap lengths starting at bin column ``ix0`` (likewise y).
        """
        half = self.sizes[idxs] / 2.0
        x1 = positions[idxs, 0] - half[:, 0] - self.region.x
        y1 = positions[idxs, 1] - half[:, 1] - self.region.y
        x2 = x1 + self.sizes[idxs, 0]
        y2 = y1 + self.sizes[idxs, 1]
        ix0 = np.floor(x1 / self.bin_w).astype(np.int64)
        iy0 = np.floor(y1 / self.bin_h).astype(np.int64)
        cols = ix0[:, None] + np.arange(win_x)[None, :]
        rows = iy0[:, None] + np.arange(win_y)[None, :]
        edge_x = cols * self.bin_w
        edge_y = rows * self.bin_h
        ox = np.clip(np.minimum(x2[:, None], edge_x + self.bin_w)
                     - np.maximum(x1[:, None], edge_x), 0.0, None)
        oy = np.clip(np.minimum(y2[:, None], edge_y + self.bin_h)
                     - np.maximum(y1[:, None], edge_y), 0.0, None)
        cols = np.clip(cols, 0, self.num_bins - 1)
        rows = np.clip(rows, 0, self.num_bins - 1)
        return cols, rows, ox, oy

    def rasterize(self, positions: np.ndarray) -> np.ndarray:
        """Area-per-bin density map for the given positions."""
        nb2 = self.num_bins * self.num_bins
        flat_parts: List[np.ndarray] = []
        weight_parts: List[np.ndarray] = []
        for idxs, win_x, win_y in self._groups:
            cols, rows, ox, oy = self._window_overlaps(idxs, positions, win_x, win_y)
            weights = ox[:, :, None] * oy[:, None, :]  # (g, win_x, win_y)
            flat = (cols[:, :, None] * self.num_bins + rows[:, None, :])
            flat_parts.append(flat.ravel())
            weight_parts.append(weights.ravel())
        # One bincount over the concatenated index stream scatter-adds in
        # the same sequential order as the former per-group np.add.at,
        # bit for bit, while running an order of magnitude faster.
        rho = np.bincount(np.concatenate(flat_parts),
                          weights=np.concatenate(weight_parts),
                          minlength=nb2)
        return rho.reshape(self.num_bins, self.num_bins)

    # -- field solve -------------------------------------------------------------

    def solve_potential(self, rho: np.ndarray) -> np.ndarray:
        """Solve ``laplace(psi) = -rho`` with Neumann boundaries via DCT."""
        rho_hat = dctn(rho, type=2, norm="ortho")
        psi_hat = rho_hat / self._laplace_denom
        psi_hat[0, 0] = 0.0
        return idctn(psi_hat, type=2, norm="ortho")

    def evaluate(self, positions: np.ndarray) -> DensityResult:
        """Density energy, gradient, and overflow at ``positions``."""
        return self._evaluate_at(self.rasterize(positions), positions)

    def _evaluate_at(self, rho: np.ndarray,
                     positions: np.ndarray) -> DensityResult:
        """Potential solve + gradient gather for a given density map."""
        psi = self.solve_potential(rho)
        # Electric field E = -grad(psi); np.gradient returns d/drow, d/dcol.
        dpsi_dx, dpsi_dy = np.gradient(psi, self.bin_w, self.bin_h)
        energy = float((rho * psi).sum())

        grad = np.zeros_like(positions)
        for idxs, win_x, win_y in self._groups:
            cols, rows, ox, oy = self._window_overlaps(idxs, positions, win_x, win_y)
            weights = ox[:, :, None] * oy[:, None, :]
            gx = dpsi_dx[cols[:, :, None], rows[:, None, :]]
            gy = dpsi_dy[cols[:, :, None], rows[:, None, :]]
            grad[idxs, 0] = (weights * gx).sum(axis=(1, 2))
            grad[idxs, 1] = (weights * gy).sum(axis=(1, 2))

        capacity = self.bin_area * self.target_density
        total_area = float(self.instance_area.sum())
        overflow = float(np.clip(rho - capacity, 0.0, None).sum() / max(total_area, 1e-12))
        return DensityResult(energy=energy, grad=grad,
                             overflow=overflow, density=rho)

    # -- incremental rasterisation ---------------------------------------------

    def _subset_scatter(self, positions: np.ndarray, subset: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat bin indices and charge weights of the masked instances."""
        flat_parts: List[np.ndarray] = []
        weight_parts: List[np.ndarray] = []
        for idxs, win_x, win_y in self._groups:
            sel = idxs[subset[idxs]]
            if not sel.size:
                continue
            cols, rows, ox, oy = self._window_overlaps(
                sel, positions, win_x, win_y)
            weights = ox[:, :, None] * oy[:, None, :]
            flat = cols[:, :, None] * self.num_bins + rows[:, None, :]
            flat_parts.append(flat.ravel())
            weight_parts.append(weights.ravel())
        if not flat_parts:
            return (np.zeros(0, dtype=np.int64), np.zeros(0))
        return np.concatenate(flat_parts), np.concatenate(weight_parts)

    def _flush_tolerance(self) -> float:
        """Agreement bound of the flush checkpoint.

        Staleness: an instance whose scatter reference lags its true
        position by ``(dx, dy)`` mis-assigns at most
        ``dx*h + dy*w + dx*dy`` of area across the bins it touches.
        On top sits a float-drift allowance for the accumulated
        subtract/add updates — orders of magnitude below any
        bookkeeping bug, which shows up at instance-area scale.
        """
        drift = 1e-7 * max(1.0, float(self.instance_area.sum()))
        if self._inc_ref is None:
            return drift
        return drift + self._stale_bound

    def evaluate_incremental(self, positions: np.ndarray,
                             move_threshold_mm: float = 0.0,
                             flush: bool = False) -> DensityResult:
        """Like :meth:`evaluate`, updating the density map in place.

        Args:
            positions: ``(n, 2)`` instance centres.
            move_threshold_mm: Instances displaced at most this per axis
                since their last scatter keep their stale charge.
            flush: Force a full re-rasterise checkpoint.  The fresh map
                is asserted to agree with the incremental one (within
                the staleness bound) and replaces it.

        Raises:
            AssertionError: a flush found the incremental map diverged
                beyond the staleness bound — an update bookkeeping bug.
        """
        nb2 = self.num_bins * self.num_bins
        if self._inc_rho is None:
            self._inc_rho = self.rasterize(positions)
            self._inc_ref = positions.copy()
            self._stale_bound = 0.0
            self.inc_flushes += 1
            return self._evaluate_at(self._inc_rho, positions)
        delta = np.abs(positions - self._inc_ref)
        if move_threshold_mm > 0:
            moved = ((delta[:, 0] > move_threshold_mm)
                     | (delta[:, 1] > move_threshold_mm))
        else:
            moved = (delta > 0).any(axis=1)
        if moved.any():
            flat_old, w_old = self._subset_scatter(self._inc_ref, moved)
            flat_new, w_new = self._subset_scatter(positions, moved)
            update = np.bincount(
                np.concatenate([flat_old, flat_new]),
                weights=np.concatenate([-w_old, w_new]),
                minlength=nb2)
            self._inc_rho = (self._inc_rho
                             + update.reshape(self.num_bins,
                                              self.num_bins))
            self._inc_ref[moved] = positions[moved]
            self.inc_rescattered += int(moved.sum())
        # Refresh the staleness bound over the instances still carrying
        # old charge (each lags by <= the threshold per axis).
        stale = np.abs(positions - self._inc_ref)
        self._stale_bound = float(
            (stale[:, 0] * self.sizes[:, 1]
             + stale[:, 1] * self.sizes[:, 0]
             + stale[:, 0] * stale[:, 1]).sum())
        if flush:
            # Checkpoint: the brought-up-to-date incremental map must
            # agree with a from-scratch rasterise at these positions.
            rho = self.rasterize(positions)
            error = float(np.abs(rho - self._inc_rho).max())
            self.inc_max_flush_error = max(self.inc_max_flush_error, error)
            tolerance = self._flush_tolerance()
            assert error <= tolerance, (
                f"incremental density diverged: |rho_inc - rho| = "
                f"{error:g} > tolerance {tolerance:g}")
            self._inc_rho = rho
            self._inc_ref = positions.copy()
            self._stale_bound = 0.0
            self.inc_flushes += 1
        return self._evaluate_at(self._inc_rho, positions)

"""Electrostatic density field (Eq. 11, ePlace formulation [56]).

Instances are rasterised into a uniform bin grid as area "charge".  The
electric potential ``psi`` follows Poisson's equation
``laplace(psi) = -rho`` with Neumann boundaries, solved spectrally with a
type-II discrete cosine transform.  The penalty energy is
``sum_b rho_b psi_b`` and the per-instance gradient is the instance's
bin-overlap-weighted electric field ``-grad(psi)`` — overlapping regions
push instances apart exactly like like charges repel.

Rasterisation is vectorised by *size groups*: the quantum problem has
only two footprints (qubits and segments), so each group processes all
its instances with fixed-size bin windows in pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy.fft import dctn, idctn

from ..devices.geometry import Rect


@dataclass
class DensityResult:
    """One density evaluation.

    Attributes:
        energy: Potential energy ``sum_b rho_b psi_b``.
        grad: ``(n, 2)`` gradient w.r.t. instance centres.
        overflow: Fraction of total instance area exceeding the per-bin
            capacity (the ePlace stopping metric).
        density: The ``(nb, nb)`` bin density map (area per bin).
    """

    energy: float
    grad: np.ndarray
    overflow: float
    density: np.ndarray


class DensityGrid:
    """Bin grid + spectral Poisson solver for one placement region."""

    def __init__(self, region: Rect, num_bins: int, sizes: np.ndarray,
                 target_density: float = 1.0) -> None:
        """Args:
            region: Placement canvas.
            num_bins: Bins per axis.
            sizes: ``(n, 2)`` *inflated* instance footprints used as the
                charge shape (bare size + routing clearance).
            target_density: Bin capacity fraction ``D_hat``.
        """
        if num_bins < 4:
            raise ValueError("need at least 4 bins per axis")
        self.region = region
        self.num_bins = num_bins
        self.sizes = np.asarray(sizes, dtype=float)
        self.target_density = target_density
        self.bin_w = region.w / num_bins
        self.bin_h = region.h / num_bins
        self.bin_area = self.bin_w * self.bin_h
        self.instance_area = np.prod(self.sizes, axis=1)
        # Precompute the DCT Laplacian eigenvalues (Neumann boundary).
        k = np.arange(num_bins)
        wx = 2.0 * (1.0 - np.cos(np.pi * k / num_bins)) / (self.bin_w ** 2)
        wy = 2.0 * (1.0 - np.cos(np.pi * k / num_bins)) / (self.bin_h ** 2)
        denom = wx[:, None] + wy[None, :]
        denom[0, 0] = 1.0  # DC mode removed separately
        self._laplace_denom = denom
        # Group instances by identical footprint for vectorised windows.
        self._groups: List[Tuple[np.ndarray, int, int]] = []
        seen: Dict[Tuple[float, float], List[int]] = {}
        for i, (w, h) in enumerate(self.sizes):
            seen.setdefault((round(w, 9), round(h, 9)), []).append(i)
        for (w, h), idxs in sorted(seen.items()):
            win_x = int(np.ceil(w / self.bin_w)) + 1
            win_y = int(np.ceil(h / self.bin_h)) + 1
            self._groups.append((np.array(idxs, dtype=np.int64), win_x, win_y))

    # -- rasterisation ---------------------------------------------------------

    def _window_overlaps(self, idxs: np.ndarray, positions: np.ndarray,
                         win_x: int, win_y: int):
        """Clipped overlap lengths of each instance with its bin window.

        Returns ``(ix0, iy0, ox, oy)`` where ``ox`` is ``(g, win_x)`` of
        x-overlap lengths starting at bin column ``ix0`` (likewise y).
        """
        half = self.sizes[idxs] / 2.0
        x1 = positions[idxs, 0] - half[:, 0] - self.region.x
        y1 = positions[idxs, 1] - half[:, 1] - self.region.y
        x2 = x1 + self.sizes[idxs, 0]
        y2 = y1 + self.sizes[idxs, 1]
        ix0 = np.floor(x1 / self.bin_w).astype(np.int64)
        iy0 = np.floor(y1 / self.bin_h).astype(np.int64)
        cols = ix0[:, None] + np.arange(win_x)[None, :]
        rows = iy0[:, None] + np.arange(win_y)[None, :]
        edge_x = cols * self.bin_w
        edge_y = rows * self.bin_h
        ox = np.clip(np.minimum(x2[:, None], edge_x + self.bin_w)
                     - np.maximum(x1[:, None], edge_x), 0.0, None)
        oy = np.clip(np.minimum(y2[:, None], edge_y + self.bin_h)
                     - np.maximum(y1[:, None], edge_y), 0.0, None)
        cols = np.clip(cols, 0, self.num_bins - 1)
        rows = np.clip(rows, 0, self.num_bins - 1)
        return cols, rows, ox, oy

    def rasterize(self, positions: np.ndarray) -> np.ndarray:
        """Area-per-bin density map for the given positions."""
        nb2 = self.num_bins * self.num_bins
        flat_parts: List[np.ndarray] = []
        weight_parts: List[np.ndarray] = []
        for idxs, win_x, win_y in self._groups:
            cols, rows, ox, oy = self._window_overlaps(idxs, positions, win_x, win_y)
            weights = ox[:, :, None] * oy[:, None, :]  # (g, win_x, win_y)
            flat = (cols[:, :, None] * self.num_bins + rows[:, None, :])
            flat_parts.append(flat.ravel())
            weight_parts.append(weights.ravel())
        # One bincount over the concatenated index stream scatter-adds in
        # the same sequential order as the former per-group np.add.at,
        # bit for bit, while running an order of magnitude faster.
        rho = np.bincount(np.concatenate(flat_parts),
                          weights=np.concatenate(weight_parts),
                          minlength=nb2)
        return rho.reshape(self.num_bins, self.num_bins)

    # -- field solve -------------------------------------------------------------

    def solve_potential(self, rho: np.ndarray) -> np.ndarray:
        """Solve ``laplace(psi) = -rho`` with Neumann boundaries via DCT."""
        rho_hat = dctn(rho, type=2, norm="ortho")
        psi_hat = rho_hat / self._laplace_denom
        psi_hat[0, 0] = 0.0
        return idctn(psi_hat, type=2, norm="ortho")

    def evaluate(self, positions: np.ndarray) -> DensityResult:
        """Density energy, gradient, and overflow at ``positions``."""
        rho = self.rasterize(positions)
        psi = self.solve_potential(rho)
        # Electric field E = -grad(psi); np.gradient returns d/drow, d/dcol.
        dpsi_dx, dpsi_dy = np.gradient(psi, self.bin_w, self.bin_h)
        energy = float((rho * psi).sum())

        grad = np.zeros_like(positions)
        for idxs, win_x, win_y in self._groups:
            cols, rows, ox, oy = self._window_overlaps(idxs, positions, win_x, win_y)
            weights = ox[:, :, None] * oy[:, None, :]
            gx = dpsi_dx[cols[:, :, None], rows[:, None, :]]
            gy = dpsi_dy[cols[:, :, None], rows[:, None, :]]
            grad[idxs, 0] = (weights * gx).sum(axis=(1, 2))
            grad[idxs, 1] = (weights * gy).sum(axis=(1, 2))

        capacity = self.bin_area * self.target_density
        total_area = float(self.instance_area.sum())
        overflow = float(np.clip(rho - capacity, 0.0, None).sum() / max(total_area, 1e-12))
        return DensityResult(energy=energy, grad=grad,
                             overflow=overflow, density=rho)

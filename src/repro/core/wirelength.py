"""Wirelength model ``WL(e; x, y)`` and its gradient (Eq. 12).

Every net in the quantum placement problem is a 2-pin chain link (qubit
to segment or segment to segment), so the half-perimeter wirelength of a
net is simply the Manhattan distance of its pins.  For optimisation the
non-smooth ``|d|`` is replaced by the standard soft-absolute surrogate

``s(d) = sqrt(d^2 + gamma^2) - gamma``

which is exact as ``gamma -> 0`` and has gradient ``d / sqrt(d^2+g^2)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def hpwl(positions: np.ndarray, nets: np.ndarray) -> float:
    """Exact total Manhattan wirelength over all 2-pin nets (reporting)."""
    if nets.size == 0:
        return 0.0
    delta = positions[nets[:, 0]] - positions[nets[:, 1]]
    return float(np.abs(delta).sum())


def smooth_wirelength(positions: np.ndarray, nets: np.ndarray,
                      gamma: float) -> float:
    """Smoothed wirelength objective value."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    if nets.size == 0:
        return 0.0
    delta = positions[nets[:, 0]] - positions[nets[:, 1]]
    return float((np.sqrt(delta * delta + gamma * gamma) - gamma).sum())


def wirelength_and_grad(positions: np.ndarray, nets: np.ndarray,
                        gamma: float) -> Tuple[float, np.ndarray]:
    """Smoothed wirelength and its gradient w.r.t. every instance centre.

    Args:
        positions: ``(n, 2)`` instance centres.
        nets: ``(m, 2)`` pin index pairs.
        gamma: Smoothing length (mm).

    Returns:
        ``(value, grad)`` with ``grad`` shaped ``(n, 2)``.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    grad = np.zeros_like(positions)
    if nets.size == 0:
        return 0.0, grad
    a = nets[:, 0]
    b = nets[:, 1]
    delta = positions[a] - positions[b]
    root = np.sqrt(delta * delta + gamma * gamma)
    value = float((root - gamma).sum())
    pull = delta / root
    np.add.at(grad, a, pull)
    np.add.at(grad, b, -pull)
    return value, grad

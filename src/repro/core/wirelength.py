"""Wirelength model ``WL(e; x, y)`` and its gradient (Eq. 12).

Every net in the quantum placement problem is a 2-pin chain link (qubit
to segment or segment to segment), so the half-perimeter wirelength of a
net is simply the Manhattan distance of its pins.  For optimisation the
non-smooth ``|d|`` is replaced by the standard soft-absolute surrogate

``s(d) = sqrt(d^2 + gamma^2) - gamma``

which is exact as ``gamma -> 0`` and has gradient ``d / sqrt(d^2+g^2)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def hpwl(positions: np.ndarray, nets: np.ndarray) -> float:
    """Exact total Manhattan wirelength over all 2-pin nets (reporting)."""
    if nets.size == 0:
        return 0.0
    delta = positions[nets[:, 0]] - positions[nets[:, 1]]
    return float(np.abs(delta).sum())


def smooth_wirelength(positions: np.ndarray, nets: np.ndarray,
                      gamma: float) -> float:
    """Smoothed wirelength objective value."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    if nets.size == 0:
        return 0.0
    delta = positions[nets[:, 0]] - positions[nets[:, 1]]
    return float((np.sqrt(delta * delta + gamma * gamma) - gamma).sum())


def wirelength_and_grad(positions: np.ndarray, nets: np.ndarray,
                        gamma: float,
                        pin_index: Optional[np.ndarray] = None
                        ) -> Tuple[float, np.ndarray]:
    """Smoothed wirelength and its gradient w.r.t. every instance centre.

    Args:
        positions: ``(n, 2)`` instance centres.
        nets: ``(m, 2)`` pin index pairs.
        gamma: Smoothing length (mm).
        pin_index: Optional precomputed scatter index
            ``concatenate([nets[:, 0], nets[:, 1]])`` — callers looping
            over fixed nets (the placement engine) pass it once instead
            of rebuilding it every evaluation.

    Returns:
        ``(value, grad)`` with ``grad`` shaped ``(n, 2)``.
    """
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    grad = np.zeros_like(positions)
    if nets.size == 0:
        return 0.0, grad
    a = nets[:, 0]
    b = nets[:, 1]
    delta = positions[a] - positions[b]
    root = np.sqrt(delta * delta + gamma * gamma)
    value = float((root - gamma).sum())
    pull = delta / root
    # One bincount over the concatenated pin stream accumulates in the
    # same per-index sequential order as the former pair of np.add.at
    # scatters (all a-pulls, then all b-pulls), bit for bit, while
    # avoiding np.add.at's unbuffered per-element dispatch.
    if pin_index is None:
        pin_index = np.concatenate([a, b])
    n = positions.shape[0]
    signed = np.concatenate([pull, -pull])
    grad[:, 0] = np.bincount(pin_index, weights=signed[:, 0], minlength=n)
    grad[:, 1] = np.bincount(pin_index, weights=signed[:, 1], minlength=n)
    return value, grad

"""Integration-aware legalization (Sec. IV-C2, Algorithm 1), vectorized.

The legalizer turns the global-placement result into a legal layout in
three phases, exactly following Alg. 1:

1. **Qubit legalization** (``Q-LG``): a greedy spiral search snaps every
   qubit to the nearest free site of the qubit lattice, followed by a
   min-cost assignment refinement (per frequency level, so the resonant
   separation achieved by the spiral is preserved) that minimises total
   displacement — the paper's min-cost-flow step [88].
2. **Segment legalization** (``T-LG``): a Tetris-like scan places the
   resonator segments left-to-right onto the segment lattice with
   minimal displacement [17].
3. **Resonator integration**: every resonator's segments must form one
   contiguous cluster.  Non-compliant resonators keep their largest
   cluster and reclaim the scattered segments by moving them to free
   sites adjacent to the cluster or swapping them with neighbouring
   instances, subject to the resonant checker ``tau``.

Placement feasibility for a candidate site is a single rule,
:meth:`Legalizer._can_place`: intended pairs may touch; resonant
non-intended pairs need the full padding sum (only when the config is
frequency-aware — the Classic baseline skips this check, which is where
its frequency hotspots come from); all other pairs need the mean routing
clearance.

This module is the *fast path*: pairwise required gaps come from a
:class:`~repro.core.interactions.RequiredGapTable` (dense ``(n, n)``
matrices on paper-scale problems, on-demand rows on condor-class ones —
the strategy follows ``config.interaction_backend``), spiral offsets are
generated once per radius with numpy, and candidate sites are screened
ring-by-ring against all placed instances with array arithmetic instead
of per-pair Python calls.  The seed's scalar implementation is preserved
verbatim in :mod:`repro.core.legalizer_reference` and the equivalence
tests pin this implementation to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from .. import profiling
from .config import PlacerConfig
from .interactions import RequiredGapTable
from .preprocess import PlacementProblem

#: Comparison slack absorbing float rounding in gap/required comparisons.
_TOL = 1e-9


class SpiralExhaustedError(RuntimeError):
    """The greedy spiral found no feasible site within its search bound.

    Attributes:
        instance: Instance index that could not be placed.
        rings_attempted: Chebyshev rings screened (``spiral_max_radius_
            sites + 1`` including ring 0).
        sites_attempted: Total lattice sites screened.
        neighbors_in_reach: Placed instances inside the outermost ring's
            interaction reach of the target.
        densest_cell_count: Occupancy of the most crowded hash-cell-
            sized neighbourhood among those neighbours.
        densest_cell_mm: Centre ``(x, y)`` of that neighbourhood.
    """

    def __init__(self, message: str, *, instance: int, rings_attempted: int,
                 sites_attempted: int, neighbors_in_reach: int,
                 densest_cell_count: int,
                 densest_cell_mm: Tuple[float, float]) -> None:
        super().__init__(message)
        self.instance = instance
        self.rings_attempted = rings_attempted
        self.sites_attempted = sites_attempted
        self.neighbors_in_reach = neighbors_in_reach
        self.densest_cell_count = densest_cell_count
        self.densest_cell_mm = densest_cell_mm


@dataclass
class LegalizeStats:
    """Telemetry of one legalization run.

    Attributes:
        qubit_displacement_mm: Total qubit movement from global result.
        segment_displacement_mm: Total segment movement.
        resonant_relaxations: Sites accepted despite a resonant-spacing
            shortfall (spiral exhausted) — these become residual
            hotspots, the paper's nonzero Qplacer ``Ph``.
        integration_failures: Resonators left disconnected after repair.
        integration_moves: Segments moved during integration repair.
        integration_swaps: Segment swaps during integration repair.
        phase_seconds: Per-phase wall-clock of the run (``"legalize"``,
            ``"legalize/qubits"``, ... — see :mod:`repro.profiling`).
    """

    qubit_displacement_mm: float = 0.0
    segment_displacement_mm: float = 0.0
    resonant_relaxations: int = 0
    integration_failures: int = 0
    integration_moves: int = 0
    integration_swaps: int = 0
    #: Wall-clock telemetry is excluded from equality: two runs
    #: that produced the same layout compare equal.
    phase_seconds: Dict[str, float] = field(default_factory=dict,
                                            compare=False)


#: Packed cell keys: ``(cx + OFFSET) * STRIDE + (cy + OFFSET)``.  With
#: cell sizes >= 0.5 mm, |cx| < 2**20 covers coordinates to ~500 km —
#: far past any chip region — and the packed key fits int64 (< 2**42).
_KEY_OFFSET = 1 << 20
_KEY_STRIDE = 1 << 21

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_IDS.setflags(write=False)


class _SpatialHash:
    """Flat linked-cell index of placed instances.

    Cell membership lives in three preallocated int64 arrays — ``_next``
    / ``_prev`` intrusive list links and ``_cell`` (the packed cell key
    an instance currently occupies, ``-1`` when absent) — plus one dict
    from packed cell key to list head.  Adds and removes are O(1)
    pointer splices with no per-bucket set/list churn, and batched
    queries (:meth:`near_many`) walk every covered cell exactly once.
    """

    def __init__(self, cell_size: float, capacity: int) -> None:
        self.cell = float(cell_size)
        self._next = np.full(capacity, -1, dtype=np.int64)
        self._prev = np.full(capacity, -1, dtype=np.int64)
        self._cell = np.full(capacity, -1, dtype=np.int64)
        self._heads: Dict[int, int] = {}

    def _key(self, x: float, y: float) -> int:
        return ((int(math.floor(x / self.cell)) + _KEY_OFFSET) * _KEY_STRIDE
                + int(math.floor(y / self.cell)) + _KEY_OFFSET)

    def add(self, idx: int, x: float, y: float) -> None:
        key = self._key(x, y)
        head = self._heads.get(key, -1)
        self._next[idx] = head
        self._prev[idx] = -1
        if head >= 0:
            self._prev[head] = idx
        self._heads[key] = idx
        self._cell[idx] = key

    def remove(self, idx: int) -> None:
        key = int(self._cell[idx])
        if key < 0:
            return
        nxt = int(self._next[idx])
        prv = int(self._prev[idx])
        if prv >= 0:
            self._next[prv] = nxt
        elif nxt >= 0:
            self._heads[key] = nxt
        else:
            del self._heads[key]
        if nxt >= 0:
            self._prev[nxt] = prv
        self._cell[idx] = -1

    def move(self, idx: int, x: float, y: float) -> None:
        self.remove(idx)
        self.add(idx, x, y)

    def _collect(self, keys: np.ndarray) -> np.ndarray:
        """All member indices of the given packed cell keys."""
        out: List[int] = []
        heads = self._heads
        nxt = self._next
        for key in keys.tolist():
            j = heads.get(key, -1)
            while j >= 0:
                out.append(j)
                j = int(nxt[j])
        if not out:
            return _EMPTY_IDS
        return np.asarray(out, dtype=np.int64)

    def near_many(self, xs: np.ndarray, ys: np.ndarray,
                  radius: float) -> np.ndarray:
        """Instances within ``radius`` (per axis) of ANY query point.

        Returns a superset: every placed instance whose centre lies
        within ``radius`` on both axes of at least one ``(xs, ys)``
        point is included (each exactly once — an instance occupies one
        cell), plus whatever else shares the covered cells.
        """
        span = int(math.ceil(radius / self.cell))
        cx = np.floor(np.asarray(xs, dtype=float) / self.cell).astype(np.int64)
        cy = np.floor(np.asarray(ys, dtype=float) / self.cell).astype(np.int64)
        offs = np.arange(-span, span + 1, dtype=np.int64)
        gx = cx[:, None, None] + offs[None, :, None]
        gy = cy[:, None, None] + offs[None, None, :]
        keys = np.unique((gx + _KEY_OFFSET) * _KEY_STRIDE
                         + (gy + _KEY_OFFSET))
        return self._collect(keys)

    def near_array(self, x: float, y: float, radius: float) -> np.ndarray:
        """Single-point :meth:`near_many` (superset of true neighbours)."""
        span = int(math.ceil(radius / self.cell))
        kx = int(math.floor(x / self.cell))
        ky = int(math.floor(y / self.cell))
        offs = np.arange(-span, span + 1, dtype=np.int64)
        keys = (((kx + offs[:, None] + _KEY_OFFSET) * _KEY_STRIDE)
                + ky + offs[None, :] + _KEY_OFFSET).ravel()
        return self._collect(keys)

    def near(self, x: float, y: float, radius: float) -> Iterable[int]:
        """Indices of instances whose centres may lie within ``radius``."""
        yield from self.near_array(x, y, radius).tolist()


@lru_cache(maxsize=16)
def _spiral_offsets_array(max_radius: int) -> np.ndarray:
    """``(N, 2)`` lattice offsets ordered by ring, then Euclidean distance.

    The ordering matches the seed's :func:`_spiral_offsets` exactly:
    ring (Chebyshev radius) ascending, then squared Euclidean distance,
    then ``(dx, dy)`` lexicographically.  Cached per radius — generating
    the ~16k offsets of the default radius dominated the seed legalizer's
    construction time.
    """
    span = np.arange(-max_radius, max_radius + 1, dtype=np.int64)
    dx, dy = np.meshgrid(span, span, indexing="ij")
    dx, dy = dx.ravel(), dy.ravel()
    ring = np.maximum(np.abs(dx), np.abs(dy))
    d2 = dx * dx + dy * dy
    order = np.lexsort((dy, dx, d2, ring))
    out = np.stack([dx[order], dy[order]], axis=1)
    out.setflags(write=False)
    return out


def _ring_bounds(ring: int) -> Tuple[int, int]:
    """Slice of :func:`_spiral_offsets_array` holding one Chebyshev ring."""
    lo = (2 * ring - 1) ** 2 if ring > 0 else 0
    return lo, (2 * ring + 1) ** 2


def _spiral_offsets(max_radius: int) -> List[Tuple[int, int]]:
    """Lattice offsets ordered by ring, then by Euclidean distance."""
    return [(int(dx), int(dy)) for dx, dy in _spiral_offsets_array(max_radius)]


class Legalizer:
    """Stateful legalization of one placement problem."""

    def __init__(self, problem: PlacementProblem,
                 config: Optional[PlacerConfig] = None) -> None:
        self.problem = problem
        self.config = config if config is not None else problem.config
        p = self.problem
        self.positions = np.zeros_like(p.initial_positions)
        self._placed: Set[int] = set()
        # Interaction radius: the largest possible required gap plus the
        # largest instance extent — hash queries beyond it are never needed.
        max_half = float(np.max(p.sizes)) / 2.0
        max_gap = float(2.0 * np.max(p.paddings))
        self._interact_radius = 2.0 * max_half + max_gap + 1e-6
        self._hash = _SpatialHash(cell_size=max(self._interact_radius, 0.5),
                                  capacity=p.num_instances)
        #: "hash" screens candidate neighbourhoods through the spatial
        #: hash (superset queries — verdicts identical by construction);
        #: "scan" keeps the pre-hash full-array mask path for A/B runs.
        self._screening = self.config.legalizer_screening
        self._txn: Optional[List[Tuple[int, Tuple[float, float]]]] = None
        self._segs_by_res: Optional[Dict[int, List[int]]] = None
        self._qubit_pitch = self.config.qubit_site_pitch_mm(
            float(p.sizes[p.is_qubit][:, 0].max()) if p.is_qubit.any() else 0.4)
        self._segment_pitch = self.config.segment_site_pitch_mm()
        self._offsets_arr = _spiral_offsets_array(
            self.config.spiral_max_radius_sites)
        self.stats = LegalizeStats()

        n = p.num_instances
        self._placed_mask = np.zeros(n, dtype=bool)
        self._half = 0.5 * np.asarray(p.sizes, dtype=float)
        self._req = RequiredGapTable(
            p.resonator_index, p.frequencies, p.clearances, p.paddings,
            p.attached_resonators, self.config.detuning_threshold_ghz,
            backend=self.config.resolved_interaction_backend(n))

    @property
    def _offsets(self) -> List[Tuple[int, int]]:
        """Seed-compatible spiral offsets as a list of tuples."""
        return [(int(dx), int(dy)) for dx, dy in self._offsets_arr]

    # -- geometric feasibility ---------------------------------------------------

    def _gap(self, i: int, xi: float, yi: float, j: int) -> float:
        """Edge-to-edge gap between instance i at (xi, yi) and placed j."""
        p = self.problem
        xj, yj = self.positions[j]
        gx = abs(xi - xj) - 0.5 * (p.sizes[i, 0] + p.sizes[j, 0])
        gy = abs(yi - yj) - 0.5 * (p.sizes[i, 1] + p.sizes[j, 1])
        return math.hypot(max(gx, 0.0), max(gy, 0.0)) if (gx > 0 or gy > 0) \
            else max(gx, gy)

    def _gaps_to(self, js: np.ndarray, i: int, x: float, y: float) -> np.ndarray:
        """Edge-to-edge gaps from instance ``i`` at ``(x, y)`` to ``js``."""
        pos = self.positions[js]
        gx = np.abs(x - pos[:, 0]) - (self._half[i, 0] + self._half[js, 0])
        gy = np.abs(y - pos[:, 1]) - (self._half[i, 1] + self._half[js, 1])
        gxc = np.maximum(gx, 0.0)
        gyc = np.maximum(gy, 0.0)
        return np.where((gx > 0.0) | (gy > 0.0),
                        np.sqrt(gxc * gxc + gyc * gyc),
                        np.maximum(gx, gy))

    def _neighbor_mask(self, x: float, y: float, reach: float) -> np.ndarray:
        """Placed instances whose centre lies within ``reach`` per axis."""
        pos = self.positions
        return (self._placed_mask
                & (np.abs(pos[:, 0] - x) <= reach)
                & (np.abs(pos[:, 1] - y) <= reach))

    def _screen(self, js: np.ndarray, i: int,
                ignore: Tuple[int, ...]) -> np.ndarray:
        """Drop ``i`` and ``ignore`` from a hash query result."""
        if js.size == 0:
            return js
        keep = js != i
        for j in ignore:
            keep &= js != j
        return js[keep]

    def _can_place(self, i: int, x: float, y: float,
                   ignore: Tuple[int, ...] = (),
                   enforce_resonant: Optional[bool] = None) -> bool:
        """Check all spacing rules for instance ``i`` at ``(x, y)``.

        The neighbourhood screen — hash cells or a full-array mask,
        per ``config.legalizer_screening`` — only decides *which*
        instances get a gap check; any instance beyond the interaction
        radius passes trivially (its gap exceeds every possible
        requirement), so both screens produce identical verdicts.
        """
        if enforce_resonant is None:
            enforce_resonant = self.config.frequency_aware
        if self._screening == "scan":
            mask = self._neighbor_mask(x, y, self._interact_radius)
            mask[i] = False
            for j in ignore:
                mask[j] = False
            js = np.flatnonzero(mask)
            if js.size == 0:
                return True
            req = self._req.lookup(i, js, enforce_resonant)
        else:
            js = self._screen(
                self._hash.near_array(x, y, self._interact_radius), i, ignore)
            if js.size == 0:
                return True
            req = self._req.pairs(i, js, enforce_resonant)
        gaps = self._gaps_to(js, i, x, y)
        return bool(np.all(gaps >= req - _TOL))

    def _first_feasible_site(self, i: int, sites: Sequence[Tuple[float, float]],
                             ignore: Tuple[int, ...] = (),
                             enforce_resonant: Optional[bool] = None
                             ) -> Optional[Tuple[float, float]]:
        """First site of ``sites`` where ``i`` can be placed, else None.

        Equivalent to scanning the list with :meth:`_can_place`, but the
        whole candidate batch is screened against the neighbourhood with
        one (sites x neighbours) gap matrix.
        """
        if not sites:
            return None
        if enforce_resonant is None:
            enforce_resonant = self.config.frequency_aware
        arr = np.asarray(sites, dtype=float)
        if self._screening == "scan":
            cx = 0.5 * (arr[:, 0].min() + arr[:, 0].max())
            cy = 0.5 * (arr[:, 1].min() + arr[:, 1].max())
            reach = (max(arr[:, 0].max() - cx, arr[:, 1].max() - cy)
                     + self._interact_radius)
            mask = self._neighbor_mask(cx, cy, reach)
            mask[i] = False
            for j in ignore:
                mask[j] = False
            js = np.flatnonzero(mask)
            req = self._req.lookup(i, js, enforce_resonant) if js.size else None
        else:
            js = self._screen(
                self._hash.near_many(arr[:, 0], arr[:, 1],
                                     self._interact_radius), i, ignore)
            req = self._req.pairs(i, js, enforce_resonant) if js.size else None
        if js.size == 0:
            return (float(arr[0, 0]), float(arr[0, 1]))
        pos = self.positions[js]
        gx = (np.abs(arr[:, 0][:, None] - pos[None, :, 0])
              - (self._half[i, 0] + self._half[js, 0])[None, :])
        gy = (np.abs(arr[:, 1][:, None] - pos[None, :, 1])
              - (self._half[i, 1] + self._half[js, 1])[None, :])
        gxc = np.maximum(gx, 0.0)
        gyc = np.maximum(gy, 0.0)
        gaps = np.where((gx > 0.0) | (gy > 0.0),
                        np.sqrt(gxc * gxc + gyc * gyc),
                        np.maximum(gx, gy))
        ok = np.all(gaps >= req[None, :] - _TOL, axis=1)
        hits = np.flatnonzero(ok)
        if hits.size == 0:
            return None
        k = int(hits[0])
        return (float(arr[k, 0]), float(arr[k, 1]))

    def _place(self, i: int, x: float, y: float) -> None:
        self.positions[i] = (x, y)
        self._hash.add(i, x, y)
        self._placed.add(i)
        self._placed_mask[i] = True

    def _unplace(self, i: int) -> None:
        self._hash.remove(i)
        self._placed.discard(i)
        self._placed_mask[i] = False

    def _site(self, target: np.ndarray, pitch: float,
              offset: Tuple[int, int]) -> Tuple[float, float]:
        """Lattice site nearest ``target`` shifted by ``offset`` cells."""
        base_x = round(target[0] / pitch) * pitch
        base_y = round(target[1] / pitch) * pitch
        return (base_x + offset[0] * pitch, base_y + offset[1] * pitch)

    def _feasible_sites(self, i: int, target: np.ndarray, pitch: float,
                        enforce_resonant: Optional[bool] = None
                        ) -> Iterator[Tuple[float, float]]:
        """Feasible lattice sites around ``target`` in spiral order.

        Each Chebyshev ring is screened as one batch: a (sites x
        neighbours) gap matrix replaces per-site `_can_place` calls.  The
        generator re-screens nothing after a yield, so callers that
        mutate placement state between yields must restore it before
        pulling the next site (as `_rebuild_resonator` does).
        """
        if enforce_resonant is None:
            enforce_resonant = self.config.frequency_aware
        base_x = round(target[0] / pitch) * pitch
        base_y = round(target[1] / pitch) * pitch
        scan = self._screening == "scan"
        req_row = self._req.row(i, enforce_resonant) if scan else None
        offs = self._offsets_arr
        max_ring = self.config.spiral_max_radius_sites
        for ring in range(max_ring + 1):
            lo, hi = _ring_bounds(ring)
            sx = base_x + offs[lo:hi, 0] * pitch
            sy = base_y + offs[lo:hi, 1] * pitch
            if scan:
                mask = self._neighbor_mask(
                    base_x, base_y, ring * pitch + self._interact_radius)
                mask[i] = False
                js = np.flatnonzero(mask)
                req = req_row[js] if js.size else None
            else:
                # Hash screen per ring: the union of each site's
                # interaction ball covers the ring's perimeter, not the
                # whole disc the scan mask sweeps — on large rings that
                # is the difference between O(ring) and O(ring^2) work.
                js = self._screen(
                    self._hash.near_many(sx, sy, self._interact_radius),
                    i, ())
                req = (self._req.pairs(i, js, enforce_resonant)
                       if js.size else None)
            if js.size == 0:
                ok = np.ones(hi - lo, dtype=bool)
            else:
                pos = self.positions[js]
                gx = (np.abs(sx[:, None] - pos[None, :, 0])
                      - (self._half[i, 0] + self._half[js, 0])[None, :])
                gy = (np.abs(sy[:, None] - pos[None, :, 1])
                      - (self._half[i, 1] + self._half[js, 1])[None, :])
                gxc = np.maximum(gx, 0.0)
                gyc = np.maximum(gy, 0.0)
                gaps = np.where((gx > 0.0) | (gy > 0.0),
                                np.sqrt(gxc * gxc + gyc * gyc),
                                np.maximum(gx, gy))
                ok = np.all(gaps >= req[None, :] - _TOL, axis=1)
            for k in np.flatnonzero(ok):
                yield (float(sx[k]), float(sy[k]))

    def _spiral_place(self, i: int, target: np.ndarray, pitch: float) -> bool:
        """Greedy spiral: nearest feasible lattice site around ``target``.

        When the config is frequency-aware and no resonant-compliant site
        exists within the search bound, the constraint is relaxed to the
        plain clearance rule and the relaxation is counted (residual
        hotspot).
        """
        for (x, y) in self._feasible_sites(i, target, pitch):
            self._place(i, x, y)
            return True
        if self.config.frequency_aware:
            for (x, y) in self._feasible_sites(i, target, pitch,
                                               enforce_resonant=False):
                self.stats.resonant_relaxations += 1
                self._place(i, x, y)
                return True
        raise self._spiral_exhausted(i, target, pitch)

    def _spiral_exhausted(self, i: int, target: np.ndarray,
                          pitch: float) -> SpiralExhaustedError:
        """Diagnose an exhausted spiral: how crowded was the window?"""
        max_ring = self.config.spiral_max_radius_sites
        rings = max_ring + 1
        sites = (2 * max_ring + 1) ** 2
        reach = max_ring * pitch + self._interact_radius
        mask = self._neighbor_mask(float(target[0]), float(target[1]), reach)
        mask[i] = False
        crowd = int(np.count_nonzero(mask))
        cell = self._hash.cell
        densest_count = 0
        densest_xy = (float(target[0]), float(target[1]))
        js = np.flatnonzero(mask)
        if js.size:
            keys = np.floor(self.positions[js] / cell).astype(np.int64)
            uniq, counts = np.unique(keys, axis=0, return_counts=True)
            k = int(np.argmax(counts))
            densest_count = int(counts[k])
            densest_xy = (float((uniq[k, 0] + 0.5) * cell),
                          float((uniq[k, 1] + 0.5) * cell))
        return SpiralExhaustedError(
            f"legalizer spiral exhausted for instance {i}: no feasible "
            f"site in {rings} rings ({sites} lattice sites, pitch "
            f"{pitch:.3f} mm) around ({float(target[0]):.2f}, "
            f"{float(target[1]):.2f}); {crowd} placed neighbours within "
            f"{reach:.2f} mm reach, densest {cell:.2f} mm cell holds "
            f"{densest_count} instances near ({densest_xy[0]:.2f}, "
            f"{densest_xy[1]:.2f}); increase spiral_max_radius_sites or "
            f"lower the region density (whitespace_factor)",
            instance=i, rings_attempted=rings, sites_attempted=sites,
            neighbors_in_reach=crowd, densest_cell_count=densest_count,
            densest_cell_mm=densest_xy)

    # -- phase 1: qubits ------------------------------------------------------------

    def _legalize_qubits(self, global_positions: np.ndarray) -> None:
        p = self.problem
        qubit_ids = [i for i in range(p.num_instances) if p.is_qubit[i]]
        for i in sorted(qubit_ids,
                        key=lambda q: (global_positions[q, 0], global_positions[q, 1])):
            self._spiral_place(i, global_positions[i], self._qubit_pitch)
        self._refine_qubits(global_positions, qubit_ids)
        self.stats.qubit_displacement_mm = float(np.abs(
            self.positions[qubit_ids] - global_positions[qubit_ids]).sum())

    def _refine_qubits(self, global_positions: np.ndarray,
                       qubit_ids: Sequence[int]) -> None:
        """Min-cost assignment refinement per frequency level.

        Qubits of one frequency level may permute over their site set
        without changing any resonant-separation property, so each level
        is refined independently with an optimal assignment [88].
        """
        p = self.problem
        by_level: Dict[float, List[int]] = {}
        for i in qubit_ids:
            by_level.setdefault(round(float(p.frequencies[i]), 6), []).append(i)
        for ids in by_level.values():
            if len(ids) < 2:
                continue
            sites = self.positions[ids].copy()
            desired = global_positions[ids]
            cost = ((desired[:, None, :] - sites[None, :, :]) ** 2).sum(axis=2)
            rows, cols = linear_sum_assignment(cost)
            for r, c in zip(rows, cols):
                idx = ids[r]
                self._hash.remove(idx)
                self.positions[idx] = sites[c]
                self._hash.add(idx, sites[c][0], sites[c][1])

    # -- phase 2: segments (Tetris) ----------------------------------------------------

    def _adjacent_sites(self, anchor_xy: Tuple[float, float],
                        target: np.ndarray) -> List[Tuple[float, float]]:
        """Ring-1 lattice sites around ``anchor``, nearest-to-target first."""
        pitch = self._segment_pitch
        ax = round(anchor_xy[0] / pitch)
        ay = round(anchor_xy[1] / pitch)
        sites = [((ax + dx) * pitch, (ay + dy) * pitch)
                 for dx in (-1, 0, 1) for dy in (-1, 0, 1)
                 if not (dx == 0 and dy == 0)]
        sites.sort(key=lambda s: (s[0] - target[0]) ** 2 + (s[1] - target[1]) ** 2)
        return sites

    def _legalize_segments(self, global_positions: np.ndarray) -> None:
        """Tetris-like chain placement (T-LG).

        Resonators are processed left-to-right; within one resonator the
        segments follow their chain order, each snapping to a feasible
        lattice site adjacent to the previously placed sibling so the
        resonator stays contiguous by construction.  When a chain gets
        walled in, the segment falls back to a free-standing spiral and
        the integration phase repairs it.
        """
        p = self.problem
        if not self.config.chain_aware_tetris:
            # Classical flavour [17]: plain left-to-right scan, each
            # segment independently snapped to the nearest feasible site.
            seg_ids = [i for i in range(p.num_instances) if not p.is_qubit[i]]
            for i in sorted(seg_ids,
                            key=lambda s: (global_positions[s, 0],
                                           global_positions[s, 1])):
                self._spiral_place(i, global_positions[i], self._segment_pitch)
            self.stats.segment_displacement_mm = float(np.abs(
                self.positions[seg_ids] - global_positions[seg_ids]).sum())
            return
        by_resonator = self._segments_by_resonator()
        order = sorted(
            by_resonator,
            key=lambda r: (float(global_positions[by_resonator[r], 0].mean()),
                           float(global_positions[by_resonator[r], 1].mean())))
        for r in order:
            chain = by_resonator[r]  # creation order == chain order
            placed_chain: List[int] = []
            broke_contiguity = False
            for seg in chain:
                target = global_positions[seg]
                placed = False
                # Prefer contiguity: sites adjacent to the previous
                # sibling, then to any placed sibling.
                anchors = list(reversed(placed_chain))
                for anchor in anchors:
                    site = self._first_feasible_site(
                        seg, self._adjacent_sites(tuple(self.positions[anchor]),
                                                  target))
                    if site is not None:
                        self._place(seg, site[0], site[1])
                        placed = True
                        break
                if not placed:
                    self._spiral_place(seg, target, self._segment_pitch)
                    broke_contiguity = placed_chain != []
                placed_chain.append(seg)
            if broke_contiguity and len(chain) > 1:
                # Re-coil the whole chain now, while the layout is still
                # sparse — far cheaper than post-hoc integration repair.
                if len(self._clusters(chain)) > 1:
                    self._rebuild_resonator(chain)
        seg_ids = [i for i in range(p.num_instances) if not p.is_qubit[i]]
        self.stats.segment_displacement_mm = float(np.abs(
            self.positions[seg_ids] - global_positions[seg_ids]).sum())

    # -- phase 3: resonator integration (Alg. 1 lines 3-16) ------------------------------

    def _proximity_mm(self) -> float:
        """Segments within this centre distance count as connected."""
        return 1.6 * self._segment_pitch

    def _clusters(self, seg_ids: Sequence[int]) -> List[List[int]]:
        """Connected components of a resonator's segments by proximity."""
        ids = list(seg_ids)
        k = len(ids)
        if k <= 1:
            return [ids] if ids else []
        prox = self._proximity_mm()
        pts = self.positions[ids]
        diff = pts[:, None, :] - pts[None, :, :]
        adj = (diff[..., 0] ** 2 + diff[..., 1] ** 2) <= prox * prox
        seen = np.zeros(k, dtype=bool)
        groups: List[List[int]] = []
        for s in range(k):
            if seen[s]:
                continue
            comp = np.zeros(k, dtype=bool)
            comp[s] = True
            frontier = comp.copy()
            while True:
                grown = adj[frontier].any(axis=0) & ~comp
                if not grown.any():
                    break
                comp |= grown
                frontier = grown
            seen |= comp
            groups.append([ids[t] for t in np.flatnonzero(comp)])
        return sorted(groups, key=len, reverse=True)

    def _sites_adjacent_to_cluster(self, cluster: Sequence[int],
                                   ring: int = 1) -> List[Tuple[float, float]]:
        """Candidate lattice sites within ``ring`` cells of the cluster.

        Only ring-1 sites keep the mover inside the proximity radius of a
        cluster member; larger rings are used as stepping stones when the
        immediate frontier is congested (the mover then becomes the new
        frontier for the next pass).
        """
        pitch = self._segment_pitch
        members = np.asarray(list(cluster), dtype=np.int64)
        span = np.arange(-ring, ring + 1)
        offs = np.array([(dx, dy) for dx in span for dy in span
                         if not (dx == 0 and dy == 0)], dtype=float)
        base = self.positions[members] / pitch
        xs = np.round(base[:, None, 0] + offs[None, :, 0]) * pitch
        ys = np.round(base[:, None, 1] + offs[None, :, 1]) * pitch
        sites = np.unique(
            np.stack([xs.ravel(), ys.ravel()], axis=1), axis=0)
        centre = self.positions[members].mean(axis=0)
        d2 = (sites[:, 0] - centre[0]) ** 2 + (sites[:, 1] - centre[1]) ** 2
        # Explicit (d2, x, y) tie-break: lattice symmetry produces many
        # equidistant sites, and the repair outcome must not depend on
        # set/sort incidentals (the reference applies the same rule).
        order = np.lexsort((sites[:, 1], sites[:, 0], d2))
        return [(float(x), float(y)) for x, y in sites[order]]

    def _neighbors_of_cluster(self, cluster: Sequence[int]) -> List[int]:
        """Placed non-qubit instances adjacent to the cluster."""
        prox = self._proximity_mm()
        members = np.asarray(list(cluster), dtype=np.int64)
        cand = self._placed_mask & ~np.asarray(self.problem.is_qubit, bool)
        cand[members] = False
        js = np.flatnonzero(cand)
        if js.size == 0:
            return []
        diff = self.positions[js][:, None, :] - self.positions[members][None, :, :]
        d2 = (diff[..., 0] ** 2 + diff[..., 1] ** 2).min(axis=1)
        return [int(j) for j in js[d2 <= prox * prox]]

    def _try_move(self, seg: int, cluster: Sequence[int],
                  enforce_resonant: Optional[bool] = None) -> bool:
        """Move a scattered segment onto a free site beside the cluster."""
        self._unplace(seg)
        site = self._first_feasible_site(
            seg, self._sites_adjacent_to_cluster(cluster),
            enforce_resonant=enforce_resonant)
        if site is not None:
            self._place(seg, site[0], site[1])
            self.stats.integration_moves += 1
            if enforce_resonant is False and self.config.frequency_aware:
                self.stats.resonant_relaxations += 1
            return True
        self._place(seg, self.positions[seg, 0], self.positions[seg, 1])
        return False

    def _try_swap(self, seg: int, cluster: Sequence[int],
                  enforce_resonant: Optional[bool] = None) -> bool:
        """Swap a scattered segment with a neighbour of the cluster.

        Both relocations must pass the resonant checker ``tau`` embedded
        in :meth:`_can_place` (Alg. 1 line 12), unless the caller relaxes
        the check in the final repair pass.
        """
        p = self.problem
        seg_pos = tuple(self.positions[seg])
        by_resonator = self._segments_by_resonator()
        seg_res = int(p.resonator_index[seg])
        seg_segs = by_resonator.get(seg_res, [seg])
        for other in self._neighbors_of_cluster(cluster):
            if int(p.resonator_index[other]) == seg_res:
                continue
            other_res = int(p.resonator_index[other])
            other_segs = by_resonator.get(other_res, [other])
            before = (len(self._clusters(seg_segs))
                      + len(self._clusters(other_segs)))
            other_pos = tuple(self.positions[other])
            self._unplace(seg)
            self._unplace(other)
            if (self._can_place(seg, other_pos[0], other_pos[1],
                                enforce_resonant=enforce_resonant)
                    and self._can_place(other, seg_pos[0], seg_pos[1], ignore=(seg,),
                                        enforce_resonant=enforce_resonant)):
                self._place(seg, other_pos[0], other_pos[1])
                self._place(other, seg_pos[0], seg_pos[1])
                # Accept only when the swap strictly reduces the total
                # fragmentation of the two resonators involved: greedy
                # descent on a global objective cannot ping-pong.
                after = (len(self._clusters(seg_segs))
                         + len(self._clusters(other_segs)))
                if after < before:
                    self.stats.integration_swaps += 1
                    if enforce_resonant is False and self.config.frequency_aware:
                        self.stats.resonant_relaxations += 1
                    return True
                self._unplace(seg)
                self._unplace(other)
            self._place(seg, seg_pos[0], seg_pos[1])
            self._place(other, other_pos[0], other_pos[1])
        return False

    def _segments_by_resonator(self) -> Dict[int, List[int]]:
        """Resonator id -> its segment indices (cached; do not mutate).

        A pure function of the problem, not of positions — the detailed
        placer's contiguity guard calls this per candidate move, so the
        grouping is built once per legalizer.
        """
        if self._segs_by_res is None:
            groups: Dict[int, List[int]] = {}
            res = self.problem.resonator_index
            for i in range(self.problem.num_instances):
                r = int(res[i])
                if r >= 0:
                    groups.setdefault(r, []).append(i)
            self._segs_by_res = groups
        return self._segs_by_res

    def _repair_resonator(self, seg_ids: Sequence[int], relaxed: bool) -> bool:
        """One repair sweep over a disconnected resonator; True = moved."""
        clusters = self._clusters(seg_ids)
        if len(clusters) == 1:
            return False
        main = clusters[0]
        progressed = False
        for cluster in clusters[1:]:
            for seg in cluster:
                moved = self._try_move(seg, main) or self._try_swap(seg, main)
                if not moved and relaxed:
                    moved = (self._try_move(seg, main, enforce_resonant=False)
                             or self._try_swap(seg, main, enforce_resonant=False))
                if moved:
                    main = self._clusters(seg_ids)[0]
                    progressed = True
        return progressed

    def _rebuild_resonator(self, seg_ids: Sequence[int],
                           enforce_resonant: Optional[bool] = None,
                           max_starts: int = 8) -> bool:
        """Tear a disconnected resonator down and re-place it as a chain.

        All segments are unplaced (freeing their own sites) and re-laid
        contiguously, trying up to ``max_starts`` feasible start sites
        spiralling out from the chain's centroid.  Restores the original
        positions when no start yields a complete chain.
        """
        old = {s: tuple(self.positions[s]) for s in seg_ids}
        centroid = self.positions[list(seg_ids)].mean(axis=0)
        for s in seg_ids:
            self._unplace(s)

        def build_chain(start_xy: Tuple[float, float]) -> bool:
            """Coil the whole chain from one start site; False = undo."""
            placed_chain: List[int] = []
            coil_centre = np.array(start_xy)
            for seg in seg_ids:
                placed = False
                if not placed_chain:
                    if self._can_place(seg, start_xy[0], start_xy[1],
                                       enforce_resonant=enforce_resonant):
                        self._place(seg, start_xy[0], start_xy[1])
                        placed = True
                else:
                    for anchor in reversed(placed_chain):
                        site = self._first_feasible_site(
                            seg, self._adjacent_sites(
                                tuple(self.positions[anchor]), coil_centre),
                            enforce_resonant=enforce_resonant)
                        if site is not None:
                            self._place(seg, site[0], site[1])
                            placed = True
                            break
                if not placed:
                    for s in placed_chain:
                        self._unplace(s)
                    return False
                placed_chain.append(seg)
            return True

        # Multi-start: a free pocket may be too small for the whole
        # chain, so try successive feasible start sites spiralling out.
        # The generator screens whole rings at once; a failed build fully
        # restores the placement state before the next site is pulled.
        attempts = 0
        success = False
        for start in self._feasible_sites(seg_ids[0], centroid,
                                          self._segment_pitch,
                                          enforce_resonant=enforce_resonant):
            attempts += 1
            if build_chain(start):
                success = True
                break
            if attempts >= max_starts:
                break
        if not success:
            # Fresh territory beside the occupied bounding box: always
            # enough room for a full chain (costs area, keeps integrity).
            placed = sorted(self._placed)
            if placed:
                edge_x = float(self.positions[placed, 0].max())
                for row_step in range(0, 40):
                    start = self._site(
                        np.array([edge_x + 2.0 * self._segment_pitch,
                                  centroid[1] + row_step * 2.0 * self._segment_pitch]),
                        self._segment_pitch, (0, 0))
                    if self._can_place(seg_ids[0], start[0], start[1],
                                       enforce_resonant=enforce_resonant) \
                            and build_chain(start):
                        success = True
                        break
        if not success:
            for s in seg_ids:
                if s not in self._placed:
                    self._place(s, old[s][0], old[s][1])
            return False
        if enforce_resonant is False and self.config.frequency_aware:
            self.stats.resonant_relaxations += 1
        self.stats.integration_moves += len(seg_ids)
        return True

    def _integrate_resonators(self, max_passes: int = 6) -> None:
        by_resonator = self._segments_by_resonator()
        multi = {r: segs for r, segs in by_resonator.items() if len(segs) > 1}

        def disconnected() -> List[int]:
            return [r for r, segs in sorted(multi.items())
                    if len(self._clusters(segs)) > 1]

        # Strict fixpoint passes first, then relaxed ones: a swap may
        # only be fixable after another resonator's repair freed space.
        for attempt in range(max_passes):
            relaxed = attempt >= max_passes - 2
            todo = disconnected()
            if not todo:
                break
            progressed = False
            for r in todo:
                if self._repair_resonator(multi[r], relaxed):
                    progressed = True
            if not progressed and relaxed:
                break
        # Last resort: rebuild whole chains, strict first, then relaxed.
        for r in disconnected():
            self._rebuild_resonator(multi[r])
        for r in disconnected():
            self._rebuild_resonator(multi[r], enforce_resonant=False)
        self.stats.integration_failures = len(disconnected())

    # -- public batch-move API (detailed placement & friends) ----------------------------

    def load(self, positions: np.ndarray) -> None:
        """Adopt an externally produced legal layout, placing everything.

        The entry point for refinement stages: hand the legalizer a
        finished layout, then mutate it through :meth:`try_moves` /
        :meth:`commit` / :meth:`rollback` without touching internals.
        """
        if positions.shape != self.positions.shape:
            raise ValueError("position array shape mismatch")
        for i in range(self.problem.num_instances):
            self._place(i, float(positions[i, 0]), float(positions[i, 1]))

    def neighbors(self, x: float, y: float, radius_mm: float) -> np.ndarray:
        """Placed instances whose centres may lie within ``radius_mm``.

        A superset screen (hash-cell resolution) — callers needing the
        exact set must distance-filter the result.
        """
        if self._screening == "scan":
            return np.flatnonzero(self._neighbor_mask(x, y, radius_mm))
        return self._hash.near_array(x, y, radius_mm)

    def try_moves(self, moves: Sequence[Tuple[int, Tuple[float, float]]],
                  enforce_resonant: Optional[bool] = None) -> bool:
        """Atomically relocate a batch of placed instances.

        Every target site must satisfy the spacing rules (against the
        layout with all movers lifted) and every affected resonator must
        stay contiguous.  On success the movers sit at their new sites
        and the transaction stays open until :meth:`commit` or
        :meth:`rollback`; on failure the layout is untouched and False
        is returned.
        """
        if self._txn is not None:
            raise RuntimeError(
                "a batch-move transaction is already open; "
                "commit() or rollback() it first")
        originals = [(int(i), (float(self.positions[i, 0]),
                               float(self.positions[i, 1])))
                     for i, _ in moves]

        def restore() -> None:
            for i, _ in moves:
                if int(i) in self._placed:
                    self._unplace(int(i))
            for i, (x, y) in originals:
                self._place(i, x, y)

        for i, _ in moves:
            self._unplace(int(i))
        for i, (x, y) in moves:
            if not self._can_place(int(i), float(x), float(y),
                                   enforce_resonant=enforce_resonant):
                restore()
                return False
            self._place(int(i), float(x), float(y))
        by_res = self._segments_by_resonator()
        res_idx = self.problem.resonator_index
        for r in {int(res_idx[int(i)]) for i, _ in moves}:
            if r >= 0 and len(by_res[r]) > 1 \
                    and len(self._clusters(by_res[r])) > 1:
                restore()
                return False
        self._txn = originals
        return True

    def commit(self) -> None:
        """Finalise the open batch-move transaction."""
        if self._txn is None:
            raise RuntimeError("no open batch-move transaction")
        self._txn = None

    def rollback(self) -> None:
        """Undo the open batch-move transaction, restoring old sites."""
        if self._txn is None:
            raise RuntimeError("no open batch-move transaction")
        originals = self._txn
        self._txn = None
        for i, _ in originals:
            self._unplace(i)
        for i, (x, y) in originals:
            self._place(i, x, y)

    # -- entry point ---------------------------------------------------------------------

    def run(self, global_positions: np.ndarray) -> Tuple[np.ndarray, LegalizeStats]:
        """Legalize ``global_positions``; returns (positions, stats)."""
        if global_positions.shape != self.positions.shape:
            raise ValueError("position array shape mismatch")
        with profiling.PhaseProfiler() as prof:
            with profiling.phase("legalize"):
                with profiling.phase("qubits"):
                    self._legalize_qubits(global_positions)
                with profiling.phase("segments"):
                    self._legalize_segments(global_positions)
                if self.config.legalize_integration:
                    with profiling.phase("integrate"):
                        self._integrate_resonators()
        self.stats.phase_seconds = prof.flat_seconds()
        return self.positions.copy(), self.stats


def legalize(problem: PlacementProblem, global_positions: np.ndarray,
             config: Optional[PlacerConfig] = None
             ) -> Tuple[np.ndarray, LegalizeStats]:
    """Convenience wrapper: run Algorithm 1 on a global-placement result."""
    return Legalizer(problem, config).run(global_positions)

"""Evaluation baselines: Classic placer and Human manual design."""

from .classic import ClassicPlacer, classic_placement
from .human import human_layout, human_qubit_pitch_mm, human_strip_length_mm

__all__ = [
    "ClassicPlacer",
    "classic_placement",
    "human_layout",
    "human_qubit_pitch_mm",
    "human_strip_length_mm",
]

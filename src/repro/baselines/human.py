"""The ``Human`` baseline: IBM-style manually optimised layout (Sec. V-B).

Qubits sit on a 2D lattice following the topology's canonical drawing,
spaced so that each coupler's reshaped resonator strip fits between its
endpoint qubits:

``D = L * dr / (Lq + 2 dq)``            (paper's strip-length formula)
``pitch = (Lq + 2 dq) + D``

Resonator segments are arranged as a compact block at each edge's
midpoint — the reshaped strip.  By construction nearest neighbours are
either intended pairs or detuned, so the layout is (near) crosstalk-free
but pays a large substrate area, which is exactly the trade-off Fig. 13
quantifies.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import constants
from ..core.config import PlacerConfig
from ..core.preprocess import build_problem
from ..devices.layout import Layout
from ..devices.netlist import QuantumNetlist


def human_strip_length_mm(resonator_length_mm: float,
                          resonator_padding_mm: float = constants.RESONATOR_PADDING_MM,
                          qubit_size_mm: float = constants.QUBIT_SIZE_MM,
                          qubit_padding_mm: float = constants.QUBIT_PADDING_MM) -> float:
    """The paper's strip length ``D = L * dr / (Lq + 2 dq)``."""
    if resonator_length_mm <= 0:
        raise ValueError("resonator length must be positive")
    return (resonator_length_mm * resonator_padding_mm
            / (qubit_size_mm + 2.0 * qubit_padding_mm))


def human_qubit_pitch_mm(netlist: QuantumNetlist,
                         qubit_padding_mm: float = constants.QUBIT_PADDING_MM) -> float:
    """Qubit lattice pitch: padded qubit size plus the mean strip length."""
    qubit_size = netlist.qubits[0].width if netlist.qubits else constants.QUBIT_SIZE_MM
    padded = qubit_size + 2.0 * qubit_padding_mm
    mean_length = float(np.mean([r.length_mm for r in netlist.resonators])) \
        if netlist.resonators else 0.0
    mean_d = human_strip_length_mm(
        mean_length, netlist.resonators[0].pitch if netlist.resonators else 0.1,
        qubit_size, qubit_padding_mm) if netlist.resonators else 0.0
    return padded + mean_d


def human_layout(netlist: QuantumNetlist,
                 config: Optional[PlacerConfig] = None) -> Layout:
    """Build the manually optimised reference layout.

    Args:
        netlist: Device netlist (topology + frequencies + components).
        config: Supplies the segment size ``lb``; defaults elsewhere.

    Returns:
        A :class:`Layout` whose instances match the placement problem's
        (qubits first, then resonator segments), so every metric applies
        unchanged.
    """
    if config is None:
        config = PlacerConfig()
    problem = build_problem(netlist, config)
    coords = netlist.topology.coords
    pitch = human_qubit_pitch_mm(netlist, config.qubit_padding_mm)

    positions = np.zeros_like(problem.initial_positions)
    qubit_instance_index = {
        inst.index: i for i, inst in enumerate(problem.instances)
        if problem.is_qubit[i]
    }
    for q, (cx, cy) in coords.items():
        positions[qubit_instance_index[q]] = (cx * pitch, cy * pitch)

    padded_qubit = (netlist.qubits[0].width + 2.0 * config.qubit_padding_mm
                    if netlist.qubits else 1.2)
    lb = config.segment_size_mm
    cols = max(1, int(padded_qubit // lb))
    segments_by_resonator: Dict[int, List[int]] = {}
    for i, inst in enumerate(problem.instances):
        r = int(problem.resonator_index[i])
        if r >= 0:
            segments_by_resonator.setdefault(r, []).append(i)

    for resonator in netlist.resonators:
        u, v = resonator.endpoints
        pu = positions[qubit_instance_index[u]]
        pv = positions[qubit_instance_index[v]]
        mid = (pu + pv) / 2.0
        direction = pv - pu
        norm = float(np.hypot(*direction))
        if norm == 0:
            direction = np.array([1.0, 0.0])
            norm = 1.0
        e = direction / norm           # along the edge
        p = np.array([-e[1], e[0]])    # perpendicular
        seg_ids = segments_by_resonator.get(resonator.index, [])
        rows = max(1, math.ceil(len(seg_ids) / cols))
        for k, seg in enumerate(seg_ids):
            row, col = divmod(k, cols)
            along = (row - (rows - 1) / 2.0) * lb
            across = (col - (cols - 1) / 2.0) * lb
            positions[seg] = mid + along * e + across * p
    return Layout(
        instances=problem.instances,
        positions=positions,
        netlist=netlist,
        strategy="human",
    ).translated_to_origin()

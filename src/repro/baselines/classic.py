"""The ``Classic`` baseline: state-of-the-art VLSI placer (Sec. V-B).

The paper's Classic baseline is DREAMPlace [53] with default
hyper-parameters plus the resonator-partitioning preprocessing.  In this
reproduction the Classic baseline is the *identical* electrostatic engine
with every frequency-aware mechanism disabled (force, resonant checker,
chain-aware Tetris, integration repair) — see
:meth:`repro.core.config.PlacerConfig.classic`.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import PlacerConfig
from ..core.placer import PlacementResult, QPlacer
from ..devices.netlist import QuantumNetlist


class ClassicPlacer(QPlacer):
    """Frequency-oblivious electrostatic placer (the paper's Classic)."""

    def __init__(self, config: Optional[PlacerConfig] = None) -> None:
        if config is None:
            config = PlacerConfig.classic()
        elif config.frequency_aware:
            raise ValueError(
                "ClassicPlacer requires a frequency-oblivious config; "
                "use PlacerConfig.classic(**overrides)")
        super().__init__(config)


def classic_placement(netlist: QuantumNetlist,
                      config: Optional[PlacerConfig] = None) -> PlacementResult:
    """One-call Classic placement of a netlist."""
    return ClassicPlacer(config).place(netlist)

"""Electromagnetics of half-wave coplanar-waveguide resonators.

The paper (Sec. V-C) sizes resonators with the half-wave relation
``f = v0 / (2 L)`` where ``v0 ~ 1.3e8 m/s`` is the phase velocity in the
CPW.  For the 6.0--7.0 GHz band this gives lengths of 10.8 down to 9.2 mm,
which is where the large resonator area overhead of Sec. III-B comes from.
"""

from __future__ import annotations

from .. import constants


def resonator_length_mm(frequency_ghz: float,
                        phase_velocity_mm_per_ns: float = constants.CPW_PHASE_VELOCITY_MM_PER_NS
                        ) -> float:
    """Physical length of a half-wave resonator at ``frequency_ghz``.

    ``L = v0 / (2 f)`` with v0 in mm/ns and f in GHz yields mm directly.

    Raises:
        ValueError: for non-positive frequency.
    """
    if frequency_ghz <= 0:
        raise ValueError(f"resonator frequency must be positive, got {frequency_ghz}")
    return phase_velocity_mm_per_ns / (2.0 * frequency_ghz)


def resonator_frequency_ghz(length_mm: float,
                            phase_velocity_mm_per_ns: float = constants.CPW_PHASE_VELOCITY_MM_PER_NS
                            ) -> float:
    """Inverse of :func:`resonator_length_mm`: ``f = v0 / (2 L)``."""
    if length_mm <= 0:
        raise ValueError(f"resonator length must be positive, got {length_mm}")
    return phase_velocity_mm_per_ns / (2.0 * length_mm)


def fundamental_mode_ghz(length_mm: float) -> float:
    """Alias of :func:`resonator_frequency_ghz` for the lambda/2 fundamental."""
    return resonator_frequency_ghz(length_mm)


def harmonic_ghz(length_mm: float, n: int) -> float:
    """Frequency of the ``n``-th harmonic of a half-wave resonator.

    ``f_n = n * v0 / (2 L)`` with ``n = 1`` the fundamental.
    """
    if n < 1:
        raise ValueError("harmonic index must be >= 1")
    return n * resonator_frequency_ghz(length_mm)

"""Small Jaynes-Cummings / two-level Hamiltonian models (Sec. III).

The crosstalk analysis of the paper quantifies unwanted interactions with
the Jaynes-Cummings Hamiltonian (Eq. 7) and its two-qubit analogue
(Eq. 4).  This module provides exact small-matrix diagonalisations used by
the tests to validate the perturbative formulas in
:mod:`repro.physics.coupling`, plus the Rabi transition probability that
drives the crosstalk error model (Eq. 16).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def two_qubit_exchange_hamiltonian(freq1_ghz: float, freq2_ghz: float,
                                   g_ghz: float) -> np.ndarray:
    """Single-excitation block of Eq. (4) in the {|10>, |01>} basis.

    Returns a 2x2 real symmetric matrix in GHz:
    ``[[w1, g], [g, w2]]``.
    """
    return np.array([[freq1_ghz, g_ghz], [g_ghz, freq2_ghz]], dtype=float)


def eigensplitting_ghz(freq1_ghz: float, freq2_ghz: float, g_ghz: float) -> float:
    """Exact splitting of the single-excitation doublet.

    ``sqrt(Delta^2 + 4 g^2)``; at resonance this is the vacuum-Rabi
    splitting ``2g``.
    """
    h = two_qubit_exchange_hamiltonian(freq1_ghz, freq2_ghz, g_ghz)
    evals = np.linalg.eigvalsh(h)
    return float(evals[1] - evals[0])


def excitation_swap_probability(freq1_ghz: float, freq2_ghz: float,
                                g_ghz: float, time_ns: float) -> float:
    """Probability that |10> has evolved into |01> after ``time_ns``.

    Exact two-level Rabi formula:

    ``P = (4g^2 / (Delta^2 + 4g^2)) * sin^2(pi * sqrt(Delta^2 + 4g^2) * t)``

    with frequencies in GHz and time in ns (the ``pi`` instead of ``2 pi``
    appears because the splitting enters as half the angular Rabi rate).
    """
    if time_ns < 0:
        raise ValueError("time must be non-negative")
    delta = freq1_ghz - freq2_ghz
    rabi = np.sqrt(delta * delta + 4.0 * g_ghz * g_ghz)
    if rabi == 0:
        return 0.0
    amplitude = 4.0 * g_ghz * g_ghz / (rabi * rabi)
    return float(amplitude * np.sin(np.pi * rabi * time_ns) ** 2)


def worst_case_swap_probability(freq1_ghz: float, freq2_ghz: float,
                                g_ghz: float, time_ns: float) -> float:
    """Worst-case (over t' <= t) excitation-swap probability.

    The paper's fidelity metric is a *worst case* estimate, so the
    oscillating ``sin^2`` is replaced by its running maximum: once the
    accumulated phase passes pi/2 the full amplitude is reachable.
    """
    if time_ns < 0:
        raise ValueError("time must be non-negative")
    delta = freq1_ghz - freq2_ghz
    rabi = np.sqrt(delta * delta + 4.0 * g_ghz * g_ghz)
    amplitude = 4.0 * g_ghz * g_ghz / (rabi * rabi) if rabi > 0 else 0.0
    phase = np.pi * rabi * time_ns
    return float(amplitude * np.sin(min(phase, np.pi / 2.0)) ** 2)


def jaynes_cummings_hamiltonian(qubit_freq_ghz: float, resonator_freq_ghz: float,
                                g_ghz: float, n_photons: int = 3) -> np.ndarray:
    """Jaynes-Cummings Hamiltonian (Eq. 7) truncated at ``n_photons``.

    Basis ordering: |g,0>, |e,0>, |g,1>, |e,1>, ... |e,n-1>, |g,n>.
    Energies are plain frequencies in GHz (h = 1); the qubit term uses the
    convention ``wq/2 * sigma_z`` shifted so |g,0> sits at zero.
    """
    if n_photons < 1:
        raise ValueError("need at least one photon level")
    dim = 2 * (n_photons + 1)
    h = np.zeros((dim, dim))

    def idx(qubit_excited: bool, photons: int) -> int:
        return 2 * photons + (1 if qubit_excited else 0)

    for n in range(n_photons + 1):
        h[idx(False, n), idx(False, n)] = n * resonator_freq_ghz
        h[idx(True, n), idx(True, n)] = qubit_freq_ghz + n * resonator_freq_ghz
    for n in range(n_photons):
        # g (sigma+ a + sigma- a^dagger): couples |g, n+1> <-> |e, n>
        amp = g_ghz * np.sqrt(n + 1)
        h[idx(True, n), idx(False, n + 1)] = amp
        h[idx(False, n + 1), idx(True, n)] = amp
    return h


def dressed_qubit_shift_ghz(qubit_freq_ghz: float, resonator_freq_ghz: float,
                            g_ghz: float) -> float:
    """Exact dispersive (Lamb) shift of the qubit transition from Eq. (7).

    Diagonalises the single-excitation JC block and returns the shift of
    the qubit-like dressed state relative to the bare qubit frequency;
    in the dispersive limit this approaches ``g^2/Delta`` (Eq. 8).
    """
    h = np.array([[qubit_freq_ghz, g_ghz], [g_ghz, resonator_freq_ghz]])
    evals, evecs = np.linalg.eigh(h)
    # Pick the dressed state with the largest overlap with the bare qubit.
    qubit_like = int(np.argmax(np.abs(evecs[0, :])))
    return float(evals[qubit_like] - qubit_freq_ghz)


def vacuum_rabi_frequencies(qubit_freq_ghz: float, resonator_freq_ghz: float,
                            g_ghz: float) -> Tuple[float, float]:
    """Dressed single-excitation doublet of the JC model (GHz)."""
    h = np.array([[qubit_freq_ghz, g_ghz], [g_ghz, resonator_freq_ghz]])
    evals = np.linalg.eigvalsh(h)
    return (float(evals[0]), float(evals[1]))

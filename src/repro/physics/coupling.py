"""Coupling-strength models (Sec. III, Eqs. 4--8 of the paper).

All couplings are returned as plain frequencies ``g/2pi`` in GHz so they
compare directly with qubit/resonator frequencies and detunings.

Three interaction channels matter for crosstalk:

* **qubit-qubit** capacitive coupling, Eq. (6):
  ``g = (1/2) sqrt(w1 w2) Cp / sqrt((C1+Cp)(C2+Cp))``
* **resonator-resonator** coupling, ``g ∝ Cp / sqrt(Cr1 Cr2)`` (Sec. III-B)
* **qubit-resonator** dispersive shift ``chi = g^2 / |wr - wq|`` (Eq. 2/8)

On resonance the full strength ``g`` applies (vacuum-Rabi regime, Eq. 4);
far detuned the residual is ``g_eff = g^2 / Delta`` (Eq. 5).  The smooth
interpolation ``g^2 / sqrt(Delta^2 + g^2)`` reproduces the Fig. 4/6-b
curve shape: a Lorentzian-like peak of height ``g`` at resonance falling
off as ``g^2/Delta`` in the wings.
"""

from __future__ import annotations

import numpy as np

from .. import constants
from .capacitance import (
    qubit_parasitic_capacitance_ff,
    resonator_parasitic_capacitance_ff,
)


def qubit_qubit_coupling_ghz(freq1_ghz, freq2_ghz, cp_ff,
                             c1_ff: float = constants.QUBIT_CAPACITANCE_FF,
                             c2_ff: float = constants.QUBIT_CAPACITANCE_FF):
    """Capacitive qubit-qubit coupling ``g`` (Eq. 6), in GHz.

    Args:
        freq1_ghz, freq2_ghz: Qubit frequencies (GHz).
        cp_ff: Coupling (parasitic or intended) capacitance (fF).
        c1_ff, c2_ff: Qubit shunt capacitances (fF).
    """
    f1 = np.asarray(freq1_ghz, dtype=float)
    f2 = np.asarray(freq2_ghz, dtype=float)
    cp = np.asarray(cp_ff, dtype=float)
    if np.any(f1 <= 0) or np.any(f2 <= 0):
        raise ValueError("qubit frequencies must be positive")
    if np.any(cp < 0):
        raise ValueError("coupling capacitance must be non-negative")
    g = 0.5 * np.sqrt(f1 * f2) * cp / np.sqrt((c1_ff + cp) * (c2_ff + cp))
    if np.isscalar(freq1_ghz) and np.isscalar(freq2_ghz) and np.isscalar(cp_ff):
        return float(g)
    return g


def resonator_resonator_coupling_ghz(freq1_ghz, freq2_ghz, cp_ff,
                                     cr1_ff: float = constants.RESONATOR_CAPACITANCE_FF,
                                     cr2_ff: float = constants.RESONATOR_CAPACITANCE_FF):
    """Capacitive resonator-resonator coupling ``g ∝ Cp/sqrt(Cr1 Cr2)``.

    Uses the same normalisation as Eq. (6) with the resonator lumped
    capacitances (paper ref. [70]).
    """
    return qubit_qubit_coupling_ghz(freq1_ghz, freq2_ghz, cp_ff, cr1_ff, cr2_ff)


def effective_coupling_ghz(g_ghz, detuning_ghz,
                           resonance_threshold_ghz: float = constants.DETUNING_THRESHOLD_GHZ):
    """Piecewise effective coupling per Eqs. (4)/(5).

    Returns the bare ``g`` when ``|Delta| <= threshold`` (resonant, energy
    exchanging) and the dispersive residual ``g^2/|Delta|`` otherwise.
    """
    g = np.asarray(g_ghz, dtype=float)
    delta = np.abs(np.asarray(detuning_ghz, dtype=float))
    # The dispersive expression is only *used* where delta exceeds the
    # threshold, so the divide is guarded with that same condition — a
    # tiny-but-positive delta inside the resonant band must not overflow
    # (it previously produced a RuntimeWarning before being discarded by
    # the outer where).
    dispersive_branch = delta > resonance_threshold_ghz
    safe_delta = np.where(dispersive_branch, delta, 1.0)
    out = np.where(dispersive_branch, g * g / safe_delta, g)
    if np.isscalar(g_ghz) and np.isscalar(detuning_ghz):
        return float(out)
    return out


def smooth_exchange_ghz(g_ghz, detuning_ghz):
    """Smooth resonance curve ``g^2 / sqrt(Delta^2 + g^2)`` (Fig. 4 shape).

    Peaks at ``g`` when ``Delta = 0`` and decays as ``g^2/Delta`` for
    ``|Delta| >> g``; used for plotting/benchmarking the physics curves.
    """
    g = np.asarray(g_ghz, dtype=float)
    delta = np.asarray(detuning_ghz, dtype=float)
    out = g * g / np.sqrt(delta * delta + g * g)
    if np.isscalar(g_ghz) and np.isscalar(detuning_ghz):
        return float(out)
    return out


def dispersive_shift_ghz(g_ghz, qubit_freq_ghz, resonator_freq_ghz):
    """Qubit-resonator dispersive shift ``chi = g^2 / |wr - wq|`` (Eq. 8)."""
    g = np.asarray(g_ghz, dtype=float)
    delta = np.abs(np.asarray(resonator_freq_ghz, dtype=float)
                   - np.asarray(qubit_freq_ghz, dtype=float))
    if np.any(delta <= 0):
        raise ValueError("dispersive shift undefined at zero detuning")
    out = g * g / delta
    if np.isscalar(g_ghz):
        return float(out)
    return out


def qubit_pair_coupling_vs_distance_ghz(distance_mm, freq1_ghz, freq2_ghz,
                                        c1_ff: float = constants.QUBIT_CAPACITANCE_FF,
                                        c2_ff: float = constants.QUBIT_CAPACITANCE_FF):
    """Parasitic qubit-qubit coupling as a function of separation (Fig. 5-b).

    Combines the exponential ``Cp(d)`` model with Eq. (6).
    """
    cp = qubit_parasitic_capacitance_ff(distance_mm)
    return qubit_qubit_coupling_ghz(freq1_ghz, freq2_ghz, cp, c1_ff, c2_ff)


def resonator_pair_coupling_vs_distance_ghz(distance_mm, adjacent_length_mm,
                                            freq1_ghz, freq2_ghz):
    """Parasitic resonator-resonator coupling vs gap (Fig. 6-c)."""
    cp = resonator_parasitic_capacitance_ff(distance_mm, adjacent_length_mm)
    return resonator_resonator_coupling_ghz(freq1_ghz, freq2_ghz, cp)


def rip_gate_rate_rad_per_ns(drive_amp_ghz: float, drive_detuning_ghz: float,
                             g_ghz: float = constants.QUBIT_RESONATOR_COUPLING_GHZ,
                             qubit_freq_ghz: float = 5.0,
                             resonator_freq_ghz: float = 6.5) -> float:
    """RIP-gate phase accumulation rate ``theta_dot`` (Eq. 2), rad/ns.

    ``theta_dot ∝ n_bar * chi / Delta_cd`` with the mean photon number
    ``n_bar = |Omega V_d / (2 Delta_cd)|^2``.
    """
    if drive_detuning_ghz == 0:
        raise ValueError("drive must be detuned from the resonator")
    n_bar = (drive_amp_ghz / (2.0 * drive_detuning_ghz)) ** 2
    chi = dispersive_shift_ghz(g_ghz, qubit_freq_ghz, resonator_freq_ghz)
    return float(2.0 * np.pi * n_bar * chi / abs(drive_detuning_ghz))

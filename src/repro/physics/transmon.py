"""Transmon-qubit energy model (Sec. II-A of the paper).

A transmon is an anharmonic oscillator built from a Josephson junction
(energy ``EJ``) shunted by a large capacitance (charging energy ``EC``).
In the transmon limit ``EJ >> EC`` the standard perturbative expressions
hold (Koch et al. 2007, paper ref. [47]):

* qubit frequency   ``h f01 = sqrt(8 EJ EC) - EC``
* anharmonicity     ``alpha = f12 - f01 = -EC / h``

All energies are expressed as frequencies (E/h) in GHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from .. import constants

#: e^2 / (2 h) expressed so that EC[GHz] = E2_OVER_2H / C[fF].
#: EC = e^2 / (2C); with e = 1.602e-19 C and h = 6.626e-34 J s,
#: EC/h = e^2/(2 h C) = 19.37 GHz / (C in fF).
CHARGING_ENERGY_GHZ_FF = 19.37


def charging_energy_ghz(capacitance_ff: float) -> float:
    """Charging energy EC/h in GHz for a shunt capacitance in fF."""
    if capacitance_ff <= 0:
        raise ValueError("capacitance must be positive")
    return CHARGING_ENERGY_GHZ_FF / capacitance_ff


def qubit_frequency_ghz(ej_ghz: float, ec_ghz: float) -> float:
    """Transmon |0>-|1> transition frequency: sqrt(8 EJ EC) - EC."""
    if ej_ghz <= 0 or ec_ghz <= 0:
        raise ValueError("EJ and EC must be positive")
    return math.sqrt(8.0 * ej_ghz * ec_ghz) - ec_ghz


def josephson_energy_for_frequency(f01_ghz: float, ec_ghz: float) -> float:
    """Invert :func:`qubit_frequency_ghz` to find EJ for a target f01."""
    if f01_ghz <= 0 or ec_ghz <= 0:
        raise ValueError("f01 and EC must be positive")
    return (f01_ghz + ec_ghz) ** 2 / (8.0 * ec_ghz)


def anharmonicity_ghz(ec_ghz: float) -> float:
    """Leading-order transmon anharmonicity alpha = -EC (in GHz)."""
    return -ec_ghz


@dataclass(frozen=True)
class TransmonParams:
    """Complete electrical description of one fixed-frequency transmon.

    Attributes:
        f01_ghz: Qubit transition frequency (GHz).
        capacitance_ff: Shunt capacitance (fF).
    """

    f01_ghz: float
    capacitance_ff: float = constants.QUBIT_CAPACITANCE_FF

    @property
    def ec_ghz(self) -> float:
        """Charging energy EC/h (GHz)."""
        return charging_energy_ghz(self.capacitance_ff)

    @property
    def ej_ghz(self) -> float:
        """Josephson energy EJ/h (GHz) required for ``f01_ghz``."""
        return josephson_energy_for_frequency(self.f01_ghz, self.ec_ghz)

    @property
    def ej_over_ec(self) -> float:
        """Transmon ratio EJ/EC; should be >> 1 (typically 50--100)."""
        return self.ej_ghz / self.ec_ghz

    @property
    def anharmonicity_ghz(self) -> float:
        """alpha/2pi = f12 - f01 in GHz (negative)."""
        return anharmonicity_ghz(self.ec_ghz)

    def level_frequency_ghz(self, n: int) -> float:
        """Energy of level ``n`` relative to the ground state, as E_n/h.

        Uses the Duffing expansion ``E_n = n f01 + alpha n (n-1) / 2``.
        """
        if n < 0:
            raise ValueError("level index must be >= 0")
        return n * self.f01_ghz + self.anharmonicity_ghz * n * (n - 1) / 2.0

    def transition_frequency_ghz(self, n: int, m: int) -> float:
        """Transition frequency between levels ``n`` -> ``m`` (positive up)."""
        return self.level_frequency_ghz(m) - self.level_frequency_ghz(n)

    def levels_ghz(self, count: int = 3) -> Tuple[float, ...]:
        """The first ``count`` level energies (E_n/h, GHz)."""
        return tuple(self.level_frequency_ghz(n) for n in range(count))

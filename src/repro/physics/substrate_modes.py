"""Substrate spurious electromagnetic (box) modes (Sec. III-C).

A dielectric substrate of size ``a x b`` acts as a resonant cavity whose
lowest transverse-magnetic mode TM110 sits at

``f_110 = c / (2 sqrt(eps_r)) * sqrt((1/a)^2 + (1/b)^2)``

With silicon (eps_r = 11.7) this reproduces the paper's quoted numbers:
12.41 GHz for a 5x5 mm^2 chip dropping to 6.20 GHz at 10x10 mm^2 — right
into the resonator band, which is why substrate area must stay compact.
"""

from __future__ import annotations

import math
from typing import Tuple

from .. import constants


def tm_mode_frequency_ghz(width_mm: float, height_mm: float,
                          m: int = 1, n: int = 1,
                          eps_r: float = constants.SILICON_RELATIVE_PERMITTIVITY) -> float:
    """Frequency of the TM(m,n,0) mode of an ``a x b`` dielectric slab.

    Args:
        width_mm, height_mm: Substrate dimensions (mm).
        m, n: Mode indices (>= 1).
        eps_r: Relative permittivity of the substrate.

    Returns:
        Mode frequency in GHz.
    """
    if width_mm <= 0 or height_mm <= 0:
        raise ValueError("substrate dimensions must be positive")
    if m < 1 or n < 1:
        raise ValueError("mode indices must be >= 1")
    c = constants.SPEED_OF_LIGHT_MM_PER_NS  # mm/ns -> GHz*mm
    return (c / (2.0 * math.sqrt(eps_r))) * math.hypot(m / width_mm, n / height_mm)


def tm110_frequency_ghz(width_mm: float, height_mm: float,
                        eps_r: float = constants.SILICON_RELATIVE_PERMITTIVITY) -> float:
    """Lowest box-mode frequency TM110 (the paper's frequency ceiling)."""
    return tm_mode_frequency_ghz(width_mm, height_mm, 1, 1, eps_r)


def max_substrate_side_mm(frequency_ceiling_ghz: float,
                          eps_r: float = constants.SILICON_RELATIVE_PERMITTIVITY) -> float:
    """Largest square-substrate side whose TM110 stays above a ceiling.

    Inverts :func:`tm110_frequency_ghz` for a square chip: any component
    frequency must stay below TM110 (Sec. III-C), so the substrate must be
    small enough that TM110 exceeds the highest component frequency.
    """
    if frequency_ceiling_ghz <= 0:
        raise ValueError("frequency ceiling must be positive")
    c = constants.SPEED_OF_LIGHT_MM_PER_NS
    return (c / (2.0 * math.sqrt(eps_r))) * math.sqrt(2.0) / frequency_ceiling_ghz


def check_layout_against_box_modes(width_mm: float, height_mm: float,
                                   max_component_freq_ghz: float,
                                   eps_r: float = constants.SILICON_RELATIVE_PERMITTIVITY
                                   ) -> Tuple[bool, float]:
    """Check the Sec. III-C constraint ``f_component < f_TM110``.

    Returns:
        ``(ok, margin_ghz)`` where ``margin_ghz`` is the headroom between
        TM110 and the highest component frequency (negative = violated).
    """
    f110 = tm110_frequency_ghz(width_mm, height_mm, eps_r)
    margin = f110 - max_component_freq_ghz
    return (margin > 0.0, margin)

"""Parasitic-capacitance distance models (Figs. 5-b and 6-c).

The paper extracts parasitic capacitances between adjacent components with
Qiskit Metal's electrostatic solver and reports a monotone decay with
separation distance ``d``.  Electrostatic screening between coplanar metal
islands over a ground-referenced substrate falls off roughly exponentially
with the gap, so this reproduction uses

``Cp(d) = Cp0 * exp(-d / lambda)``

with ``Cp0`` and ``lambda`` calibrated (see ``repro.constants``) so that
Eq. (6) gives qubit-qubit couplings of tens of MHz at near-contact and a
negligible residual at the legal padded spacing of Sec. V-C.

Resonator traces couple over their *adjacent length* (Sec. V-C metrics),
so their parasitic model is per-unit-length.
"""

from __future__ import annotations

import numpy as np

from .. import constants


def qubit_parasitic_capacitance_ff(distance_mm,
                                   cp0_ff: float = constants.PARASITIC_CP0_FF,
                                   decay_mm: float = constants.PARASITIC_DECAY_MM):
    """Parasitic capacitance between two qubit pockets separated by ``d``.

    Args:
        distance_mm: Edge-to-edge separation in mm (scalar or array).
        cp0_ff: Contact-distance capacitance (fF).
        decay_mm: Exponential screening length (mm).

    Returns:
        Capacitance in fF with the same shape as ``distance_mm``.
    """
    d = np.asarray(distance_mm, dtype=float)
    if np.any(d < 0):
        raise ValueError("distance must be non-negative")
    result = cp0_ff * np.exp(-d / decay_mm)
    return float(result) if np.isscalar(distance_mm) else result


def resonator_parasitic_capacitance_ff(distance_mm,
                                       adjacent_length_mm: float,
                                       cp0_ff_per_mm: float = constants.RESONATOR_PARASITIC_CP0_FF_PER_MM,
                                       decay_mm: float = constants.RESONATOR_PARASITIC_DECAY_MM):
    """Parasitic capacitance between two parallel resonator traces.

    The capacitance grows linearly with the length over which the traces
    run adjacent to one another and decays exponentially with the gap
    (Fig. 6-c).

    Args:
        distance_mm: Edge-to-edge gap in mm (scalar or array).
        adjacent_length_mm: Length over which the traces face each other.
        cp0_ff_per_mm: Per-length capacitance at contact (fF/mm).
        decay_mm: Exponential screening length (mm).
    """
    if np.any(np.asarray(adjacent_length_mm) < 0):
        raise ValueError("adjacent length must be non-negative")
    d = np.asarray(distance_mm, dtype=float)
    if np.any(d < 0):
        raise ValueError("distance must be non-negative")
    result = cp0_ff_per_mm * np.asarray(adjacent_length_mm) * np.exp(-d / decay_mm)
    if np.isscalar(distance_mm) and np.isscalar(adjacent_length_mm):
        return float(result)
    return result


def qubit_resonator_parasitic_capacitance_ff(distance_mm,
                                             adjacent_length_mm: float = constants.QUBIT_SIZE_MM):
    """Parasitic capacitance between a qubit pocket and a nearby trace.

    Modelled like the resonator-resonator case with the qubit pocket edge
    as the adjacent length.
    """
    return resonator_parasitic_capacitance_ff(distance_mm, adjacent_length_mm)

"""Superconducting-circuit physics models underpinning the placer.

Submodules:

* :mod:`repro.physics.transmon` — transmon energy levels (EJ/EC).
* :mod:`repro.physics.resonator_em` — half-wave CPW length/frequency.
* :mod:`repro.physics.capacitance` — parasitic capacitance vs distance.
* :mod:`repro.physics.coupling` — coupling strengths g, g_eff, chi.
* :mod:`repro.physics.hamiltonian` — exact small JC/two-level models.
* :mod:`repro.physics.substrate_modes` — TM110 box-mode constraint.
"""

from .capacitance import (
    qubit_parasitic_capacitance_ff,
    qubit_resonator_parasitic_capacitance_ff,
    resonator_parasitic_capacitance_ff,
)
from .coupling import (
    dispersive_shift_ghz,
    effective_coupling_ghz,
    qubit_pair_coupling_vs_distance_ghz,
    qubit_qubit_coupling_ghz,
    resonator_pair_coupling_vs_distance_ghz,
    resonator_resonator_coupling_ghz,
    smooth_exchange_ghz,
)
from .hamiltonian import (
    eigensplitting_ghz,
    excitation_swap_probability,
    jaynes_cummings_hamiltonian,
    worst_case_swap_probability,
)
from .resonator_em import resonator_frequency_ghz, resonator_length_mm
from .substrate_modes import (
    check_layout_against_box_modes,
    max_substrate_side_mm,
    tm110_frequency_ghz,
)
from .transmon import TransmonParams, charging_energy_ghz, qubit_frequency_ghz

__all__ = [
    "TransmonParams",
    "charging_energy_ghz",
    "check_layout_against_box_modes",
    "dispersive_shift_ghz",
    "effective_coupling_ghz",
    "eigensplitting_ghz",
    "excitation_swap_probability",
    "jaynes_cummings_hamiltonian",
    "max_substrate_side_mm",
    "qubit_frequency_ghz",
    "qubit_pair_coupling_vs_distance_ghz",
    "qubit_parasitic_capacitance_ff",
    "qubit_qubit_coupling_ghz",
    "qubit_resonator_parasitic_capacitance_ff",
    "resonator_frequency_ghz",
    "resonator_length_mm",
    "resonator_pair_coupling_vs_distance_ghz",
    "resonator_parasitic_capacitance_ff",
    "resonator_resonator_coupling_ghz",
    "smooth_exchange_ghz",
    "tm110_frequency_ghz",
    "worst_case_swap_probability",
]

"""Ensemble fan-out: chunk jobs, the runner pipeline, and the request
executor body.

An ensemble request fans exactly like a chunked map request: the sample
range ``[0, samples)`` splits into :class:`EnsembleChunkJob` slices
that flow through :meth:`~repro.analysis.runner.ParallelRunner.map`
under the ``"ensembles"`` cache namespace.  Chunk results are pure
per-sample score lists, so they concatenate into the same arrays a
single whole-ensemble evaluation would produce (chunk-boundary
invariance is a property of the sampler, see
:mod:`repro.ensembles.sampling`).

A chunk's cache key deliberately omits the ensemble's *total* sample
count: sample ``i`` is fully defined by ``(layout, disorder, base_seed,
i)``, so growing an ensemble from 64 to 256 samples re-uses every
cached chunk of the first 64.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .. import constants, profiling
from ..core.config import PlacerConfig
from ..crosstalk.hotspots import hotspot_report
from ..devices.disorder import netlist_with_frequencies
from ..io.serialization import canonical_json, layout_from_dict
from .evaluation import (
    DEFAULT_EXPOSURE_NS,
    EnsembleScores,
    FrozenLayoutScorer,
    summarize_scores,
)
from .repair import repair_sample
from .sampling import sample_batch
from .spec import DisorderSpec, EnsembleSpec


@dataclass(frozen=True)
class EnsembleChunkJob:
    """Score samples ``[start, start+count)`` of one disorder setting.

    ``layout_doc`` is the serialised frozen layout
    (:func:`~repro.io.serialization.layout_to_dict` output) so the job
    pickles cleanly into worker processes and the runner cache; the
    cache key swaps it for its content digest.
    """

    layout_doc: Dict
    sigma_qubit_ghz: float
    sigma_resonator_ghz: float
    base_seed: int
    start: int
    count: int
    detuning_threshold_ghz: float = constants.DETUNING_THRESHOLD_GHZ
    duration_ns: float = DEFAULT_EXPOSURE_NS

    def cache_key(self) -> Dict:
        """Content-addressed identity for the runner's pickle cache."""
        layout_digest = hashlib.sha256(
            canonical_json(self.layout_doc).encode()).hexdigest()
        return {
            "kind": "ensemble-chunk",
            "layout_digest": layout_digest,
            "sigma_qubit_ghz": self.sigma_qubit_ghz,
            "sigma_resonator_ghz": self.sigma_resonator_ghz,
            "base_seed": self.base_seed,
            "start": self.start,
            "count": self.count,
            "detuning_threshold_ghz": self.detuning_threshold_ghz,
            "duration_ns": self.duration_ns,
        }


def run_ensemble_chunk(job: EnsembleChunkJob) -> Dict[str, List]:
    """Evaluate one chunk; returns JSON-able per-sample score lists."""
    layout = layout_from_dict(job.layout_doc)
    scorer = FrozenLayoutScorer(
        layout, detuning_threshold_ghz=job.detuning_threshold_ghz,
        duration_ns=job.duration_ns)
    with profiling.phase("sample"):
        batch = sample_batch(
            layout.netlist,
            DisorderSpec(job.sigma_qubit_ghz, job.sigma_resonator_ghz),
            job.base_seed, start=job.start, count=job.count)
    scores = scorer.score_batch(batch.qubit_freqs, batch.resonator_freqs)
    return {
        "start": job.start,
        "ph_percent": [float(x) for x in scores.ph_percent],
        "num_hotspots": [int(x) for x in scores.num_hotspots],
        "impacted_qubits": [int(x) for x in scores.impacted_qubits],
        "fidelity_proxy": [float(x) for x in scores.fidelity_proxy],
    }


def _scores_from_chunks(chunks: Sequence[Dict[str, List]]) -> EnsembleScores:
    ordered = sorted(chunks, key=lambda c: c["start"])
    return EnsembleScores(
        ph_percent=np.concatenate(
            [np.asarray(c["ph_percent"], dtype=float) for c in ordered]),
        num_hotspots=np.concatenate(
            [np.asarray(c["num_hotspots"], dtype=np.int64)
             for c in ordered]),
        impacted_qubits=np.concatenate(
            [np.asarray(c["impacted_qubits"], dtype=np.int64)
             for c in ordered]),
        fidelity_proxy=np.concatenate(
            [np.asarray(c["fidelity_proxy"], dtype=float)
             for c in ordered]))


def split_ensemble(samples: int, chunk_size: int) -> List[range]:
    """Sample index ranges of the chunked ensemble."""
    if samples < 1:
        raise ValueError("samples must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [range(s, min(s + chunk_size, samples))
            for s in range(0, samples, chunk_size)]


def run_ensemble_request(topology: str, sigmas: Sequence[float],
                         samples: int, resonator_sigma_scale: float,
                         base_seed: int, strategy: str,
                         segment_size_mm: float, seed: int,
                         config: Optional[PlacerConfig],
                         repair_samples: int, max_ph_percent: float,
                         warm_start: bool, bootstrap: int,
                         runner: "ParallelRunner",
                         chunk_size: Optional[int] = None,
                         store=None,
                         on_point: Optional[Callable[[int, Dict], None]] = None
                         ) -> Dict[str, object]:
    """Execute one ensemble request (shared by service and CLI paths).

    For each sigma point: fan the sample range through the runner as
    cached :class:`EnsembleChunkJob` chunks, summarise into a yield /
    fidelity curve point with bootstrap intervals, then incrementally
    repair up to ``repair_samples`` failing realisations (cached
    positions -> legalize -> transactional detailed pass) and report
    yield-after-repair next to the frozen yield.  ``on_point`` fires
    after each completed point — the service executor uses it to stream
    progress and publish partial artifacts; it may raise (e.g.
    ``JobCancelled``) to abort the sweep.
    """
    from ..analysis.experiments import _effective_config, run_place_request
    from ..core.preprocess import build_problem

    effective = _effective_config(config, seed, segment_size_mm)
    design_problem = None
    with profiling.PhaseProfiler() as prof:
        with profiling.phase("ensemble/layout"):
            place_payload = run_place_request(
                topology, segment_size_mm, [strategy], seed, config,
                include_layouts=True, runner=runner,
                warm_start=warm_start, store=store)
            layout_doc = place_payload["strategies"][strategy]["layout"]
            layout = layout_from_dict(layout_doc)
        netlist = layout.netlist

        if chunk_size is None:
            workers = max(1, int(getattr(runner, "max_workers", 1) or 1))
            chunk_size = max(1, -(-samples // workers))

        points: List[Dict[str, object]] = []
        for k, sigma in enumerate(sigmas):
            sigma_q = float(sigma)
            sigma_r = float(sigma) * float(resonator_sigma_scale)
            spec = EnsembleSpec(
                topology=topology, strategy=strategy,
                segment_size_mm=segment_size_mm, samples=samples,
                base_seed=base_seed,
                disorder=DisorderSpec(sigma_q, sigma_r))
            jobs = [
                EnsembleChunkJob(
                    layout_doc=layout_doc, sigma_qubit_ghz=sigma_q,
                    sigma_resonator_ghz=sigma_r, base_seed=base_seed,
                    start=r.start, count=len(r))
                for r in split_ensemble(samples, chunk_size)
            ]
            with profiling.phase("ensemble/score"):
                chunks = runner.map(run_ensemble_chunk, jobs,
                                    namespace="ensembles")
            scores = _scores_from_chunks(chunks)
            point: Dict[str, object] = {
                "sigma_qubit_ghz": sigma_q,
                "sigma_resonator_ghz": sigma_r,
                "spec_digest": spec.digest,
                "chunks": len(jobs),
            }
            point.update(summarize_scores(scores, max_ph_percent,
                                          bootstrap=bootstrap,
                                          seed=base_seed))

            passed = scores.passed(max_ph_percent)
            failing = np.flatnonzero(~passed)
            attempted = [int(i) for i in failing[:max(0, repair_samples)]]
            repaired_pass = 0
            repair_rows: List[Dict[str, object]] = []
            with profiling.phase("ensemble/repair"):
                if attempted and design_problem is None:
                    design_problem = build_problem(netlist, effective)
                for idx in attempted:
                    row = sample_batch(netlist, spec.disorder, base_seed,
                                       start=idx, count=1)
                    noisy = netlist_with_frequencies(
                        netlist, row.qubit_freqs[0], row.resonator_freqs[0])
                    result = repair_sample(design_problem, noisy,
                                           layout.positions,
                                           effective, strategy=strategy)
                    ph_after = hotspot_report(result.layout).ph_percent
                    ok = ph_after <= max_ph_percent + 1e-12
                    repaired_pass += int(ok)
                    repair_rows.append({
                        "sample": idx,
                        "sample_digest": spec.sample_digest(idx),
                        "ph_percent_before": float(scores.ph_percent[idx]),
                        "ph_percent_after": float(ph_after),
                        "legal": bool(result.legal),
                        "moved_mm": result.moved_mm,
                        "passed": bool(ok),
                    })
            kept = int(passed.sum())
            point["repair"] = {
                "attempted": len(attempted),
                "passed": repaired_pass,
                "legal_all": all(r["legal"] for r in repair_rows),
                "samples": repair_rows,
            }
            point["yield_after_repair"] = (kept + repaired_pass) / samples
            points.append(point)
            if on_point is not None:
                on_point(k, point)

    payload: Dict[str, object] = {
        "kind": "ensemble",
        "topology": topology,
        "strategy": strategy,
        "segment_size_mm": segment_size_mm,
        "samples": samples,
        "base_seed": base_seed,
        "resonator_sigma_scale": resonator_sigma_scale,
        "max_ph_percent": max_ph_percent,
        "chunk_size": chunk_size,
        "warm_start": place_payload.get("warm_start"),
        "points": points,
        "phases": prof.as_dict(),
    }
    profiling.accumulate(payload["phases"])
    return payload

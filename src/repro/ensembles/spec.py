"""Content-addressed specifications for disorder ensembles.

A Monte-Carlo ensemble is fully described by two small frozen
dataclasses of primitives:

* :class:`DisorderSpec` — the physics of one disorder model: Gaussian
  scatter amplitudes per component family plus the clip bands.
* :class:`EnsembleSpec` — the experiment: which topology/strategy/
  geometry the frozen layout comes from, how many samples, and the base
  seed of the ``SeedSequence`` tree.

Both canonicalise to JSON documents and digest with sha256, exactly
like every other cache key in the tree, so ensembles are
content-addressed end to end: the ensemble digest keys the artifact,
and each sample's digest (:meth:`EnsembleSpec.sample_digest`) keys one
realisation.  Sample ``i`` of an ensemble is *defined* as the draw from
``SeedSequence(base_seed).spawn(samples)[i]`` — equivalently
``SeedSequence(entropy=base_seed, spawn_key=(i,))`` — which makes the
realisation independent of how the ensemble is chunked across workers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

from .. import constants
from ..io.serialization import canonical_json


def _digest(document: Dict) -> str:
    return hashlib.sha256(canonical_json(document).encode()).hexdigest()


@dataclass(frozen=True)
class DisorderSpec:
    """Gaussian fab-scatter model for one ensemble.

    Attributes:
        sigma_qubit_ghz: Scatter amplitude of qubit frequencies.
        sigma_resonator_ghz: Scatter amplitude of resonator frequencies.
        qubit_band: Clip band for the realised qubit frequencies.
        resonator_band: Clip band for the realised resonator frequencies.
    """

    sigma_qubit_ghz: float
    sigma_resonator_ghz: float
    qubit_band: Tuple[float, float] = constants.QUBIT_FREQ_BAND_GHZ
    resonator_band: Tuple[float, float] = constants.RESONATOR_FREQ_BAND_GHZ

    def __post_init__(self) -> None:
        if self.sigma_qubit_ghz < 0 or self.sigma_resonator_ghz < 0:
            raise ValueError("scatter amplitudes must be non-negative")
        for lo, hi in (self.qubit_band, self.resonator_band):
            if not lo < hi:
                raise ValueError(f"invalid frequency band ({lo}, {hi})")

    def document(self) -> Dict:
        """Canonical JSON-able form (the digest payload)."""
        return {
            "sigma_qubit_ghz": float(self.sigma_qubit_ghz),
            "sigma_resonator_ghz": float(self.sigma_resonator_ghz),
            "qubit_band": [float(b) for b in self.qubit_band],
            "resonator_band": [float(b) for b in self.resonator_band],
        }

    @property
    def digest(self) -> str:
        return _digest(self.document())


@dataclass(frozen=True)
class EnsembleSpec:
    """One Monte-Carlo disorder experiment against one frozen layout.

    Attributes:
        topology: Registered topology name the layout was placed on.
        strategy: Placement strategy whose layout is frozen and
            re-scored.
        segment_size_mm: Resonator segment size of the layout geometry.
        samples: Number of disorder realisations.
        base_seed: Root entropy of the per-sample ``SeedSequence`` tree.
        disorder: The scatter model.
    """

    topology: str
    strategy: str
    segment_size_mm: float
    samples: int
    base_seed: int
    disorder: DisorderSpec = field(
        default_factory=lambda: DisorderSpec(0.02, 0.01))

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError("samples must be positive")
        if self.segment_size_mm <= 0:
            raise ValueError("segment_size_mm must be positive")

    def document(self) -> Dict:
        """Canonical JSON-able form (the digest payload)."""
        return {
            "kind": "disorder-ensemble",
            "topology": self.topology,
            "strategy": self.strategy,
            "segment_size_mm": float(self.segment_size_mm),
            "samples": int(self.samples),
            "base_seed": int(self.base_seed),
            "disorder": self.disorder.document(),
        }

    @property
    def digest(self) -> str:
        return _digest(self.document())

    def sample_digest(self, index: int) -> str:
        """Content digest of realisation ``index`` of this ensemble."""
        if not 0 <= index < self.samples:
            raise IndexError(f"sample index {index} outside "
                             f"[0, {self.samples})")
        return _digest({"ensemble": self.digest, "index": int(index)})

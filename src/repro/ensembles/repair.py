"""Incremental re-place repair of a disordered layout.

A fabricated chip cannot be re-placed — but a *design iteration* can:
when a disorder realisation pushes a frozen layout out of spec, the
cheap fix is not a from-scratch global placement of the noisy netlist
but a repair of the cached design (qGDP's observation): reload the
stored positions, re-run legalization against the noisy frequencies'
collision pairs, and polish with the transactional detailed placer.
Geometry is frequency-independent, so the cached position array aligns
index-for-index with a problem built from the noisy netlist — only
``frequencies`` and ``collision_pairs`` differ.

Yield-after-repair dominates frozen yield by construction: samples that
already pass are kept untouched, and repaired samples are legal by the
legalizer's contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import profiling
from ..core.config import PlacerConfig
from ..core.detailed import refine_placement
from ..core.legalizer import Legalizer
from ..core.preprocess import PlacementProblem
from ..devices.components import ResonatorSegment
from ..devices.disorder import disorder_strategy_tag
from ..devices.layout import Layout
from ..devices.netlist import QuantumNetlist


def _pair_gaps(problem: PlacementProblem, pos: np.ndarray,
               a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Signed legalizer gap of instance pairs ``(a[k], b[k])``."""
    gx = np.abs(pos[a, 0] - pos[b, 0]) \
        - 0.5 * (problem.sizes[a, 0] + problem.sizes[b, 0])
    gy = np.abs(pos[a, 1] - pos[b, 1]) \
        - 0.5 * (problem.sizes[a, 1] + problem.sizes[b, 1])
    separated = (gx > 0) | (gy > 0)
    return np.where(separated,
                    np.hypot(np.maximum(gx, 0.0), np.maximum(gy, 0.0)),
                    np.maximum(gx, gy))


def _intended_mask(problem: PlacementProblem, a: np.ndarray,
                   b: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`PlacementProblem.is_intended_pair` over pairs."""
    res = np.asarray(problem.resonator_index, dtype=np.int64)
    ra, rb = res[a], res[b]
    intended = (ra >= 0) & (ra == rb)  # sibling segments
    num_res = int(res.max(initial=-1)) + 1
    if num_res:
        attached = np.zeros((problem.num_instances, num_res), dtype=bool)
        for inst, owned in problem.attached_resonators.items():
            for r in owned:
                attached[inst, r] = True
        qa = np.asarray(problem.is_qubit, dtype=bool)[a] & (rb >= 0)
        intended |= qa & attached[a, np.where(rb >= 0, rb, 0)]
        qb = np.asarray(problem.is_qubit, dtype=bool)[b] & (ra >= 0)
        intended |= qb & attached[b, np.where(ra >= 0, ra, 0)]
    return intended


def check_layout_legal(problem: PlacementProblem, positions: np.ndarray,
                       tol: float = 1e-9) -> bool:
    """Vectorized legality verdict mirroring the legalizer's contract.

    Checks, over all instance pairs: no bare-footprint overlap;
    clearance separation for non-intended pairs; and the padding-sum
    spacing over the problem's resonant collision pairs.  O(n^2) pair
    arrays — meant for verification at paper/eagle tiers, not inside
    hot loops.
    """
    pos = np.asarray(positions, dtype=float)
    n = problem.num_instances
    if pos.shape != (n, 2):
        raise ValueError("position array shape mismatch")
    iu, ju = np.triu_indices(n, k=1)
    gap = _pair_gaps(problem, pos, iu, ju)
    if bool((gap < -tol).any()):
        return False

    intended = _intended_mask(problem, iu, ju)
    required = 0.5 * (problem.clearances[iu] + problem.clearances[ju])
    if bool((gap[~intended] < required[~intended] - tol).any()):
        return False

    collision_pairs = np.asarray(problem.resonant_collision_pairs())
    if collision_pairs.size:
        a = collision_pairs[:, 0].astype(np.int64)
        b = collision_pairs[:, 1].astype(np.int64)
        unintended = ~_intended_mask(problem, a, b)
        a, b = a[unintended], b[unintended]
        if a.size:
            spacing = problem.paddings[a] + problem.paddings[b]
            if bool((_pair_gaps(problem, pos, a, b)
                     < spacing - 1e-6).any()):
                return False
    return True


@dataclass(frozen=True)
class RepairResult:
    """Outcome of repairing one disorder realisation.

    Attributes:
        layout: The repaired (or from-scratch) legal layout, tuned to
            the noisy netlist.
        positions: Final position array in problem instance order.
        moved_mm: Total absolute displacement from the cached positions
            (0 when the sample needed no repair).
        legal: Verdict of :func:`check_layout_legal` on the result.
    """

    layout: Layout
    positions: np.ndarray
    moved_mm: float
    legal: bool


def problem_with_frequencies(design_problem: PlacementProblem,
                             noisy_netlist: QuantumNetlist
                             ) -> PlacementProblem:
    """The design problem re-tuned to a disorder realisation.

    The fabricated chip keeps its *design* geometry — segment
    partitioning derives from the design target frequency (``L = v0 /
    2f``), not the realised one — so the repair problem must keep the
    clean problem's instances, sizes, and region, and swap in only the
    realised frequencies plus the collision pairs they induce.  This is
    also what keeps cached design positions index-aligned with the
    repair problem.
    """
    from dataclasses import replace

    from ..core.preprocess import _collision_pairs

    qubit_freq = {q.index: q.frequency for q in noisy_netlist.qubits}
    res_freq = {r.index: r.frequency for r in noisy_netlist.resonators}
    instances = [
        replace(inst, frequency=qubit_freq[inst.index])
        if not isinstance(inst, ResonatorSegment)
        else replace(inst, frequency=res_freq[inst.resonator_index])
        for inst in design_problem.instances
    ]
    frequencies = np.array([inst.frequency for inst in instances])
    if design_problem.interaction_backend == "sparse":
        collision = np.zeros((0, 2), dtype=np.int64)
    else:
        collision = _collision_pairs(
            frequencies, design_problem.resonator_index,
            design_problem.config.detuning_threshold_ghz)
    return replace(design_problem, netlist=noisy_netlist,
                   instances=instances, frequencies=frequencies,
                   collision_pairs=collision)


def repair_positions(problem: PlacementProblem, cached_positions: np.ndarray,
                     config: PlacerConfig) -> np.ndarray:
    """Legalize + detailed-refine cached positions against a noisy problem.

    This is the incremental path: no global placement.  The legalizer
    re-seats instances against the realisation's collision pairs, then
    at least one transactional detailed pass (``try_moves``/``commit``)
    polishes wirelength without breaking legality.  The polish sweep is
    restricted to the instances the legalizer actually disturbed —
    displaced beyond the median snap distance, a self-calibrating
    threshold — since everything else already sits where the clean
    design's detailed pass left it (swap partners still come from the
    full layout, so the restriction cannot strand a good swap).
    """
    cached = np.asarray(cached_positions, dtype=float)
    with profiling.phase("relegalize"):
        positions, _ = Legalizer(problem, config).run(cached)
    displaced = np.hypot(positions[:, 0] - cached[:, 0],
                         positions[:, 1] - cached[:, 1])
    dirty = np.flatnonzero(displaced > max(float(np.median(displaced)),
                                           1e-9))
    passes = max(1, config.resolved_detailed_passes(problem.num_instances))
    with profiling.phase("repolish"):
        positions, _ = refine_placement(problem, positions, config,
                                        max_passes=passes,
                                        only=dirty if dirty.size else None)
    return positions


def repair_sample(design_problem: PlacementProblem,
                  noisy_netlist: QuantumNetlist,
                  cached_positions: np.ndarray,
                  config: PlacerConfig,
                  strategy: str = "qplacer") -> RepairResult:
    """Incrementally repair one disorder realisation of a frozen layout.

    Args:
        design_problem: The clean design's placement problem (built
            once per ensemble; its geometry is shared by all samples).
        noisy_netlist: The realisation's netlist (same topology as the
            design; frequencies perturbed).
        cached_positions: Stored positions of the clean design, in the
            deterministic ``build_problem`` instance order.
        config: Effective placement config of the design.
        strategy: Strategy tag of the source layout (for provenance).
    """
    problem = problem_with_frequencies(design_problem, noisy_netlist)
    cached = np.asarray(cached_positions, dtype=float)
    if cached.shape != (problem.num_instances, 2):
        raise ValueError(
            f"cached positions ({cached.shape}) do not align with the "
            f"noisy problem ({problem.num_instances} instances); was the "
            "design placed with a different config?")
    positions = repair_positions(problem, cached, config)
    layout = Layout(instances=problem.instances, positions=positions,
                    netlist=noisy_netlist,
                    strategy=disorder_strategy_tag(strategy) + "+repair"
                    ).translated_to_origin()
    moved = float(np.abs(positions - cached).sum())
    return RepairResult(layout=layout, positions=positions,
                        moved_mm=moved,
                        legal=check_layout_legal(problem, layout.positions))


def place_from_scratch(noisy_netlist: QuantumNetlist,
                       config: PlacerConfig,
                       strategy: str = "qplacer") -> Layout:
    """From-scratch baseline the incremental repair races against."""
    from ..placers import make_placer

    result = make_placer(config).place(noisy_netlist)
    layout = result.layout
    return Layout(instances=layout.instances, positions=layout.positions,
                  netlist=noisy_netlist,
                  strategy=disorder_strategy_tag(strategy) + "+scratch")

"""Monte-Carlo disorder-ensemble engine (Sec. V-C at scale).

Answers the question the paper only gestures at — *does this chip
still work when fabrication wobbles?* — by drawing N frequency-disorder
realisations per topology as columnar arrays, re-scoring the frozen
layout across the whole ensemble in one vectorized pass, and
incrementally repairing the failures through the transactional
legalize/detailed pipeline instead of placing from scratch.

Layers (see ``docs/ensembles.md``):

* :mod:`~repro.ensembles.spec` — content-addressed
  :class:`DisorderSpec` / :class:`EnsembleSpec`;
* :mod:`~repro.ensembles.sampling` — chunk-invariant
  ``SeedSequence``-tree batch sampler;
* :mod:`~repro.ensembles.evaluation` — the positional-precompute
  :class:`FrozenLayoutScorer` plus bootstrap yield/fidelity summaries;
* :mod:`~repro.ensembles.repair` — incremental re-place repair and the
  from-scratch baseline it races;
* :mod:`~repro.ensembles.jobs` — runner chunk fan-out and the shared
  request executor body (the service's ``ensemble`` kind and the
  ``repro ensemble`` CLI both call :func:`run_ensemble_request`).
"""

from .evaluation import (
    DEFAULT_EXPOSURE_NS,
    EnsembleScores,
    FrozenLayoutScorer,
    bootstrap_ci,
    summarize_scores,
)
from .jobs import (
    EnsembleChunkJob,
    run_ensemble_chunk,
    run_ensemble_request,
    split_ensemble,
)
from .repair import (
    RepairResult,
    check_layout_legal,
    place_from_scratch,
    problem_with_frequencies,
    repair_positions,
    repair_sample,
)
from .sampling import (
    DisorderBatch,
    child_seed_sequence,
    sample_batch,
    sample_ensemble,
)
from .spec import DisorderSpec, EnsembleSpec

__all__ = [
    "DEFAULT_EXPOSURE_NS",
    "DisorderBatch",
    "DisorderSpec",
    "EnsembleChunkJob",
    "EnsembleScores",
    "EnsembleSpec",
    "FrozenLayoutScorer",
    "RepairResult",
    "bootstrap_ci",
    "check_layout_legal",
    "child_seed_sequence",
    "place_from_scratch",
    "problem_with_frequencies",
    "repair_positions",
    "repair_sample",
    "run_ensemble_chunk",
    "run_ensemble_request",
    "sample_batch",
    "sample_ensemble",
    "split_ensemble",
    "summarize_scores",
]

"""Batch sampling of disorder realisations as columnar arrays.

The hot path of a Monte-Carlo ensemble never builds netlist objects:
:func:`sample_batch` draws ``count`` realisations straight into
``(count, num_qubits)`` / ``(count, num_resonators)`` float arrays, one
row per ``SeedSequence`` child stream.  Component objects are only
materialised (via :func:`repro.devices.netlist_with_frequencies`) for
the handful of samples that need repair.

Chunk-boundary invariance: row ``i`` of any batch is drawn from
``SeedSequence(entropy=base_seed, spawn_key=(start + i,))``, which by
the ``SeedSequence`` spawn contract is identical to
``SeedSequence(base_seed).spawn(n)[start + i]`` for every ``n >
start + i``.  Splitting an ensemble into chunks of any size therefore
reproduces the exact same realisations, and a chunk job's cache entry
stays valid under a different worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..devices.disorder import sample_disorder_frequencies
from ..devices.netlist import QuantumNetlist
from .spec import DisorderSpec, EnsembleSpec


def child_seed_sequence(base_seed: int, index: int) -> np.random.SeedSequence:
    """The ``SeedSequence`` child stream of sample ``index``.

    Identical to ``SeedSequence(base_seed).spawn(n)[index]`` for any
    ``n > index``, without spawning the first ``index`` siblings.
    """
    if index < 0:
        raise IndexError("sample index must be non-negative")
    return np.random.SeedSequence(entropy=base_seed, spawn_key=(index,))


@dataclass(frozen=True)
class DisorderBatch:
    """``count`` disorder realisations of one ensemble slice.

    Attributes:
        start: Ensemble index of row 0.
        qubit_freqs: ``(count, num_qubits)`` realised qubit frequencies,
            columns in ``netlist.qubits`` order.
        resonator_freqs: ``(count, num_resonators)`` realised resonator
            frequencies, columns in ``netlist.resonators`` order.
    """

    start: int
    qubit_freqs: np.ndarray
    resonator_freqs: np.ndarray

    @property
    def count(self) -> int:
        return int(self.qubit_freqs.shape[0])

    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """(qubit_freqs, resonator_freqs) of batch row ``i``."""
        return self.qubit_freqs[i], self.resonator_freqs[i]


def sample_batch(netlist: QuantumNetlist, disorder: DisorderSpec,
                 base_seed: int, start: int = 0,
                 count: int = 1) -> DisorderBatch:
    """Draw realisations ``start .. start+count-1`` of an ensemble.

    Row ``i`` is exactly the single-sample draw
    ``sample_disorder_frequencies(..., child_seed_sequence(base_seed,
    start + i))`` — the batch is an arrangement of independent
    single-sample streams, not one long stream sliced, so results are
    invariant to chunking.
    """
    if count < 1:
        raise ValueError("count must be positive")
    qubit_targets = np.array([q.frequency for q in netlist.qubits])
    resonator_targets = np.array([r.frequency for r in netlist.resonators])
    qubit_rows = np.empty((count, qubit_targets.size))
    resonator_rows = np.empty((count, resonator_targets.size))
    for i in range(count):
        qf, rf = sample_disorder_frequencies(
            qubit_targets, resonator_targets,
            disorder.sigma_qubit_ghz, disorder.sigma_resonator_ghz,
            child_seed_sequence(base_seed, start + i),
            qubit_band=disorder.qubit_band,
            resonator_band=disorder.resonator_band)
        qubit_rows[i] = qf
        resonator_rows[i] = rf
    return DisorderBatch(start=start, qubit_freqs=qubit_rows,
                         resonator_freqs=resonator_rows)


def sample_ensemble(netlist: QuantumNetlist,
                    spec: EnsembleSpec) -> DisorderBatch:
    """All ``spec.samples`` realisations of an ensemble in one batch."""
    return sample_batch(netlist, spec.disorder, spec.base_seed,
                        start=0, count=spec.samples)

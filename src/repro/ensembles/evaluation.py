"""Batched frozen-layout scoring across a disorder ensemble.

The placement is frozen — a fabricated chip cannot be re-placed — so
across an ensemble only the component *frequencies* move.  Everything
positional is therefore sample-invariant and computed once:

* the candidate/violating pair set of :func:`repro.crosstalk.
  violations.find_spatial_violations` (bare gaps vs padding sums, the
  intended-adjacency exclusions) — purely geometric;
* each violating pair's parasitic capacitance ``cp`` (a function of the
  bare gap and facing length only);
* each pair's Eq. (18) hotspot weight ``facing(padded) * dc`` and the
  pair → impacted-qubit incidence matrix;
* the normalising polygon area ``Apoly``.

Per sample, only the frequency-dependent tail runs, vectorized over the
whole ``(samples, pairs)`` grid at once: detunings, coupling strengths
``g`` (the ``0.5 sqrt(f1 f2) cp / sqrt((c1+cp)(c2+cp))`` formula is
symmetric, so one fused evaluation with per-member capacitance arrays
reproduces the qq/rr/qr branches exactly), resonance indicators, the
hotspot proportion, and the Eq. (16) crosstalk-error fidelity proxy.
:meth:`FrozenLayoutScorer.score_batch` on a one-row batch is
numerically identical to ``hotspot_report(disordered_layout(...))`` —
the property the ensemble tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import constants
from ..crosstalk.violations import spatial_candidate_pairs
from ..devices.components import Qubit, ResonatorSegment
from ..devices.layout import Layout
from ..physics.capacitance import (
    qubit_parasitic_capacitance_ff,
    resonator_parasitic_capacitance_ff,
)

#: Default crosstalk exposure window of the fidelity proxy: one
#: two-qubit gate, the longest timed operation a hotspot can corrupt.
DEFAULT_EXPOSURE_NS = constants.TWO_QUBIT_GATE_NS


@dataclass(frozen=True)
class EnsembleScores:
    """Per-sample scores of one ensemble batch (arrays of length N).

    Attributes:
        ph_percent: Eq. (18) hotspot proportion, percent.
        num_hotspots: Resonant violating pair count.
        impacted_qubits: Impacted-qubit count (Fig. 12 middle).
        fidelity_proxy: ``prod(1 - eps)`` over violating pairs with the
            Eq. (16) crosstalk error at the scorer's exposure window.
    """

    ph_percent: np.ndarray
    num_hotspots: np.ndarray
    impacted_qubits: np.ndarray
    fidelity_proxy: np.ndarray

    def passed(self, max_ph_percent: float) -> np.ndarray:
        """Boolean pass mask: sample yields iff ``Ph`` stays bounded."""
        return self.ph_percent <= max_ph_percent + 1e-12


class FrozenLayoutScorer:
    """Precomputed positional state for re-scoring one frozen layout."""

    def __init__(self, layout: Layout,
                 detuning_threshold_ghz: float = constants.DETUNING_THRESHOLD_GHZ,
                 duration_ns: float = DEFAULT_EXPOSURE_NS,
                 backend: str = "auto") -> None:
        if layout.netlist is None:
            raise ValueError("layout must carry its netlist")
        self.layout = layout
        self.detuning_threshold_ghz = float(detuning_threshold_ghz)
        self.duration_ns = float(duration_ns)
        netlist = layout.netlist
        self.num_qubits = len(netlist.qubits)
        self.num_resonators = len(netlist.resonators)
        self._precompute(backend)

    # -- positional precompute (mirrors find_spatial_violations) -------

    def _precompute(self, backend: str) -> None:
        layout = self.layout
        netlist = layout.netlist
        insts = layout.instances
        n = layout.num_instances
        pos = np.asarray(layout.positions, dtype=float)
        half_w = np.array([0.5 * it.width for it in insts])
        half_h = np.array([0.5 * it.height for it in insts])
        pads = np.array([it.padding for it in insts])
        is_q = np.array([isinstance(it, Qubit) for it in insts])
        res_idx = np.array([
            it.resonator_index if isinstance(it, ResonatorSegment) else -1
            for it in insts], dtype=np.int64)
        self.apoly = layout.apoly()

        if n < 2:
            iu = ju = np.zeros(0, dtype=np.int64)
            dx = dy = gaps = np.zeros(0)
        else:
            iu, ju, dx, dy = spatial_candidate_pairs(
                pos, half_w, half_h, pads, backend=backend)
            bgx = np.maximum(0.0, dx - (half_w[iu] + half_w[ju]))
            bgy = np.maximum(0.0, dy - (half_h[iu] + half_h[ju]))
            gaps = np.hypot(bgx, bgy)
            viol = gaps < (pads[iu] + pads[ju]) - 1e-6
            iu, ju, dx, dy, gaps = (iu[viol], ju[viol], dx[viol],
                                    dy[viol], gaps[viol])
            # Intended-adjacency exclusion, identical to the scalar scan.
            same_res = (res_idx[iu] == res_idx[ju]) & (res_idx[iu] >= 0)
            keep = ~same_res
            attached: Dict[int, set] = {}
            for resonator in netlist.resonators:
                for q in resonator.endpoints:
                    attached.setdefault(q, set()).add(resonator.index)
            qr_mix = (is_q[iu] ^ is_q[ju]) & keep
            for k in np.flatnonzero(qr_mix):
                a, b = int(iu[k]), int(ju[k])
                q, s = (a, b) if is_q[a] else (b, a)
                if int(res_idx[s]) in attached.get(insts[q].index, ()):
                    keep[k] = False
            iu, ju, dx, dy, gaps = (iu[keep], ju[keep], dx[keep],
                                    dy[keep], gaps[keep])

        self.pair_i, self.pair_j = iu, ju
        self.num_pairs = int(iu.size)
        if self.num_pairs == 0:
            self._freq_col_i = self._freq_col_j = np.zeros(0, dtype=np.int64)
            self._g_coeff = self._hotspot_weight = np.zeros(0)
            self._impact = np.zeros((0, netlist.topology.num_qubits),
                                    dtype=bool)
            return

        # Bare facing length (the violation record's facing_mm) feeds
        # the mixed-pair capacitance; the *padded* facing feeds Eq. (18).
        ox = np.maximum(0.0,
                        np.minimum(pos[iu, 0] + half_w[iu],
                                   pos[ju, 0] + half_w[ju])
                        - np.maximum(pos[iu, 0] - half_w[iu],
                                     pos[ju, 0] - half_w[ju]))
        oy = np.maximum(0.0,
                        np.minimum(pos[iu, 1] + half_h[iu],
                                   pos[ju, 1] + half_h[ju])
                        - np.maximum(pos[iu, 1] - half_h[iu],
                                     pos[ju, 1] - half_h[ju]))
        facing = np.maximum(ox, oy)

        both_q = is_q[iu] & is_q[ju]
        cp = np.where(
            both_q,
            qubit_parasitic_capacitance_ff(gaps),
            resonator_parasitic_capacitance_ff(gaps,
                                               np.maximum(facing, 1e-3)))
        caps = np.where(is_q, constants.QUBIT_CAPACITANCE_FF,
                        constants.RESONATOR_CAPACITANCE_FF)
        # g = 0.5 sqrt(f_i f_j) cp / sqrt((c_i+cp)(c_j+cp)); everything
        # but sqrt(f_i f_j) is sample-invariant.
        self._g_coeff = 0.5 * cp / np.sqrt(
            (caps[iu] + cp) * (caps[ju] + cp))

        # Eq. (18) weight: padded facing length x centroid distance.
        # Violating pairs always have touching padded footprints (their
        # bare gap is below the padding sum), so the adjacency guard of
        # the scalar path is identically true here.
        hw_pad, hh_pad = half_w + pads, half_h + pads
        pox = np.maximum(0.0,
                         np.minimum(pos[iu, 0] + hw_pad[iu],
                                    pos[ju, 0] + hw_pad[ju])
                         - np.maximum(pos[iu, 0] - hw_pad[iu],
                                      pos[ju, 0] - hw_pad[ju]))
        poy = np.maximum(0.0,
                         np.minimum(pos[iu, 1] + hh_pad[iu],
                                    pos[ju, 1] + hh_pad[ju])
                         - np.maximum(pos[iu, 1] - hh_pad[iu],
                                      pos[ju, 1] - hh_pad[ju]))
        self._hotspot_weight = np.maximum(pox, poy) * np.hypot(dx, dy)

        # Column of each pair member in the hstacked (qubit, resonator)
        # frequency matrix.
        qpos = {q.index: k for k, q in enumerate(netlist.qubits)}
        rpos = {r.index: k for k, r in enumerate(netlist.resonators)}
        nq = self.num_qubits

        def col(idx: int) -> int:
            inst = insts[idx]
            if isinstance(inst, Qubit):
                return qpos[inst.index]
            return nq + rpos[inst.resonator_index]

        self._freq_col_i = np.array([col(int(i)) for i in iu],
                                    dtype=np.int64)
        self._freq_col_j = np.array([col(int(j)) for j in ju],
                                    dtype=np.int64)

        # Pair -> impacted-qubit incidence (non-local resonator spread).
        endpoints = {r.index: r.endpoints for r in netlist.resonators}
        impact = np.zeros((self.num_pairs, netlist.topology.num_qubits),
                          dtype=bool)
        for p in range(self.num_pairs):
            for idx in (int(iu[p]), int(ju[p])):
                inst = insts[idx]
                if isinstance(inst, Qubit):
                    impact[p, inst.index] = True
                else:
                    for q in endpoints.get(inst.resonator_index, ()):
                        impact[p, q] = True
        self._impact = impact

    # -- per-sample scoring ---------------------------------------------

    def score_batch(self, qubit_freqs: np.ndarray,
                    resonator_freqs: np.ndarray) -> EnsembleScores:
        """Score ``N`` realisations given as ``(N, nq)`` / ``(N, nr)``.

        Columns must follow ``netlist.qubits`` / ``netlist.resonators``
        order (the batch sampler's layout).
        """
        qf = np.atleast_2d(np.asarray(qubit_freqs, dtype=float))
        rf = np.atleast_2d(np.asarray(resonator_freqs, dtype=float))
        if qf.shape[1] != self.num_qubits or rf.shape[1] != self.num_resonators:
            raise ValueError(
                f"expected ({self.num_qubits}) qubit / "
                f"({self.num_resonators}) resonator columns, got "
                f"{qf.shape[1]} / {rf.shape[1]}")
        n = qf.shape[0]
        if self.num_pairs == 0:
            return EnsembleScores(
                ph_percent=np.zeros(n),
                num_hotspots=np.zeros(n, dtype=np.int64),
                impacted_qubits=np.zeros(n, dtype=np.int64),
                fidelity_proxy=np.ones(n))
        freqs = np.hstack([qf, rf])                      # (N, nq+nr)
        fi = freqs[:, self._freq_col_i]                  # (N, P)
        fj = freqs[:, self._freq_col_j]
        detuning = np.abs(fi - fj)
        g = self._g_coeff * np.sqrt(fi * fj)
        resonant = detuning <= self.detuning_threshold_ghz

        ph = (resonant @ self._hotspot_weight) / self.apoly \
            if self.apoly > 0 else np.zeros(n)
        impacted = ((resonant.astype(np.float64) @ self._impact) > 0
                    ).sum(axis=1)

        # Eq. (16) worst-case swap probability per violating pair.
        rabi2 = detuning * detuning + 4.0 * g * g
        amplitude = np.divide(4.0 * g * g, rabi2,
                              out=np.zeros_like(g), where=rabi2 > 0)
        eps = amplitude * np.sin(
            np.minimum(np.pi * np.sqrt(rabi2) * self.duration_ns,
                       np.pi / 2.0)) ** 2
        fidelity = np.prod(1.0 - eps, axis=1)

        return EnsembleScores(
            ph_percent=100.0 * ph,
            num_hotspots=resonant.sum(axis=1).astype(np.int64),
            impacted_qubits=impacted.astype(np.int64),
            fidelity_proxy=fidelity)


def bootstrap_ci(values: np.ndarray, num_resamples: int = 200,
                 seed: int = 0,
                 confidence: float = 0.95) -> Tuple[float, float]:
    """Seeded percentile-bootstrap interval of the mean of ``values``."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return (float("nan"), float("nan"))
    if num_resamples < 1 or values.size == 1:
        m = float(values.mean())
        return (m, m)
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(0xB007,)))
    idx = rng.integers(0, values.size, size=(num_resamples, values.size))
    means = values[idx].mean(axis=1)
    alpha = 100.0 * (1.0 - confidence) / 2.0
    lo, hi = np.percentile(means, [alpha, 100.0 - alpha])
    return (float(lo), float(hi))


def summarize_scores(scores: EnsembleScores, max_ph_percent: float,
                     bootstrap: int = 200,
                     seed: int = 0) -> Dict[str, object]:
    """JSON-able summary of one ensemble point (one sigma setting)."""
    passed = scores.passed(max_ph_percent)
    yield_ci = bootstrap_ci(passed.astype(float), bootstrap, seed)
    fidelity_ci = bootstrap_ci(scores.fidelity_proxy, bootstrap, seed)
    return {
        "samples": int(passed.size),
        "yield": float(passed.mean()) if passed.size else float("nan"),
        "yield_ci": [yield_ci[0], yield_ci[1]],
        "mean_ph_percent": float(scores.ph_percent.mean()),
        "max_ph_percent_observed": float(scores.ph_percent.max(initial=0.0)),
        "mean_hotspots": float(scores.num_hotspots.mean()),
        "mean_impacted_qubits": float(scores.impacted_qubits.mean()),
        "fidelity_mean": float(scores.fidelity_proxy.mean()),
        "fidelity_ci": [fidelity_ci[0], fidelity_ci[1]],
    }

"""Crosstalk analysis: spatial violations, hotspots, noise, fidelity."""

from .fidelity import (
    FidelityBreakdown,
    ViolationTable,
    average_program_fidelity,
    estimate_program_fidelity,
)
from .hotspots import HotspotPair, HotspotReport, hotspot_report
from .noise_model import (
    NoiseParams,
    crosstalk_error,
    decoherence_error,
    gate_error_factor,
)
from .violations import (
    KIND_QQ,
    KIND_QR,
    KIND_RR,
    SpatialViolation,
    count_by_kind,
    count_candidate_pairs,
    find_spatial_violations,
    spatial_candidate_pairs,
)

__all__ = [
    "FidelityBreakdown",
    "HotspotPair",
    "HotspotReport",
    "KIND_QQ",
    "KIND_QR",
    "KIND_RR",
    "NoiseParams",
    "SpatialViolation",
    "ViolationTable",
    "average_program_fidelity",
    "count_by_kind",
    "count_candidate_pairs",
    "crosstalk_error",
    "spatial_candidate_pairs",
    "decoherence_error",
    "estimate_program_fidelity",
    "find_spatial_violations",
    "gate_error_factor",
    "hotspot_report",
]

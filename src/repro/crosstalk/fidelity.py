"""Program-fidelity estimation (Eq. 15 of the paper).

``F = prod_q (1 - eps_q) * prod_g (1 - eps_g) * prod_r (1 - eps_r)``

Only *actively engaged* components count (Sec. V-C): the qubits touched
by the mapped circuit and the resonators whose couplers carry two-qubit
gates.  Crosstalk terms apply to spatially violating pairs where both
members are active; the exposure time is the circuit duration (worst
case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..circuits.mapping import MappedCircuit
from ..devices.components import Qubit, ResonatorSegment
from ..devices.layout import Layout
from .noise_model import NoiseParams, crosstalk_error, decoherence_error
from .violations import SpatialViolation, find_spatial_violations

Edge = Tuple[int, int]


@dataclass
class FidelityBreakdown:
    """Program fidelity with its multiplicative factors.

    Attributes:
        total: Overall program fidelity ``F``.
        gate_factor: Product of (1 - gate error) over all timed gates.
        decoherence_factor: Product over active qubits of exp(-t Gamma).
        qubit_crosstalk_factor: Product over active qq violations.
        resonator_crosstalk_factor: Product over active rr violations.
        active_qubits: Number of active physical qubits.
        active_resonators: Number of active resonators.
        crosstalk_pairs: Number of active violating pairs contributing.
    """

    total: float
    gate_factor: float
    decoherence_factor: float
    qubit_crosstalk_factor: float
    resonator_crosstalk_factor: float
    active_qubits: int
    active_resonators: int
    crosstalk_pairs: int


def _active_resonator_indices(layout: Layout,
                              active_edges: Set[Edge]) -> Set[int]:
    """Resonator indices whose coupler edge carries two-qubit gates."""
    if layout.netlist is None:
        return set()
    return {
        r.index for r in layout.netlist.resonators
        if r.endpoints in active_edges
    }


def _violation_is_active(layout: Layout, violation: SpatialViolation,
                         active_qubits: Set[int],
                         active_resonators: Set[int]) -> bool:
    """True when at least one member of the pair is actively engaged.

    Errors in inactive elements do not compromise the program (Sec. V-C),
    but an *active* component resonantly coupled to an inactive neighbour
    still leaks its excitation into it — the error belongs to the active
    member, so one active member suffices.
    """
    for idx in (violation.i, violation.j):
        inst = layout.instances[idx]
        if isinstance(inst, Qubit) and inst.index in active_qubits:
            return True
        if (isinstance(inst, ResonatorSegment)
                and inst.resonator_index in active_resonators):
            return True
    return False


def estimate_program_fidelity(layout: Layout, mapped: MappedCircuit,
                              params: NoiseParams = NoiseParams(),
                              violations: Optional[List[SpatialViolation]] = None
                              ) -> FidelityBreakdown:
    """Evaluate Eq. (15) for one mapped benchmark on one layout.

    Args:
        layout: The physical layout being scored.
        mapped: A benchmark compiled onto the layout's topology.
        params: Noise-model parameters.
        violations: Precomputed spatial violations of ``layout``; pass
            these when scoring many mappings against one layout.
    """
    if violations is None:
        violations = find_spatial_violations(
            layout, detuning_threshold_ghz=params.detuning_threshold_ghz)

    duration = mapped.duration_ns
    active_qubits = mapped.active_qubits
    active_edges = mapped.active_edges
    active_resonators = _active_resonator_indices(layout, active_edges)

    # --- gate errors -----------------------------------------------------
    n_single = sum(mapped.single_qubit_counts().values())
    n_two = sum(mapped.two_qubit_counts().values())
    gate_factor = ((1.0 - params.single_qubit_gate_error) ** n_single
                   * (1.0 - params.two_qubit_gate_error) ** n_two)

    # --- decoherence over the full duration for every active qubit --------
    eps_dec = decoherence_error(duration, params)
    decoherence_factor = (1.0 - eps_dec) ** len(active_qubits)

    # --- crosstalk on violating active pairs ------------------------------
    qq_factor = 1.0
    rr_factor = 1.0
    pair_count = 0
    for v in violations:
        if not _violation_is_active(layout, v, active_qubits, active_resonators):
            continue
        eps = crosstalk_error(v.g_ghz, duration, detuning_ghz=v.detuning_ghz)
        pair_count += 1
        if v.kind == "qq":
            qq_factor *= (1.0 - eps)
        else:
            rr_factor *= (1.0 - eps)

    total = gate_factor * decoherence_factor * qq_factor * rr_factor
    return FidelityBreakdown(
        total=total,
        gate_factor=gate_factor,
        decoherence_factor=decoherence_factor,
        qubit_crosstalk_factor=qq_factor,
        resonator_crosstalk_factor=rr_factor,
        active_qubits=len(active_qubits),
        active_resonators=len(active_resonators),
        crosstalk_pairs=pair_count,
    )


def average_program_fidelity(layout: Layout,
                             mappings: Sequence[MappedCircuit],
                             params: NoiseParams = NoiseParams()) -> float:
    """Mean fidelity across an evaluation-mapping set (Fig. 11 bars)."""
    if not mappings:
        raise ValueError("need at least one mapping")
    violations = find_spatial_violations(
        layout, detuning_threshold_ghz=params.detuning_threshold_ghz)
    total = 0.0
    for mapped in mappings:
        total += estimate_program_fidelity(
            layout, mapped, params, violations=violations).total
    return total / len(mappings)

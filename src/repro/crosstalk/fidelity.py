"""Program-fidelity estimation (Eq. 15 of the paper).

``F = prod_q (1 - eps_q) * prod_g (1 - eps_g) * prod_r (1 - eps_r)``

Only *actively engaged* components count (Sec. V-C): the qubits touched
by the mapped circuit and the resonators whose couplers carry two-qubit
gates.  Crosstalk terms apply to spatially violating pairs where both
members are active; the exposure time is the circuit duration (worst
case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..circuits.mapping import MappedCircuit
from ..devices.components import Qubit, ResonatorSegment
from ..devices.layout import Layout
from .noise_model import NoiseParams, crosstalk_error, decoherence_error
from .violations import KIND_QQ, SpatialViolation, find_spatial_violations

Edge = Tuple[int, int]


@dataclass
class FidelityBreakdown:
    """Program fidelity with its multiplicative factors.

    Attributes:
        total: Overall program fidelity ``F``.
        gate_factor: Product of (1 - gate error) over all timed gates.
        decoherence_factor: Product over active qubits of exp(-t Gamma).
        qubit_crosstalk_factor: Product over active qq violations.
        resonator_crosstalk_factor: Product over active rr violations.
        active_qubits: Number of active physical qubits.
        active_resonators: Number of active resonators.
        crosstalk_pairs: Number of active violating pairs contributing.
    """

    total: float
    gate_factor: float
    decoherence_factor: float
    qubit_crosstalk_factor: float
    resonator_crosstalk_factor: float
    active_qubits: int
    active_resonators: int
    crosstalk_pairs: int


def _active_resonator_indices(layout: Layout,
                              active_edges: Set[Edge]) -> Set[int]:
    """Resonator indices whose coupler edge carries two-qubit gates."""
    if layout.netlist is None:
        return set()
    return {
        r.index for r in layout.netlist.resonators
        if r.endpoints in active_edges
    }


@dataclass(frozen=True)
class ViolationTable:
    """Columnar view of a layout's spatial violations.

    Scoring many mappings against one layout evaluates the same
    violation list over and over; this table extracts the per-violation
    quantities once so each evaluation reduces to a handful of numpy
    operations instead of a Python loop over (violation, member) pairs.

    Attributes:
        violations: The source violation list (kept for reporting).
        qubit_i, qubit_j: Topology qubit index of each member when it is
            a qubit, else -1.
        res_i, res_j: Resonator index of each member when it is a
            segment, else -1.
        g_ghz: Parasitic coupling strength per violation.
        detuning_ghz: Frequency detuning per violation.
        is_qq: True for qubit-qubit violations.
        res_keys: Per-netlist-resonator endpoint key ``e0 * n + e1`` in
            the resonator's stored orientation (``None`` when the
            layout carries no netlist).  Matches the set semantics of
            :func:`_active_resonator_indices` exactly: a resonator with
            non-canonical endpoint order never matches a canonical
            active-pair key, in either representation.
        res_index: Resonator index aligned with ``res_keys``.
        num_phys: Topology qubit count the keys were built against.
        res_mask_size: Length of the resonator activity mask
            (``max resonator index + 1``).
    """

    violations: List[SpatialViolation]
    qubit_i: np.ndarray
    qubit_j: np.ndarray
    res_i: np.ndarray
    res_j: np.ndarray
    g_ghz: np.ndarray
    detuning_ghz: np.ndarray
    is_qq: np.ndarray
    res_keys: Optional[np.ndarray] = None
    res_index: Optional[np.ndarray] = None
    num_phys: int = 0
    res_mask_size: int = 0

    @classmethod
    def build(cls, layout: Layout,
              violations: Optional[List[SpatialViolation]] = None,
              detuning_threshold_ghz: Optional[float] = None,
              backend: str = "auto") -> "ViolationTable":
        """Extract the columnar arrays from a violation list.

        ``backend`` selects the candidate-pair strategy of the
        underlying violation scan (the same spatial interaction source
        the placer uses); it is ignored when ``violations`` is given.
        """
        if violations is None:
            kwargs = {}
            if detuning_threshold_ghz is not None:
                kwargs["detuning_threshold_ghz"] = detuning_threshold_ghz
            violations = find_spatial_violations(layout, backend=backend,
                                                 **kwargs)
        n = len(violations)
        qubit_idx = np.full((n, 2), -1, dtype=np.int64)
        res_idx = np.full((n, 2), -1, dtype=np.int64)
        for row, v in enumerate(violations):
            for col, idx in enumerate((v.i, v.j)):
                inst = layout.instances[idx]
                if isinstance(inst, Qubit):
                    qubit_idx[row, col] = inst.index
                elif isinstance(inst, ResonatorSegment):
                    res_idx[row, col] = inst.resonator_index
        res_keys = res_index = None
        num_phys = 0
        res_mask_size = 0
        if layout.netlist is not None:
            resonators = layout.netlist.resonators
            num_phys = layout.netlist.topology.num_qubits
            res_keys = np.fromiter(
                (r.endpoints[0] * num_phys + r.endpoints[1]
                 for r in resonators),
                dtype=np.int64, count=len(resonators))
            res_index = np.fromiter((r.index for r in resonators),
                                    dtype=np.int64, count=len(resonators))
            res_mask_size = int(res_index.max()) + 1 if len(resonators) else 0
        return cls(
            violations=violations,
            qubit_i=qubit_idx[:, 0], qubit_j=qubit_idx[:, 1],
            res_i=res_idx[:, 0], res_j=res_idx[:, 1],
            g_ghz=np.array([v.g_ghz for v in violations], dtype=float),
            detuning_ghz=np.array([v.detuning_ghz for v in violations],
                                  dtype=float),
            is_qq=np.array([v.kind == KIND_QQ for v in violations],
                           dtype=bool),
            res_keys=res_keys,
            res_index=res_index,
            num_phys=num_phys,
            res_mask_size=res_mask_size,
        )

    def __len__(self) -> int:
        return len(self.violations)

    def active_mask(self, active_qubits: Set[int],
                    active_resonators: Set[int]) -> np.ndarray:
        """Violations with at least one actively engaged member.

        Mirrors :func:`_violation_is_active`: errors in inactive elements
        do not compromise the program, but one active member suffices.
        """
        aq = np.fromiter(active_qubits, dtype=np.int64, count=len(active_qubits))
        ar = np.fromiter(active_resonators, dtype=np.int64,
                         count=len(active_resonators))
        return (np.isin(self.qubit_i, aq) | np.isin(self.qubit_j, aq)
                | np.isin(self.res_i, ar) | np.isin(self.res_j, ar))

    def active_resonator_mask(self, pair_keys: np.ndarray
                              ) -> Optional[np.ndarray]:
        """Resonator activity mask from active coupler pair keys.

        ``pair_keys`` is :meth:`repro.circuits.batch.ArrayCircuit.
        used_pair_keys` output (canonical ``lo * n + hi`` keys over the
        same topology the table was built on).  Boolean-identical to
        ``{r.index for r in resonators if r.endpoints in active_edges}``
        — the mask form of :func:`_active_resonator_indices`.  Returns
        ``None`` when the table carries no netlist columns.
        """
        if self.res_keys is None:
            return None
        mask = np.zeros(self.res_mask_size, dtype=bool)
        if len(self.res_keys):
            mask[self.res_index[np.isin(self.res_keys, pair_keys)]] = True
        return mask

    def active_mask_from_masks(self, qubit_mask: np.ndarray,
                               resonator_mask: np.ndarray) -> np.ndarray:
        """Mask-gather form of :meth:`active_mask` (identical booleans).

        Appends a ``False`` sentinel so the ``-1`` slots of non-qubit /
        non-resonator members gather to inactive, exactly like absence
        from the active sets.
        """
        qm = np.append(qubit_mask, False)
        rm = np.append(resonator_mask, False)
        return (qm[self.qubit_i] | qm[self.qubit_j]
                | rm[self.res_i] | rm[self.res_j])

    def crosstalk_errors(self, duration_ns: float) -> np.ndarray:
        """Worst-case swap probability per violation (Eq. 16), vectorized.

        Identical to calling :func:`~repro.crosstalk.noise_model.
        crosstalk_error` per violation with the bare ``g`` and the pair
        detuning.
        """
        g = self.g_ghz
        delta = self.detuning_ghz
        rabi2 = delta * delta + 4.0 * g * g
        amplitude = np.divide(4.0 * g * g, rabi2,
                              out=np.zeros_like(g), where=rabi2 > 0)
        phase = np.pi * np.sqrt(rabi2) * duration_ns
        return amplitude * np.sin(np.minimum(phase, np.pi / 2.0)) ** 2


def _violation_is_active(layout: Layout, violation: SpatialViolation,
                         active_qubits: Set[int],
                         active_resonators: Set[int]) -> bool:
    """True when at least one member of the pair is actively engaged.

    Errors in inactive elements do not compromise the program (Sec. V-C),
    but an *active* component resonantly coupled to an inactive neighbour
    still leaks its excitation into it — the error belongs to the active
    member, so one active member suffices.
    """
    for idx in (violation.i, violation.j):
        inst = layout.instances[idx]
        if isinstance(inst, Qubit) and inst.index in active_qubits:
            return True
        if (isinstance(inst, ResonatorSegment)
                and inst.resonator_index in active_resonators):
            return True
    return False


def estimate_program_fidelity(layout: Layout, mapped: MappedCircuit,
                              params: NoiseParams = NoiseParams(),
                              violations: Optional[Union[
                                  List[SpatialViolation],
                                  ViolationTable]] = None
                              ) -> FidelityBreakdown:
    """Evaluate Eq. (15) for one mapped benchmark on one layout.

    Args:
        layout: The physical layout being scored.
        mapped: A benchmark compiled onto the layout's topology.
        params: Noise-model parameters.
        violations: Precomputed spatial violations of ``layout`` — a
            plain list or, when scoring many mappings against one
            layout, a prebuilt :class:`ViolationTable` (avoids
            re-extracting the per-violation columns every call).
    """
    if isinstance(violations, ViolationTable):
        table = violations
    else:
        table = ViolationTable.build(
            layout, violations,
            detuning_threshold_ghz=params.detuning_threshold_ghz)

    duration = mapped.duration_ns

    # --- active components ------------------------------------------------
    # Column masks when the mapping pipeline kept its arrays (zero gate
    # decode, no Python sets); set scan otherwise.  Both branches yield
    # the same activity booleans, so every factor below is bit-identical.
    qubit_mask = mapped.active_qubit_mask
    use_masks = (qubit_mask is not None and table.res_keys is not None
                 and qubit_mask.shape[0] == table.num_phys)
    if use_masks:
        res_mask = table.active_resonator_mask(mapped.active_pair_keys)
        num_active_qubits = int(qubit_mask.sum())
        num_active_resonators = int(res_mask.sum())
    else:
        active_qubits = mapped.active_qubits
        active_resonators = _active_resonator_indices(layout,
                                                      mapped.active_edges)
        num_active_qubits = len(active_qubits)
        num_active_resonators = len(active_resonators)

    # --- gate errors -----------------------------------------------------
    # Columnar totals when the mapping pipeline kept its arrays: no
    # Gate-list scan, no per-qubit/per-edge dicts (identical sums).
    n_single, n_two = mapped.timed_gate_totals()
    gate_factor = ((1.0 - params.single_qubit_gate_error) ** n_single
                   * (1.0 - params.two_qubit_gate_error) ** n_two)

    # --- decoherence over the full duration for every active qubit --------
    eps_dec = decoherence_error(duration, params)
    decoherence_factor = (1.0 - eps_dec) ** num_active_qubits

    # --- crosstalk on violating active pairs ------------------------------
    qq_factor = 1.0
    rr_factor = 1.0
    pair_count = 0
    if len(table):
        if use_masks:
            active = table.active_mask_from_masks(qubit_mask, res_mask)
        else:
            active = table.active_mask(active_qubits, active_resonators)
        pair_count = int(active.sum())
        if pair_count:
            eps = table.crosstalk_errors(duration)
            qq_factor = float(np.prod(1.0 - eps[active & table.is_qq]))
            rr_factor = float(np.prod(1.0 - eps[active & ~table.is_qq]))

    total = gate_factor * decoherence_factor * qq_factor * rr_factor
    return FidelityBreakdown(
        total=total,
        gate_factor=gate_factor,
        decoherence_factor=decoherence_factor,
        qubit_crosstalk_factor=qq_factor,
        resonator_crosstalk_factor=rr_factor,
        active_qubits=num_active_qubits,
        active_resonators=num_active_resonators,
        crosstalk_pairs=pair_count,
    )


def average_program_fidelity(layout: Layout,
                             mappings: Sequence[MappedCircuit],
                             params: NoiseParams = NoiseParams()) -> float:
    """Mean fidelity across an evaluation-mapping set (Fig. 11 bars)."""
    if not mappings:
        raise ValueError("need at least one mapping")
    table = ViolationTable.build(
        layout, detuning_threshold_ghz=params.detuning_threshold_ghz)
    total = 0.0
    for mapped in mappings:
        total += estimate_program_fidelity(
            layout, mapped, params, violations=table).total
    return total / len(mappings)

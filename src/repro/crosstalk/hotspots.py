"""Frequency-hotspot proportion ``Ph`` and impacted qubits (Eq. 18).

A *frequency hotspot* is a region where two instances sit closer than
their required spacing **and** their detuning is below ``Delta_c``.
Eq. (18) aggregates hotspots into a dimensionless proportion:

``Ph = sum_{i,j} (p_i ∩ p_j) * dc(p_i, p_j) * tau(w_i, w_j, Delta_c) / Apoly``

where ``p_i ∩ p_j`` is the facing length of the (padded) footprints,
``dc`` the centroid distance, and ``tau`` the resonance indicator.  The
paper reports ``Ph`` in percent (Fig. 12 bottom, Fig. 15 bottom).

The *impacted qubits* count (Fig. 12 middle) captures the non-local
nature of resonator crosstalk: a hotspot between two resonators affects
every qubit those resonators touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from .. import constants
from ..devices.components import Qubit, ResonatorSegment
from ..devices.geometry import adjacency_length
from ..devices.layout import Layout
from .violations import SpatialViolation, find_spatial_violations


@dataclass(frozen=True)
class HotspotPair:
    """One resonant, spatially violating instance pair.

    Attributes:
        i, j: Layout instance indices (i < j).
        facing_mm: Facing length of the padded footprints.
        centroid_distance_mm: Distance between footprint centroids.
        contribution: This pair's numerator term of Eq. (18).
    """

    i: int
    j: int
    facing_mm: float
    centroid_distance_mm: float
    contribution: float


@dataclass
class HotspotReport:
    """Full Eq. (18) evaluation of one layout.

    Attributes:
        ph: Hotspot proportion as a *fraction* (multiply by 100 for the
            paper's percent values).
        pairs: Individual hotspot pairs.
        impacted_qubits: Topology indices of qubits touched by hotspots,
            directly or through an affected resonator.
        apoly: The normalising polygon area used.
    """

    ph: float
    pairs: List[HotspotPair]
    impacted_qubits: Set[int]
    apoly: float

    @property
    def ph_percent(self) -> float:
        """Hotspot proportion in percent (paper's reporting unit)."""
        return 100.0 * self.ph

    @property
    def num_hotspots(self) -> int:
        """Number of resonant violating pairs."""
        return len(self.pairs)

    @property
    def num_impacted_qubits(self) -> int:
        """Impacted-qubit count (Fig. 12 middle panel)."""
        return len(self.impacted_qubits)


def _impacted_from_pair(layout: Layout, i: int, j: int) -> Set[int]:
    """Qubits affected by a hotspot pair (non-local resonator spread)."""
    impacted: Set[int] = set()
    endpoints = {}
    if layout.netlist is not None:
        endpoints = {r.index: r.endpoints for r in layout.netlist.resonators}
    for idx in (i, j):
        inst = layout.instances[idx]
        if isinstance(inst, Qubit):
            impacted.add(inst.index)
        elif isinstance(inst, ResonatorSegment):
            impacted.update(endpoints.get(inst.resonator_index, ()))
    return impacted


def hotspot_report(layout: Layout,
                   detuning_threshold_ghz: float = constants.DETUNING_THRESHOLD_GHZ,
                   violations: Optional[List[SpatialViolation]] = None
                   ) -> HotspotReport:
    """Evaluate Eq. (18) on a layout.

    Args:
        layout: Placed layout to score.
        detuning_threshold_ghz: Resonance threshold ``Delta_c``.
        violations: Precomputed spatial violations (recomputed if None).
    """
    if violations is None:
        violations = find_spatial_violations(
            layout, detuning_threshold_ghz=detuning_threshold_ghz)
    apoly = layout.apoly()
    pairs: List[HotspotPair] = []
    impacted: Set[int] = set()
    for v in violations:
        if not v.resonant:
            continue
        pi = layout.padded_rect(v.i)
        pj = layout.padded_rect(v.j)
        facing = adjacency_length(pi, pj)
        dc = pi.centroid_distance(pj)
        pairs.append(HotspotPair(
            i=v.i, j=v.j, facing_mm=facing,
            centroid_distance_mm=dc,
            contribution=facing * dc))
        impacted.update(_impacted_from_pair(layout, v.i, v.j))
    total = sum(p.contribution for p in pairs)
    ph = total / apoly if apoly > 0 else 0.0
    return HotspotReport(ph=ph, pairs=pairs,
                         impacted_qubits=impacted, apoly=apoly)

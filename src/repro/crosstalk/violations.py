"""Spatial-violation detection (Sec. III / Sec. V-C metrics).

Two components *violate spatial constraints* when the Euclidean
edge-to-edge gap of their bare footprints is smaller than the sum of
their paddings (the paper's minimum-distance rule, Sec. IV-B1).  Each
violation carries the physics needed by the noise model: the bare gap,
the facing (adjacent) length, the detuning, and the resulting parasitic
coupling strengths ``g`` and ``g_eff``.

Intended couplings are excluded:

* sibling segments of one resonator (they *must* cluster, Eq. 10);
* a qubit and the segments of a resonator attached to that qubit (they
  must abut to form the coupler connection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .. import constants
from ..core.interactions import (
    dense_candidate_pairs,
    grid_candidate_pairs,
    resolve_backend,
)
from ..devices.components import Instance, Qubit, ResonatorSegment, same_resonator
from ..devices.geometry import Rect
from ..devices.layout import Layout
from ..physics.capacitance import (
    qubit_parasitic_capacitance_ff,
    resonator_parasitic_capacitance_ff,
)
from ..physics.coupling import (
    effective_coupling_ghz,
    qubit_qubit_coupling_ghz,
    resonator_resonator_coupling_ghz,
)

#: Violation kinds: qubit-qubit, resonator-resonator, qubit-resonator.
KIND_QQ = "qq"
KIND_RR = "rr"
KIND_QR = "qr"


@dataclass(frozen=True)
class SpatialViolation:
    """One pair of components closer than their required spacing.

    Attributes:
        i, j: Instance indices in the layout (i < j).
        kind: One of ``"qq"``, ``"rr"``, ``"qr"``.
        gap_mm: Edge-to-edge gap between the bare footprints.
        facing_mm: Adjacent (facing) length between the footprints.
        detuning_ghz: ``|wi - wj|``.
        g_ghz: Parasitic coupling strength at this gap.
        g_eff_ghz: Effective coupling after detuning (Eq. 4/5).
        resonant: True when the detuning is within ``Delta_c``.
    """

    i: int
    j: int
    kind: str
    gap_mm: float
    facing_mm: float
    detuning_ghz: float
    g_ghz: float
    g_eff_ghz: float
    resonant: bool


def _facing_length(a: Rect, b: Rect) -> float:
    """Length over which two rectangles face each other (projection overlap)."""
    return max(a.overlap_x(b), a.overlap_y(b))


def _classify(a: Instance, b: Instance) -> str:
    a_is_q = isinstance(a, Qubit)
    b_is_q = isinstance(b, Qubit)
    if a_is_q and b_is_q:
        return KIND_QQ
    if not a_is_q and not b_is_q:
        return KIND_RR
    return KIND_QR


def _is_intended_pair(a: Instance, b: Instance,
                      attached: Optional[Dict[int, Set[int]]]) -> bool:
    """True for pairs that are supposed to be adjacent (not crosstalk)."""
    if same_resonator(a, b):
        return True
    if attached is None:
        return False
    qubit, segment = None, None
    if isinstance(a, Qubit) and isinstance(b, ResonatorSegment):
        qubit, segment = a, b
    elif isinstance(b, Qubit) and isinstance(a, ResonatorSegment):
        qubit, segment = b, a
    if qubit is None:
        return False
    return segment.resonator_index in attached.get(qubit.index, set())


def attached_resonators_by_qubit(layout: Layout) -> Optional[Dict[int, Set[int]]]:
    """Map qubit index -> indices of resonators attached to it."""
    if layout.netlist is None:
        return None
    attached: Dict[int, Set[int]] = {}
    for resonator in layout.netlist.resonators:
        for q in resonator.endpoints:
            attached.setdefault(q, set()).add(resonator.index)
    return attached


def _pair_physics(a: Instance, b: Instance, gap_mm: float, facing_mm: float,
                  detuning_threshold_ghz: float) -> Tuple[float, float, float, bool]:
    """Compute (detuning, g, g_eff, resonant) for one violating pair."""
    detuning = abs(a.frequency - b.frequency)
    kind = _classify(a, b)
    if kind == KIND_QQ:
        cp = qubit_parasitic_capacitance_ff(gap_mm)
        g = qubit_qubit_coupling_ghz(a.frequency, b.frequency, cp)
    elif kind == KIND_RR:
        cp = resonator_parasitic_capacitance_ff(gap_mm, max(facing_mm, 1e-3))
        g = resonator_resonator_coupling_ghz(a.frequency, b.frequency, cp)
    else:
        cp = resonator_parasitic_capacitance_ff(gap_mm, max(facing_mm, 1e-3))
        qubit, other = (a, b) if isinstance(a, Qubit) else (b, a)
        g = qubit_qubit_coupling_ghz(
            qubit.frequency, other.frequency, cp,
            constants.QUBIT_CAPACITANCE_FF, constants.RESONATOR_CAPACITANCE_FF)
    g_eff = effective_coupling_ghz(g, detuning, detuning_threshold_ghz)
    resonant = detuning <= detuning_threshold_ghz
    return detuning, g, g_eff, resonant


def spatial_candidate_pairs(positions: np.ndarray, half_w: np.ndarray,
                            half_h: np.ndarray, pads: np.ndarray,
                            backend: str = "auto"
                            ) -> Tuple[np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray]:
    """``(i, j, |dx|, |dy|)`` of pairs whose padded footprints touch.

    The dense strategy screens every ``triu`` pair; the sparse one
    buckets instances into a uniform grid sized to the largest possible
    padded reach, so only nearby pairs are screened.  Both return the
    same pairs in the same lexicographic order, so every downstream
    filter produces identical violation lists under either strategy.
    The per-axis centre distances come back alongside the indices so
    the violation scan never recomputes them.
    """
    n = positions.shape[0]
    resolved = resolve_backend(backend, n)
    if resolved == "dense":
        iu, ju = dense_candidate_pairs(n)
        presorted = True
    else:
        # pw, ph <= 2 * max(half + pad): a cutoff of that bound makes
        # the grid candidates a superset of every touching pair.
        reach = 2.0 * float(np.max(np.maximum(half_w, half_h) + pads))
        iu, ju = grid_candidate_pairs(positions, max(reach, 1e-9),
                                      sort=False)
        presorted = False
    dx = np.abs(positions[iu, 0] - positions[ju, 0])
    dy = np.abs(positions[iu, 1] - positions[ju, 1])
    pw = half_w[iu] + half_w[ju] + pads[iu] + pads[ju]
    ph = half_h[iu] + half_h[ju] + pads[iu] + pads[ju]
    cand = (dx <= pw) & (dy <= ph)
    iu, ju, dx, dy = iu[cand], ju[cand], dx[cand], dy[cand]
    if not presorted and iu.size:
        order = np.argsort(iu.astype(np.int64) * np.int64(n) + ju)
        iu, ju, dx, dy = iu[order], ju[order], dx[order], dy[order]
    return iu, ju, dx, dy


def count_candidate_pairs(layout: Layout, backend: str = "auto") -> int:
    """Number of padded-footprint candidate pairs (scaling telemetry)."""
    insts = layout.instances
    pos = np.asarray(layout.positions, dtype=float)
    iu, _, _, _ = spatial_candidate_pairs(
        pos,
        np.array([0.5 * it.width for it in insts]),
        np.array([0.5 * it.height for it in insts]),
        np.array([it.padding for it in insts]),
        backend=backend)
    return int(iu.size)


def find_spatial_violations(layout: Layout,
                            detuning_threshold_ghz: float = constants.DETUNING_THRESHOLD_GHZ,
                            include_qr: bool = True,
                            backend: str = "auto") -> List[SpatialViolation]:
    """All spatial violations in a layout.

    A pair violates when the padded footprints intersect with positive
    area.  Intended-adjacency pairs (sibling segments; a resonator's
    segments against its own endpoint qubits) are skipped.

    Args:
        layout: The placed layout.
        detuning_threshold_ghz: Resonance threshold ``Delta_c``.
        include_qr: Also report qubit-resonator violations (these are
            deeply detuned and mostly informational).
        backend: Candidate-pair strategy ("auto"/"dense"/"sparse"); the
            resulting violation list is identical under either.
    """
    n = layout.num_instances
    if n < 2:
        return []
    attached = attached_resonators_by_qubit(layout)
    insts = layout.instances
    pos = np.asarray(layout.positions, dtype=float)
    half_w = np.array([0.5 * it.width for it in insts])
    half_h = np.array([0.5 * it.height for it in insts])
    pads = np.array([it.padding for it in insts])
    freqs = np.array([it.frequency for it in insts])
    is_q = np.array([isinstance(it, Qubit) for it in insts])
    res_idx = np.array([
        it.resonator_index if isinstance(it, ResonatorSegment) else -1
        for it in insts], dtype=np.int64)

    # Candidate pairs: padded footprints touching or overlapping — the
    # same pair set the grid-hashed neighbour query used to yield.
    iu, ju, dx, dy = spatial_candidate_pairs(pos, half_w, half_h, pads,
                                             backend=backend)
    if iu.size == 0:
        return []

    # Bare edge-to-edge gap versus the padding-sum requirement.
    bgx = np.maximum(0.0, dx - (half_w[iu] + half_w[ju]))
    bgy = np.maximum(0.0, dy - (half_h[iu] + half_h[ju]))
    gaps = np.hypot(bgx, bgy)
    tol = 1e-6
    viol = gaps < (pads[iu] + pads[ju]) - tol
    iu, ju, dx, dy, gaps = iu[viol], ju[viol], dx[viol], dy[viol], gaps[viol]
    if iu.size == 0:
        return []

    # Intended-adjacency exclusion: sibling segments; qubit + segment of
    # an attached resonator (checked per surviving pair — few remain).
    same_res = (res_idx[iu] == res_idx[ju]) & (res_idx[iu] >= 0)
    keep = ~same_res
    if attached is not None:
        qr_mix = (is_q[iu] ^ is_q[ju]) & keep
        for k in np.flatnonzero(qr_mix):
            a, b = int(iu[k]), int(ju[k])
            q, s = (a, b) if is_q[a] else (b, a)
            if int(res_idx[s]) in attached.get(insts[q].index, ()):
                keep[k] = False
    iu, ju, dx, dy, gaps = iu[keep], ju[keep], dx[keep], dy[keep], gaps[keep]
    if iu.size == 0:
        return []

    both_q = is_q[iu] & is_q[ju]
    neither_q = ~is_q[iu] & ~is_q[ju]
    if not include_qr:
        keep = both_q | neither_q
        iu, ju, dx, dy, gaps = (iu[keep], ju[keep], dx[keep], dy[keep],
                                gaps[keep])
        both_q, neither_q = both_q[keep], neither_q[keep]
        if iu.size == 0:
            return []

    ox = np.maximum(0.0,
                    np.minimum(pos[iu, 0] + half_w[iu], pos[ju, 0] + half_w[ju])
                    - np.maximum(pos[iu, 0] - half_w[iu], pos[ju, 0] - half_w[ju]))
    oy = np.maximum(0.0,
                    np.minimum(pos[iu, 1] + half_h[iu], pos[ju, 1] + half_h[ju])
                    - np.maximum(pos[iu, 1] - half_h[iu], pos[ju, 1] - half_h[ju]))
    facing = np.maximum(ox, oy)
    detuning = np.abs(freqs[iu] - freqs[ju])
    g = np.empty(iu.size)
    if both_q.any():
        cp = qubit_parasitic_capacitance_ff(gaps[both_q])
        g[both_q] = qubit_qubit_coupling_ghz(
            freqs[iu[both_q]], freqs[ju[both_q]], cp)
    mixed = ~both_q
    if mixed.any():
        cp = resonator_parasitic_capacitance_ff(
            gaps[mixed], np.maximum(facing[mixed], 1e-3))
        qr = mixed & ~neither_q
        rr = mixed & neither_q
        sel_rr = neither_q[mixed]
        g_mixed = np.empty(int(mixed.sum()))
        if rr.any():
            g_mixed[sel_rr] = resonator_resonator_coupling_ghz(
                freqs[iu[rr]], freqs[ju[rr]], cp[sel_rr])
        if qr.any():
            g_mixed[~sel_rr] = qubit_qubit_coupling_ghz(
                freqs[iu[qr]], freqs[ju[qr]], cp[~sel_rr],
                constants.QUBIT_CAPACITANCE_FF,
                constants.RESONATOR_CAPACITANCE_FF)
        g[mixed] = g_mixed
    g_eff = effective_coupling_ghz(g, detuning, detuning_threshold_ghz)
    resonant = detuning <= detuning_threshold_ghz

    kinds = np.where(both_q, KIND_QQ, np.where(neither_q, KIND_RR, KIND_QR))
    return [
        SpatialViolation(
            i=int(iu[k]), j=int(ju[k]), kind=str(kinds[k]),
            gap_mm=float(gaps[k]), facing_mm=float(facing[k]),
            detuning_ghz=float(detuning[k]), g_ghz=float(g[k]),
            g_eff_ghz=float(g_eff[k]), resonant=bool(resonant[k]))
        for k in range(iu.size)
    ]


def count_by_kind(violations: List[SpatialViolation]) -> Dict[str, int]:
    """Histogram of violations by kind."""
    counts = {KIND_QQ: 0, KIND_RR: 0, KIND_QR: 0}
    for v in violations:
        counts[v.kind] += 1
    return counts

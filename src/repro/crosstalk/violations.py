"""Spatial-violation detection (Sec. III / Sec. V-C metrics).

Two components *violate spatial constraints* when the Euclidean
edge-to-edge gap of their bare footprints is smaller than the sum of
their paddings (the paper's minimum-distance rule, Sec. IV-B1).  Each
violation carries the physics needed by the noise model: the bare gap,
the facing (adjacent) length, the detuning, and the resulting parasitic
coupling strengths ``g`` and ``g_eff``.

Intended couplings are excluded:

* sibling segments of one resonator (they *must* cluster, Eq. 10);
* a qubit and the segments of a resonator attached to that qubit (they
  must abut to form the coupler connection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .. import constants
from ..devices.components import Instance, Qubit, ResonatorSegment, same_resonator
from ..devices.geometry import Rect
from ..devices.layout import Layout
from ..physics.capacitance import (
    qubit_parasitic_capacitance_ff,
    resonator_parasitic_capacitance_ff,
)
from ..physics.coupling import (
    effective_coupling_ghz,
    qubit_qubit_coupling_ghz,
    resonator_resonator_coupling_ghz,
)

#: Violation kinds: qubit-qubit, resonator-resonator, qubit-resonator.
KIND_QQ = "qq"
KIND_RR = "rr"
KIND_QR = "qr"


@dataclass(frozen=True)
class SpatialViolation:
    """One pair of components closer than their required spacing.

    Attributes:
        i, j: Instance indices in the layout (i < j).
        kind: One of ``"qq"``, ``"rr"``, ``"qr"``.
        gap_mm: Edge-to-edge gap between the bare footprints.
        facing_mm: Adjacent (facing) length between the footprints.
        detuning_ghz: ``|wi - wj|``.
        g_ghz: Parasitic coupling strength at this gap.
        g_eff_ghz: Effective coupling after detuning (Eq. 4/5).
        resonant: True when the detuning is within ``Delta_c``.
    """

    i: int
    j: int
    kind: str
    gap_mm: float
    facing_mm: float
    detuning_ghz: float
    g_ghz: float
    g_eff_ghz: float
    resonant: bool


def _facing_length(a: Rect, b: Rect) -> float:
    """Length over which two rectangles face each other (projection overlap)."""
    return max(a.overlap_x(b), a.overlap_y(b))


def _classify(a: Instance, b: Instance) -> str:
    a_is_q = isinstance(a, Qubit)
    b_is_q = isinstance(b, Qubit)
    if a_is_q and b_is_q:
        return KIND_QQ
    if not a_is_q and not b_is_q:
        return KIND_RR
    return KIND_QR


def _is_intended_pair(a: Instance, b: Instance,
                      attached: Optional[Dict[int, Set[int]]]) -> bool:
    """True for pairs that are supposed to be adjacent (not crosstalk)."""
    if same_resonator(a, b):
        return True
    if attached is None:
        return False
    qubit, segment = None, None
    if isinstance(a, Qubit) and isinstance(b, ResonatorSegment):
        qubit, segment = a, b
    elif isinstance(b, Qubit) and isinstance(a, ResonatorSegment):
        qubit, segment = b, a
    if qubit is None:
        return False
    return segment.resonator_index in attached.get(qubit.index, set())


def attached_resonators_by_qubit(layout: Layout) -> Optional[Dict[int, Set[int]]]:
    """Map qubit index -> indices of resonators attached to it."""
    if layout.netlist is None:
        return None
    attached: Dict[int, Set[int]] = {}
    for resonator in layout.netlist.resonators:
        for q in resonator.endpoints:
            attached.setdefault(q, set()).add(resonator.index)
    return attached


def _pair_physics(a: Instance, b: Instance, gap_mm: float, facing_mm: float,
                  detuning_threshold_ghz: float) -> Tuple[float, float, float, bool]:
    """Compute (detuning, g, g_eff, resonant) for one violating pair."""
    detuning = abs(a.frequency - b.frequency)
    kind = _classify(a, b)
    if kind == KIND_QQ:
        cp = qubit_parasitic_capacitance_ff(gap_mm)
        g = qubit_qubit_coupling_ghz(a.frequency, b.frequency, cp)
    elif kind == KIND_RR:
        cp = resonator_parasitic_capacitance_ff(gap_mm, max(facing_mm, 1e-3))
        g = resonator_resonator_coupling_ghz(a.frequency, b.frequency, cp)
    else:
        cp = resonator_parasitic_capacitance_ff(gap_mm, max(facing_mm, 1e-3))
        qubit, other = (a, b) if isinstance(a, Qubit) else (b, a)
        g = qubit_qubit_coupling_ghz(
            qubit.frequency, other.frequency, cp,
            constants.QUBIT_CAPACITANCE_FF, constants.RESONATOR_CAPACITANCE_FF)
    g_eff = effective_coupling_ghz(g, detuning, detuning_threshold_ghz)
    resonant = detuning <= detuning_threshold_ghz
    return detuning, g, g_eff, resonant


def find_spatial_violations(layout: Layout,
                            detuning_threshold_ghz: float = constants.DETUNING_THRESHOLD_GHZ,
                            include_qr: bool = True) -> List[SpatialViolation]:
    """All spatial violations in a layout.

    A pair violates when the padded footprints intersect with positive
    area.  Intended-adjacency pairs (sibling segments; a resonator's
    segments against its own endpoint qubits) are skipped.

    Args:
        layout: The placed layout.
        detuning_threshold_ghz: Resonance threshold ``Delta_c``.
        include_qr: Also report qubit-resonator violations (these are
            deeply detuned and mostly informational).
    """
    attached = attached_resonators_by_qubit(layout)
    violations: List[SpatialViolation] = []
    bare = layout.rects()
    tol = 1e-6
    for i, j, _gap in layout.neighbor_pairs(cutoff_mm=0.0, padded=True):
        required = layout.instances[i].padding + layout.instances[j].padding
        if bare[i].gap(bare[j]) >= required - tol:
            continue  # Euclidean spacing satisfies the padding sum
        a, b = layout.instances[i], layout.instances[j]
        if _is_intended_pair(a, b, attached):
            continue
        kind = _classify(a, b)
        if kind == KIND_QR and not include_qr:
            continue
        gap = bare[i].gap(bare[j])
        facing = _facing_length(bare[i], bare[j])
        detuning, g, g_eff, resonant = _pair_physics(
            a, b, gap, facing, detuning_threshold_ghz)
        violations.append(SpatialViolation(
            i=i, j=j, kind=kind, gap_mm=gap, facing_mm=facing,
            detuning_ghz=detuning, g_ghz=g, g_eff_ghz=g_eff,
            resonant=resonant))
    return violations


def count_by_kind(violations: List[SpatialViolation]) -> Dict[str, int]:
    """Histogram of violations by kind."""
    counts = {KIND_QQ: 0, KIND_RR: 0, KIND_QR: 0}
    for v in violations:
        counts[v.kind] += 1
    return counts

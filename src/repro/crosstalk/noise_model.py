"""Noise model: gate, decoherence, and crosstalk error channels (Sec. V-C).

The program-fidelity metric (Eq. 15) multiplies three families of error
terms:

* ``eps_q`` — per-qubit errors from timed single-qubit gates, two-qubit
  gates, and decoherence over the circuit duration;
* ``eps_g`` — crosstalk between *qubits* in spatial violation, driven by
  Rabi oscillation at the parasitic effective coupling (Eq. 16);
* ``eps_r`` — the analogous crosstalk between *resonators*.

The crosstalk error is the paper's worst-case estimate: the transition
probability ``Pr[t] = sin^2(g_eff * t)`` evaluated at its running maximum
over the circuit duration (the oscillation certainly reaches its envelope
once ``g_eff * t`` exceeds a quarter period).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from .. import constants
from ..physics.hamiltonian import worst_case_swap_probability


@dataclass(frozen=True)
class NoiseParams:
    """All tunable parameters of the noise model.

    Defaults are the representative superconducting values of Sec. V-C
    (see ``repro.constants`` for provenance).
    """

    t1_ns: float = constants.T1_NS
    t2_ns: float = constants.T2_NS
    single_qubit_gate_ns: float = constants.SINGLE_QUBIT_GATE_NS
    two_qubit_gate_ns: float = constants.TWO_QUBIT_GATE_NS
    single_qubit_gate_error: float = constants.SINGLE_QUBIT_GATE_ERROR
    two_qubit_gate_error: float = constants.TWO_QUBIT_GATE_ERROR
    detuning_threshold_ghz: float = constants.DETUNING_THRESHOLD_GHZ

    def __post_init__(self) -> None:
        if self.t1_ns <= 0 or self.t2_ns <= 0:
            raise ValueError("coherence times must be positive")
        if not (0 <= self.single_qubit_gate_error < 1):
            raise ValueError("single-qubit gate error must be in [0, 1)")
        if not (0 <= self.two_qubit_gate_error < 1):
            raise ValueError("two-qubit gate error must be in [0, 1)")

    @property
    def decoherence_rate_per_ns(self) -> float:
        """Combined amplitude+phase damping rate: (1/T1 + 1/T2)/2."""
        return 0.5 * (1.0 / self.t1_ns + 1.0 / self.t2_ns)


def decoherence_error(duration_ns: float,
                      params: NoiseParams = NoiseParams()) -> float:
    """Per-qubit decoherence error over ``duration_ns``.

    ``eps = 1 - exp(-t * (1/T1 + 1/T2) / 2)``, covering both idle and
    gate periods (the paper's worst-case estimate exposes every active
    qubit to decoherence for the whole circuit duration).
    """
    if duration_ns < 0:
        raise ValueError("duration must be non-negative")
    return 1.0 - math.exp(-duration_ns * params.decoherence_rate_per_ns)


def crosstalk_error(g_eff_ghz: float, duration_ns: float,
                    detuning_ghz: float = 0.0) -> float:
    """Worst-case crosstalk error for one violating pair (Eq. 16).

    Uses the exact two-level Rabi envelope: amplitude
    ``4 g^2 / (Delta^2 + 4 g^2)`` reached once the accumulated phase
    passes a quarter period.

    Args:
        g_eff_ghz: Parasitic coupling strength (GHz).  For detuned pairs
            pass the *bare* g together with ``detuning_ghz``; for
            resonant pairs the detuning is ~0 and g is the full coupling.
        duration_ns: Exposure time (circuit duration).
        detuning_ghz: Frequency detuning of the pair.
    """
    if duration_ns < 0:
        raise ValueError("duration must be non-negative")
    if g_eff_ghz < 0:
        raise ValueError("coupling strength must be non-negative")
    if g_eff_ghz == 0 or duration_ns == 0:
        return 0.0
    return worst_case_swap_probability(detuning_ghz, 0.0, g_eff_ghz, duration_ns)


def gate_error_factor(num_single: int, num_two: int,
                      params: NoiseParams = NoiseParams()) -> float:
    """Fidelity factor from gate errors: (1-e1)^n1 * (1-e2)^n2."""
    if num_single < 0 or num_two < 0:
        raise ValueError("gate counts must be non-negative")
    return ((1.0 - params.single_qubit_gate_error) ** num_single
            * (1.0 - params.two_qubit_gate_error) ** num_two)

"""Scalable workload subsystem: registry, generators, suites, sharding.

Three layers turn the paper's fixed 8-circuit, <=16-qubit evaluation
set into a workload library that scales with the device tiers:

* the **registry** (:mod:`.registry`) — parameterized families behind
  declarative :class:`WorkloadSpec` descriptions with canonical names
  and named suites (``paper-8`` .. ``condor-1121``);
* the **generators** (:mod:`.generators`) — width-scalable circuit
  families (GHZ, QFT, seeded Clifford/quantum-volume, hardware-aware
  heavy-hex QAOA) alongside the generalized Table I families;
* **sharding** (:mod:`.sharding`) — the deterministic
  shard-index/shard-count contract and strict shard-result merging
  that :func:`repro.analysis.experiments.sharded_fidelity_experiment`
  and the ``workloads`` CLI build on.
"""

from .generators import (ghz, heavy_hex_qaoa, qft, quantum_volume,
                         random_clifford)
from .registry import (SUITES, WORKLOAD_FAMILIES, WorkloadFamily,
                       WorkloadSpec, build_workload, get_workload,
                       parse_workload_name, resolve_workload_names,
                       suite_workloads)
from .sharding import merge_fidelity_shards, shard_items

__all__ = [
    "SUITES",
    "WORKLOAD_FAMILIES",
    "WorkloadFamily",
    "WorkloadSpec",
    "build_workload",
    "get_workload",
    "ghz",
    "heavy_hex_qaoa",
    "merge_fidelity_shards",
    "parse_workload_name",
    "qft",
    "quantum_volume",
    "random_clifford",
    "resolve_workload_names",
    "shard_items",
    "suite_workloads",
]

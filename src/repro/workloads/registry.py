"""Workload registry: declarative specs, family metadata, named suites.

A :class:`WorkloadSpec` is the declarative unit of the workload
subsystem — (family, width, depth, seed) — with a canonical name
(``"qaoa-216"``, ``"qv-128-d6"``, ``"clifford-200-d12-s3"``) that
round-trips through :func:`parse_workload_name`.  Specs are frozen and
hashable, so they travel through the parallel runner's job descriptions
and on-disk cache keys unchanged, and building the same spec anywhere
in the pool yields a bit-identical circuit.

:data:`SUITES` names the evaluation sets: ``paper-8`` (the Table I
circuits) plus width-scaled tiers matching the registered device
scales (``eagle-127``, ``condor-433``, ``condor-1121``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.library.bv import bernstein_vazirani
from ..circuits.library.ising import ising_chain
from ..circuits.library.qaoa import qaoa
from ..circuits.library.qgan import qgan
from .generators import (ghz, heavy_hex_qaoa, qft, quantum_volume,
                         random_clifford)


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark instance: family x width x depth x seed.

    Attributes:
        family: Registered family key (see :data:`WORKLOAD_FAMILIES`).
        width: Circuit width in qubits.
        depth: Family-specific depth knob (layers / steps); ``None``
            uses the family default.
        seed: Randomized-family seed (ignored by deterministic
            families; part of the canonical name only when nonzero).
    """

    family: str
    width: int
    depth: Optional[int] = None
    seed: int = 0

    @property
    def name(self) -> str:
        """Canonical registry name, parseable by parse_workload_name."""
        text = f"{self.family}-{self.width}"
        if self.depth is not None:
            text += f"-d{self.depth}"
        if self.seed != 0:
            text += f"-s{self.seed}"
        return text


@dataclass(frozen=True)
class WorkloadFamily:
    """Metadata + builder for one workload family.

    Attributes:
        name: Registry key.
        builder: ``(spec) -> QuantumCircuit`` constructor.
        min_width: Smallest valid width (validated with a clear error
            before the generator runs).
        supports_depth: Whether the family has a depth knob.
        randomized: Whether the builder consumes ``spec.seed``.
        description: One-line summary for ``workloads list``.
    """

    name: str
    builder: Callable[["WorkloadSpec"], QuantumCircuit]
    min_width: int
    supports_depth: bool
    randomized: bool
    description: str


#: Every registered workload family, keyed by canonical name.
WORKLOAD_FAMILIES: Dict[str, WorkloadFamily] = {}


def _register(name: str, builder: Callable[[WorkloadSpec], QuantumCircuit],
              min_width: int, supports_depth: bool, randomized: bool,
              description: str) -> None:
    WORKLOAD_FAMILIES[name] = WorkloadFamily(
        name=name, builder=builder, min_width=min_width,
        supports_depth=supports_depth, randomized=randomized,
        description=description)


_register("bv", lambda s: bernstein_vazirani(s.width), 2, False, False,
          "Bernstein-Vazirani oracle (Table I family, any width)")
_register("qaoa", lambda s: qaoa(s.width, layers=s.depth or 1), 2, True,
          False, "QAOA MaxCut on ring+chord instance (depth = p layers)")
_register("ising", lambda s: ising_chain(s.width, steps=s.depth or 3), 2,
          True, False, "Trotterised Ising chain (depth = Trotter steps)")
_register("qgan", lambda s: qgan(s.width, layers=s.depth or 2), 2, True,
          False, "QGAN variational ansatz (depth = ansatz blocks)")
_register("ghz", lambda s: ghz(s.width), 2, False, False,
          "GHZ preparation via CX chain (routing-light)")
_register("qft", lambda s: qft(s.width), 2, False, False,
          "Quantum Fourier transform (all-to-all, routing-heavy)")
_register("clifford",
          lambda s: random_clifford(s.width, depth=s.depth or 12,
                                    seed=s.seed),
          2, True, True,
          "Seeded random Clifford brickwork (depth = layers)")
_register("qv",
          lambda s: quantum_volume(s.width, depth=s.depth, seed=s.seed),
          2, True, True,
          "Seeded quantum-volume model circuit (depth = QV layers)")
_register("hhqaoa", lambda s: heavy_hex_qaoa(s.width, layers=s.depth or 1),
          2, True, False,
          "QAOA on a heavy-hex hardware graph (hardware-aware)")


def parse_workload_name(name: str) -> WorkloadSpec:
    """Parse a canonical workload name into a spec.

    Accepted shapes: ``family-width``, plus optional ``-d<depth>`` and
    ``-s<seed>`` suffixes in that order, e.g. ``"qv-128-d6-s3"``.
    """
    tokens = name.split("-")
    if len(tokens) < 2:
        raise ValueError(
            f"workload name must look like 'family-width', got {name!r}")
    family = tokens[0]
    if family not in WORKLOAD_FAMILIES:
        known = ", ".join(sorted(WORKLOAD_FAMILIES))
        raise ValueError(
            f"unknown workload family {family!r} in {name!r}; "
            f"known families: {known}")
    try:
        width = int(tokens[1])
    except ValueError:
        raise ValueError(
            f"workload width must be an integer, got {name!r}") from None
    depth: Optional[int] = None
    seed = 0
    for token in tokens[2:]:
        try:
            if token.startswith("d"):
                depth = int(token[1:])
                continue
            if token.startswith("s"):
                seed = int(token[1:])
                continue
            raise ValueError
        except ValueError:
            raise ValueError(
                f"unrecognised workload suffix {token!r} in {name!r}; "
                f"expected 'd<depth>' or 's<seed>'") from None
    return WorkloadSpec(family=family, width=width, depth=depth, seed=seed)


def build_workload(spec: WorkloadSpec) -> QuantumCircuit:
    """Build the circuit of a spec, validating bounds with clear errors."""
    family = WORKLOAD_FAMILIES.get(spec.family)
    if family is None:
        known = ", ".join(sorted(WORKLOAD_FAMILIES))
        raise ValueError(
            f"unknown workload family {spec.family!r}; known: {known}")
    if spec.width < family.min_width:
        raise ValueError(
            f"workload family {spec.family!r} requires width >= "
            f"{family.min_width}, got {spec.width}")
    if spec.depth is not None:
        if not family.supports_depth:
            raise ValueError(
                f"workload family {spec.family!r} has no depth parameter "
                f"(got depth={spec.depth})")
        if spec.depth < 1:
            raise ValueError(
                f"workload depth must be >= 1, got {spec.depth}")
    if spec.seed < 0:
        # Negative seeds would break the canonical-name round trip
        # ("-s-1" does not parse), and job descriptions travel as names.
        raise ValueError(f"workload seed must be >= 0, got {spec.seed}")
    circuit = family.builder(spec)
    circuit.name = spec.name
    return circuit


def get_workload(name: str) -> QuantumCircuit:
    """Build a workload circuit from its canonical name."""
    return build_workload(parse_workload_name(name))


def _specs(*names: str) -> Tuple[WorkloadSpec, ...]:
    return tuple(parse_workload_name(name) for name in names)


#: Named evaluation suites.  ``paper-8`` is Table I verbatim; the scale
#: tiers pair each registered device size with width-matched workloads
#: (the condor suites stay >= 100 qubits wide throughout, so condor
#: fidelity studies actually exercise condor-scale routing).
SUITES: Dict[str, Tuple[WorkloadSpec, ...]] = {
    "paper-8": _specs("bv-4", "bv-9", "bv-16", "qaoa-4", "qaoa-9",
                      "ising-4", "qgan-4", "qgan-9"),
    "eagle-127": _specs("ghz-127", "bv-64", "qft-32", "qaoa-100",
                        "hhqaoa-127", "clifford-64-d12", "qv-32-d8",
                        "ising-100"),
    "condor-433": _specs("ghz-433", "bv-256", "qft-128", "qaoa-216",
                         "hhqaoa-433", "clifford-200-d12", "qv-128-d6",
                         "ising-216"),
    "condor-1121": _specs("ghz-1121", "bv-512", "qft-192", "qaoa-512",
                          "hhqaoa-1121", "clifford-433-d12", "qv-256-d6",
                          "ising-512"),
}


def suite_workloads(suite: str) -> Tuple[WorkloadSpec, ...]:
    """The specs of a named suite.

    Raises:
        KeyError: with the list of known suites for unknown names.
    """
    try:
        return SUITES[suite]
    except KeyError:
        known = ", ".join(sorted(SUITES))
        raise KeyError(f"unknown workload suite {suite!r}; "
                       f"known: {known}") from None


def resolve_workload_names(arg: Sequence[str] | str) -> Tuple[str, ...]:
    """Resolve a suite name or an explicit name sequence to spec names."""
    if isinstance(arg, str):
        if arg in SUITES:
            return tuple(spec.name for spec in SUITES[arg])
        return (parse_workload_name(arg).name,)
    return tuple(parse_workload_name(name).name for name in arg)

"""Deterministic workload sharding and shard-result merging.

A *shard* is the ``index``-th of ``count`` round-robin slices of a
workload list.  The contract is position-based and deterministic —
``items[index::count]`` — so N machines given the same workload list
and ``--shard-index/--shard-count`` pair partition it exactly, with no
coordination beyond the two integers, and a single-process run over the
whole list is the concatenation of every shard's work.

Merging is strict: duplicate benchmarks across shards and results for
workloads outside the declared order are errors, not silent
overwrites — a merge over correct shards is bit-identical to the
single-process run (pinned by ``tests/analysis/test_sharding.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TypeVar

Item = TypeVar("Item")

FidelityTable = Dict[str, Dict[str, float]]


def shard_items(items: Sequence[Item], shard_index: int,
                shard_count: int) -> Tuple[Item, ...]:
    """The round-robin slice of ``items`` owned by one shard.

    Round-robin (rather than contiguous blocks) balances width-sorted
    workload lists: consecutive heavy circuits land on different
    shards.

    Raises:
        ValueError: on a non-positive count or an index outside
            ``0..count-1``.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard index must be in 0..{shard_count - 1}, "
            f"got {shard_index}")
    return tuple(items[shard_index::shard_count])


def merge_fidelity_shards(partials: Sequence[FidelityTable],
                          order: Optional[Sequence[str]] = None
                          ) -> FidelityTable:
    """Merge per-shard fidelity tables into one.

    Args:
        partials: One ``{benchmark: {strategy: fidelity}}`` table per
            shard (any shard order).
        order: The full workload name list; the merged table follows
            it, exactly as a single-process run would.  Workloads the
            shards skipped (e.g. wider than the device) are absent from
            the result, mirroring the single-process behaviour.

    Raises:
        ValueError: when two shards report the same benchmark, or a
            shard reports a benchmark outside ``order``.
    """
    merged: FidelityTable = {}
    for partial in partials:
        for benchmark, row in partial.items():
            if benchmark in merged:
                raise ValueError(
                    f"benchmark {benchmark!r} reported by more than one "
                    f"shard; shards must be disjoint")
            merged[benchmark] = row
    if order is None:
        return merged
    extras = set(merged) - set(order)
    if extras:
        raise ValueError(
            f"shards reported benchmarks outside the declared workload "
            f"order: {sorted(extras)}")
    return {name: merged[name] for name in order if name in merged}

"""Width-scalable circuit generators for the workload registry.

The paper's Table I library tops out at 16 qubits; these families scale
to condor-class widths so fidelity studies on the large tiers exercise
realistic routing pressure (cf. qGDP, arXiv:2411.02447, and Paler's
initial-placement study, arXiv:1811.08985 — placement conclusions shift
with circuit width).  Every generator is a pure function of its
arguments: randomized families draw exclusively from a
``numpy.random.default_rng(seed)`` stream, so identical
(width, depth, seed) triples rebuild bit-identical circuits on any
process of the evaluation pool.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.library.qaoa import qaoa

Edge = Tuple[int, int]

_HALF_PI = math.pi / 2


def ghz(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation: one Hadamard and a CX chain.

    The canonical entanglement ladder — linear two-qubit depth, so its
    routing cost tracks how well a mapping preserves chains.
    """
    if num_qubits < 2:
        raise ValueError("GHZ needs at least 2 qubits")
    qc = QuantumCircuit(num_qubits, name=f"ghz-{num_qubits}")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    return qc


def qft(num_qubits: int) -> QuantumCircuit:
    """Quantum Fourier transform with explicit bit-reversal swaps.

    Controlled-phase gates decompose exactly (up to global phase) into
    the IR as ``cp(theta; a, b) = rz(theta/2, a) rz(theta/2, b)
    rzz(a, b, -theta/2)``.  The all-to-all interaction graph makes this
    the registry's most routing-hostile family — two-qubit gate count
    grows quadratically with width.
    """
    if num_qubits < 2:
        raise ValueError("QFT needs at least 2 qubits")
    qc = QuantumCircuit(num_qubits, name=f"qft-{num_qubits}")
    for i in range(num_qubits):
        qc.h(i)
        for j in range(i + 1, num_qubits):
            theta = math.pi / float(2 ** (j - i))
            qc.rz(i, theta / 2)
            qc.rz(j, theta / 2)
            qc.rzz(i, j, -theta / 2)
    for i in range(num_qubits // 2):
        qc.swap(i, num_qubits - 1 - i)
    return qc


#: Single-qubit Clifford vocabulary of :func:`random_clifford`
#: (name, rz angle or None).
_CLIFFORD_1Q: Tuple[Tuple[str, Optional[float]], ...] = (
    ("h", None), ("sx", None), ("x", None),
    ("rz", _HALF_PI), ("rz", -_HALF_PI),
)


def random_clifford(num_qubits: int, depth: int = 12,
                    seed: int = 0) -> QuantumCircuit:
    """Seeded random Clifford brickwork: 1q layers + random cz pairings.

    Each layer draws one single-qubit Clifford per wire, then pairs the
    wires by a random permutation and applies cz to each pair with
    probability 1/2.  All randomness comes from one
    ``default_rng(seed)`` stream.
    """
    if num_qubits < 2:
        raise ValueError("random Clifford layers need at least 2 qubits")
    if depth < 1:
        raise ValueError("need at least one Clifford layer")
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits,
                        name=f"clifford-{num_qubits}-d{depth}-s{seed}")
    for _ in range(depth):
        kinds = rng.integers(0, len(_CLIFFORD_1Q), size=num_qubits)
        for q, kind in enumerate(kinds.tolist()):
            name, angle = _CLIFFORD_1Q[kind]
            if angle is None:
                getattr(qc, name)(q)
            else:
                qc.rz(q, angle)
        perm = rng.permutation(num_qubits)
        coupled = rng.random(num_qubits // 2) < 0.5
        for k in range(num_qubits // 2):
            if coupled[k]:
                qc.cz(int(perm[2 * k]), int(perm[2 * k + 1]))
    return qc


def quantum_volume(num_qubits: int, depth: Optional[int] = None,
                   seed: int = 0) -> QuantumCircuit:
    """Seeded quantum-volume-style model circuit.

    Each layer permutes the wires and applies an SU(4)-flavoured block
    (ry/rz rotations around two CX) to every adjacent pair of the
    permutation — the standard QV shape expressed in the IR's gate set.
    ``depth`` defaults to ``num_qubits`` (square circuits, the QV
    convention); the registry suites pin smaller depths for tractable
    condor-scale instances.
    """
    if num_qubits < 2:
        raise ValueError("quantum volume needs at least 2 qubits")
    if depth is None:
        depth = num_qubits
    if depth < 1:
        raise ValueError("need at least one quantum-volume layer")
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(num_qubits,
                        name=f"qv-{num_qubits}-d{depth}-s{seed}")
    for _ in range(depth):
        perm = rng.permutation(num_qubits)
        for k in range(num_qubits // 2):
            a, b = int(perm[2 * k]), int(perm[2 * k + 1])
            angles = rng.uniform(0.0, 2.0 * math.pi, size=8)
            qc.ry(a, angles[0]).rz(a, angles[1])
            qc.ry(b, angles[2]).rz(b, angles[3])
            qc.cx(a, b)
            qc.ry(a, angles[4]).rz(a, angles[5])
            qc.ry(b, angles[6]).rz(b, angles[7])
            qc.cx(b, a)
    return qc


def _heavy_hex_subgraph_edges(num_qubits: int) -> List[Edge]:
    """Interaction edges of an ``num_qubits``-node heavy-hex region.

    Grows an IBM-style heavy-hex lattice at least as large as the
    request, breadth-first orders it from node 0 (sorted neighbours, so
    the order is deterministic), keeps the first ``num_qubits`` nodes
    and relabels them 0..n-1 in BFS order.  The induced edges follow
    real heavy-hex connectivity at any width.
    """
    from ..devices.topology import heavy_hex_lattice

    # Three long rows minimum: two-row lattices at small widths have no
    # reachable connector columns and fall apart.
    row_len = max(5, int(math.sqrt(num_qubits / 1.25)) + 1)
    long_rows = 3
    topo = heavy_hex_lattice(long_rows, row_len)
    while topo.num_qubits < num_qubits:
        long_rows += 1
        topo = heavy_hex_lattice(long_rows, row_len)
    graph = topo.graph
    order: List[int] = [0]
    seen = {0}
    cursor = 0
    while len(order) < num_qubits:
        if cursor >= len(order):
            raise RuntimeError("heavy-hex BFS exhausted prematurely")
        node = order[cursor]
        cursor += 1
        for nb in sorted(graph.neighbors(node)):
            if nb not in seen:
                seen.add(nb)
                order.append(nb)
    rank: Dict[int, int] = {node: k for k, node in enumerate(order)}
    kept = set(order[:num_qubits])
    edges = sorted(
        (min(rank[u], rank[v]), max(rank[u], rank[v]))
        for u, v in graph.edges
        if u in kept and v in kept
        and rank[u] < num_qubits and rank[v] < num_qubits)
    return edges


def heavy_hex_qaoa(num_qubits: int, layers: int = 1) -> QuantumCircuit:
    """Hardware-aware QAOA whose problem graph *is* a heavy-hex region.

    MaxCut on the coupling graph itself: on heavy-hex devices the cost
    layer needs (nearly) no SWAPs, isolating placement quality from
    routing noise — the counterweight to :func:`qft`.
    """
    if num_qubits < 2:
        raise ValueError("heavy-hex QAOA needs at least 2 qubits")
    if layers < 1:
        raise ValueError("QAOA needs at least one layer")
    edges = _heavy_hex_subgraph_edges(num_qubits)
    qc = qaoa(num_qubits, layers=layers, edges=edges)
    qc.name = f"hhqaoa-{num_qubits}"
    return qc

"""Qplacer reproduction: frequency-aware component placement for
superconducting quantum computers (Zhang et al., ISCA 2025).

Quickstart::

    from repro import QPlacer, build_netlist, get_topology
    from repro.crosstalk import hotspot_report

    netlist = build_netlist(get_topology("falcon-27"))
    result = QPlacer().place(netlist)
    print(result.layout.amer(), hotspot_report(result.layout).ph_percent)

Subpackages:

* :mod:`repro.devices` — topologies, components, netlists, layouts.
* :mod:`repro.physics` — superconducting-circuit coupling models.
* :mod:`repro.circuits` — NISQ benchmarks, transpiler, mapper.
* :mod:`repro.core` — the frequency-aware electrostatic placer.
* :mod:`repro.crosstalk` — violations, hotspots, fidelity estimation.
* :mod:`repro.baselines` — Classic and Human comparison layouts.
* :mod:`repro.analysis` — per-figure experiment pipelines and reports.
* :mod:`repro.io` — JSON/SVG/GDSII export.
"""

from . import constants
from .analysis import build_suite, run_full_evaluation
from .baselines import ClassicPlacer, human_layout
from .core import PlacementResult, PlacerConfig, QPlacer, place_topology
from .devices import (
    FrequencyPlan,
    Layout,
    QuantumNetlist,
    Topology,
    assign_frequencies,
    build_netlist,
    get_topology,
)

__version__ = "1.0.0"

__all__ = [
    "ClassicPlacer",
    "FrequencyPlan",
    "Layout",
    "PlacementResult",
    "PlacerConfig",
    "QPlacer",
    "QuantumNetlist",
    "Topology",
    "assign_frequencies",
    "build_netlist",
    "build_suite",
    "constants",
    "get_topology",
    "human_layout",
    "place_topology",
    "run_full_evaluation",
    "__version__",
]

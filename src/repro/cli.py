"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``place``     — place a topology and print/export the layout
* ``profile``   — place a topology and print the per-phase runtime
  breakdown (preprocess / global / legalize / detailed)
* ``evaluate``  — Fig. 11/12/13 evaluation on one topology
* ``evaluate-all`` — the whole paper evaluation across topologies,
  fanned over a process pool (``--jobs``) with an optional on-disk
  result cache (``--cache-dir`` / ``$REPRO_CACHE_DIR``)
* ``sweep``     — Fig. 15 / Table II segment-size sweep
* ``ablation``  — design-choice ablation table
* ``physics``   — the Fig. 4/5/6 physics curves and TM110 table
* ``topologies`` — list the registered device topologies
* ``workloads list``  — workload families and named suites
* ``workloads build`` — build workload circuits, print their stats
* ``workloads evaluate`` — sharded fidelity study over a workload
  suite (``--shard-index/--shard-count`` is the cross-machine
  contract; omit the index to fan every shard over the local pool)
* ``workloads merge`` — merge per-shard JSON results
* ``serve``     — placement-as-a-service: HTTP API + job queue +
  content-addressed artifact store over the whole pipeline
  (``docs/service.md``)
* ``refine``    — anytime simulated-annealing refinement of a stored
  placement artifact through a running service, streaming each
  published improvement (``docs/placers.md``)
* ``ensemble``  — Monte-Carlo disorder-ensemble sweep: yield and
  fidelity curves over fabrication sigma, with optional incremental
  re-place repair of failing samples (``docs/ensembles.md``)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import constants
from .analysis import (
    area_experiment,
    build_suite,
    compute_layout_metrics,
    fidelity_experiment,
    fidelity_table,
    format_table,
    resonator_integrity,
    segment_sweep,
    summary_experiment,
    summary_table,
    sweep_table,
)
from .analysis.ablation import ablation_experiment
from .analysis.experiments import run_full_evaluation
from .analysis.runner import ParallelRunner
from .core import PlacerConfig
from .core.config import PLACER_CHOICES

#: Default benchmark subset for the evaluate commands (5 of the 8).
DEFAULT_CLI_BENCHMARKS = ("bv-4", "bv-16", "qaoa-9", "ising-4", "qgan-4")
from .devices import (PAPER_TOPOLOGY_ORDER, SCALE_TOPOLOGY_ORDER,
                      TOPOLOGY_FACTORIES, build_netlist, get_topology)
from .io import save_gds, save_layout, save_svg


def _add_common_placer_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("topology", help="topology name, e.g. falcon-27")
    parser.add_argument("--segment-size", type=float,
                        default=constants.DEFAULT_SEGMENT_SIZE_MM,
                        help="resonator segment size lb in mm (default 0.3)")
    parser.add_argument("--seed", type=int, default=0,
                        help="placement seed (default 0)")
    parser.add_argument("--placer", choices=PLACER_CHOICES,
                        default="force",
                        help="placement algorithm: the force-directed "
                             "engine, simulated annealing, the trivial/"
                             "subgraph seed placers, or a racing "
                             "portfolio of members (default force)")
    _add_backend_arg(parser)


def _positive_int(text: str) -> int:
    """argparse type: integer >= 1, with a clear parse-time error."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer (>= 1), got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    """argparse type: float >= 0, with a clear parse-time error."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {value}")
    return value


def _detailed_passes(text: str) -> Optional[int]:
    """argparse type: ``auto`` or an integer >= 0, parse-time checked."""
    if text == "auto":
        return None
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a non-negative integer, "
            f"got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a non-negative integer, got {value}")
    return value


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--interaction-backend",
                        choices=("auto", "dense", "sparse"), default="auto",
                        help="spatial interaction strategy: dense pair "
                             "matrices, sparse uniform-grid neighbor "
                             "lists, or auto by problem size (default)")
    parser.add_argument("--incremental-density",
                        choices=("auto", "on", "off"), default="auto",
                        help="incremental density-map updates: on, off "
                             "(dense recompute), or auto = follow the "
                             "resolved interaction backend (default)")
    parser.add_argument("--density-flush-interval", type=_positive_int,
                        default=None, metavar="N",
                        help="full density rebuild checkpoint every N "
                             "incremental evaluations (default 16)")
    parser.add_argument("--density-move-threshold", type=_nonnegative_float,
                        default=None, metavar="MM",
                        dest="density_move_threshold_mm",
                        help="re-scatter an instance only once it moved "
                             "more than this per axis, in mm (default "
                             "0.01; 0 = every nonzero move)")
    parser.add_argument("--freq-pair-banding", choices=("on", "off"),
                        default="on",
                        help="frequency-band the sparse neighbor-list "
                             "grid so non-resonant candidates are never "
                             "generated (default on)")
    parser.add_argument("--detailed-passes", type=_detailed_passes,
                        default=None, metavar="N|auto",
                        help="detailed-placement sweeps after "
                             "legalization: a count, 0 to disable, or "
                             "auto = 1 on condor-scale topologies and 0 "
                             "on the paper tiers (default auto)")
    parser.add_argument("--legalizer-screening", choices=("hash", "scan"),
                        default="hash",
                        help="legalizer neighbor screening: spatial-hash "
                             "buckets (default) or the reference "
                             "full-array scan (identical layouts, for "
                             "A/B timing)")


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes (default: CPU count)")
    parser.add_argument("--cache-dir", default=None,
                        help="on-disk result cache directory "
                             "(default: $REPRO_CACHE_DIR, unset = off)")


def _runner_from(args: argparse.Namespace) -> ParallelRunner:
    return ParallelRunner(max_workers=args.jobs, cache_dir=args.cache_dir)


def _config_from(args: argparse.Namespace) -> PlacerConfig:
    extra = {}
    if getattr(args, "density_flush_interval", None) is not None:
        extra["density_flush_interval"] = args.density_flush_interval
    if getattr(args, "density_move_threshold_mm", None) is not None:
        extra["density_move_threshold_mm"] = args.density_move_threshold_mm
    return PlacerConfig(segment_size_mm=args.segment_size, seed=args.seed,
                        placer=getattr(args, "placer", "force"),
                        interaction_backend=getattr(
                            args, "interaction_backend", "auto"),
                        incremental_density=getattr(
                            args, "incremental_density", "auto"),
                        freq_pair_banding=getattr(
                            args, "freq_pair_banding", "on") == "on",
                        detailed_passes=getattr(
                            args, "detailed_passes", None),
                        legalizer_screening=getattr(
                            args, "legalizer_screening", "hash"),
                        **extra)


def cmd_topologies(_args: argparse.Namespace) -> int:
    rows = []
    for name in PAPER_TOPOLOGY_ORDER:
        topo = get_topology(name)
        rows.append([name, topo.num_qubits, topo.num_couplers,
                     topo.description])
    print(format_table(["name", "qubits", "couplers", "description"], rows,
                       title="Registered topologies (Table I)"))
    rows = []
    for name in SCALE_TOPOLOGY_ORDER:
        topo = get_topology(name)
        rows.append([name, topo.num_qubits, topo.num_couplers,
                     topo.description])
    print()
    print(format_table(["name", "qubits", "couplers", "description"], rows,
                       title="Scale tiers (sparse interaction backend)"))
    return 0


def cmd_place(args: argparse.Namespace) -> int:
    config = _config_from(args)
    if args.classic:
        config = PlacerConfig.classic(
            segment_size_mm=args.segment_size, seed=args.seed,
            placer=config.placer,
            interaction_backend=args.interaction_backend,
            incremental_density=config.incremental_density,
            density_flush_interval=config.density_flush_interval,
            density_move_threshold_mm=config.density_move_threshold_mm,
            freq_pair_banding=config.freq_pair_banding,
            detailed_passes=config.detailed_passes,
            legalizer_screening=config.legalizer_screening)
    from .placers import make_placer
    netlist = build_netlist(get_topology(args.topology))
    result = make_placer(config).place(netlist)
    metrics = compute_layout_metrics(result.layout)
    rows = [
        ["strategy", result.layout.strategy],
        ["cells", result.num_cells],
        ["iterations", result.iterations],
        ["runtime (s)", f"{result.runtime_s:.1f}"],
        ["Amer (mm^2)", f"{metrics.amer_mm2:.1f}"],
        ["utilization", f"{metrics.utilization:.3f}"],
        ["Ph (%)", f"{metrics.ph_percent:.3f}"],
        ["impacted qubits", metrics.impacted_qubits],
        ["resonator integrity", f"{resonator_integrity(result.layout):.2f}"],
    ]
    if result.portfolio_scores is not None:
        for member, score in sorted(result.portfolio_scores.items()):
            rows.append([f"portfolio {member}", f"{score:.6f}"])
    print(format_table(["quantity", "value"], rows,
                       title=f"Placement — {args.topology}"))
    if args.svg:
        save_svg(result.layout, args.svg)
        print(f"wrote {args.svg}")
    if args.gds:
        save_gds(result.layout, args.gds)
        print(f"wrote {args.gds}")
    if args.json:
        save_layout(result.layout, args.json,
                    segment_size_mm=args.segment_size)
        print(f"wrote {args.json}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Place a topology and print its per-phase runtime breakdown."""
    import json

    config = _config_from(args)
    if args.classic:
        from dataclasses import replace
        config = replace(config, frequency_aware=False,
                         legalize_integration=False,
                         chain_aware_tetris=False)
    from .placers import make_placer
    netlist = build_netlist(get_topology(args.topology))
    result = make_placer(config).place(netlist)
    phases = result.phase_profile
    top_total = sum(s for path, s in phases.items() if "/" not in path)
    rows = []
    for path in sorted(phases, key=lambda p: (p.split("/")[0], p)):
        seconds = phases[path]
        share = (f"{100.0 * seconds / top_total:.1f}%"
                 if "/" not in path and top_total > 0 else "")
        rows.append([path, f"{seconds:.3f}", share])
    rows.append(["(wall clock)", f"{result.runtime_s:.3f}", "100.0%"])
    print(format_table(["phase", "seconds", "share"], rows,
                       title=f"Placement phases — {args.topology} "
                             f"({result.num_cells} cells)"))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"topology": args.topology,
                       "num_cells": result.num_cells,
                       "runtime_s": result.runtime_s,
                       "phases": phases}, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    config = _config_from(args)
    suite = build_suite(args.topology, segment_size_mm=args.segment_size,
                        config=config)
    benchmarks = tuple(args.benchmarks.split(",")) if args.benchmarks else \
        DEFAULT_CLI_BENCHMARKS
    fidelity = fidelity_experiment(suite, benchmarks=benchmarks,
                                   num_mappings=args.mappings)
    print(fidelity_table(fidelity, args.topology))
    print()
    print(summary_table(summary_experiment(
        suite, benchmarks=benchmarks, num_mappings=args.mappings,
        fidelity=fidelity)))
    print()
    ratios = area_experiment(suite)
    rows = [[s, f"{r:.3f}"] for s, r in sorted(ratios.items())]
    print(format_table(["strategy", "Amer ratio"], rows,
                       title="Fig.13 area ratios (vs Qplacer)"))
    return 0


def cmd_evaluate_all(args: argparse.Namespace) -> int:
    topologies = (tuple(args.topologies.split(","))
                  if args.topologies else PAPER_TOPOLOGY_ORDER)
    benchmarks = (tuple(args.benchmarks.split(",")) if args.benchmarks else
                  DEFAULT_CLI_BENCHMARKS)
    runner = _runner_from(args)
    results = run_full_evaluation(
        topology_names=topologies, benchmarks=benchmarks,
        num_mappings=args.mappings,
        segment_size_mm=args.segment_size,
        config=PlacerConfig(segment_size_mm=args.segment_size,
                            seed=args.seed,
                            interaction_backend=args.interaction_backend),
        runner=runner)
    for name, entry in results.items():
        print(fidelity_table(entry["fidelity"], name))
        print()
        print(summary_table(entry["summary"]))
        print()
        rows = [[s, f"{r:.3f}"] for s, r in sorted(entry["area_ratio"].items())]
        print(format_table(["strategy", "Amer ratio"], rows,
                           title=f"Fig.13 area ratios — {name}"))
        print()
    if runner.cache_dir is not None:
        print(f"cache: {runner.cache_hits} hits, {runner.cache_misses} "
              f"misses under {runner.cache_dir}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    rows = segment_sweep(args.topology,
                         config=PlacerConfig(seed=args.seed),
                         runner=_runner_from(args))
    print(sweep_table(rows))
    return 0


def cmd_ablation(args: argparse.Namespace) -> int:
    rows = ablation_experiment(args.topology,
                               config=_config_from(args),
                               runner=_runner_from(args))
    body = [[r.variant, f"{r.ph_percent:.3f}", r.impacted_qubits,
             f"{r.amer_mm2:.1f}", f"{r.integrity:.2f}",
             f"{r.runtime_s:.1f}"]
            for r in rows]
    print(format_table(
        ["variant", "Ph (%)", "impacted", "Amer (mm^2)", "integrity",
         "RT (s)"],
        body, title=f"Ablation — {args.topology}"))
    return 0


def cmd_physics(_args: argparse.Namespace) -> int:
    from .analysis import coupling_vs_detuning, coupling_vs_distance
    from .physics import tm110_frequency_ghz

    fig4 = coupling_vs_detuning(num_points=17)
    rows = [[f"{f:.2f}", f"{1e3 * g:.3f}"]
            for f, g in zip(fig4["freq2_ghz"],
                            fig4["effective_coupling_ghz"])]
    print(format_table(["w2 (GHz)", "g_eff (MHz)"], rows,
                       title="Fig.4 coupling vs detuning"))
    print()
    fig5 = coupling_vs_distance(num_points=9)
    rows = [[f"{d:.2f}", f"{c:.4f}", f"{1e3 * g:.3f}"]
            for d, c, g in zip(fig5["distance_mm"], fig5["cp_ff"],
                               fig5["g_ghz"])]
    print(format_table(["d (mm)", "Cp (fF)", "g (MHz)"], rows,
                       title="Fig.5-b coupling vs distance"))
    print()
    rows = [[f"{s:.0f}x{s:.0f}", f"{tm110_frequency_ghz(s, s):.2f}"]
            for s in (5.0, 7.5, 10.0)]
    print(format_table(["substrate (mm)", "TM110 (GHz)"], rows,
                       title="Sec.III-C box modes"))
    return 0


def cmd_workloads_list(_args: argparse.Namespace) -> int:
    from .workloads import SUITES, WORKLOAD_FAMILIES

    rows = []
    for name in sorted(WORKLOAD_FAMILIES):
        family = WORKLOAD_FAMILIES[name]
        rows.append([name, family.min_width,
                     "yes" if family.supports_depth else "-",
                     "yes" if family.randomized else "-",
                     family.description])
    print(format_table(
        ["family", "min width", "depth", "seeded", "description"], rows,
        title="Workload families"))
    print()
    rows = [[name, " ".join(spec.name for spec in specs)]
            for name, specs in SUITES.items()]
    print(format_table(["suite", "workloads"], rows, title="Named suites"))
    return 0


def cmd_workloads_build(args: argparse.Namespace) -> int:
    import time

    from .circuits.batch import transpile_batched
    from .io.serialization import circuit_content_digest
    from .workloads import resolve_workload_names, get_workload

    names = []
    for item in args.names:
        names.extend(resolve_workload_names(item))
    headers = ["workload", "qubits", "gates", "2q gates", "depth"]
    if args.digest:
        headers += ["content digest"]
    if args.transpile:
        headers += ["basis gates", "basis depth", "transpile (s)"]
    rows = []
    for name in names:
        circuit = get_workload(name)
        row = [name, circuit.num_qubits, circuit.size,
               circuit.two_qubit_gate_count, circuit.depth()]
        if args.digest:
            row += [circuit_content_digest(circuit)[:16]]
        if args.transpile:
            start = time.perf_counter()
            basis = transpile_batched(circuit)
            elapsed = time.perf_counter() - start
            row += [basis.size, basis.depth(), f"{elapsed:.3f}"]
        rows.append(row)
    print(format_table(headers, rows, title="Workload circuits"))
    return 0


#: Shard-payload keys that must agree across every shard of a merge —
#: the full placement + protocol context, so shards produced with
#: different settings cannot silently combine into a table that matches
#: no single-process run.
SHARD_CONTEXT_KEYS = (
    "topology", "workloads", "shard_count", "num_mappings", "base_seed",
    "strategies", "placement_seed", "segment_size_mm",
    "interaction_backend", "incremental_density",
    "detailed_passes", "legalizer_screening",
)


def _shard_payload(args: argparse.Namespace, names: tuple,
                   fidelity: dict) -> dict:
    return {
        "kind": "workload-shard",
        "topology": args.topology,
        "workloads": list(names),
        "shard_index": args.shard_index,
        "shard_count": args.shard_count,
        "num_mappings": args.mappings,
        "base_seed": args.base_seed,
        "strategies": args.strategies.split(","),
        "placement_seed": args.seed,
        "segment_size_mm": args.segment_size,
        "interaction_backend": args.interaction_backend,
        "incremental_density": args.incremental_density,
        "detailed_passes": args.detailed_passes,
        "legalizer_screening": args.legalizer_screening,
        "fidelity": fidelity,
    }


def cmd_workloads_evaluate(args: argparse.Namespace) -> int:
    import json

    from .analysis.experiments import sharded_fidelity_experiment
    from .workloads import resolve_workload_names

    names = resolve_workload_names(args.suite or
                                   tuple(args.workloads.split(",")))
    strategies = tuple(args.strategies.split(","))
    config = _config_from(args)
    runner = _runner_from(args)
    if args.shard_index is not None:
        if args.shard_count is None:
            raise SystemExit("--shard-index requires --shard-count")
        if not 0 <= args.shard_index < args.shard_count:
            # Catch the off-by-one before the (condor-scale) placement.
            raise SystemExit(
                f"--shard-index must be in 0..{args.shard_count - 1}, "
                f"got {args.shard_index}")
        suite = build_suite(args.topology,
                            segment_size_mm=args.segment_size,
                            strategies=strategies, config=config)
        fidelity = fidelity_experiment(
            suite, benchmarks=names, num_mappings=args.mappings,
            base_seed=args.base_seed, runner=runner,
            shard_index=args.shard_index, shard_count=args.shard_count)
        payload = _shard_payload(args, names, fidelity)
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"wrote shard {args.shard_index}/{args.shard_count} "
                  f"({len(fidelity)} benchmarks) to {args.json}")
        else:
            print(json.dumps(payload, indent=2))
        return 0
    fidelity = sharded_fidelity_experiment(
        args.topology, workloads=names, shard_count=args.shard_count,
        num_mappings=args.mappings, base_seed=args.base_seed,
        segment_size_mm=args.segment_size, strategies=strategies,
        config=config, runner=runner)
    print(fidelity_table(fidelity, args.topology))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"topology": args.topology, "workloads": list(names),
                       "fidelity": fidelity}, fh, indent=2)
        print(f"wrote {args.json}")
    if runner.cache_dir is not None:
        print(f"cache: {runner.cache_hits} hits, {runner.cache_misses} "
              f"misses under {runner.cache_dir}")
    return 0


def cmd_workloads_merge(args: argparse.Namespace) -> int:
    import json

    from .workloads import merge_fidelity_shards

    shards = []
    for path in args.shards:
        with open(path) as fh:
            shards.append(json.load(fh))
    first = shards[0]
    for shard in shards[1:]:
        for key in SHARD_CONTEXT_KEYS:
            if shard.get(key) != first.get(key):
                raise SystemExit(
                    f"shard files disagree on {key!r}: "
                    f"{shard.get(key)!r} vs {first.get(key)!r}")
    indices = [shard.get("shard_index") for shard in shards]
    if len(set(indices)) != len(indices):
        raise SystemExit(f"duplicate shard indices: {sorted(indices)}")
    missing = set(range(first.get("shard_count", 0))) - set(indices)
    if missing:
        raise SystemExit(f"missing shard indices: {sorted(missing)}")
    merged = merge_fidelity_shards([s["fidelity"] for s in shards],
                                   order=first["workloads"])
    print(fidelity_table(merged, first["topology"]))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"topology": first["topology"],
                       "workloads": first["workloads"],
                       "fidelity": merged}, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .analysis.runner import CACHE_ENV_VAR
    from .service import PlacementService

    # Honour the documented --cache-dir fallback chain: explicit flag,
    # then $REPRO_CACHE_DIR, then the service default
    # (<store-dir>/runner-cache).
    cache_dir = args.cache_dir or os.environ.get(CACHE_ENV_VAR) or None
    token = args.shutdown_token \
        or os.environ.get("REPRO_SHUTDOWN_TOKEN") or None
    service = PlacementService(
        store_dir=args.store_dir, host=args.host, port=args.port,
        workers=args.workers, runner_workers=args.jobs,
        cache_dir=cache_dir, verbose=args.verbose,
        shutdown_token=token, store_max_bytes=args.store_max_bytes)
    service.start()
    print(f"repro service listening on {service.base_url} "
          f"(store: {service.store.root}, workers: {args.workers})",
          flush=True)
    try:
        service.wait()
    except KeyboardInterrupt:
        pass
    service.stop()
    print("repro service stopped", flush=True)
    return 0


def cmd_refine(args: argparse.Namespace) -> int:
    """Submit a refine job and stream its published improvements."""
    import time as _time

    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        job = client.submit("refine", {
            "source_digest": args.source_digest,
            "strategy": args.strategy,
            "deadline_s": args.deadline,
            "rounds": args.rounds,
            "moves_per_round": args.moves,
            "seed": args.seed,
        })
    except ServiceError as exc:
        print(f"refine submit failed: {exc}", file=sys.stderr)
        return 1
    job_id = job["job_id"]
    print(f"refine job {job_id} (digest {job['digest'][:12]}…)")
    last_published = 0
    while True:
        try:
            record = client.job(job_id)
        except ServiceError as exc:
            print(f"lost the service: {exc}", file=sys.stderr)
            return 1
        progress = record.get("progress") or {}
        published = progress.get("published", 0)
        if published > last_published:
            print(f"  round {published}: best cost "
                  f"{progress.get('best_cost', float('nan')):.3f}, "
                  f"fidelity score {progress.get('score', 0.0):.6f}",
                  flush=True)
            last_published = published
        state = record.get("state")
        if state in ("done", "failed", "cancelled"):
            break
        _time.sleep(0.2)
    if state != "done":
        error = (record.get("error") or "")[-2000:]
        print(f"refine job ended {state}: {error}", file=sys.stderr)
        return 1
    result = client.artifact(record["artifact"])["result"]
    costs = result.get("published_costs", [])
    print(f"done: {result.get('rounds_completed', 0)} round(s), "
          f"final cost {costs[-1]:.3f}, score {result.get('score', 0.0):.6f}"
          if costs else "done (no rounds completed before the deadline)")
    print(f"artifact: {record['artifact']}")
    return 0


def _sigma_list(text: str) -> List[float]:
    """argparse type: comma-separated sigmas, each in [0, 1] GHz."""
    sigmas: List[float] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            value = float(token)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected comma-separated numbers, got {token!r}") from None
        if not 0.0 <= value <= 1.0:
            raise argparse.ArgumentTypeError(
                f"sigma must be in [0, 1] GHz, got {value}")
        sigmas.append(value)
    if not sigmas:
        raise argparse.ArgumentTypeError("expected at least one sigma")
    return sigmas


def cmd_ensemble(args: argparse.Namespace) -> int:
    """Run a disorder-ensemble sweep locally and print the yield curve."""
    from .ensembles import run_ensemble_request

    runner = _runner_from(args)
    config = _config_from(args)

    def on_point(index: int, point) -> None:
        repair = point.get("repair")
        suffix = ""
        if repair is not None:
            suffix = (f", after repair "
                      f"{point['yield_after_repair'] * 100:.1f}%")
        print(f"  sigma {point['sigma_qubit_ghz']:g} GHz: yield "
              f"{point['yield'] * 100:.1f}%{suffix} "
              f"[{index + 1}/{len(args.sigma)}]", flush=True)

    payload = run_ensemble_request(
        topology=args.topology, sigmas=args.sigma, samples=args.samples,
        resonator_sigma_scale=args.resonator_sigma_scale,
        base_seed=args.base_seed, strategy=args.strategy,
        segment_size_mm=args.segment_size, seed=args.seed, config=config,
        repair_samples=args.repair, max_ph_percent=args.max_ph_percent,
        warm_start=args.warm_start, bootstrap=args.bootstrap,
        runner=runner, chunk_size=args.chunk_size, on_point=on_point)

    rows = []
    for point in payload["points"]:
        lo, hi = point["yield_ci"]
        flo, fhi = point["fidelity_ci"]
        repair = point.get("repair")
        after = (f"{point['yield_after_repair'] * 100:.1f}%"
                 if repair is not None else "-")
        rows.append([
            f"{point['sigma_qubit_ghz']:g}",
            f"{point['sigma_resonator_ghz']:g}",
            f"{point['yield'] * 100:.1f}%",
            f"[{lo * 100:.1f}, {hi * 100:.1f}]%",
            after,
            f"{point['mean_ph_percent']:.3f}",
            f"{point['mean_hotspots']:.2f}",
            f"{point['fidelity_mean']:.6f}",
            f"[{flo:.6f}, {fhi:.6f}]",
        ])
    print(format_table(
        ["sigma_q", "sigma_r", "yield", "yield 95% CI", "after repair",
         "mean Ph%", "hotspots", "fidelity", "fidelity 95% CI"],
        rows,
        title=f"{args.topology}: disorder-ensemble yield curve "
              f"({args.samples} samples/point, strategy {args.strategy})"))
    if args.json:
        import json as _json
        from pathlib import Path

        Path(args.json).write_text(_json.dumps(payload, indent=2,
                                               sort_keys=True))
        print(f"wrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Qplacer reproduction: frequency-aware quantum-chip "
                    "placement (ISCA 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topologies", help="list registered topologies")
    p.set_defaults(func=cmd_topologies)

    p = sub.add_parser("place", help="place one topology")
    _add_common_placer_args(p)
    p.add_argument("--classic", action="store_true",
                   help="use the frequency-oblivious Classic baseline")
    p.add_argument("--svg", help="write an SVG rendering to this path")
    p.add_argument("--gds", help="write a GDSII export to this path")
    p.add_argument("--json", help="write a JSON serialisation to this path")
    p.set_defaults(func=cmd_place)

    p = sub.add_parser("profile",
                       help="place one topology and print the per-phase "
                            "runtime breakdown")
    _add_common_placer_args(p)
    p.add_argument("--classic", action="store_true",
                   help="profile the frequency-oblivious Classic baseline")
    p.add_argument("--json", help="write the phase breakdown to this path")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("evaluate",
                       help="Fig. 11/12/13 evaluation on one topology")
    _add_common_placer_args(p)
    p.add_argument("--mappings", type=int, default=12,
                   help="mapping subsets per benchmark (paper: 50)")
    p.add_argument("--benchmarks",
                   help="comma-separated benchmark list (default: 5 of 8)")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("evaluate-all",
                       help="whole-paper evaluation, parallel across "
                            "topologies")
    p.add_argument("--topologies",
                   help="comma-separated topology list (default: all six)")
    p.add_argument("--segment-size", type=float,
                   default=constants.DEFAULT_SEGMENT_SIZE_MM)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mappings", type=int, default=12,
                   help="mapping subsets per benchmark (paper: 50)")
    p.add_argument("--benchmarks",
                   help="comma-separated benchmark list (default: 5 of 8)")
    _add_backend_arg(p)
    _add_runner_args(p)
    p.set_defaults(func=cmd_evaluate_all)

    p = sub.add_parser("sweep", help="Fig. 15 / Table II segment-size sweep")
    p.add_argument("topology")
    p.add_argument("--seed", type=int, default=0)
    _add_runner_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("ablation", help="design-choice ablation table")
    _add_common_placer_args(p)
    _add_runner_args(p)
    p.set_defaults(func=cmd_ablation)

    p = sub.add_parser("physics", help="Fig. 4/5/6 physics tables")
    p.set_defaults(func=cmd_physics)

    p = sub.add_parser("workloads",
                       help="scalable workload registry and sharded "
                            "fidelity evaluation")
    wsub = p.add_subparsers(dest="workloads_command", required=True)

    w = wsub.add_parser("list", help="workload families and named suites")
    w.set_defaults(func=cmd_workloads_list)

    w = wsub.add_parser("build",
                        help="build workload circuits and print stats")
    w.add_argument("names", nargs="+",
                   help="workload names (e.g. qaoa-433, qv-128-d6) or "
                        "suite names (e.g. condor-433)")
    w.add_argument("--transpile", action="store_true",
                   help="also transpile to the native basis (batched "
                        "engine) and report basis gate counts + time")
    w.add_argument("--digest", action="store_true",
                   help="also print each circuit's content digest "
                        "(the cache identity; truncated to 16 hex chars)")
    w.set_defaults(func=cmd_workloads_build)

    w = wsub.add_parser("evaluate",
                        help="(sharded) fidelity study over a workload "
                             "suite")
    w.add_argument("--topology", required=True,
                   help="topology name, e.g. condor-sm-433")
    group = w.add_mutually_exclusive_group(required=True)
    group.add_argument("--suite", help="named suite, e.g. condor-433")
    group.add_argument("--workloads",
                       help="comma-separated workload names")
    w.add_argument("--mappings", type=int, default=12,
                   help="mapping subsets per benchmark (paper: 50)")
    w.add_argument("--base-seed", type=int, default=0,
                   help="first mapping-subset seed (default 0)")
    w.add_argument("--segment-size", type=float,
                   default=constants.DEFAULT_SEGMENT_SIZE_MM)
    w.add_argument("--seed", type=int, default=0,
                   help="placement seed (default 0)")
    w.add_argument("--strategies", default="qplacer,classic,human",
                   help="comma-separated strategies to score")
    w.add_argument("--shard-index", type=int, default=None,
                   help="run only this shard (cross-machine contract; "
                        "write the partial result with --json and "
                        "combine with 'workloads merge')")
    w.add_argument("--shard-count", type=int, default=None,
                   help="total shards (with --shard-index: the "
                        "cross-machine split; alone: local pool fan-out)")
    w.add_argument("--json", help="write results to this JSON path")
    _add_backend_arg(w)
    _add_runner_args(w)
    w.set_defaults(func=cmd_workloads_evaluate)

    w = wsub.add_parser("merge",
                        help="merge per-shard JSON results into one table")
    w.add_argument("shards", nargs="+", help="shard JSON files")
    w.add_argument("--json", help="write the merged table to this path")
    w.set_defaults(func=cmd_workloads_merge)

    p = sub.add_parser("serve",
                       help="run the placement service (HTTP API + job "
                            "queue + artifact store)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8754,
                   help="bind port (default 8754; 0 picks a free port)")
    p.add_argument("--workers", type=int, default=2,
                   help="scheduler worker threads — concurrent distinct "
                        "jobs (default 2)")
    p.add_argument("--store-dir", default="repro-service-data",
                   help="artifact store directory "
                        "(default ./repro-service-data)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    p.add_argument("--shutdown-token", default=None,
                   help="bearer token required by POST /shutdown "
                        "(default $REPRO_SHUTDOWN_TOKEN; unset leaves "
                        "the route open)")
    p.add_argument("--store-max-bytes", type=_positive_int, default=None,
                   metavar="BYTES",
                   help="artifact-store size cap with oldest-first "
                        "eviction on write (default unbounded)")
    _add_runner_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("refine",
                       help="anytime SA refinement of a stored placement "
                            "artifact through a running service")
    p.add_argument("source_digest",
                   help="64-hex digest of a place artifact (with "
                        "layouts) to refine")
    p.add_argument("--url", default="http://127.0.0.1:8754",
                   help="service base URL (default "
                        "http://127.0.0.1:8754)")
    p.add_argument("--strategy", default="qplacer",
                   choices=("qplacer", "classic", "human"),
                   help="which stored layout to refine (default qplacer)")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="refinement wall-clock budget in seconds "
                        "(default 30)")
    p.add_argument("--rounds", type=_positive_int, default=8,
                   help="maximum SA rounds; each round republishes the "
                        "best layout so far (default 8)")
    p.add_argument("--moves", type=_positive_int, default=200,
                   help="SA proposals per round (default 200)")
    p.add_argument("--seed", type=int, default=0,
                   help="annealing seed (default 0)")
    p.set_defaults(func=cmd_refine)

    p = sub.add_parser("ensemble",
                       help="Monte-Carlo disorder-ensemble sweep: "
                            "yield/fidelity curves over fabrication "
                            "sigma, with optional incremental re-place "
                            "repair of failing samples")
    _add_common_placer_args(p)
    p.add_argument("--sigma", type=_sigma_list, default=[0.01, 0.02, 0.05],
                   metavar="S1,S2,...",
                   help="comma-separated qubit-frequency sigmas in GHz "
                        "(default 0.01,0.02,0.05)")
    p.add_argument("--samples", type=_positive_int, default=64,
                   help="disorder realisations per sigma point "
                        "(default 64)")
    p.add_argument("--resonator-sigma-scale", type=_nonnegative_float,
                   default=0.5, metavar="SCALE",
                   help="resonator sigma = qubit sigma x this scale "
                        "(default 0.5)")
    p.add_argument("--base-seed", type=int, default=0,
                   help="ensemble entropy root; sample i draws from "
                        "SeedSequence(base_seed, spawn_key=(i,)) "
                        "(default 0)")
    p.add_argument("--strategy", default="qplacer",
                   choices=("qplacer", "classic", "human"),
                   help="which placement to freeze and score "
                        "(default qplacer)")
    p.add_argument("--repair", type=int, default=0, metavar="N",
                   help="incrementally re-place up to N failing samples "
                        "per sigma point (legalize + detailed repair on "
                        "the cached positions; default 0 = frozen only)")
    p.add_argument("--max-ph-percent", type=_nonnegative_float,
                   default=0.0,
                   help="pass threshold on the hotspot poly share Ph "
                        "(default 0.0 = zero hotspots)")
    p.add_argument("--warm-start", action="store_true",
                   help="warm-start the base placement from the runner "
                        "cache when available")
    p.add_argument("--bootstrap", type=int, default=200,
                   help="bootstrap resamples for the yield/fidelity "
                        "confidence intervals (default 200; 0 disables)")
    p.add_argument("--chunk-size", type=_positive_int, default=None,
                   metavar="N",
                   help="samples per runner chunk (default: samples / "
                        "workers, rounded up)")
    p.add_argument("--json", help="write the full payload to this path")
    _add_runner_args(p)
    p.set_defaults(func=cmd_ensemble)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

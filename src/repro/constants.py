"""Physical constants and architectural default parameters.

All defaults follow Section V-C ("Experiment setup / Architectural
Features") of the Qplacer paper.  Unit conventions used throughout the
library:

* lengths in **millimetres** (mm)
* frequencies in **GHz** (plain frequencies ``f``; angular frequencies
  carry an explicit ``2*pi`` where they appear)
* capacitances in **femtofarads** (fF)
* times in **nanoseconds** (ns)

Keeping a single consistent unit system avoids the classic failure mode of
mixing SI prefixes inside formulas; converting helpers live next to the
constants they serve.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Fundamental constants
# ---------------------------------------------------------------------------

#: Speed of light in vacuum, in mm/ns (= 2.998e8 m/s).
SPEED_OF_LIGHT_MM_PER_NS = 299.792458

#: Phase velocity of light in the coplanar-waveguide resonator, mm/ns.
#: The paper uses v0 ~ 1.3e8 m/s (Sec. V-C) which is 130 mm/ns.
CPW_PHASE_VELOCITY_MM_PER_NS = 130.0

#: Relative permittivity of the silicon substrate (used for the TM110
#: box-mode estimate; reproduces the paper's 12.41 GHz @ 5x5 mm^2).
SILICON_RELATIVE_PERMITTIVITY = 11.7

#: Reduced Planck constant in (GHz * fF * mV^2 * ns) style units is never
#: needed explicitly; all energy scales are expressed directly as
#: frequencies (E/h in GHz).

# ---------------------------------------------------------------------------
# Component geometry (Sec. V-C, "Architectural Features")
# ---------------------------------------------------------------------------

#: Side length of the square transmon-qubit pocket, mm (400 x 400 um^2).
QUBIT_SIZE_MM = 0.4

#: Padding distance added around every qubit, mm (dq = 400 um).
QUBIT_PADDING_MM = 0.4

#: Padding distance added around every resonator segment, mm (dr = 100 um).
RESONATOR_PADDING_MM = 0.1

#: Effective pitch (width footprint) of the meandered CPW resonator trace,
#: mm.  Reserved resonator area = L * pitch; with the 9.2--10.8 mm lengths
#: of Sec. V-C this reproduces the paper's Table II instance counts.
RESONATOR_PITCH_MM = 0.1

#: Default resonator-segment block size lb, mm (Sec. VI-D finds 0.3 optimal).
DEFAULT_SEGMENT_SIZE_MM = 0.3

#: Segment sizes swept in Fig. 15 / Table II.
SEGMENT_SIZE_SWEEP_MM = (0.2, 0.3, 0.4)

# ---------------------------------------------------------------------------
# Frequency plan (Sec. V-C)
# ---------------------------------------------------------------------------

#: Allowed qubit frequency band, GHz.
QUBIT_FREQ_BAND_GHZ = (4.8, 5.2)

#: Allowed resonator frequency band, GHz.
RESONATOR_FREQ_BAND_GHZ = (6.0, 7.0)

#: Detuning threshold Delta_c below which two components are considered
#: resonant (GHz).
DETUNING_THRESHOLD_GHZ = 0.1

#: Transmon anharmonicity alpha/2pi = (w12 - w01)/2pi, GHz (~ -310 MHz).
TRANSMON_ANHARMONICITY_GHZ = -0.310

# ---------------------------------------------------------------------------
# Circuit-element electrical parameters
# ---------------------------------------------------------------------------

#: Transmon shunt capacitance, fF.  65 fF gives EC/h ~ 300 MHz, matching
#: the ~310 MHz anharmonicity quoted in the paper.
QUBIT_CAPACITANCE_FF = 65.0

#: Effective lumped capacitance of a lambda/2 CPW resonator, fF.
RESONATOR_CAPACITANCE_FF = 400.0

#: Parasitic capacitance between two adjacent qubit pockets at contact
#: (d -> 0), fF.  Calibrated so Eq. (6) yields g/2pi in the paper's
#: 20--30 MHz band at near-contact distances (Fig. 5-b).
PARASITIC_CP0_FF = 1.4

#: Exponential decay length of the parasitic capacitance with distance,
#: mm.  The sharp 50 um screening length reproduces the paper's regime
#: split: resonant pairs closer than the padding sums suffer order-unity
#: crosstalk errors, while pairs at (or beyond) the legal padded spacing
#: couple negligibly (Fig. 5-b / Sec. V-C).
PARASITIC_DECAY_MM = 0.05

#: Per-length parasitic capacitance between parallel resonator traces at
#: contact, fF/mm (Fig. 6-c behaviour).
RESONATOR_PARASITIC_CP0_FF_PER_MM = 4.0

#: Decay length for resonator-resonator parasitic capacitance, mm.
RESONATOR_PARASITIC_DECAY_MM = 0.05

#: Intended (designed) qubit-resonator coupling g/2pi, GHz (~70 MHz is a
#: typical circuit-QED value for RIP-gate devices).
QUBIT_RESONATOR_COUPLING_GHZ = 0.070

# ---------------------------------------------------------------------------
# Noise-model parameters (Sec. V-C "Metrics"; representative IBM values)
# ---------------------------------------------------------------------------

#: Relaxation time T1, ns (100 us).
T1_NS = 100_000.0

#: Dephasing time T2, ns (100 us).
T2_NS = 100_000.0

#: Single-qubit gate duration, ns.
SINGLE_QUBIT_GATE_NS = 35.0

#: Two-qubit (RIP CZ) gate duration, ns.
TWO_QUBIT_GATE_NS = 300.0

#: Readout duration, ns (not used by default: the paper's 3D packaging
#: evaluation omits readout resonators).
READOUT_NS = 700.0

#: Single-qubit gate error (depolarising magnitude).
SINGLE_QUBIT_GATE_ERROR = 3.0e-4

#: Two-qubit gate error.
TWO_QUBIT_GATE_ERROR = 7.0e-3

# ---------------------------------------------------------------------------
# Evaluation protocol (Sec. VI-A)
# ---------------------------------------------------------------------------

#: Number of physical-qubit subsets evaluated per (benchmark, topology).
DEFAULT_NUM_MAPPINGS = 50

#: Target density used by the electrostatic placement region sizing.
DEFAULT_TARGET_DENSITY = 1.0


def ghz_to_angular(freq_ghz: float) -> float:
    """Convert a plain frequency in GHz to angular frequency in rad/ns.

    1 GHz = 2*pi rad/ns in this unit system (1 GHz = 1 cycle/ns).
    """
    return 2.0 * math.pi * freq_ghz


def angular_to_ghz(omega_rad_per_ns: float) -> float:
    """Convert an angular frequency in rad/ns back to GHz."""
    return omega_rad_per_ns / (2.0 * math.pi)
